//! The `ab`-style load generator and the Fig 7 experiment driver.
//!
//! Builds one of the four systems Fig 7 compares, drives N concurrent
//! closed-loop connections, optionally injects a fault into a rotating
//! system component every `fault_period`, and reports the per-second
//! throughput series plus summary statistics.

use std::cell::RefCell;
use std::rc::Rc;

use composite::{
    mix, CostModel, Executor, InterfaceCall, Kernel, KernelAccess, MetricsSnapshot, Priority,
    RunExit, SeriesSnapshot, SimTime, StepResult, ThreadId, TraceShard, Value, Workload,
    DEFAULT_TRACE_CAPACITY,
};
use sg_c3::{FtRuntime, RecoveryPolicy};
use sg_services::api::ClientEnd;
use superglue::testbed::{Testbed, Variant};

use crate::apache::ApacheService;
use crate::http::Request;
use crate::pipeline::{ConnEnds, Housekeeper, Logger, Site, WebConnection};
use crate::throughput::ThroughputSeries;

/// The four systems of Fig 7 (faulted variants add an injection every
/// `fault_period`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WebVariant {
    /// Apache on Linux: the monolithic comparator.
    Apache,
    /// Base COMPOSITE: componentized, no fault tolerance.
    Composite,
    /// COMPOSITE with C³ (hand-written stubs).
    C3 {
        /// Inject a fault into a rotating service every period.
        faults: bool,
    },
    /// COMPOSITE with SuperGlue (generated stubs).
    SuperGlue {
        /// Inject a fault into a rotating service every period.
        faults: bool,
    },
}

impl std::fmt::Display for WebVariant {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WebVariant::Apache => f.write_str("Apache/Linux"),
            WebVariant::Composite => f.write_str("COMPOSITE"),
            WebVariant::C3 { faults: false } => f.write_str("COMPOSITE+C3"),
            WebVariant::C3 { faults: true } => f.write_str("COMPOSITE+C3 (faults)"),
            WebVariant::SuperGlue { faults: false } => f.write_str("COMPOSITE+SuperGlue"),
            WebVariant::SuperGlue { faults: true } => f.write_str("COMPOSITE+SuperGlue (faults)"),
        }
    }
}

/// Fig 7 experiment parameters.
#[derive(Debug, Clone, Copy)]
pub struct Fig7Config {
    /// Concurrent connections (`ab -c`, the paper uses 10).
    pub connections: usize,
    /// Virtual run duration (the paper runs one minute per repetition).
    pub duration: SimTime,
    /// Total request budget across all connections (`ab -n`; the paper
    /// sends 50 000). `None` runs for the full duration.
    pub request_budget: Option<u64>,
    /// Per-request application handler work.
    pub handler_work: SimTime,
    /// Map/unmap a request buffer every N requests.
    pub mm_every: u32,
    /// Trigger the log event every N requests (batched logging).
    pub log_every: u32,
    /// Fault-injection period for the faulted variants.
    pub fault_period: SimTime,
    /// Experiment seed: repetition `rep` phase-shifts the fault schedule
    /// by `mix(seed, rep) % fault_period` (repetition 0 keeps phase 0).
    pub seed: u64,
    /// Repetitions per variant (the paper averages several one-minute
    /// runs). Repetitions only differ in their fault-schedule phase.
    pub repetitions: u64,
    /// Record a flight-recorder trace of each run (off by default;
    /// enabled by the harness's `--trace` flag).
    pub trace: bool,
    /// Windowed-telemetry window width ([`SimTime::ZERO`] = off;
    /// enabled by the harness's `--series` flag).
    pub series_window: SimTime,
}

impl Default for Fig7Config {
    fn default() -> Self {
        Self {
            connections: 10,
            duration: SimTime::from_secs(60),
            request_budget: None,
            handler_work: SimTime::from_micros(56),
            mm_every: 8,
            log_every: 4,
            fault_period: SimTime::from_secs(10),
            seed: 0xF167_0007,
            repetitions: 1,
            trace: false,
            series_window: SimTime::ZERO,
        }
    }
}

impl Fig7Config {
    /// Phase offset for repetition `rep`'s fault schedule, in
    /// `[0, fault_period)`. Repetition 0 always has phase 0, so a
    /// single-repetition run reproduces the unphased schedule exactly.
    #[must_use]
    pub fn fault_phase(&self, rep: u64) -> SimTime {
        if rep == 0 || self.fault_period.as_nanos() == 0 {
            SimTime::ZERO
        } else {
            SimTime(mix(self.seed, rep) % self.fault_period.as_nanos())
        }
    }
}

/// Calibrated virtual-time costs for the web-server experiment. The
/// ratios (not the absolute values) are the experimental claim; see
/// `EXPERIMENTS.md` for the calibration notes.
#[must_use]
pub fn web_cost_model(variant: WebVariant) -> CostModel {
    let tracking = match variant {
        WebVariant::Apache | WebVariant::Composite => SimTime::ZERO,
        // SuperGlue's generic, table-driven stubs cost slightly more per
        // call than C³'s specialized hand-written ones — the 10.5% vs
        // 11.84% gap of Fig 7 (also measured for real in the fig6a
        // Criterion bench).
        WebVariant::C3 { .. } => SimTime(1_000),
        WebVariant::SuperGlue { .. } => SimTime(1_130),
    };
    CostModel {
        invocation: SimTime(700),
        tracking,
        micro_reboot: SimTime::from_millis(250),
        recovery_step: SimTime::from_micros(30),
        storage_round_trip: SimTime::from_micros(3),
        upcall: SimTime::from_micros(10),
    }
}

/// The outcome of one Fig 7 run.
#[derive(Debug, Clone)]
pub struct Fig7Result {
    /// Which system ran.
    pub variant: WebVariant,
    /// Per-second throughput buckets.
    pub series: ThroughputSeries,
    /// Mean requests/second over closed buckets.
    pub mean_rps: f64,
    /// Standard deviation of the per-second rate.
    pub stdev_rps: f64,
    /// Total completed requests.
    pub total_requests: u64,
    /// Faults injected (faulted variants).
    pub faults_injected: u64,
    /// Unrecovered faults observed (must stay 0 for FT variants).
    pub unrecovered: u64,
    /// Per-component recovery-observability counters for this run.
    pub metrics: MetricsSnapshot,
    /// Windowed telemetry of the run (empty unless
    /// [`Fig7Config::series_window`] is nonzero).
    pub telemetry: SeriesSnapshot,
    /// Flight-recorder trace of the run (when [`Fig7Config::trace`]).
    pub trace: Option<TraceShard>,
}

/// A closed-loop Apache client connection.
#[derive(Debug)]
struct ApacheConn {
    end: ClientEnd,
    series: Rc<RefCell<ThroughputSeries>>,
}

impl<Ctx: InterfaceCall + KernelAccess> Workload<Ctx> for ApacheConn {
    fn step(&mut self, ctx: &mut Ctx, _thread: ThreadId) -> StepResult {
        let raw = Request::get("/index.html");
        match self.end.call(ctx, "handle", &[Value::from(raw)]) {
            Ok(_) => {
                let now = ctx.kernel().now();
                self.series.borrow_mut().record(now);
                StepResult::Yield
            }
            Err(e) => StepResult::Crashed(e.to_string()),
        }
    }
}

fn run_apache(cfg: &Fig7Config, rep: u64) -> Fig7Result {
    let mut k = Kernel::with_costs(web_cost_model(WebVariant::Apache));
    if cfg.trace {
        k.enable_tracing(DEFAULT_TRACE_CAPACITY);
    }
    if cfg.series_window > SimTime::ZERO {
        k.enable_telemetry(cfg.series_window);
    }
    let client = k.add_client_component("ab");
    let mut site = std::collections::BTreeMap::new();
    site.insert("/index.html".to_owned(), vec![b'x'; 1024]);
    let apache = k.add_component(
        "apache",
        Box::new(ApacheService::new(site, cfg.handler_work)),
    );
    k.grant(client, apache);

    let series = Rc::new(RefCell::new(ThroughputSeries::per_second()));
    let mut ex: Executor<Kernel> = Executor::new();
    for _ in 0..cfg.connections {
        let t = k.create_thread(client, Priority(5));
        ex.attach(
            t,
            Box::new(ApacheConn {
                end: ClientEnd::new(client, t, apache),
                series: series.clone(),
            }),
        );
    }
    while k.now() < cfg.duration {
        if ex.run(&mut k, 8_192) != RunExit::StepLimit {
            break;
        }
    }
    let metrics = MetricsSnapshot::from_kernel(&k);
    let telemetry = SeriesSnapshot::from_kernel(&k);
    let trace = take_run_trace(&mut k, WebVariant::Apache, rep);
    drop(ex);
    let series = Rc::try_unwrap(series)
        .expect("workloads dropped")
        .into_inner();
    let mean = series.mean_rps(cfg.duration);
    let stdev = series.stdev_rps(cfg.duration);
    Fig7Result {
        variant: WebVariant::Apache,
        total_requests: series.total(),
        mean_rps: mean,
        stdev_rps: stdev,
        series,
        faults_injected: 0,
        unrecovered: 0,
        metrics,
        telemetry,
        trace,
    }
}

/// Drain the run's flight recorder into a labeled shard (None when
/// tracing was never enabled).
fn take_run_trace(kernel: &mut Kernel, variant: WebVariant, rep: u64) -> Option<TraceShard> {
    if !kernel.tracing_enabled() {
        return None;
    }
    let mut shard = TraceShard::labeled(&format!("fig7/{variant}/rep{rep}"));
    let label = shard.label.clone();
    shard.absorb(kernel.take_trace(&label));
    Some(shard)
}

/// Pre-create the site resources through the (possibly stubbed) runtime
/// so every descriptor is tracked from birth.
fn setup_site(
    tb: &mut Testbed,
    setup_thread: ThreadId,
    cfg: &Fig7Config,
    series: Rc<RefCell<ThroughputSeries>>,
) -> Site {
    let ids = tb.ids;
    let app = ids.app1;
    let session_lock = tb
        .runtime
        .interface_call(
            app,
            setup_thread,
            ids.lock,
            "lock_alloc",
            &[Value::from(app.0)],
        )
        .expect("lock_alloc")
        .int()
        .expect("lock id");
    let log_evt = tb
        .runtime
        .interface_call(
            app,
            setup_thread,
            ids.evt,
            "evt_split",
            &[Value::from(app.0), Value::Int(0), Value::Int(1)],
        )
        .expect("evt_split")
        .int()
        .expect("evt id");
    let pages = vec![
        ("/index.html".to_owned(), "index.html".to_owned()),
        ("/style.css".to_owned(), "style.css".to_owned()),
    ];
    for (_, file) in &pages {
        let fd = tb
            .runtime
            .interface_call(
                app,
                setup_thread,
                ids.fs,
                "tsplit",
                &[
                    Value::from(app.0),
                    Value::Int(0),
                    Value::from(file.as_str()),
                ],
            )
            .expect("tsplit")
            .int()
            .expect("fd");
        tb.runtime
            .interface_call(
                app,
                setup_thread,
                ids.fs,
                "twrite",
                &[
                    Value::from(app.0),
                    Value::Int(fd),
                    Value::from(vec![b'x'; 1024]),
                ],
            )
            .expect("twrite");
        tb.runtime
            .interface_call(
                app,
                setup_thread,
                ids.fs,
                "trelease",
                &[Value::from(app.0), Value::Int(fd)],
            )
            .expect("trelease");
    }
    Site {
        session_lock,
        log_evt,
        pages,
        work: cfg.handler_work,
        mm_every: cfg.mm_every,
        log_every: cfg.log_every,
        series,
    }
}

fn run_composite(variant: WebVariant, cfg: &Fig7Config, rep: u64) -> Fig7Result {
    let (tb_variant, faults) = match variant {
        WebVariant::Composite => (Variant::Bare, false),
        WebVariant::C3 { faults } => (Variant::C3, faults),
        WebVariant::SuperGlue { faults } => (Variant::SuperGlue, faults),
        WebVariant::Apache => unreachable!("handled by run_apache"),
    };
    let mut tb = Testbed::build_with(
        tb_variant,
        web_cost_model(variant),
        RecoveryPolicy::OnDemand,
    )
    .expect("testbed builds");
    if cfg.trace {
        tb.runtime
            .kernel_mut()
            .enable_tracing(DEFAULT_TRACE_CAPACITY);
    }
    if cfg.series_window > SimTime::ZERO {
        tb.runtime.kernel_mut().enable_telemetry(cfg.series_window);
    }

    let series = Rc::new(RefCell::new(ThroughputSeries::per_second()));
    let setup_thread = tb.spawn_thread(tb.ids.app1, Priority(3));
    let site = Rc::new(setup_site(&mut tb, setup_thread, cfg, series.clone()));

    let ids = tb.ids;
    let mut ex: Executor<FtRuntime> = Executor::new();
    let per_conn_budget = cfg.request_budget.map(|n| n / cfg.connections as u64);
    for i in 0..cfg.connections {
        let t = tb.spawn_thread(ids.app1, Priority(5));
        let ends = ConnEnds {
            lock: ClientEnd::new(ids.app1, t, ids.lock),
            fs: ClientEnd::new(ids.app1, t, ids.fs),
            evt: ClientEnd::new(ids.app1, t, ids.evt),
            mm: ClientEnd::new(ids.app1, t, ids.mm),
            sched: ClientEnd::new(ids.app1, t, ids.sched),
        };
        ex.attach(
            t,
            Box::new(WebConnection::new(
                ends,
                site.clone(),
                per_conn_budget,
                i as u64,
            )),
        );
    }
    // Logger lives in a different component: the log event's global id
    // crosses the namespace exactly like the paper's setup.
    let tl = tb.spawn_thread(ids.app2, Priority(6));
    ex.attach(
        tl,
        Box::new(Logger::new(
            ClientEnd::new(ids.app2, tl, ids.evt),
            ClientEnd::new(ids.app2, tl, ids.fs),
            site.log_evt,
        )),
    );
    let th = tb.spawn_thread(ids.app1, Priority(6));
    ex.attach(
        th,
        Box::new(Housekeeper::new(
            ClientEnd::new(ids.app1, th, ids.tmr),
            SimTime::from_secs(1).as_nanos() as i64,
        )),
    );

    let rotation = [ids.sched, ids.mm, ids.fs, ids.lock, ids.evt, ids.tmr];
    let mut next_fault = cfg.fault_period + cfg.fault_phase(rep);
    let mut faults_injected = 0u64;

    while tb.runtime.kernel().now() < cfg.duration {
        if cfg
            .request_budget
            .is_some_and(|n| series.borrow().total() >= n)
        {
            break;
        }
        if faults && tb.runtime.kernel().now() >= next_fault {
            let target = rotation[(faults_injected as usize) % rotation.len()];
            tb.runtime.inject_fault(target);
            faults_injected += 1;
            next_fault += cfg.fault_period;
        }
        if ex.run(&mut tb.runtime, 8_192) != RunExit::StepLimit {
            break;
        }
    }

    let metrics = MetricsSnapshot::from_kernel(tb.runtime.kernel());
    let telemetry = SeriesSnapshot::from_kernel(tb.runtime.kernel());
    let trace = take_run_trace(tb.runtime.kernel_mut(), variant, rep);
    drop(ex);
    drop(site);
    let series = Rc::try_unwrap(series)
        .expect("workloads dropped")
        .into_inner();
    let mean = series.mean_rps(cfg.duration);
    let stdev = series.stdev_rps(cfg.duration);
    Fig7Result {
        variant,
        total_requests: series.total(),
        mean_rps: mean,
        stdev_rps: stdev,
        series,
        faults_injected,
        unrecovered: tb.runtime.stats().unrecovered,
        metrics,
        telemetry,
        trace,
    }
}

/// Run one Fig 7 variant to completion (repetition 0's fault schedule).
#[must_use]
pub fn run_fig7_variant(variant: WebVariant, cfg: &Fig7Config) -> Fig7Result {
    run_fig7_rep(variant, cfg, 0)
}

/// Run one repetition of a Fig 7 variant. Repetitions differ only in
/// the phase of the fault schedule ([`Fig7Config::fault_phase`]), so
/// every `(variant, rep)` pair is an independent, deterministic unit of
/// work that can run on any worker thread.
#[must_use]
pub fn run_fig7_rep(variant: WebVariant, cfg: &Fig7Config, rep: u64) -> Fig7Result {
    match variant {
        WebVariant::Apache => run_apache(cfg, rep),
        other => run_composite(other, cfg, rep),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn short_cfg() -> Fig7Config {
        Fig7Config {
            duration: SimTime::from_secs(2),
            ..Fig7Config::default()
        }
    }

    #[test]
    fn apache_outpaces_base_composite() {
        let cfg = short_cfg();
        let apache = run_fig7_variant(WebVariant::Apache, &cfg);
        let composite = run_fig7_variant(WebVariant::Composite, &cfg);
        assert!(apache.total_requests > 0 && composite.total_requests > 0);
        assert!(
            apache.mean_rps > composite.mean_rps,
            "apache {} vs composite {}",
            apache.mean_rps,
            composite.mean_rps
        );
        // The paper's gap is ~8%; accept a generous band.
        let gap = 1.0 - composite.mean_rps / apache.mean_rps;
        assert!((0.01..0.25).contains(&gap), "gap {gap}");
    }

    #[test]
    fn tracking_slows_ft_variants_superglue_slightly_more() {
        let cfg = short_cfg();
        let composite = run_fig7_variant(WebVariant::Composite, &cfg);
        let c3 = run_fig7_variant(WebVariant::C3 { faults: false }, &cfg);
        let sg = run_fig7_variant(WebVariant::SuperGlue { faults: false }, &cfg);
        let c3_slow = 1.0 - c3.mean_rps / composite.mean_rps;
        let sg_slow = 1.0 - sg.mean_rps / composite.mean_rps;
        assert!(c3_slow > 0.03 && c3_slow < 0.25, "c3 slowdown {c3_slow}");
        assert!(
            sg_slow > c3_slow,
            "superglue ({sg_slow}) must trail c3 ({c3_slow})"
        );
    }

    #[test]
    fn faulted_superglue_recovers_and_keeps_serving() {
        let cfg = Fig7Config {
            duration: SimTime::from_secs(4),
            fault_period: SimTime::from_secs(1),
            ..Fig7Config::default()
        };
        let r = run_fig7_variant(WebVariant::SuperGlue { faults: true }, &cfg);
        assert!(r.faults_injected >= 3, "{r:?}");
        assert_eq!(r.unrecovered, 0, "{r:?}");
        // Throughput never collapses to zero in any closed bucket.
        let whole = (cfg.duration.as_nanos() / 1_000_000_000) as usize;
        for (i, &b) in r.series.buckets().iter().take(whole).enumerate() {
            assert!(
                b > 0,
                "bucket {i} dropped to zero: {:?}",
                r.series.buckets()
            );
        }
    }

    #[test]
    fn request_budget_caps_the_run_like_ab() {
        // `ab -n 5000 -c 10`: the run ends when the budget is consumed,
        // well before the duration limit.
        let cfg = Fig7Config {
            duration: SimTime::from_secs(30),
            request_budget: Some(5_000),
            ..Fig7Config::default()
        };
        let r = run_fig7_variant(WebVariant::SuperGlue { faults: false }, &cfg);
        assert!(r.total_requests >= 5_000, "{r:?}");
        assert!(r.total_requests < 6_000, "budget must cap the run: {r:?}");
    }

    #[test]
    fn logger_and_housekeeper_make_progress() {
        // Covered indirectly: a run with faults in evt/tmr must stay
        // recoverable, which only happens when those services hold live
        // descriptors.
        let cfg = Fig7Config {
            duration: SimTime::from_secs(2),
            fault_period: SimTime::from_millis(300),
            ..Fig7Config::default()
        };
        let r = run_fig7_variant(WebVariant::C3 { faults: true }, &cfg);
        assert_eq!(r.unrecovered, 0);
        assert!(r.total_requests > 0);
    }
}
