//! Minimal HTTP/1.0 codec used by the simulated web server.
//!
//! Keeps the macro-benchmark honest: every simulated request formats a
//! real request line, the server parses it, resolves a path, and
//! formats a real response with the bytes read from RamFS.

use std::fmt;

/// A parsed HTTP request line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// The method (only `GET` is served).
    pub method: String,
    /// The request path, e.g. `/index.html`.
    pub path: String,
}

impl Request {
    /// Format a GET request for a path.
    #[must_use]
    pub fn get(path: &str) -> String {
        format!("GET {path} HTTP/1.0\r\nHost: sim\r\n\r\n")
    }

    /// Parse a request head.
    ///
    /// # Errors
    ///
    /// [`HttpError`] on malformed input.
    pub fn parse(raw: &str) -> Result<Request, HttpError> {
        let line = raw.lines().next().ok_or(HttpError::Malformed)?;
        let mut parts = line.split_whitespace();
        let method = parts.next().ok_or(HttpError::Malformed)?.to_owned();
        let path = parts.next().ok_or(HttpError::Malformed)?.to_owned();
        let version = parts.next().ok_or(HttpError::Malformed)?;
        if !version.starts_with("HTTP/") {
            return Err(HttpError::Malformed);
        }
        if !path.starts_with('/') {
            return Err(HttpError::BadPath);
        }
        Ok(Request { method, path })
    }
}

/// A response under construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// Body bytes.
    pub body: Vec<u8>,
}

impl Response {
    /// 200 OK with a body.
    #[must_use]
    pub fn ok(body: Vec<u8>) -> Self {
        Self { status: 200, body }
    }

    /// 404 Not Found.
    #[must_use]
    pub fn not_found() -> Self {
        Self {
            status: 404,
            body: b"not found".to_vec(),
        }
    }

    /// Serialize to wire bytes.
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let reason = match self.status {
            200 => "OK",
            404 => "Not Found",
            _ => "Error",
        };
        let mut out = format!(
            "HTTP/1.0 {} {reason}\r\nContent-Length: {}\r\n\r\n",
            self.status,
            self.body.len()
        )
        .into_bytes();
        out.extend_from_slice(&self.body);
        out
    }
}

/// HTTP parse errors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HttpError {
    /// Not a valid request head.
    Malformed,
    /// The path is not absolute.
    BadPath,
}

impl fmt::Display for HttpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            HttpError::Malformed => "malformed http request",
            HttpError::BadPath => "request path must be absolute",
        })
    }
}

impl std::error::Error for HttpError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_get() {
        let raw = Request::get("/index.html");
        let req = Request::parse(&raw).unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/index.html");
    }

    #[test]
    fn rejects_malformed() {
        assert_eq!(Request::parse(""), Err(HttpError::Malformed));
        assert_eq!(Request::parse("GET"), Err(HttpError::Malformed));
        assert_eq!(Request::parse("GET /x JUNK"), Err(HttpError::Malformed));
        assert_eq!(Request::parse("GET x HTTP/1.0"), Err(HttpError::BadPath));
    }

    #[test]
    fn response_serializes_with_length() {
        let r = Response::ok(vec![b'h', b'i']);
        let bytes = r.to_bytes();
        let text = String::from_utf8_lossy(&bytes);
        assert!(text.starts_with("HTTP/1.0 200 OK"));
        assert!(text.contains("Content-Length: 2"));
        assert!(text.ends_with("hi"));
    }

    #[test]
    fn not_found_has_404() {
        assert!(String::from_utf8_lossy(&Response::not_found().to_bytes()).contains("404"));
    }
}
