//! The web-server macro-benchmark (§V-E, Fig 7).
//!
//! The paper evaluates a custom componentized web server on COMPOSITE —
//! with and without C³/SuperGlue — against Apache on Linux, measuring
//! requests/second under `ab` (50 000 requests, concurrency 10), and
//! then injects a fault into a rotating system component every 10
//! seconds to show throughput dips briefly (< 2 s) and recovers.
//!
//! This crate rebuilds that experiment on the simulated OS:
//!
//! * [`pipeline`] — the componentized server: per-connection workloads
//!   whose request path crosses *all* protected system services (session
//!   lock, request-buffer page from the MM, content read from RamFS,
//!   log event to the event manager), plus a logger thread (event wait +
//!   log write) and a periodic housekeeping timer;
//! * [`http`] — a minimal HTTP/1.0 request/response codec so the
//!   connections move real bytes end to end;
//! * [`apache`] — the monolithic comparator: the same per-request work
//!   behind a single component boundary (no interposition, no tracking);
//! * [`loadgen`] — the `ab`-style closed-loop driver (N concurrent
//!   connections, fixed request budget or fixed duration) with optional
//!   periodic fault injection into rotating services;
//! * [`throughput`] — per-second buckets of completed requests and
//!   summary statistics, the series Fig 7 plots.
//!
//! Timing is virtual: per-invocation, per-tracking and per-recovery
//! costs come from [`composite::CostModel`], calibrated (see
//! `EXPERIMENTS.md`) so the *relative* throughput of the four variants
//! reproduces the paper's ordering and gaps.

pub mod apache;
pub mod http;
pub mod loadgen;
pub mod pipeline;
pub mod throughput;

pub use loadgen::{run_fig7_rep, run_fig7_variant, Fig7Config, Fig7Result, WebVariant};
pub use throughput::ThroughputSeries;
