//! The componentized web server: connection, logger, and housekeeping
//! workloads whose request path crosses the protected system services.
//!
//! Per request, a connection thread:
//!
//! 1. takes and releases the accept/session lock (lock service);
//! 2. formats a real HTTP request, resolves it, opens the content file,
//!    reads the body, closes (RamFS — three protected invocations);
//! 3. triggers the logging event (event manager, global descriptor
//!    namespace shared with the logger's component);
//! 4. charges the application handler work and completes the response.
//!
//! Every Nth request additionally maps/unmaps a fresh request buffer
//! through the memory manager, and a logger thread in a different
//! component waits on the log event and appends to the access log, with
//! a housekeeping timer ticking via the timer manager — so all six
//! fault-injection targets sit on the hot or warm path, as the paper
//! requires ("this web server ... makes use of all system-level
//! components").

use std::cell::RefCell;
use std::rc::Rc;

use composite::{CallError, InterfaceCall, KernelAccess, SimTime, StepResult, ThreadId, Workload};
use sg_services::api::{evt, fs, lock, mman, sched, tmr, ClientEnd};

use crate::http::{Request, Response};
use crate::throughput::ThroughputSeries;

/// Shared site/session state created by the load generator at setup.
#[derive(Debug)]
pub struct Site {
    /// The accept/session lock descriptor.
    pub session_lock: i64,
    /// The log event descriptor (global).
    pub log_evt: i64,
    /// Served paths (absolute, e.g. `/index.html`) and their RamFS
    /// file names.
    pub pages: Vec<(String, String)>,
    /// Handler work charged per request.
    pub work: SimTime,
    /// Map/unmap a request buffer every this many requests (0 = never).
    pub mm_every: u32,
    /// Trigger the log event every this many requests (batched logging;
    /// 0 = never).
    pub log_every: u32,
    /// The shared throughput recorder.
    pub series: Rc<RefCell<ThroughputSeries>>,
}

/// Interface endpoints one connection uses.
#[derive(Debug, Clone, Copy)]
pub struct ConnEnds {
    /// Lock service endpoint.
    pub lock: ClientEnd,
    /// RamFS endpoint.
    pub fs: ClientEnd,
    /// Event-manager endpoint.
    pub evt: ClientEnd,
    /// Memory-manager endpoint.
    pub mm: ClientEnd,
    /// Scheduler endpoint (thread registration).
    pub sched: ClientEnd,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ConnState {
    TakeLock,
    Serve,
}

/// One closed-loop client connection.
#[derive(Debug)]
pub struct WebConnection {
    ends: ConnEnds,
    site: Rc<Site>,
    state: ConnState,
    registered: bool,
    /// Request budget; `None` = run until externally stopped.
    remaining: Option<u64>,
    served: u64,
    vaddr: u64,
}

impl WebConnection {
    /// A connection issuing up to `budget` requests (None = unbounded),
    /// using a private buffer vaddr range keyed by connection index.
    #[must_use]
    pub fn new(ends: ConnEnds, site: Rc<Site>, budget: Option<u64>, conn_index: u64) -> Self {
        Self {
            ends,
            site,
            state: ConnState::TakeLock,
            registered: false,
            remaining: budget,
            served: 0,
            vaddr: 0x100_0000 + conn_index * 0x1_0000,
        }
    }

    /// Requests completed by this connection.
    #[must_use]
    pub fn served(&self) -> u64 {
        self.served
    }

    fn serve_one<Ctx: InterfaceCall + KernelAccess>(
        &mut self,
        ctx: &mut Ctx,
    ) -> Result<(), CallError> {
        // Release the accept lock immediately (short critical section).
        lock::release(ctx, &self.ends.lock, self.site.session_lock)?;

        // Application handler work.
        ctx.kernel_mut().charge(self.site.work);

        // Pick the page round-robin, format + parse a real request.
        let (url, file) = &self.site.pages[(self.served % self.site.pages.len() as u64) as usize];
        let raw = Request::get(url);
        let parsed = Request::parse(&raw).map_err(|_| CallError::WouldBlock);
        debug_assert!(parsed.is_ok());

        // Optional request buffer through the MM.
        let mapped =
            self.site.mm_every != 0 && self.served.is_multiple_of(u64::from(self.site.mm_every));
        let mut map_key = 0;
        if mapped {
            map_key = mman::get_page(ctx, &self.ends.mm, self.vaddr)?;
        }

        // Content from RamFS.
        let fd = fs::split(ctx, &self.ends.fs, 0, file)?;
        let body = fs::read(ctx, &self.ends.fs, fd, 4096)?;
        fs::release(ctx, &self.ends.fs, fd)?;
        let resp = Response::ok(body).to_bytes();
        debug_assert!(!resp.is_empty());

        if mapped {
            mman::release_page(ctx, &self.ends.mm, map_key)?;
        }

        // Batched access logging: the log event is triggered every Nth
        // request and consumed by the logger in another component.
        if self.site.log_every != 0 && self.served.is_multiple_of(u64::from(self.site.log_every)) {
            evt::trigger(ctx, &self.ends.evt, self.site.log_evt)?;
        }

        self.served += 1;
        let now = ctx.kernel().now();
        self.site.series.borrow_mut().record(now);
        Ok(())
    }
}

impl<Ctx: InterfaceCall + KernelAccess> Workload<Ctx> for WebConnection {
    fn step(&mut self, ctx: &mut Ctx, _thread: ThreadId) -> StepResult {
        match self.state {
            ConnState::TakeLock => {
                if self.remaining == Some(0) {
                    return StepResult::Done;
                }
                if !self.registered {
                    // Register the connection thread with the scheduler
                    // once, so the scheduler holds recoverable state for
                    // this workload too.
                    match sched::setup(ctx, &self.ends.sched, _thread) {
                        Ok(_) => self.registered = true,
                        Err(CallError::WouldBlock) => return StepResult::Blocked,
                        Err(e) => return StepResult::Crashed(e.to_string()),
                    }
                    return StepResult::Yield;
                }
                match lock::take(ctx, &self.ends.lock, self.site.session_lock) {
                    Ok(()) => {
                        self.state = ConnState::Serve;
                        StepResult::Yield
                    }
                    Err(CallError::WouldBlock) => StepResult::Blocked,
                    Err(e) => StepResult::Crashed(e.to_string()),
                }
            }
            ConnState::Serve => match self.serve_one(ctx) {
                Ok(()) => {
                    if let Some(r) = &mut self.remaining {
                        *r -= 1;
                    }
                    self.state = ConnState::TakeLock;
                    StepResult::Yield
                }
                Err(CallError::WouldBlock) => StepResult::Blocked,
                Err(e) => StepResult::Crashed(e.to_string()),
            },
        }
    }
}

/// The access logger: waits on the (global) log event from a different
/// component and appends one line per wakeup to the access log.
#[derive(Debug)]
pub struct Logger {
    evt_end: ClientEnd,
    fs_end: ClientEnd,
    log_evt: i64,
    log_fd: Option<i64>,
    lines: u64,
}

impl Logger {
    /// A logger consuming `log_evt`.
    #[must_use]
    pub fn new(evt_end: ClientEnd, fs_end: ClientEnd, log_evt: i64) -> Self {
        Self {
            evt_end,
            fs_end,
            log_evt,
            log_fd: None,
            lines: 0,
        }
    }

    /// Lines written so far.
    #[must_use]
    pub fn lines(&self) -> u64 {
        self.lines
    }
}

impl<Ctx: InterfaceCall + KernelAccess> Workload<Ctx> for Logger {
    fn step(&mut self, ctx: &mut Ctx, _thread: ThreadId) -> StepResult {
        if self.log_fd.is_none() {
            match fs::split(ctx, &self.fs_end, 0, "access.log") {
                Ok(fd) => self.log_fd = Some(fd),
                Err(CallError::WouldBlock) => return StepResult::Blocked,
                Err(e) => return StepResult::Crashed(e.to_string()),
            }
            return StepResult::Yield;
        }
        match evt::wait(ctx, &self.evt_end, self.log_evt) {
            Ok(_) => {
                let fd = self.log_fd.expect("opened above");
                match fs::write(ctx, &self.fs_end, fd, b"GET 200\n".to_vec()) {
                    Ok(_) => {
                        self.lines += 1;
                        StepResult::Yield
                    }
                    Err(CallError::WouldBlock) => StepResult::Blocked,
                    Err(e) => StepResult::Crashed(e.to_string()),
                }
            }
            Err(CallError::WouldBlock) => StepResult::Blocked,
            // The event can vanish if the system is torn down mid-run.
            Err(_) => StepResult::Done,
        }
    }
}

/// Housekeeping: a periodic timer tick (connection reaping, cache
/// expiry) keeping the timer manager on the warm path.
#[derive(Debug)]
pub struct Housekeeper {
    tmr_end: ClientEnd,
    period_ns: i64,
    desc: Option<i64>,
    ticks: u64,
}

impl Housekeeper {
    /// A housekeeper ticking at the given period.
    #[must_use]
    pub fn new(tmr_end: ClientEnd, period_ns: i64) -> Self {
        Self {
            tmr_end,
            period_ns,
            desc: None,
            ticks: 0,
        }
    }

    /// Ticks elapsed.
    #[must_use]
    pub fn ticks(&self) -> u64 {
        self.ticks
    }
}

impl<Ctx: InterfaceCall + KernelAccess> Workload<Ctx> for Housekeeper {
    fn step(&mut self, ctx: &mut Ctx, _thread: ThreadId) -> StepResult {
        let desc = match self.desc {
            Some(d) => d,
            None => match tmr::create(ctx, &self.tmr_end, self.period_ns) {
                Ok(d) => {
                    self.desc = Some(d);
                    return StepResult::Yield;
                }
                Err(CallError::WouldBlock) => return StepResult::Blocked,
                Err(e) => return StepResult::Crashed(e.to_string()),
            },
        };
        match tmr::wait(ctx, &self.tmr_end, desc) {
            Ok(()) => {
                self.ticks += 1;
                StepResult::Yield
            }
            Err(CallError::WouldBlock) => StepResult::Blocked,
            Err(e) => StepResult::Crashed(e.to_string()),
        }
    }
}
