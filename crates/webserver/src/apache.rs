//! The monolithic comparator ("Apache on Linux").
//!
//! Fig 7 compares the componentized COMPOSITE server against Apache
//! 2.2.14 on Linux. Structurally, the relevant difference is that a
//! monolithic server crosses one protection boundary per request (the
//! system call) instead of one per subsystem, and pays no
//! descriptor-tracking interposition. This module models exactly that: a
//! single service component serving whole requests in one invocation,
//! with the same per-request application work.

use std::collections::BTreeMap;

use composite::{Service, ServiceCtx, ServiceError, SimTime, Value};

use crate::http::{Request, Response};

/// The monolithic web server component.
#[derive(Debug)]
pub struct ApacheService {
    site: BTreeMap<String, Vec<u8>>,
    /// Per-request handler work, charged in virtual time.
    work: SimTime,
    requests_served: u64,
}

impl ApacheService {
    /// A server with the given site content and per-request work.
    #[must_use]
    pub fn new(site: BTreeMap<String, Vec<u8>>, work: SimTime) -> Self {
        Self {
            site,
            work,
            requests_served: 0,
        }
    }

    /// Requests served so far (tests).
    #[must_use]
    pub fn requests_served(&self) -> u64 {
        self.requests_served
    }
}

impl Service for ApacheService {
    fn interface(&self) -> &'static str {
        "apache"
    }

    fn call(
        &mut self,
        ctx: &mut ServiceCtx<'_>,
        fname: &str,
        args: &[Value],
    ) -> Result<Value, ServiceError> {
        match fname {
            // handle(raw_request) -> raw_response
            "handle" => {
                let raw = args[0].str()?;
                ctx.charge(self.work);
                let resp = match Request::parse(raw) {
                    Ok(req) => match self.site.get(&req.path) {
                        Some(body) => Response::ok(body.clone()),
                        None => Response::not_found(),
                    },
                    Err(_) => Response::not_found(),
                };
                self.requests_served += 1;
                Ok(Value::from(resp.to_bytes()))
            }
            other => Err(ServiceError::NoSuchFunction(other.to_owned())),
        }
    }

    fn reset(&mut self) {
        self.requests_served = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use composite::{CostModel, Kernel, Priority};

    fn site() -> BTreeMap<String, Vec<u8>> {
        let mut m = BTreeMap::new();
        m.insert("/index.html".to_owned(), vec![b'x'; 64]);
        m
    }

    #[test]
    fn serves_known_path() {
        let mut k = Kernel::with_costs(CostModel::free());
        let app = k.add_client_component("client");
        let apache = k.add_component(
            "apache",
            Box::new(ApacheService::new(site(), SimTime::from_micros(50))),
        );
        k.grant(app, apache);
        let t = k.create_thread(app, Priority(5));
        let r = k
            .invoke(
                app,
                t,
                apache,
                "handle",
                &[Value::from(Request::get("/index.html"))],
            )
            .unwrap();
        let body = r.bytes().unwrap();
        assert!(String::from_utf8_lossy(body).starts_with("HTTP/1.0 200"));
        // Handler work advanced virtual time.
        assert!(k.now() >= SimTime::from_micros(50));
    }

    #[test]
    fn unknown_path_is_404() {
        let mut k = Kernel::with_costs(CostModel::free());
        let app = k.add_client_component("client");
        let apache = k.add_component(
            "apache",
            Box::new(ApacheService::new(site(), SimTime::ZERO)),
        );
        k.grant(app, apache);
        let t = k.create_thread(app, Priority(5));
        let r = k
            .invoke(
                app,
                t,
                apache,
                "handle",
                &[Value::from(Request::get("/nope"))],
            )
            .unwrap();
        assert!(String::from_utf8_lossy(r.bytes().unwrap()).contains("404"));
    }
}
