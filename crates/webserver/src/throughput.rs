//! Per-second throughput buckets and summary statistics (the Fig 7
//! series).

use composite::SimTime;

/// Completed-request counts in fixed-width virtual-time buckets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ThroughputSeries {
    bucket_ns: u64,
    counts: Vec<u64>,
    total: u64,
}

impl ThroughputSeries {
    /// A series with the given bucket width.
    #[must_use]
    pub fn new(bucket: SimTime) -> Self {
        assert!(bucket.as_nanos() > 0, "bucket width must be positive");
        Self {
            bucket_ns: bucket.as_nanos(),
            counts: Vec::new(),
            total: 0,
        }
    }

    /// One-second buckets (the paper's resolution).
    #[must_use]
    pub fn per_second() -> Self {
        Self::new(SimTime::from_secs(1))
    }

    /// Record a completed request at virtual time `t`.
    pub fn record(&mut self, t: SimTime) {
        let idx = (t.as_nanos() / self.bucket_ns) as usize;
        if idx >= self.counts.len() {
            self.counts.resize(idx + 1, 0);
        }
        self.counts[idx] += 1;
        self.total += 1;
    }

    /// Total completed requests.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Bucket counts (requests per bucket).
    #[must_use]
    pub fn buckets(&self) -> &[u64] {
        &self.counts
    }

    /// Mean requests/second over the closed buckets (drops a trailing
    /// partial bucket when `end` falls inside it).
    #[must_use]
    pub fn mean_rps(&self, end: SimTime) -> f64 {
        let whole = (end.as_nanos() / self.bucket_ns) as usize;
        let n = whole.min(self.counts.len());
        if n == 0 {
            return 0.0;
        }
        let sum: u64 = self.counts[..n].iter().sum();
        let per_bucket = sum as f64 / n as f64;
        per_bucket * 1e9 / self.bucket_ns as f64
    }

    /// Standard deviation of per-bucket rates over the closed buckets.
    #[must_use]
    pub fn stdev_rps(&self, end: SimTime) -> f64 {
        let whole = (end.as_nanos() / self.bucket_ns) as usize;
        let n = whole.min(self.counts.len());
        if n < 2 {
            return 0.0;
        }
        let scale = 1e9 / self.bucket_ns as f64;
        let rates: Vec<f64> = self.counts[..n].iter().map(|&c| c as f64 * scale).collect();
        let mean = rates.iter().sum::<f64>() / n as f64;
        let var = rates.iter().map(|r| (r - mean) * (r - mean)).sum::<f64>() / (n - 1) as f64;
        var.sqrt()
    }

    /// The deepest relative dip: `1 - min_bucket / mean` over closed
    /// buckets (0 when the series is flat).
    #[must_use]
    pub fn worst_dip(&self, end: SimTime) -> f64 {
        let whole = (end.as_nanos() / self.bucket_ns) as usize;
        let n = whole.min(self.counts.len());
        if n == 0 {
            return 0.0;
        }
        let mean = self.counts[..n].iter().sum::<u64>() as f64 / n as f64;
        if mean == 0.0 {
            return 0.0;
        }
        let min = self.counts[..n].iter().copied().min().unwrap_or(0) as f64;
        (1.0 - min / mean).max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_into_buckets() {
        let mut s = ThroughputSeries::per_second();
        s.record(SimTime::from_millis(100));
        s.record(SimTime::from_millis(900));
        s.record(SimTime::from_millis(1500));
        assert_eq!(s.buckets(), &[2, 1]);
        assert_eq!(s.total(), 3);
    }

    #[test]
    fn mean_ignores_partial_tail() {
        let mut s = ThroughputSeries::per_second();
        for i in 0..10 {
            s.record(SimTime::from_millis(i * 200)); // 5 in bucket 0, 5 in bucket 1
        }
        // end at 1.5s: only bucket 0 is closed.
        let m = s.mean_rps(SimTime::from_millis(1500));
        assert!((m - 5.0).abs() < 1e-9);
    }

    #[test]
    fn flat_series_has_no_dip_and_zero_stdev() {
        let mut s = ThroughputSeries::per_second();
        for sec in 0..5u64 {
            for _ in 0..10 {
                s.record(SimTime::from_millis(sec * 1000 + 10));
            }
        }
        let end = SimTime::from_secs(5);
        assert!((s.worst_dip(end)).abs() < 1e-9);
        assert!(s.stdev_rps(end).abs() < 1e-9);
    }

    #[test]
    fn dip_is_detected() {
        let mut s = ThroughputSeries::per_second();
        for sec in 0..4u64 {
            let n = if sec == 2 { 5 } else { 10 };
            for _ in 0..n {
                s.record(SimTime::from_millis(sec * 1000 + 10));
            }
        }
        let dip = s.worst_dip(SimTime::from_secs(4));
        assert!(dip > 0.3, "dip {dip}");
    }

    #[test]
    #[should_panic(expected = "bucket width")]
    fn zero_bucket_rejected() {
        let _ = ThroughputSeries::new(SimTime::ZERO);
    }
}
