//! SWIFI — software-implemented fault injection (§V-A of the paper).
//!
//! The paper injects transient faults by flipping bits in the registers
//! of threads executing inside a target system component, under a
//! fail-stop model: most activated faults raise a hardware exception
//! immediately, a few corrupt state, hang, escape as segfaults, or
//! propagate; many flips die silently when the register is overwritten
//! before being read.
//!
//! This crate reproduces that mechanistically rather than by sampling
//! outcome labels:
//!
//! * every thread carries a real (simulated) 8×32-bit register file
//!   ([`composite::RegisterFile`]) and the injector flips real bits in it
//!   ([`inject`]);
//! * every interface invocation of a target service executes a short
//!   **μ-program** ([`program`]) on a tiny register machine
//!   ([`simcpu`]): reads consume register values, writes overwrite them
//!   (killing latent taint), loads/stores/frame-ops use registers as
//!   addresses against the component's bounded memory region;
//! * the *consequence* of a flip follows from which instruction first
//!   consumes the tainted register and how far the flipped bit bends an
//!   address ([`simcpu::ExecEvent`]): out-of-region accesses raise the
//!   fail-stop exception, near misses corrupt private state (detected by
//!   the next invocation's assertions), stack-pointer corruption can
//!   escape as an unrecoverable segfault, loop-counter corruption hangs,
//!   shared-window writes propagate to the client, and unconsumed or
//!   overwritten taint is an undetected fault;
//! * [`campaign`] drives the §V-B workloads over the full SuperGlue (or
//!   C³) system, injects a configurable number of faults per service,
//!   classifies every one, and reports the Table II row.

pub mod campaign;
pub mod inject;
pub mod outcome;
pub mod pipeline;
pub mod program;
pub mod simcpu;

pub use campaign::{
    cascade_partner, merge_shards, run_campaign, run_campaign_parallel, run_shard, shard_sizes,
    try_run_campaign_parallel, CampaignConfig, CampaignMode, CampaignResult, ConfigError,
    SHARD_INJECTIONS,
};
pub use inject::Injector;
pub use outcome::{CampaignRow, Outcome};
pub use pipeline::{
    run_pipeline_campaign, run_pipeline_campaign_parallel, PipelineCampaignConfig,
    PipelineCampaignResult, PipelinePhase, ShowstopperReport,
};
pub use simcpu::{classify_execution, ExecEvent, Insn};
