//! Injection outcomes and the Table II row aggregation.

use std::fmt;

/// Final classification of one injected fault — the columns of Table II.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// Activated, detected, and the system recovered (workloads continue
    /// to meet their specifications).
    Recovered,
    /// Activated but the system exited with an unrecoverable segfault.
    Segfault,
    /// Activated and the corruption propagated to a client component.
    Propagated,
    /// Activated but not recovered for another reason (hang / latent
    /// fault / failed recovery).
    Other,
    /// Never activated (register overwritten or flip never consumed).
    Undetected,
    /// Activated and escalated: a reboot storm left the component
    /// degraded, with clients failing fast until the booter's cold
    /// restart (graceful degradation, not a recovery failure).
    Degraded,
}

impl Outcome {
    /// Whether the fault was activated (everything but undetected).
    #[must_use]
    pub fn activated(self) -> bool {
        !matches!(self, Outcome::Undetected)
    }
}

impl fmt::Display for Outcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Outcome::Recovered => "recovered",
            Outcome::Segfault => "not recovered (segfault)",
            Outcome::Propagated => "not recovered (propagated)",
            Outcome::Other => "not recovered (other reason)",
            Outcome::Undetected => "undetected",
            Outcome::Degraded => "degraded (fail-fast until cold restart)",
        })
    }
}

/// One row of Table II: the aggregated campaign result for a system
/// component.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CampaignRow {
    /// Component label ("Sched", "MM", …).
    pub component: String,
    /// Total injected faults.
    pub injected: u64,
    /// Recovered faults.
    pub recovered: u64,
    /// Unrecoverable segfaults.
    pub segfault: u64,
    /// Propagated faults.
    pub propagated: u64,
    /// Other unrecovered faults.
    pub other: u64,
    /// Undetected faults.
    pub undetected: u64,
    /// Injections that ended in graceful degradation (reboot-storm
    /// escalation marked the target degraded).
    pub degraded: u64,
    /// Injections whose fault was detected by the kernel watchdog
    /// (hung/livelocked call converted into a fail-stop fault).
    pub watchdog_detected: u64,
    /// Injections that recovered through at least one *nested* (child)
    /// recovery episode — a correlated fault landed mid-recovery.
    pub nested_recovered: u64,
}

impl CampaignRow {
    /// A row for the named component.
    #[must_use]
    pub fn new(component: &str) -> Self {
        Self {
            component: component.to_owned(),
            ..Self::default()
        }
    }

    /// Record one outcome.
    pub fn record(&mut self, outcome: Outcome) {
        self.injected += 1;
        match outcome {
            Outcome::Recovered => self.recovered += 1,
            Outcome::Segfault => self.segfault += 1,
            Outcome::Propagated => self.propagated += 1,
            Outcome::Other => self.other += 1,
            Outcome::Undetected => self.undetected += 1,
            Outcome::Degraded => self.degraded += 1,
        }
    }

    /// Merge another row's tallies into this one (used by the sharded
    /// campaign runner; addition is order-insensitive, so merging shard
    /// rows in shard order yields bit-identical totals for any thread
    /// count).
    pub fn merge(&mut self, other: &CampaignRow) {
        self.injected += other.injected;
        self.recovered += other.recovered;
        self.segfault += other.segfault;
        self.propagated += other.propagated;
        self.other += other.other;
        self.undetected += other.undetected;
        self.degraded += other.degraded;
        self.watchdog_detected += other.watchdog_detected;
        self.nested_recovered += other.nested_recovered;
    }

    /// Number of activated faults (`|F_a|`).
    #[must_use]
    pub fn activated(&self) -> u64 {
        self.injected - self.undetected
    }

    /// `|F_a| / |F_a ∪ F_u|` — the fault activation ratio.
    #[must_use]
    pub fn activation_ratio(&self) -> f64 {
        if self.injected == 0 {
            return 0.0;
        }
        self.activated() as f64 / self.injected as f64
    }

    /// `|F_r| / |F_a|` — the recovery success rate.
    #[must_use]
    pub fn success_rate(&self) -> f64 {
        let a = self.activated();
        if a == 0 {
            return 0.0;
        }
        self.recovered as f64 / a as f64
    }

    /// The Table II row as a printable line.
    #[must_use]
    pub fn table_line(&self) -> String {
        format!(
            "{:<6} {:>8} {:>9} {:>10} {:>12} {:>7} {:>10} {:>9.2}% {:>8.2}%",
            self.component,
            self.injected,
            self.recovered,
            self.segfault,
            self.propagated,
            self.other,
            self.undetected,
            self.activation_ratio() * 100.0,
            self.success_rate() * 100.0,
        )
    }

    /// The Table II header matching [`CampaignRow::table_line`].
    #[must_use]
    pub fn table_header() -> String {
        format!(
            "{:<6} {:>8} {:>9} {:>10} {:>12} {:>7} {:>10} {:>10} {:>9}",
            "Comp",
            "Injected",
            "Recovered",
            "Segfault",
            "Propagated",
            "Other",
            "Undetected",
            "Activation",
            "Success"
        )
    }

    /// The Table II-B (correlated-fault) row: the classic columns plus
    /// the degradation/watchdog/nested-recovery tallies.
    #[must_use]
    pub fn correlated_line(&self) -> String {
        format!(
            "{:<6} {:>8} {:>9} {:>10} {:>12} {:>7} {:>10} {:>8} {:>8} {:>8} {:>8.2}%",
            self.component,
            self.injected,
            self.recovered,
            self.segfault,
            self.propagated,
            self.other,
            self.undetected,
            self.degraded,
            self.watchdog_detected,
            self.nested_recovered,
            self.success_rate() * 100.0,
        )
    }

    /// The Table II-B header matching [`CampaignRow::correlated_line`].
    #[must_use]
    pub fn correlated_header() -> String {
        format!(
            "{:<6} {:>8} {:>9} {:>10} {:>12} {:>7} {:>10} {:>8} {:>8} {:>8} {:>9}",
            "Comp",
            "Injected",
            "Recovered",
            "Segfault",
            "Propagated",
            "Other",
            "Undetected",
            "Degraded",
            "Watchdog",
            "Nested",
            "Success"
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratios() {
        let mut r = CampaignRow::new("FS");
        for _ in 0..90 {
            r.record(Outcome::Recovered);
        }
        for _ in 0..5 {
            r.record(Outcome::Segfault);
        }
        for _ in 0..5 {
            r.record(Outcome::Undetected);
        }
        assert_eq!(r.injected, 100);
        assert_eq!(r.activated(), 95);
        assert!((r.activation_ratio() - 0.95).abs() < 1e-9);
        assert!((r.success_rate() - 90.0 / 95.0).abs() < 1e-9);
    }

    #[test]
    fn empty_row_has_zero_ratios() {
        let r = CampaignRow::new("X");
        assert_eq!(r.activation_ratio(), 0.0);
        assert_eq!(r.success_rate(), 0.0);
    }

    #[test]
    fn outcome_display_and_activation() {
        assert_eq!(Outcome::Recovered.to_string(), "recovered");
        assert!(Outcome::Segfault.activated());
        assert!(!Outcome::Undetected.activated());
    }

    #[test]
    fn table_line_is_aligned_with_header() {
        let r = CampaignRow::new("Lock");
        assert!(!CampaignRow::table_header().is_empty());
        assert!(r.table_line().starts_with("Lock"));
    }
}
