//! The bit-flip injector.
//!
//! §V-A: "the fault type can be defined by a 32-bit fault mask in which
//! the bits to be affected are set to 1 … a fault mask of 0xFFFFFFFF is
//! chosen and the faults are injected by iterating through all threads
//! and flipping register's bits only if they are executing within one of
//! the target server components … randomly selecting a register from
//! eight 32-bit registers … and flipping a random bit."

use composite::rng::SplitMix64;
use composite::{RegisterFile, NUM_REGISTERS};

/// Deterministic source of (register, bit) flip choices under a fault
/// mask. Draws come from the repo's [`SplitMix64`] stream, so a given
/// seed produces the same flip sequence on every platform and thread.
#[derive(Debug, Clone)]
pub struct Injector {
    rng: SplitMix64,
    mask: u32,
}

impl Injector {
    /// An injector with the paper's all-ones fault mask.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self::with_mask(seed, 0xFFFF_FFFF)
    }

    /// An injector restricted to the bits set in `mask`.
    ///
    /// # Panics
    ///
    /// Panics if `mask` is zero (no injectable bit).
    #[must_use]
    pub fn with_mask(seed: u64, mask: u32) -> Self {
        assert!(mask != 0, "fault mask must enable at least one bit");
        Self {
            rng: SplitMix64::new(seed),
            mask,
        }
    }

    /// Choose the next (register, bit) pair.
    pub fn choose(&mut self) -> (usize, u32) {
        let reg = self.rng.gen_index(NUM_REGISTERS);
        loop {
            let bit = self.rng.gen_range(32) as u32;
            if (self.mask >> bit) & 1 == 1 {
                return (reg, bit);
            }
        }
    }

    /// Flip a chosen (register, bit) in a register file; returns the
    /// choice for bookkeeping.
    pub fn inject(&mut self, regs: &mut RegisterFile) -> (usize, u32) {
        let (reg, bit) = self.choose();
        regs.flip_bit(reg, bit);
        (reg, bit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn injection_is_deterministic_per_seed() {
        let mut a = Injector::new(42);
        let mut b = Injector::new(42);
        for _ in 0..100 {
            assert_eq!(a.choose(), b.choose());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Injector::new(1);
        let mut b = Injector::new(2);
        let same = (0..50).filter(|_| a.choose() == b.choose()).count();
        assert!(same < 50);
    }

    #[test]
    fn mask_restricts_bits() {
        let mut inj = Injector::with_mask(7, 0x0000_00F0);
        for _ in 0..200 {
            let (_, bit) = inj.choose();
            assert!((4..8).contains(&bit));
        }
    }

    #[test]
    fn inject_taints_the_register_file() {
        let mut inj = Injector::new(3);
        let mut regs = RegisterFile::new();
        let (reg, _) = inj.inject(&mut regs);
        assert!(regs.read(reg).1);
    }

    #[test]
    #[should_panic(expected = "fault mask")]
    fn zero_mask_rejected() {
        let _ = Injector::with_mask(0, 0);
    }

    #[test]
    fn choices_cover_all_registers_eventually() {
        let mut inj = Injector::new(9);
        let mut seen = [false; NUM_REGISTERS];
        for _ in 0..500 {
            let (r, _) = inj.choose();
            seen[r] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
