//! The fault-injection campaign (§V-D, Table II).
//!
//! For each target service, the §V-B workload runs continuously on the
//! full assembled system while faults are injected one at a time:
//! a random bit of a random register of the thread invoking the target
//! is flipped, the invocation's μ-program consumes (or kills, or
//! ignores) the taint, and the mechanistic consequence plays out through
//! the real recovery machinery. Successful recovery is judged by the
//! paper's criterion: "continued execution that abides by the target
//! component and workload specifications post-recovery."
//!
//! The paper paces injections one per second of wall time; the
//! simulation instead separates injections by a settle window of
//! executor steps (long enough for recovery to complete and the workload
//! to demonstrate correct progress), which preserves the at-most-one-
//! live-fault property the Poisson argument of §V-A establishes.

use std::fmt;

use composite::{
    mix, parallel_map_indexed, CallError, ComponentId, EscalationPolicy, Executor, InterfaceCall,
    Kernel, KernelAccess, MetricsSnapshot, Priority, RunExit, SeriesSnapshot, SimTime, ThreadId,
    ThreadState, TraceShard, Value, DEFAULT_TRACE_CAPACITY,
};
use sg_services::api::ClientEnd;
use sg_services::workloads::{
    shared_desc, EventTrigger, EventWaiter, FsOpenWriteRead, LockContender, LockOwner,
    MmGrantAliasRevoke, SchedPingPong, TimerPeriodic,
};
use superglue::testbed::{Testbed, Variant};

use crate::inject::Injector;
use crate::outcome::{CampaignRow, Outcome};
use crate::program::program_for;
use crate::simcpu::{classify_execution, ExecEvent};

/// How faults are scheduled within a campaign: the classic one-at-a-time
/// Table II regime, or one of the correlated-fault regimes of Table II-B.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CampaignMode {
    /// One independent flip at a time, fully settled before the next
    /// (the paper's Table II regime).
    #[default]
    Single,
    /// `flips` back-to-back flips inside one settle window; each burst
    /// counts as a single injection.
    Burst {
        /// Bit flips per burst (must be nonzero).
        flips: u32,
    },
    /// Each primary flip arms a second fault in the *same* component
    /// that fires the moment its recovery begins (gated on an active
    /// recovery episode), exercising nested recovery.
    DuringRecovery,
    /// Each primary flip arms a second fault in a *different* component
    /// that fires the moment the primary's recovery begins,
    /// exercising cross-component fault cascades.
    Cascade,
}

/// A [`CampaignConfig`] that cannot produce a meaningful campaign.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum ConfigError {
    /// `injections` was zero: the campaign would inject nothing.
    ZeroInjections,
    /// `fault_mask` was zero: no bit would ever be injectable.
    ZeroFaultMask,
    /// `Burst { flips: 0 }`: a burst must contain at least one flip.
    ZeroBurst,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ConfigError::ZeroInjections => "campaign config: injections must be nonzero",
            ConfigError::ZeroFaultMask => "campaign config: fault mask must have at least one bit",
            ConfigError::ZeroBurst => "campaign config: burst mode needs at least one flip",
        })
    }
}

impl std::error::Error for ConfigError {}

/// Campaign parameters.
#[derive(Debug, Clone, Copy)]
pub struct CampaignConfig {
    /// Which protection variant to exercise.
    pub variant: Variant,
    /// Faults to inject per target component (the paper uses 500).
    pub injections: u64,
    /// RNG seed (printed by harnesses for reproducibility).
    pub seed: u64,
    /// Executor steps granted for recovery + workload progress before an
    /// activated fault is judged.
    pub settle_steps: u64,
    /// Calls a latent flip may survive unconsumed before it is declared
    /// undetected.
    pub latent_call_cap: u32,
    /// The 32-bit fault mask (§V-A): only bits set here are injectable.
    /// The paper's campaigns use `0xFFFF_FFFF`.
    pub fault_mask: u32,
    /// Record a flight-recorder trace of every shard (off by default;
    /// enabled by the harnesses' `--trace` flag).
    pub trace: bool,
    /// Windowed-telemetry window width in simulated nanoseconds; 0 (the
    /// default) disables the series. Enabled by the harnesses'
    /// `--series` flag.
    pub series_window_ns: u64,
    /// Fault-scheduling regime (single / burst / during-recovery /
    /// cascade). Non-[`CampaignMode::Single`] modes also arm the
    /// kernel's reboot-storm escalation.
    pub mode: CampaignMode,
    /// Interpret the certified-elision stub specs (`--elide`). Outcomes
    /// and traces must be byte-identical to the fully tracked run; only
    /// proven-dead bookkeeping is skipped. No-op for non-SuperGlue
    /// variants.
    pub elide: bool,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        Self {
            variant: Variant::SuperGlue,
            injections: 500,
            seed: 0xC3C3_5EED,
            settle_steps: 700,
            latent_call_cap: 48,
            fault_mask: 0xFFFF_FFFF,
            trace: false,
            series_window_ns: 0,
            mode: CampaignMode::Single,
            elide: false,
        }
    }
}

impl CampaignConfig {
    /// Reject configurations that would silently do nothing: zero
    /// injections, an empty fault mask, or an empty burst.
    ///
    /// # Errors
    ///
    /// The corresponding [`ConfigError`] variant.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.injections == 0 {
            return Err(ConfigError::ZeroInjections);
        }
        if self.fault_mask == 0 {
            return Err(ConfigError::ZeroFaultMask);
        }
        if matches!(self.mode, CampaignMode::Burst { flips: 0 }) {
            return Err(ConfigError::ZeroBurst);
        }
        Ok(())
    }
}

/// How one injection resolved inside the interposer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Classified {
    /// Outcome fully determined (no settle window needed).
    Final(Outcome),
    /// Activated and detected; judge recovery after the settle window.
    NeedsSettle,
}

/// The campaign context: the full system plus the injection interposer
/// on calls into the target component.
struct CampaignCtx {
    tb: Testbed,
    target: ComponentId,
    target_iface: &'static str,
    /// Armed flip, applied to the next thread invoking the target.
    armed: Option<(usize, u32)>,
    /// Applied flip not yet consumed: (thread, bit, calls survived).
    latent: Option<(ThreadId, u32, u32)>,
    latent_call_cap: u32,
    /// Private state corrupted; the next target invocation detects it.
    corrupt: bool,
    /// Classification of the current injection, once known.
    classified: Option<Classified>,
    /// A segfault/propagation took the whole system down.
    system_down: bool,
    /// Correlated-fault victim: armed as a during-recovery fault every
    /// time the primary injection faults the target (`DuringRecovery`
    /// arms the target itself; `Cascade` arms a second component).
    recovery_victim: Option<ComponentId>,
}

impl KernelAccess for CampaignCtx {
    fn kernel(&self) -> &Kernel {
        self.tb.runtime.kernel()
    }
    fn kernel_mut(&mut self) -> &mut Kernel {
        self.tb.runtime.kernel_mut()
    }
}

impl InterfaceCall for CampaignCtx {
    fn interface_call(
        &mut self,
        client: ComponentId,
        thread: ThreadId,
        server: ComponentId,
        fname: &str,
        args: &[Value],
    ) -> Result<Value, CallError> {
        if self.system_down {
            return Err(CallError::Fault { component: server });
        }
        if server == self.target {
            // Deferred assertion: corrupted private state is detected by
            // the next invocation's consistency checks (fail-stop).
            if self.corrupt {
                self.corrupt = false;
                self.tb.runtime.inject_fault(server);
                self.arm_correlated();
            }
            // Apply an armed flip to the invoking thread's registers.
            if let Some((reg, bit)) = self.armed.take() {
                if let Ok(th) = self.tb.runtime.kernel_mut().thread_mut(thread) {
                    th.registers.flip_bit(reg, bit);
                }
                self.latent = Some((thread, bit, 0));
            }
            // Execute the invocation's μ-program against the thread's
            // registers, consuming live taint mechanistically.
            if let Some((t, bit, calls)) = self.latent {
                if t == thread {
                    let program = program_for(self.target_iface);
                    let ev = {
                        let th = self
                            .tb
                            .runtime
                            .kernel_mut()
                            .thread_mut(thread)
                            .expect("workload thread exists");
                        classify_execution(&mut th.registers, program, bit)
                    };
                    match ev {
                        ExecEvent::Latent => {
                            if calls + 1 >= self.latent_call_cap {
                                self.clear_taint(t);
                                self.classified = Some(Classified::Final(Outcome::Undetected));
                            } else {
                                self.latent = Some((t, bit, calls + 1));
                            }
                        }
                        ExecEvent::Overwritten => {
                            self.latent = None;
                            self.classified = Some(Classified::Final(Outcome::Undetected));
                        }
                        ExecEvent::ValueCorruption | ExecEvent::WildAccess => {
                            self.clear_taint(t);
                            self.corrupt = true;
                            self.classified = Some(Classified::NeedsSettle);
                        }
                        ExecEvent::AccessException => {
                            self.clear_taint(t);
                            self.tb.runtime.inject_fault(server);
                            self.arm_correlated();
                            self.classified = Some(Classified::NeedsSettle);
                        }
                        ExecEvent::Propagation => {
                            self.clear_taint(t);
                            self.system_down = true;
                            self.classified = Some(Classified::Final(Outcome::Propagated));
                            return Err(CallError::Fault { component: server });
                        }
                        ExecEvent::StackSegfault => {
                            self.clear_taint(t);
                            self.system_down = true;
                            self.classified = Some(Classified::Final(Outcome::Segfault));
                            return Err(CallError::Fault { component: server });
                        }
                        ExecEvent::Hang => {
                            // Loop-counter corruption livelocks the call.
                            // The kernel watchdog detects the hang and
                            // converts it into a fail-stop fault, after
                            // which the ordinary recovery machinery (and
                            // the settle-window judgment) runs.
                            self.clear_taint(t);
                            self.tb.runtime.kernel_mut().watchdog_expire(server, thread);
                            self.arm_correlated();
                            self.classified = Some(Classified::NeedsSettle);
                        }
                    }
                }
            }
        }
        self.tb
            .runtime
            .interface_call(client, thread, server, fname, args)
    }
}

impl CampaignCtx {
    fn clear_taint(&mut self, t: ThreadId) {
        self.latent = None;
        if let Ok(th) = self.tb.runtime.kernel_mut().thread_mut(t) {
            th.registers.clear_taint();
        }
    }

    /// Arm the correlated second fault (if this campaign mode has one)
    /// so it fires the moment the primary fault's recovery begins.
    fn arm_correlated(&mut self) {
        if let Some(v) = self.recovery_victim {
            self.tb.runtime.kernel_mut().arm_fault_during_recovery(v);
        }
    }
}

/// The per-target workload rig: threads + attached §V-B workloads.
fn attach_target_workload(
    tb: &mut Testbed,
    ex: &mut Executor<CampaignCtx>,
    iface: &'static str,
) -> Vec<ThreadId> {
    const ROUNDS: u32 = u32::MAX / 2;
    let ids = tb.ids;
    match iface {
        "sched" => {
            let t1 = tb.spawn_thread(ids.app1, Priority(5));
            let t2 = tb.spawn_thread(ids.app1, Priority(5));
            ex.attach(
                t1,
                Box::new(SchedPingPong::new(
                    ClientEnd::new(ids.app1, t1, ids.sched),
                    t2,
                    ROUNDS,
                    true,
                )),
            );
            ex.attach(
                t2,
                Box::new(SchedPingPong::new(
                    ClientEnd::new(ids.app1, t2, ids.sched),
                    t1,
                    ROUNDS,
                    false,
                )),
            );
            vec![t1, t2]
        }
        "lock" => {
            let t1 = tb.spawn_thread(ids.app1, Priority(5));
            let t2 = tb.spawn_thread(ids.app1, Priority(5));
            let shared = shared_desc();
            ex.attach(
                t1,
                Box::new(LockOwner::new(
                    ClientEnd::new(ids.app1, t1, ids.lock),
                    shared.clone(),
                    ROUNDS,
                    1,
                )),
            );
            ex.attach(
                t2,
                Box::new(LockContender::new(
                    ClientEnd::new(ids.app1, t2, ids.lock),
                    shared,
                    ROUNDS,
                )),
            );
            vec![t1, t2]
        }
        "evt" => {
            let t1 = tb.spawn_thread(ids.app1, Priority(5));
            let t2 = tb.spawn_thread(ids.app2, Priority(5));
            let shared = shared_desc();
            ex.attach(
                t1,
                Box::new(EventWaiter::new(
                    ClientEnd::new(ids.app1, t1, ids.evt),
                    shared.clone(),
                    ROUNDS,
                )),
            );
            ex.attach(
                t2,
                Box::new(EventTrigger::new(
                    ClientEnd::new(ids.app2, t2, ids.evt),
                    shared,
                    ROUNDS,
                )),
            );
            vec![t1, t2]
        }
        "tmr" => {
            let t = tb.spawn_thread(ids.app1, Priority(5));
            ex.attach(
                t,
                Box::new(TimerPeriodic::new(
                    ClientEnd::new(ids.app1, t, ids.tmr),
                    50_000,
                    ROUNDS,
                )),
            );
            vec![t]
        }
        "mm" => {
            let t = tb.spawn_thread(ids.app1, Priority(5));
            ex.attach(
                t,
                Box::new(MmGrantAliasRevoke::new(
                    ClientEnd::new(ids.app1, t, ids.mm),
                    ids.app2,
                    ROUNDS,
                )),
            );
            vec![t]
        }
        "fs" => {
            let t = tb.spawn_thread(ids.app1, Priority(5));
            ex.attach(
                t,
                Box::new(FsOpenWriteRead::new(
                    ClientEnd::new(ids.app1, t, ids.fs),
                    ROUNDS,
                )),
            );
            vec![t]
        }
        other => panic!("unknown campaign target {other:?}"),
    }
}

fn target_component(tb: &Testbed, iface: &str) -> ComponentId {
    match iface {
        "sched" => tb.ids.sched,
        "mm" => tb.ids.mm,
        "fs" => tb.ids.fs,
        "lock" => tb.ids.lock,
        "evt" => tb.ids.evt,
        "tmr" => tb.ids.tmr,
        other => panic!("unknown campaign target {other:?}"),
    }
}

/// The paper's row label for an interface.
#[must_use]
pub fn row_label(iface: &str) -> &'static str {
    match iface {
        "sched" => "Sched",
        "mm" => "MM",
        "fs" => "FS",
        "lock" => "Lock",
        "evt" => "Event",
        "tmr" => "Timer",
        _ => "?",
    }
}

/// Injections per shard of a sharded campaign. The shard plan is a
/// function of the configured injection count **only** — never of the
/// worker-thread count — so the injection streams (and therefore the
/// merged tallies) are bit-identical for any `--jobs` value.
pub const SHARD_INJECTIONS: u64 = 25;

/// The shard plan for a campaign of `injections` faults: each entry is
/// one shard's injection quota.
#[must_use]
pub fn shard_sizes(injections: u64) -> Vec<u64> {
    let full = injections / SHARD_INJECTIONS;
    let rem = injections % SHARD_INJECTIONS;
    let mut sizes = vec![SHARD_INJECTIONS; full as usize];
    if rem > 0 {
        sizes.push(rem);
    }
    sizes
}

/// One shard's (or one merged campaign's) result: the Table II tallies
/// plus the recovery-observability metrics accumulated across every
/// machine (re)boot the shard performed.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CampaignResult {
    pub row: CampaignRow,
    pub metrics: MetricsSnapshot,
    /// Flight-recorder shards (one per campaign shard, in shard order;
    /// empty unless [`CampaignConfig::trace`] is set).
    pub trace: Vec<TraceShard>,
    /// Windowed telemetry accumulated across every machine (re)boot the
    /// shard performed (empty unless
    /// [`CampaignConfig::series_window_ns`] is nonzero).
    pub series: SeriesSnapshot,
}

/// Run one shard of the campaign against `iface`.
///
/// The shard's injector stream is seeded `mix(seed ^ fxhash(iface),
/// shard)` — the `hash(campaign_seed, shard_index)` derivation — so the
/// shard never observes which worker ran it or what ran before it.
///
/// # Panics
///
/// Panics if `iface` is not one of the six target interfaces or the
/// testbed fails to build (shipped IDL is validated by tests).
#[must_use]
pub fn run_shard(iface: &'static str, cfg: &CampaignConfig, shard: usize) -> CampaignResult {
    cfg.validate().expect("campaign config is valid");
    let quota = *shard_sizes(cfg.injections)
        .get(shard)
        .expect("shard index within plan");
    let mut row = CampaignRow::new(row_label(iface));
    let mut metrics = MetricsSnapshot::default();
    let mut series = SeriesSnapshot::default();
    let vname = match cfg.variant {
        Variant::SuperGlue => "superglue",
        Variant::C3 => "c3",
        Variant::Bare => "bare",
    };
    let mut trace = TraceShard::labeled(&format!("table2/{iface}/{vname}/shard{shard}"));
    let mut injector =
        Injector::with_mask(mix(cfg.seed ^ fxhash(iface), shard as u64), cfg.fault_mask);

    'reboot: while row.injected < quota {
        // (Re)boot the machine: fresh system + workloads.
        let mut tb = Testbed::build_elided(cfg.variant, cfg.elide).expect("testbed builds");
        if cfg.trace {
            tb.runtime
                .kernel_mut()
                .enable_tracing(DEFAULT_TRACE_CAPACITY);
        }
        if cfg.series_window_ns > 0 {
            tb.runtime
                .kernel_mut()
                .enable_telemetry(SimTime(cfg.series_window_ns));
        }
        if cfg.mode != CampaignMode::Single {
            // Correlated regimes also arm reboot-storm escalation so
            // repeated reboots degrade gracefully instead of thrashing.
            tb.runtime
                .kernel_mut()
                .set_escalation(EscalationPolicy::storm_defaults());
        }
        let target = target_component(&tb, iface);
        let recovery_victim = match cfg.mode {
            CampaignMode::DuringRecovery => Some(target),
            CampaignMode::Cascade => Some(target_component(&tb, cascade_partner(iface))),
            CampaignMode::Single | CampaignMode::Burst { .. } => None,
        };
        let mut ctx = CampaignCtx {
            tb,
            target,
            target_iface: iface,
            armed: None,
            latent: None,
            latent_call_cap: cfg.latent_call_cap,
            corrupt: false,
            classified: None,
            system_down: false,
            recovery_victim,
        };
        let mut ex: Executor<CampaignCtx> = Executor::new();
        let threads = attach_target_workload(&mut ctx.tb, &mut ex, iface);

        // Warm up so descriptors exist before the first injection.
        ex.run(&mut ctx, 40);

        while row.injected < quota {
            let flips = match cfg.mode {
                CampaignMode::Burst { flips } => flips,
                _ => 1,
            };
            let wd_before = ctx.kernel().stats().total_watchdog_fires();
            let nested_before = ctx.kernel().stats().total_nested_faults()
                + ctx.tb.runtime.stats().nested_recoveries;
            let mut needs_settle = false;
            let mut finals: Option<Outcome> = None;
            let mut wedged = false;

            // Arm the injection's flip(s) and run until each classifies.
            // A burst arms its flips back to back, all inside the one
            // settle window that follows.
            'flips: for _ in 0..flips {
                ctx.classified = None;
                ctx.armed = Some(injector.choose());
                let mut windows = 0;
                while ctx.classified.is_none() {
                    let exit = ex.run(&mut ctx, 64);
                    windows += 1;
                    if ctx.classified.is_some() {
                        break;
                    }
                    if exit != RunExit::StepLimit || windows > 4_000 {
                        // Workloads ended or wedged before the flip
                        // resolved: treat an armed-but-unapplied flip as
                        // undetected and reboot.
                        wedged = true;
                        break 'flips;
                    }
                }
                match ctx.classified.take() {
                    Some(Classified::Final(o)) => {
                        finals = Some(merge_outcomes(finals, o));
                        if ctx.system_down {
                            break 'flips;
                        }
                    }
                    Some(Classified::NeedsSettle) => needs_settle = true,
                    None => {}
                }
            }

            let outcome = if wedged {
                // The workloads stopped before the flip(s) resolved.
                // Under the correlated regimes that usually means the
                // target went degraded and clients failed fast; judge
                // that as graceful degradation, an activated fault that
                // reached the settle machinery as a recovery failure,
                // and only a genuinely unapplied flip as undetected.
                if ctx.kernel().is_degraded(target) {
                    Outcome::Degraded
                } else if needs_settle || finals.is_some() {
                    Outcome::Other
                } else {
                    Outcome::Undetected
                }
            } else if ctx.system_down {
                finals.expect("system-down implies a final classification")
            } else if needs_settle {
                let before_unrecovered = ctx.tb.runtime.stats().unrecovered;
                ex.run(&mut ctx, cfg.settle_steps);
                let crashed = threads.iter().any(|&t| {
                    ctx.tb.runtime.kernel().thread(t).map(|th| th.state) == Ok(ThreadState::Crashed)
                });
                if ctx.kernel().is_degraded(target) {
                    Outcome::Degraded
                } else if crashed || ctx.tb.runtime.stats().unrecovered > before_unrecovered {
                    Outcome::Other
                } else {
                    Outcome::Recovered
                }
            } else {
                finals.unwrap_or(Outcome::Undetected)
            };
            // An armed correlated fault whose trigger never came dies
            // with its injection.
            ctx.kernel_mut().disarm_recovery_fault();
            row.record(outcome);
            if ctx.kernel().stats().total_watchdog_fires() > wd_before {
                row.watchdog_detected += 1;
            }
            let nested_now = ctx.kernel().stats().total_nested_faults()
                + ctx.tb.runtime.stats().nested_recoveries;
            if nested_now > nested_before && outcome == Outcome::Recovered {
                row.nested_recovered += 1;
            }
            if wedged || ctx.system_down || matches!(outcome, Outcome::Other | Outcome::Degraded) {
                // Segfault/propagation, failed recovery, or a degraded
                // target: the paper reboots the machine before
                // continuing (degradation awaits the booter's cold
                // restart, which the fresh boot embodies).
                metrics.merge(&MetricsSnapshot::from_kernel(ctx.tb.runtime.kernel()));
                series.merge(&SeriesSnapshot::from_kernel(ctx.tb.runtime.kernel()));
                drain_trace(&mut trace, &mut ctx);
                continue 'reboot;
            }
        }
        metrics.merge(&MetricsSnapshot::from_kernel(ctx.tb.runtime.kernel()));
        series.merge(&SeriesSnapshot::from_kernel(ctx.tb.runtime.kernel()));
        drain_trace(&mut trace, &mut ctx);
        break;
    }
    let trace = if cfg.trace { vec![trace] } else { Vec::new() };
    CampaignResult {
        row,
        metrics,
        trace,
        series,
    }
}

/// Fold one machine boot's flight-recorder buffer into the shard's
/// trace, renumbering spans so episodes from successive reboots stay
/// distinct. A no-op when tracing is disabled.
fn drain_trace(trace: &mut TraceShard, ctx: &mut CampaignCtx) {
    let kernel = ctx.tb.runtime.kernel_mut();
    if kernel.tracing_enabled() {
        let label = trace.label.clone();
        trace.absorb(kernel.take_trace(&label));
    }
}

/// The second component a [`CampaignMode::Cascade`] campaign faults:
/// deterministically the next protected service after the target.
#[must_use]
pub fn cascade_partner(iface: &str) -> &'static str {
    const TARGETS: [&str; 6] = ["sched", "mm", "fs", "lock", "evt", "tmr"];
    let i = TARGETS.iter().position(|&t| t == iface).unwrap_or(0);
    TARGETS[(i + 1) % TARGETS.len()]
}

/// Fold one flip's final classification into the burst's: the most
/// severe classification wins.
fn merge_outcomes(acc: Option<Outcome>, next: Outcome) -> Outcome {
    fn rank(o: Outcome) -> u8 {
        match o {
            Outcome::Segfault => 5,
            Outcome::Propagated => 4,
            Outcome::Other => 3,
            Outcome::Degraded => 2,
            Outcome::Recovered => 1,
            Outcome::Undetected => 0,
        }
    }
    match acc {
        Some(a) if rank(a) >= rank(next) => a,
        _ => next,
    }
}

/// Run the full campaign against one target service, sharded across up
/// to `jobs` worker threads. Shard results are merged in shard-index
/// order, so the output is bit-identical for every `jobs >= 1`.
///
/// # Panics
///
/// As for [`run_shard`].
#[must_use]
pub fn run_campaign_parallel(
    iface: &'static str,
    cfg: &CampaignConfig,
    jobs: usize,
) -> CampaignResult {
    let shards = shard_sizes(cfg.injections).len();
    let results = parallel_map_indexed(shards, jobs, |i| run_shard(iface, cfg, i));
    merge_shards(iface, results.iter())
}

/// [`run_campaign_parallel`] with the configuration validated up front.
///
/// # Errors
///
/// [`ConfigError`] when the configuration would silently do nothing
/// (zero injections, empty fault mask, empty burst).
pub fn try_run_campaign_parallel(
    iface: &'static str,
    cfg: &CampaignConfig,
    jobs: usize,
) -> Result<CampaignResult, ConfigError> {
    cfg.validate()?;
    Ok(run_campaign_parallel(iface, cfg, jobs))
}

/// Merge shard results (in the given order) into one campaign result.
pub fn merge_shards<'a>(
    iface: &str,
    shards: impl Iterator<Item = &'a CampaignResult>,
) -> CampaignResult {
    let mut out = CampaignResult {
        row: CampaignRow::new(row_label(iface)),
        metrics: MetricsSnapshot::default(),
        trace: Vec::new(),
        series: SeriesSnapshot::default(),
    };
    for s in shards {
        out.row.merge(&s.row);
        out.metrics.merge(&s.metrics);
        out.trace.extend(s.trace.iter().cloned());
        out.series.merge(&s.series);
    }
    out
}

/// Run the fault-injection campaign against one target service on the
/// calling thread. Equivalent to [`run_campaign_parallel`] with
/// `jobs = 1`, kept as the simple entry point for tests and examples.
///
/// # Panics
///
/// As for [`run_shard`].
#[must_use]
pub fn run_campaign(iface: &'static str, cfg: &CampaignConfig) -> CampaignRow {
    run_campaign_parallel(iface, cfg, 1).row
}

fn fxhash(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_cfg(variant: Variant) -> CampaignConfig {
        CampaignConfig {
            variant,
            injections: 60,
            seed: 7,
            ..CampaignConfig::default()
        }
    }

    #[test]
    fn lock_campaign_mostly_recovers_under_superglue() {
        let row = run_campaign("lock", &quick_cfg(Variant::SuperGlue));
        assert_eq!(row.injected, 60);
        assert!(
            row.activation_ratio() > 0.7,
            "activation {:.2}",
            row.activation_ratio()
        );
        assert!(
            row.success_rate() > 0.7,
            "success {:.2} ({row:?})",
            row.success_rate()
        );
    }

    #[test]
    fn sched_campaign_has_segfaults() {
        let row = run_campaign("sched", &quick_cfg(Variant::SuperGlue));
        assert!(
            row.segfault > 0,
            "sched is the segfault-heavy target: {row:?}"
        );
    }

    #[test]
    fn fs_campaign_recovers_under_c3_too() {
        let row = run_campaign("fs", &quick_cfg(Variant::C3));
        assert_eq!(row.injected, 60);
        assert!(row.success_rate() > 0.6, "{row:?}");
    }

    #[test]
    fn campaigns_are_deterministic() {
        let a = run_campaign("tmr", &quick_cfg(Variant::SuperGlue));
        let b = run_campaign("tmr", &quick_cfg(Variant::SuperGlue));
        assert_eq!(a, b);
    }

    #[test]
    fn mm_and_evt_campaigns_run() {
        for iface in ["mm", "evt"] {
            let row = run_campaign(iface, &quick_cfg(Variant::SuperGlue));
            assert_eq!(row.injected, 60, "{iface}");
            assert!(row.recovered > 0, "{iface}: {row:?}");
        }
    }
}
