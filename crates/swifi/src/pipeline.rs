//! The pipeline fault-injection campaign (the streaming macro-benchmark
//! counterpart of Table II).
//!
//! Where the classic campaign flips register bits inside request/response
//! services, the pipeline campaign aims faults at the *channel* layer of
//! the Generator → Worker → Logger pipeline, timed to land in the
//! windows the peek-before-commit protocol must survive:
//!
//! * **mid-peek** — the channel faults while a consumer's `chan_peek`
//!   is in flight: a message has been handed out but no cursor moved;
//! * **pre-commit** — the channel faults on the consumer's
//!   `chan_commit`, after the message was processed but before the
//!   cursor advance lands: the classic duplicate-risk window;
//! * **during-recovery** — a second fault fires the moment the first
//!   fault's recovery begins, exercising nested channel recovery.
//!
//! Recovery is judged by the pipeline's own specification: the
//! committed-output log of the faulted run must be **byte-identical** to
//! the closed-form fault-free log (no loss, no duplication), with zero
//! unrecovered faults. A *showstopper sub-campaign* additionally poisons
//! every `poison_every`-th job and proves dead-letter routing caps the
//! reboot count at exactly `poison_limit` micro-reboots per poisoned
//! message — escalation instead of a reboot storm.
//!
//! Every campaign unit (phase × repetition, plus each showstopper
//! repetition) is an independent deterministic run, merged in unit
//! order, so the rows are bit-identical for any `--jobs` worker count.

use composite::{
    mix, parallel_map_indexed, CallError, ComponentId, Executor, InterfaceCall, Kernel,
    KernelAccess, Mechanism, MetricsSnapshot, RunExit, SeriesSnapshot, SimTime, ThreadId,
    TraceShard, Value,
};
use sg_pipeline::{build_pipeline, expected_output, PipelineConfig, PipelineVariant};

use crate::outcome::{CampaignRow, Outcome};

/// The injection window a pipeline campaign phase targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PipelinePhase {
    /// Fault the channel while a `chan_peek` is in flight.
    MidPeek,
    /// Fault the channel on a `chan_commit`, before the cursor lands.
    PreCommit,
    /// Fault on a peek *and* arm a second fault that fires the moment
    /// the first fault's recovery begins (nested recovery).
    DuringRecovery,
}

impl PipelinePhase {
    /// All phases, in row order.
    pub const ALL: [PipelinePhase; 3] = [
        PipelinePhase::MidPeek,
        PipelinePhase::PreCommit,
        PipelinePhase::DuringRecovery,
    ];

    /// The row label.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            PipelinePhase::MidPeek => "Peek",
            PipelinePhase::PreCommit => "Commit",
            PipelinePhase::DuringRecovery => "Nested",
        }
    }

    /// The channel function whose Nth arrival triggers the injection.
    fn trigger_fn(self) -> &'static str {
        match self {
            PipelinePhase::MidPeek | PipelinePhase::DuringRecovery => "chan_peek",
            PipelinePhase::PreCommit => "chan_commit",
        }
    }
}

/// Pipeline campaign parameters.
#[derive(Debug, Clone, Copy)]
pub struct PipelineCampaignConfig {
    /// Injections per phase (one per repetition).
    pub injections: u64,
    /// Showstopper repetitions (each a full poisoned pipeline run).
    pub showstoppers: u64,
    /// Every `poison_every`-th job of a showstopper run is poisoned.
    pub poison_every: u64,
    /// Campaign seed: derives each unit's injection trigger point.
    pub seed: u64,
    /// The per-repetition pipeline (jobs, capacity, dead-letter K, …).
    /// `poison_every`/`trace`/`series_window` are overridden per unit.
    pub pipeline: PipelineConfig,
    /// Record a flight-recorder trace of every unit.
    pub trace: bool,
    /// Windowed-telemetry window width in simulated nanoseconds
    /// (0 = off).
    pub series_window_ns: u64,
}

impl Default for PipelineCampaignConfig {
    fn default() -> Self {
        Self {
            injections: 12,
            showstoppers: 4,
            poison_every: 40,
            seed: 0x51BE_11AE,
            pipeline: PipelineConfig {
                jobs: 160,
                duration: SimTime::from_secs(30),
                ..PipelineConfig::default()
            },
            trace: false,
            series_window_ns: 0,
        }
    }
}

/// The showstopper sub-campaign's verdict: dead-letter routing must cap
/// the reboot count at exactly `poison_limit` micro-reboots per
/// poisoned message.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ShowstopperReport {
    /// Table II-style tallies (label `DeadLtr`); a repetition counts as
    /// recovered only when every poisoned job dead-lettered, every
    /// clean job was delivered exactly once, and the reboot count hit
    /// the cap exactly.
    pub row: CampaignRow,
    /// Messages routed to the dead-letter queue across all repetitions.
    pub dead_letters: u64,
    /// Micro-reboots the poisoned messages actually caused.
    pub reboots: u64,
    /// The cap: `Σ poison_count × poison_limit` over the repetitions.
    pub reboot_cap: u64,
}

impl ShowstopperReport {
    /// One-line rendering of the reboot-cap proof.
    #[must_use]
    pub fn summary_line(&self) -> String {
        format!(
            "showstoppers: {} dead-lettered, {} reboots (cap {}) — {}",
            self.dead_letters,
            self.reboots,
            self.reboot_cap,
            if self.reboots == self.reboot_cap && self.row.recovered == self.row.injected {
                "dead-letter escalation capped the reboot count"
            } else {
                "CAP VIOLATED"
            }
        )
    }
}

/// The merged pipeline campaign result.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PipelineCampaignResult {
    /// One row per [`PipelinePhase`], in [`PipelinePhase::ALL`] order.
    pub phases: Vec<CampaignRow>,
    /// The showstopper sub-campaign verdict.
    pub showstopper: ShowstopperReport,
    /// Recovery-observability counters merged across every unit.
    pub metrics: MetricsSnapshot,
    /// Windowed telemetry merged across every unit (empty unless
    /// [`PipelineCampaignConfig::series_window_ns`] is nonzero).
    pub series: SeriesSnapshot,
    /// Flight-recorder shards, one per unit in unit order (empty unless
    /// [`PipelineCampaignConfig::trace`] is set).
    pub trace: Vec<TraceShard>,
}

/// One campaign unit's result (internal).
#[derive(Debug, Clone)]
struct UnitResult {
    outcome: Outcome,
    nested: bool,
    dead_letters: u64,
    reboots: u64,
    reboot_cap: u64,
    metrics: MetricsSnapshot,
    series: SeriesSnapshot,
    trace: Option<TraceShard>,
}

/// The injecting interposer: delegates every call to the real runtime,
/// and on the `trigger_at`-th arrival of `trigger_fn` at the target
/// channel injects the fault (plus, for the nested phase, arms a second
/// fault gated on the recovery episode that follows).
struct PipelineCtx {
    runtime: sg_c3::FtRuntime,
    target: ComponentId,
    trigger_fn: &'static str,
    trigger_at: u64,
    seen: u64,
    nested: bool,
    injected: bool,
}

impl KernelAccess for PipelineCtx {
    fn kernel(&self) -> &Kernel {
        self.runtime.kernel()
    }
    fn kernel_mut(&mut self) -> &mut Kernel {
        self.runtime.kernel_mut()
    }
}

impl InterfaceCall for PipelineCtx {
    fn interface_call(
        &mut self,
        client: ComponentId,
        thread: ThreadId,
        server: ComponentId,
        fname: &str,
        args: &[Value],
    ) -> Result<Value, CallError> {
        if !self.injected && server == self.target && fname == self.trigger_fn {
            self.seen += 1;
            if self.seen >= self.trigger_at {
                self.injected = true;
                self.runtime.inject_fault(self.target);
                if self.nested {
                    self.runtime
                        .kernel_mut()
                        .arm_fault_during_recovery(self.target);
                }
            }
        }
        self.runtime
            .interface_call(client, thread, server, fname, args)
    }
}

/// Run one phase injection: a fault timed to the unit's trigger call,
/// judged against the closed-form expected output.
fn run_phase_unit(phase: PipelinePhase, cfg: &PipelineCampaignConfig, rep: u64) -> UnitResult {
    let mut pcfg = cfg.pipeline;
    pcfg.poison_every = 0;
    pcfg.trace = cfg.trace;
    pcfg.series_window = SimTime(cfg.series_window_ns);

    let bed = build_pipeline(PipelineVariant::SuperGlue { faults: false }, &pcfg);
    let mut ex: Executor<PipelineCtx> = Executor::new();
    bed.attach_stages(&mut ex, &pcfg);
    // Alternate the target between the two channels; land the trigger
    // somewhere in the first half of the stream, varied per repetition.
    let target = bed.rotation()[(rep % 2) as usize];
    let phase_salt = fxhash(phase.label());
    let trigger = 1 + mix(cfg.seed ^ phase_salt, rep) % (pcfg.jobs / 2).max(1);
    let output = bed.output.clone();
    let mut ctx = PipelineCtx {
        runtime: bed.runtime,
        target,
        trigger_fn: phase.trigger_fn(),
        trigger_at: trigger,
        seen: 0,
        nested: phase == PipelinePhase::DuringRecovery,
        injected: false,
    };

    while ctx.kernel().now() < pcfg.duration {
        if ex.run(&mut ctx, 256) != RunExit::StepLimit {
            break;
        }
    }
    // An armed nested fault whose recovery never began dies with the
    // unit.
    ctx.kernel_mut().disarm_recovery_fault();

    let nested =
        ctx.kernel().stats().total_nested_faults() + ctx.runtime.stats().nested_recoveries > 0;
    let unrecovered = ctx.runtime.stats().unrecovered;
    let metrics = MetricsSnapshot::from_kernel(ctx.runtime.kernel());
    let series = SeriesSnapshot::from_kernel(ctx.runtime.kernel());
    let trace = take_unit_trace(
        &mut ctx.runtime,
        &format!("pipeline-campaign/{}/rep{rep}", phase.label()),
    );
    drop(ex);
    let out = output.borrow().clone();

    let outcome = if !ctx.injected {
        Outcome::Undetected
    } else if unrecovered == 0 && out == expected_output(&pcfg) {
        Outcome::Recovered
    } else {
        Outcome::Other
    };
    UnitResult {
        outcome,
        nested,
        dead_letters: 0,
        reboots: 0,
        reboot_cap: 0,
        metrics,
        series,
        trace,
    }
}

/// Run one showstopper repetition: a poisoned pipeline with no injected
/// faults — every fault is raised by the poisoned messages themselves —
/// judged on exact dead-letter routing and the reboot cap.
fn run_showstopper_unit(cfg: &PipelineCampaignConfig, rep: u64) -> UnitResult {
    let mut pcfg = cfg.pipeline;
    // Repetitions differ in stream length (and therefore in poison
    // placement), not just in label.
    pcfg.jobs += rep * 23;
    pcfg.poison_every = cfg.poison_every.max(2);
    pcfg.trace = cfg.trace;
    pcfg.series_window = SimTime(cfg.series_window_ns);

    let bed = build_pipeline(PipelineVariant::SuperGlue { faults: false }, &pcfg);
    let mut ex: Executor<PipelineCtx> = Executor::new();
    bed.attach_stages(&mut ex, &pcfg);
    let output = bed.output.clone();
    let target = bed.chan_ab;
    let mut ctx = PipelineCtx {
        runtime: bed.runtime,
        target,
        trigger_fn: "chan_noop",
        trigger_at: u64::MAX,
        seen: 0,
        nested: false,
        injected: true, // no interposed injection: poison does the faulting
    };

    while ctx.kernel().now() < pcfg.duration {
        if ex.run(&mut ctx, 256) != RunExit::StepLimit {
            break;
        }
    }

    let metrics = MetricsSnapshot::from_kernel(ctx.runtime.kernel());
    let series = SeriesSnapshot::from_kernel(ctx.runtime.kernel());
    let trace = take_unit_trace(
        &mut ctx.runtime,
        &format!("pipeline-campaign/DeadLtr/rep{rep}"),
    );
    let dead_letters = metrics.mechanism_total(Mechanism::Dl0);
    let reboots = ctx.runtime.stats().faults_handled;
    let reboot_cap = pcfg.poison_count() * pcfg.poison_limit;
    let unrecovered = ctx.runtime.stats().unrecovered;
    drop(ex);
    let out = output.borrow().clone();

    let outcome = if unrecovered == 0
        && dead_letters == pcfg.poison_count()
        && reboots == reboot_cap
        && out == expected_output(&pcfg)
    {
        Outcome::Recovered
    } else {
        Outcome::Other
    };
    UnitResult {
        outcome,
        nested: false,
        dead_letters,
        reboots,
        reboot_cap,
        metrics,
        series,
        trace,
    }
}

fn take_unit_trace(runtime: &mut sg_c3::FtRuntime, label: &str) -> Option<TraceShard> {
    if runtime.kernel().tracing_enabled() {
        let mut shard = TraceShard::labeled(label);
        shard.absorb(runtime.kernel_mut().take_trace(label));
        Some(shard)
    } else {
        None
    }
}

/// Run the full pipeline campaign, sharded across up to `jobs` worker
/// threads. Units are merged in unit order, so the result is
/// bit-identical for every `jobs >= 1`.
#[must_use]
pub fn run_pipeline_campaign_parallel(
    cfg: &PipelineCampaignConfig,
    jobs: usize,
) -> PipelineCampaignResult {
    let per_phase = cfg.injections as usize;
    let phase_units = PipelinePhase::ALL.len() * per_phase;
    let total = phase_units + cfg.showstoppers as usize;
    let units = parallel_map_indexed(total, jobs, |i| {
        if i < phase_units {
            run_phase_unit(
                PipelinePhase::ALL[i / per_phase],
                cfg,
                (i % per_phase) as u64,
            )
        } else {
            run_showstopper_unit(cfg, (i - phase_units) as u64)
        }
    });

    let mut out = PipelineCampaignResult::default();
    for phase in PipelinePhase::ALL {
        out.phases.push(CampaignRow::new(phase.label()));
    }
    out.showstopper.row = CampaignRow::new("DeadLtr");
    for (i, u) in units.iter().enumerate() {
        if i < phase_units {
            let row = &mut out.phases[i / per_phase];
            row.record(u.outcome);
            if u.nested && u.outcome == Outcome::Recovered {
                row.nested_recovered += 1;
            }
        } else {
            out.showstopper.row.record(u.outcome);
            out.showstopper.dead_letters += u.dead_letters;
            out.showstopper.reboots += u.reboots;
            out.showstopper.reboot_cap += u.reboot_cap;
        }
        out.metrics.merge(&u.metrics);
        out.series.merge(&u.series);
        out.trace.extend(u.trace.iter().cloned());
    }
    out
}

/// [`run_pipeline_campaign_parallel`] on the calling thread.
#[must_use]
pub fn run_pipeline_campaign(cfg: &PipelineCampaignConfig) -> PipelineCampaignResult {
    run_pipeline_campaign_parallel(cfg, 1)
}

fn fxhash(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_cfg() -> PipelineCampaignConfig {
        PipelineCampaignConfig {
            injections: 4,
            showstoppers: 2,
            seed: 11,
            pipeline: PipelineConfig {
                jobs: 120,
                duration: SimTime::from_secs(30),
                ..PipelineConfig::default()
            },
            ..PipelineCampaignConfig::default()
        }
    }

    #[test]
    fn every_phase_injection_recovers_exactly_once() {
        let r = run_pipeline_campaign(&quick_cfg());
        for row in &r.phases {
            assert_eq!(row.injected, 4, "{row:?}");
            assert_eq!(
                row.recovered, row.injected,
                "every channel fault must recover with byte-identical output: {row:?}"
            );
        }
    }

    #[test]
    fn during_recovery_phase_exercises_nested_recovery() {
        let r = run_pipeline_campaign(&quick_cfg());
        let nested = &r.phases[2];
        assert_eq!(nested.component, "Nested");
        assert!(
            nested.nested_recovered > 0,
            "the armed second fault must land mid-recovery: {nested:?}"
        );
    }

    #[test]
    fn showstoppers_cap_reboots_at_k_per_poisoned_message() {
        let r = run_pipeline_campaign(&quick_cfg());
        let s = &r.showstopper;
        assert_eq!(s.row.recovered, s.row.injected, "{s:?}");
        assert!(s.dead_letters > 0, "{s:?}");
        assert_eq!(
            s.reboots, s.reboot_cap,
            "dead-letter escalation must cap reboots at K per poison: {s:?}"
        );
    }

    #[test]
    fn campaign_is_deterministic_for_any_job_count() {
        let cfg = quick_cfg();
        let a = run_pipeline_campaign_parallel(&cfg, 1);
        let b = run_pipeline_campaign_parallel(&cfg, 4);
        assert_eq!(a, b);
    }
}
