//! Per-service μ-programs.
//!
//! Each service's interface functions execute a short register program
//! whose instruction mix reflects the character of the real code: the
//! scheduler is frame-heavy (context-switch paths manipulate both ESP
//! and EBP, so stack corruption escapes most often there — matching the
//! paper's observation that **Sched** has the most segfault crashes);
//! the memory manager walks mapping trees (pointer loads plus an
//! unmasked loop); the filesystem masks its loop bound (buffer sizes are
//! range-checked) and copies through pointers; lock and event are short
//! pointer-chasing paths; the timer is mostly arithmetic on masked
//! values.
//!
//! Register conventions: 0=EAX 1=EBX 2=ECX 3=EDX 4=ESI 5=EDI 6=ESP 7=EBP.

use crate::simcpu::Insn;

/// EAX. First argument / return value.
pub const EAX: usize = 0;
/// EBX. Second argument.
pub const EBX: usize = 1;
/// ECX. Loop counter.
pub const ECX: usize = 2;
/// EDX. Third argument / scratch.
pub const EDX: usize = 3;
/// ESI. Source pointer.
pub const ESI: usize = 4;
/// EDI. Destination pointer.
pub const EDI: usize = 5;
/// ESP. Stack pointer.
pub const ESP: usize = 6;
/// EBP. Frame pointer.
pub const EBP: usize = 7;

/// The μ-program run by every invocation of the given interface.
/// Unknown interfaces get a generic program.
#[must_use]
pub fn program_for(iface: &str) -> &'static [Insn] {
    match iface {
        // Scheduler: deep frame manipulation on both stack registers
        // (context-switch paths), run-queue pointer walks, an unmasked
        // loop over the run queue.
        "sched" => &[
            Insn::FrameOp(ESP),
            Insn::FrameOp(EBP),
            Insn::ReadVal(EAX),
            Insn::ReadVal(EBX),
            Insn::LoadFrom(ESI),
            Insn::StoreTo(EDI),
            Insn::LoopBound(ECX),
            Insn::AndImm(EDX, 0x0fff_ffff),
            Insn::ReadVal(EDX),
            Insn::FrameOp(ESP),
            Insn::WriteVal(EAX),
        ],
        // Memory manager: mapping-tree pointer chasing, a child-list
        // store, an unmasked loop, range-checked flags, one frame op.
        "mm" => &[
            Insn::ReadVal(EAX),
            Insn::ReadVal(EBX),
            Insn::LoadFrom(ESI),
            Insn::StoreTo(EDI),
            Insn::LoopBound(ECX),
            Insn::AndImm(EDX, 0xffff),
            Insn::ReadVal(EDX),
            Insn::FrameOp(EBP),
            Insn::ReadVal(ESP),
        ],
        // Filesystem: masked block loop (sizes are range-checked),
        // buffer copies through both pointers, light frame use.
        "fs" => &[
            Insn::ReadVal(EAX),
            Insn::ReadVal(EBX),
            Insn::AndImm(ECX, 0x7fff),
            Insn::LoopBound(ECX),
            Insn::LoadFrom(ESI),
            Insn::StoreTo(EDI),
            Insn::ReadVal(EDX),
            Insn::FrameOp(EBP),
            Insn::ReadVal(ESP),
            Insn::WriteVal(EAX),
        ],
        // Lock: short critical-section path — owner checks, one
        // wait-queue store, a masked flags word, one frame op.
        "lock" => &[
            Insn::ReadVal(EAX),
            Insn::ReadVal(EBX),
            Insn::LoadFrom(ESI),
            Insn::StoreTo(EDI),
            Insn::AndImm(EDX, 0xffff),
            Insn::ReadVal(EDX),
            Insn::ReadVal(ECX),
            Insn::FrameOp(EBP),
            Insn::ReadVal(ESP),
        ],
        // Event: id hashing (values), a masked group loop, waiter-list
        // pointer walk, one frame op.
        "evt" => &[
            Insn::ReadVal(EAX),
            Insn::ReadVal(EBX),
            Insn::AndImm(ECX, 0x0003_ffff),
            Insn::LoopBound(ECX),
            Insn::LoadFrom(ESI),
            Insn::StoreTo(EDI),
            Insn::ReadVal(EDX),
            Insn::FrameOp(EBP),
            Insn::ReadVal(ESP),
        ],
        // Timer: deadline arithmetic on a masked value, a wheel-slot
        // store, one frame op.
        "tmr" => &[
            Insn::ReadVal(EAX),
            Insn::ReadVal(EBX),
            Insn::AndImm(EDX, 0x00ff_ffff),
            Insn::ReadVal(EDX),
            Insn::LoadFrom(ESI),
            Insn::StoreTo(EDI),
            Insn::ReadVal(ECX),
            Insn::FrameOp(EBP),
            Insn::ReadVal(ESP),
            Insn::WriteVal(EAX),
        ],
        _ => &[
            Insn::ReadVal(EAX),
            Insn::ReadVal(EBX),
            Insn::LoadFrom(ESI),
            Insn::StoreTo(EDI),
            Insn::ReadVal(ECX),
            Insn::ReadVal(EDX),
            Insn::FrameOp(EBP),
            Insn::ReadVal(ESP),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use composite::NUM_REGISTERS;

    const IFACES: [&str; 6] = ["sched", "mm", "fs", "lock", "evt", "tmr"];

    #[test]
    fn every_interface_has_a_program() {
        for i in IFACES {
            assert!(!program_for(i).is_empty());
        }
        assert!(!program_for("unknown").is_empty());
    }

    #[test]
    fn programs_reference_valid_registers() {
        for i in IFACES {
            for insn in program_for(i) {
                assert!(insn.reg() < NUM_REGISTERS);
            }
        }
    }

    #[test]
    fn sched_is_the_most_frame_heavy() {
        let frames = |i: &str| {
            program_for(i)
                .iter()
                .filter(|x| matches!(x, Insn::FrameOp(_)))
                .count()
        };
        for other in ["mm", "fs", "lock", "evt", "tmr"] {
            assert!(
                frames("sched") > frames(other),
                "sched must out-frame {other}"
            );
        }
    }

    #[test]
    fn most_registers_are_read_before_written() {
        // High fault-activation ratios (93–98% in Table II) require that
        // live registers dominate: at most one register per program is
        // overwritten before any read.
        for i in IFACES {
            let mut seen_read = [false; NUM_REGISTERS];
            let mut dead = 0;
            for insn in program_for(i) {
                let r = insn.reg();
                match insn {
                    Insn::WriteVal(_) if !seen_read[r] => dead += 1,
                    _ => seen_read[r] = true,
                }
            }
            assert!(dead <= 1, "{i}: too many dead registers ({dead})");
        }
    }
}
