//! A tiny register machine giving bit flips mechanistic consequences.
//!
//! Instructions operate on the thread's [`RegisterFile`] (8 × 32-bit,
//! EAX…EDI + ESP/EBP). Register *reads* consume taint; register *writes*
//! overwrite it (the paper's "a flipped register can be overwritten
//! before it is read and those are undetected faults"). Address-forming
//! reads are classified by how far the flipped bit displaces the access
//! relative to the component's memory region.

use composite::{RegisterFile, NUM_REGISTERS};

/// Log2 of the component memory-region size (32 KiB): a displaced access
/// whose flip bit is below this stays inside the region.
pub const REGION_BITS: u32 = 15;

/// Bits `[SHARED_WINDOW_LO, REGION_BITS)` displace a store into the
/// shared interface window at the top of the region — the one spot where
/// corruption escapes to the client (fault propagation).
pub const SHARED_WINDOW_LO: u32 = 14;

/// Frame-op displacement at or above this bit trashes the stack beyond
/// the exception handler's reach — the unrecoverable segfault.
pub const STACK_FATAL_BIT: u32 = 17;

/// A loop counter whose flipped bit is at or above this runs the
/// component past its watchdog budget — a hang (latent fault). Budgets
/// are generous (the paper observes hangs in well under 1% of
/// injections), so only flips in the topmost bits run away far enough.
pub const HANG_BIT: u32 = 30;

/// μ-program instructions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Insn {
    /// Read a register as a data value (arithmetic, comparisons).
    ReadVal(usize),
    /// Overwrite a register with a clean value (argument load, scratch).
    WriteVal(usize),
    /// Mask a register with an immediate; a flip in a masked-off bit is
    /// neutralized.
    AndImm(usize, u32),
    /// Use a register as an address and load through it.
    LoadFrom(usize),
    /// Use a register as an address and store through it.
    StoreTo(usize),
    /// Use a register as a stack/frame pointer (push/pop/leave/ret).
    FrameOp(usize),
    /// Use a register as a loop bound (dec-and-branch).
    LoopBound(usize),
}

impl Insn {
    /// The register this instruction touches.
    #[must_use]
    pub fn reg(self) -> usize {
        match self {
            Insn::ReadVal(r)
            | Insn::WriteVal(r)
            | Insn::AndImm(r, _)
            | Insn::LoadFrom(r)
            | Insn::StoreTo(r)
            | Insn::FrameOp(r)
            | Insn::LoopBound(r) => r,
        }
    }
}

/// What one μ-program execution did with the (single) live taint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecEvent {
    /// No tainted register was touched: the flip stays latent in the
    /// register file (it may be consumed by a later invocation).
    Latent,
    /// The tainted register was overwritten (or the flipped bit masked
    /// off) before any read: the fault is undetected.
    Overwritten,
    /// A data-value read consumed the taint: private state is now
    /// corrupt; the *next* invocation's assertions detect it
    /// (fail-stop, recoverable).
    ValueCorruption,
    /// An address-forming read went outside the memory region: an
    /// immediate hardware exception (fail-stop, recoverable).
    AccessException,
    /// An in-region wild access corrupted private state (detected by the
    /// next invocation's assertions; recoverable).
    WildAccess,
    /// A wild store landed in the shared interface window: the
    /// corruption propagates to the client (unrecoverable).
    Propagation,
    /// A frame op through a badly bent stack pointer: unrecoverable
    /// segfault (the exception path itself is trashed).
    StackSegfault,
    /// A loop counter ran away: the component hangs (latent fault,
    /// "not recovered (other reason)").
    Hang,
}

impl ExecEvent {
    /// Whether this event ends the classification of one injection.
    #[must_use]
    pub fn is_terminal(self) -> bool {
        !matches!(self, ExecEvent::Latent)
    }
}

/// Run a μ-program against the thread's registers, classifying the fate
/// of the given flip (register index, bit index). Writes performed by
/// the program clear taint in the register file, so repeated executions
/// across invocations behave exactly like real code re-using registers.
///
/// # Panics
///
/// Panics if the program references a register index `>=`
/// [`NUM_REGISTERS`].
#[must_use]
pub fn classify_execution(regs: &mut RegisterFile, program: &[Insn], flip_bit: u32) -> ExecEvent {
    for &insn in program {
        let r = insn.reg();
        assert!(r < NUM_REGISTERS, "register index out of range");
        let (_, tainted) = regs.read(r);
        match insn {
            Insn::WriteVal(_) => {
                // Overwrite with a clean (deterministic) value.
                let overwrote_taint = tainted;
                regs.write(r, 0);
                if overwrote_taint {
                    return ExecEvent::Overwritten;
                }
            }
            Insn::AndImm(_, mask) => {
                if tainted && (mask >> flip_bit) & 1 == 0 {
                    // The flipped bit is masked off: neutralized.
                    let (v, _) = regs.read(r);
                    regs.write(r, v & mask);
                    return ExecEvent::Overwritten;
                }
                if tainted {
                    // Masked value still carries the flip: a data read.
                    return ExecEvent::ValueCorruption;
                }
            }
            Insn::ReadVal(_) => {
                if tainted {
                    return ExecEvent::ValueCorruption;
                }
            }
            Insn::LoadFrom(_) | Insn::StoreTo(_) => {
                if tainted {
                    if flip_bit >= REGION_BITS {
                        return ExecEvent::AccessException;
                    }
                    if matches!(insn, Insn::StoreTo(_)) && flip_bit >= SHARED_WINDOW_LO {
                        return ExecEvent::Propagation;
                    }
                    return ExecEvent::WildAccess;
                }
            }
            Insn::FrameOp(_) => {
                if tainted {
                    if flip_bit >= STACK_FATAL_BIT {
                        return ExecEvent::StackSegfault;
                    }
                    return ExecEvent::AccessException;
                }
            }
            Insn::LoopBound(_) => {
                if tainted {
                    if flip_bit >= HANG_BIT {
                        return ExecEvent::Hang;
                    }
                    return ExecEvent::ValueCorruption;
                }
            }
        }
    }
    ExecEvent::Latent
}

#[cfg(test)]
mod tests {
    use super::*;

    fn regs_with_flip(reg: usize, bit: u32) -> RegisterFile {
        let mut r = RegisterFile::new();
        r.flip_bit(reg, bit);
        r
    }

    #[test]
    fn untouched_taint_stays_latent() {
        let mut r = regs_with_flip(3, 5);
        let ev = classify_execution(&mut r, &[Insn::ReadVal(0), Insn::WriteVal(1)], 5);
        assert_eq!(ev, ExecEvent::Latent);
        assert!(r.any_tainted());
    }

    #[test]
    fn write_before_read_is_undetected() {
        let mut r = regs_with_flip(0, 5);
        let ev = classify_execution(&mut r, &[Insn::WriteVal(0), Insn::ReadVal(0)], 5);
        assert_eq!(ev, ExecEvent::Overwritten);
        assert!(!r.any_tainted());
    }

    #[test]
    fn value_read_corrupts_state() {
        let mut r = regs_with_flip(0, 5);
        let ev = classify_execution(&mut r, &[Insn::ReadVal(0)], 5);
        assert_eq!(ev, ExecEvent::ValueCorruption);
    }

    #[test]
    fn high_bit_address_use_raises_exception() {
        let mut r = regs_with_flip(4, 20);
        let ev = classify_execution(&mut r, &[Insn::LoadFrom(4)], 20);
        assert_eq!(ev, ExecEvent::AccessException);
    }

    #[test]
    fn low_bit_address_use_wild_access() {
        let mut r = regs_with_flip(4, 3);
        let ev = classify_execution(&mut r, &[Insn::LoadFrom(4)], 3);
        assert_eq!(ev, ExecEvent::WildAccess);
    }

    #[test]
    fn shared_window_store_propagates() {
        let bit = SHARED_WINDOW_LO; // in [SHARED_WINDOW_LO, REGION_BITS)
        assert!(bit < REGION_BITS);
        let mut r = regs_with_flip(5, bit);
        let ev = classify_execution(&mut r, &[Insn::StoreTo(5)], bit);
        assert_eq!(ev, ExecEvent::Propagation);
        // Loads at the same displacement merely read garbage.
        let mut r = regs_with_flip(5, bit);
        let ev = classify_execution(&mut r, &[Insn::LoadFrom(5)], bit);
        assert_eq!(ev, ExecEvent::WildAccess);
    }

    #[test]
    fn stack_corruption_classifies_by_bit() {
        let mut r = regs_with_flip(6, STACK_FATAL_BIT);
        let ev = classify_execution(&mut r, &[Insn::FrameOp(6)], STACK_FATAL_BIT);
        assert_eq!(ev, ExecEvent::StackSegfault);
        let mut r = regs_with_flip(6, 4);
        let ev = classify_execution(&mut r, &[Insn::FrameOp(6)], 4);
        assert_eq!(ev, ExecEvent::AccessException);
    }

    #[test]
    fn loop_counter_runaway_hangs() {
        let mut r = regs_with_flip(2, 31);
        let ev = classify_execution(&mut r, &[Insn::LoopBound(2)], 31);
        assert_eq!(ev, ExecEvent::Hang);
        let mut r = regs_with_flip(2, 2);
        let ev = classify_execution(&mut r, &[Insn::LoopBound(2)], 2);
        assert_eq!(ev, ExecEvent::ValueCorruption);
    }

    #[test]
    fn mask_neutralizes_high_flips() {
        let mut r = regs_with_flip(2, 20);
        let ev = classify_execution(&mut r, &[Insn::AndImm(2, 0xff), Insn::LoopBound(2)], 20);
        assert_eq!(ev, ExecEvent::Overwritten);
        // A flip inside the mask is consumed as a value.
        let mut r = regs_with_flip(2, 3);
        let ev = classify_execution(&mut r, &[Insn::AndImm(2, 0xff), Insn::LoopBound(2)], 3);
        assert_eq!(ev, ExecEvent::ValueCorruption);
    }

    #[test]
    fn terminality() {
        assert!(!ExecEvent::Latent.is_terminal());
        assert!(ExecEvent::Overwritten.is_terminal());
        assert!(ExecEvent::StackSegfault.is_terminal());
    }
}
