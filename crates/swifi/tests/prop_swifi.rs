//! Property tests for the SWIFI machinery: classification is total,
//! deterministic, consumes each flip at most once, and campaign rows
//! always balance. The (interface, register, bit) domain is small
//! (6×8×32), so the former random sampling is replaced by exhaustive
//! enumeration; the row-balance property draws random outcome sequences
//! from the repo's seeded generator.

use composite::rng::{mix, SplitMix64};
use composite::{RegisterFile, NUM_REGISTERS};
use sg_swifi::outcome::{CampaignRow, Outcome};
use sg_swifi::program::program_for;
use sg_swifi::simcpu::{classify_execution, ExecEvent};

const IFACES: [&str; 6] = ["sched", "mm", "fs", "lock", "evt", "tmr"];

fn each_case(mut f: impl FnMut(&'static str, usize, u32)) {
    for iface in IFACES {
        for reg in 0..NUM_REGISTERS {
            for bit in 0..32 {
                f(iface, reg, bit);
            }
        }
    }
}

/// Every (interface, register, bit) classifies without panicking, and a
/// terminal event always clears or terminalizes the taint.
#[test]
fn classification_is_total() {
    each_case(|iface, reg, bit| {
        let mut regs = RegisterFile::new();
        regs.flip_bit(reg, bit);
        let ev = classify_execution(&mut regs, program_for(iface), bit);
        match ev {
            ExecEvent::Latent => {
                assert!(
                    regs.any_tainted(),
                    "{iface}/{reg}/{bit}: latent keeps the taint"
                );
            }
            ExecEvent::Overwritten => {
                assert!(
                    !regs.any_tainted(),
                    "{iface}/{reg}/{bit}: overwrite clears the taint"
                );
            }
            // Consuming events leave the register file's taint to the
            // campaign layer (which clears it explicitly).
            _ => {}
        }
    });
}

/// Classification is deterministic.
#[test]
fn classification_is_deterministic() {
    each_case(|iface, reg, bit| {
        let run = || {
            let mut regs = RegisterFile::new();
            regs.flip_bit(reg, bit);
            classify_execution(&mut regs, program_for(iface), bit)
        };
        assert_eq!(run(), run(), "{iface}/{reg}/{bit}");
    });
}

/// A clean register file never produces an event: the μ-programs are
/// fault-free on untainted state.
#[test]
fn clean_registers_never_classify() {
    for iface in IFACES {
        let mut regs = RegisterFile::new();
        let ev = classify_execution(&mut regs, program_for(iface), 0);
        assert_eq!(ev, ExecEvent::Latent, "{iface}");
        assert!(!regs.any_tainted(), "{iface}");
    }
}

/// Repeated executions eventually resolve every flip: no (register, bit)
/// stays latent forever on any interface whose program touches all
/// registers.
#[test]
fn taint_resolves_within_two_runs() {
    each_case(|iface, reg, bit| {
        let mut regs = RegisterFile::new();
        regs.flip_bit(reg, bit);
        let first = classify_execution(&mut regs, program_for(iface), bit);
        if first == ExecEvent::Latent {
            let second = classify_execution(&mut regs, program_for(iface), bit);
            assert_ne!(
                second,
                ExecEvent::Latent,
                "{iface} must consume a flip in reg {reg} within two runs"
            );
        }
    });
}

/// Campaign rows always balance: injected = sum of outcome buckets, and
/// the derived ratios stay in [0, 1].
#[test]
fn campaign_rows_balance() {
    for case in 0..64 {
        let mut rng = SplitMix64::new(mix(0x5171_F100, case));
        let mut row = CampaignRow::new("X");
        for _ in 0..rng.gen_index(300) {
            row.record(match rng.gen_range(5) {
                0 => Outcome::Recovered,
                1 => Outcome::Segfault,
                2 => Outcome::Propagated,
                3 => Outcome::Other,
                _ => Outcome::Undetected,
            });
        }
        assert_eq!(
            row.injected,
            row.recovered + row.segfault + row.propagated + row.other + row.undetected
        );
        assert!((0.0..=1.0).contains(&row.activation_ratio()));
        assert!((0.0..=1.0).contains(&row.success_rate()));
        assert_eq!(row.activated(), row.injected - row.undetected);
    }
}

/// Merging shard rows reproduces the whole: splitting any outcome
/// sequence at any point and merging the two partial rows equals the
/// row recorded in one pass.
#[test]
fn shard_merge_equals_single_pass() {
    let mut rng = SplitMix64::new(0xD15C_04D5);
    let outcomes: Vec<Outcome> = (0..200)
        .map(|_| match rng.gen_range(5) {
            0 => Outcome::Recovered,
            1 => Outcome::Segfault,
            2 => Outcome::Propagated,
            3 => Outcome::Other,
            _ => Outcome::Undetected,
        })
        .collect();
    let mut whole = CampaignRow::new("X");
    for &o in &outcomes {
        whole.record(o);
    }
    for split in [0, 1, 57, 199, 200] {
        let (a, b) = outcomes.split_at(split);
        let mut left = CampaignRow::new("X");
        let mut right = CampaignRow::new("X");
        a.iter().for_each(|&o| left.record(o));
        b.iter().for_each(|&o| right.record(o));
        left.merge(&right);
        assert_eq!(left, whole, "split at {split}");
    }
}
