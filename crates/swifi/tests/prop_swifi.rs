//! Property tests for the SWIFI machinery: classification is total,
//! deterministic, consumes each flip at most once, and campaign rows
//! always balance.

use proptest::prelude::*;

use composite::{RegisterFile, NUM_REGISTERS};
use sg_swifi::outcome::{CampaignRow, Outcome};
use sg_swifi::program::program_for;
use sg_swifi::simcpu::{classify_execution, ExecEvent};

const IFACES: [&str; 6] = ["sched", "mm", "fs", "lock", "evt", "tmr"];

proptest! {
    /// Every (interface, register, bit) classifies without panicking,
    /// and a terminal event always clears or terminalizes the taint.
    #[test]
    fn classification_is_total(
        iface_idx in 0usize..6,
        reg in 0usize..NUM_REGISTERS,
        bit in 0u32..32,
    ) {
        let iface = IFACES[iface_idx];
        let mut regs = RegisterFile::new();
        regs.flip_bit(reg, bit);
        let ev = classify_execution(&mut regs, program_for(iface), bit);
        match ev {
            ExecEvent::Latent => prop_assert!(regs.any_tainted(), "latent keeps the taint"),
            ExecEvent::Overwritten => {
                prop_assert!(!regs.any_tainted(), "overwrite clears the taint");
            }
            // Consuming events leave the register file's taint to the
            // campaign layer (which clears it explicitly).
            _ => {}
        }
    }

    /// Classification is deterministic.
    #[test]
    fn classification_is_deterministic(
        iface_idx in 0usize..6,
        reg in 0usize..NUM_REGISTERS,
        bit in 0u32..32,
    ) {
        let iface = IFACES[iface_idx];
        let run = || {
            let mut regs = RegisterFile::new();
            regs.flip_bit(reg, bit);
            classify_execution(&mut regs, program_for(iface), bit)
        };
        prop_assert_eq!(run(), run());
    }

    /// A clean register file never produces an event: the μ-programs are
    /// fault-free on untainted state.
    #[test]
    fn clean_registers_never_classify(iface_idx in 0usize..6) {
        let mut regs = RegisterFile::new();
        let ev = classify_execution(&mut regs, program_for(IFACES[iface_idx]), 0);
        prop_assert_eq!(ev, ExecEvent::Latent);
        prop_assert!(!regs.any_tainted());
    }

    /// Repeated executions eventually resolve every flip: no
    /// (register, bit) stays latent forever on any interface whose
    /// program touches all registers.
    #[test]
    fn taint_resolves_within_two_runs(
        iface_idx in 0usize..6,
        reg in 0usize..NUM_REGISTERS,
        bit in 0u32..32,
    ) {
        let iface = IFACES[iface_idx];
        let mut regs = RegisterFile::new();
        regs.flip_bit(reg, bit);
        let first = classify_execution(&mut regs, program_for(iface), bit);
        if first == ExecEvent::Latent {
            let second = classify_execution(&mut regs, program_for(iface), bit);
            prop_assert_ne!(
                second,
                ExecEvent::Latent,
                "{} must consume a flip in reg {} within two runs",
                iface,
                reg
            );
        }
    }

    /// Campaign rows always balance: injected = sum of outcome buckets,
    /// and the derived ratios stay in [0, 1].
    #[test]
    fn campaign_rows_balance(outcomes in proptest::collection::vec(0u8..5, 0..300)) {
        let mut row = CampaignRow::new("X");
        for o in &outcomes {
            row.record(match o {
                0 => Outcome::Recovered,
                1 => Outcome::Segfault,
                2 => Outcome::Propagated,
                3 => Outcome::Other,
                _ => Outcome::Undetected,
            });
        }
        prop_assert_eq!(
            row.injected,
            row.recovered + row.segfault + row.propagated + row.other + row.undetected
        );
        prop_assert!((0.0..=1.0).contains(&row.activation_ratio()));
        prop_assert!((0.0..=1.0).contains(&row.success_rate()));
        prop_assert_eq!(row.activated(), row.injected - row.undetected);
    }
}
