//! The elision differential: SWIFI campaigns run with the certified
//! tracking-elision stubs (`--elide`) must be **byte-identical** to the
//! fully tracked runs — same outcome rows, same per-mechanism metrics,
//! same flight-recorder traces. The SG060–SG065 certificates prove each
//! skipped write is never read; this suite checks the proof against the
//! complete fault-injection campaign machinery, including correlated
//! regimes.

use composite::shards_to_jsonl;
use sg_swifi::{merge_shards, run_shard, shard_sizes, CampaignConfig, CampaignMode};

const IFACES: [&str; 6] = ["sched", "mm", "fs", "lock", "evt", "tmr"];

/// Everything observable about one service's campaign, rendered to
/// comparable bytes: the Table II row, the mechanism counters, and the
/// flight-recorder trace.
fn campaign_bytes(iface: &'static str, elide: bool, mode: CampaignMode) -> String {
    let cfg = CampaignConfig {
        injections: 40,
        trace: true,
        mode,
        elide,
        ..CampaignConfig::default()
    };
    let shards: Vec<_> = (0..shard_sizes(cfg.injections).len())
        .map(|s| run_shard(iface, &cfg, s))
        .collect();
    let r = merge_shards(iface, shards.iter());
    format!(
        "{}\n{}{}",
        r.row.table_line(),
        r.metrics.to_json_lines(&format!("elide-diff/{iface}")),
        shards_to_jsonl(&r.trace)
    )
}

#[test]
fn single_fault_campaigns_are_byte_identical_with_elision() {
    for iface in IFACES {
        let tracked = campaign_bytes(iface, false, CampaignMode::Single);
        let elided = campaign_bytes(iface, true, CampaignMode::Single);
        assert!(
            tracked == elided,
            "{iface}: elided campaign diverged from fully tracked\n\
             first differing line: {:?}",
            tracked
                .lines()
                .zip(elided.lines())
                .find(|(a, b)| a != b)
                .map(|(a, b)| format!("tracked {a:?} vs elided {b:?}"))
        );
    }
}

#[test]
fn correlated_fault_campaigns_are_byte_identical_with_elision() {
    // The nastiest regimes for stale tracking state: faults landing
    // mid-recovery and cascading across services. One service per
    // regime keeps the suite fast; the modelck ElideDiffWalk covers the
    // randomized cross-product.
    for (iface, mode) in [
        ("lock", CampaignMode::Burst { flips: 3 }),
        ("sched", CampaignMode::DuringRecovery),
        ("evt", CampaignMode::Cascade),
    ] {
        let tracked = campaign_bytes(iface, false, mode);
        let elided = campaign_bytes(iface, true, mode);
        assert!(
            tracked == elided,
            "{iface}/{mode:?}: elided campaign diverged from fully tracked\n\
             first differing line: {:?}",
            tracked
                .lines()
                .zip(elided.lines())
                .find(|(a, b)| a != b)
                .map(|(a, b)| format!("tracked {a:?} vs elided {b:?}"))
        );
    }
}
