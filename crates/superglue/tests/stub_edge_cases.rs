//! Edge cases of the generic compiled stub that the happy-path testbed
//! tests do not reach: unknown functions, invalid transitions counted as
//! detections, storage-less configurations, retry exhaustion, and stub
//! introspection.

use std::sync::Arc;

use composite::{
    CallError, ComponentId, CostModel, InterfaceCall as _, Kernel, KernelAccess as _, Priority,
    ServiceError, ThreadId, Value,
};
use sg_c3::{FtRuntime, RuntimeConfig};
use superglue::testbed::{Testbed, Variant};
use superglue::CompiledStub;

fn superglue_testbed() -> (Testbed, ThreadId) {
    let mut tb = Testbed::build(Variant::SuperGlue).expect("testbed builds");
    let t = tb.spawn_thread(tb.ids.app1, Priority(5));
    (tb, t)
}

#[test]
fn unknown_function_passes_through_with_fault_handling() {
    let (mut tb, t) = superglue_testbed();
    let (app, lock) = (tb.ids.app1, tb.ids.lock);
    // `lock_query` is not in the IDL: the stub passes it through and the
    // server rejects it.
    let err = tb
        .runtime
        .interface_call(app, t, lock, "lock_query", &[])
        .unwrap_err();
    assert!(matches!(
        err,
        CallError::Service(ServiceError::NoSuchFunction(_))
    ));
    // Same while the server is faulty: the pass-through reboots first.
    tb.runtime.inject_fault(lock);
    let err = tb
        .runtime
        .interface_call(app, t, lock, "lock_query", &[])
        .unwrap_err();
    assert!(matches!(
        err,
        CallError::Service(ServiceError::NoSuchFunction(_))
    ));
    assert!(
        !tb.runtime.kernel().is_faulty(lock),
        "pass-through must have rebooted"
    );
}

#[test]
fn invalid_transitions_are_counted_as_detections() {
    let (mut tb, t) = superglue_testbed();
    let (app, lock) = (tb.ids.app1, tb.ids.lock);
    let id = tb
        .runtime
        .interface_call(app, t, lock, "lock_alloc", &[Value::Int(1)])
        .unwrap()
        .int()
        .unwrap();
    // Releasing a never-taken lock is an invalid σ branch; the service
    // also rejects it, so only the service error surfaces — but a
    // *successful* out-of-order call is the detection case: take twice.
    tb.runtime
        .interface_call(app, t, lock, "lock_take", &[Value::Int(1), Value::Int(id)])
        .unwrap();
    let before = tb.runtime.stats().invalid_transitions;
    // take→take has no σ edge but succeeds at the server (idempotent
    // re-take): the stub records the invalid branch and resynchronizes.
    tb.runtime
        .interface_call(app, t, lock, "lock_take", &[Value::Int(1), Value::Int(id)])
        .unwrap();
    assert_eq!(tb.runtime.stats().invalid_transitions, before + 1);
    // Tracking resynchronized: the descriptor still recovers correctly.
    tb.runtime.inject_fault(lock);
    tb.runtime
        .interface_call(
            app,
            t,
            lock,
            "lock_release",
            &[Value::Int(1), Value::Int(id)],
        )
        .unwrap();
}

#[test]
fn global_recovery_without_storage_fails_gracefully() {
    // Build a runtime with NO storage component configured: G0 recovery
    // of a foreign event must fail with NotFound, not panic or hang.
    let mut k = Kernel::with_costs(CostModel::free());
    let app1 = k.add_client_component("app1");
    let app2 = k.add_client_component("app2");
    let evt = k.add_component("evt", Box::new(sg_services::event::EventService::new()));
    let t1 = k.create_thread(app1, Priority(5));
    let t2 = k.create_thread(app2, Priority(5));
    let spec = superglue::compile_all()
        .unwrap()
        .get("evt")
        .unwrap()
        .stub_spec
        .clone();
    let mut rt = FtRuntime::new(
        k,
        RuntimeConfig {
            storage: None,
            ..RuntimeConfig::default()
        },
    );
    rt.install_stub(
        app1,
        evt,
        Box::new(CompiledStub::new(Arc::new(spec.clone()))),
    );
    rt.install_stub(app2, evt, Box::new(CompiledStub::new(Arc::new(spec))));

    let id = rt
        .interface_call(
            app1,
            t1,
            evt,
            "evt_split",
            &[Value::from(app1.0), Value::Int(0), Value::Int(1)],
        )
        .unwrap()
        .int()
        .unwrap();
    rt.inject_fault(evt);
    // The foreign client cannot discover the creator without storage.
    let err = rt
        .interface_call(
            app2,
            t2,
            evt,
            "evt_trigger",
            &[Value::from(app2.0), Value::Int(id)],
        )
        .unwrap_err();
    assert!(matches!(err, CallError::Service(ServiceError::NotFound)));
    // The creator itself CAN still restore (its own metadata suffices).
    rt.interface_call(
        app1,
        t1,
        evt,
        "evt_trigger",
        &[Value::from(app1.0), Value::Int(id)],
    )
    .unwrap();
}

#[test]
fn stub_introspection_reports_interface_and_counts() {
    let (mut tb, t) = superglue_testbed();
    let (app, lock) = (tb.ids.app1, tb.ids.lock);
    for _ in 0..3 {
        tb.runtime
            .interface_call(app, t, lock, "lock_alloc", &[Value::Int(1)])
            .unwrap();
    }
    let stub = tb.runtime.stub(app, lock).expect("installed");
    assert_eq!(stub.interface(), "lock");
    assert_eq!(stub.tracked_count(), 3);
    assert_eq!(stub.faulty_count(), 0);
    tb.runtime.inject_fault(tb.ids.lock);
    // Marking happens when the fault is *handled*; drive one call.
    tb.runtime
        .interface_call(app, t, lock, "lock_alloc", &[Value::Int(1)])
        .unwrap();
    let stub = tb.runtime.stub(app, lock).expect("installed");
    assert_eq!(stub.tracked_count(), 4);
    // The three pre-fault descriptors are marked faulty until touched.
    assert_eq!(stub.faulty_count(), 3);
}

#[test]
fn total_tracked_spans_all_edges() {
    let (mut tb, t) = superglue_testbed();
    let t2 = tb.spawn_thread(tb.ids.app2, Priority(5));
    let (a1, a2, lock) = (tb.ids.app1, tb.ids.app2, tb.ids.lock);
    tb.runtime
        .interface_call(a1, t, lock, "lock_alloc", &[Value::Int(1)])
        .unwrap();
    tb.runtime
        .interface_call(a2, t2, lock, "lock_alloc", &[Value::Int(2)])
        .unwrap();
    assert_eq!(tb.total_tracked(), 2);
}

#[test]
fn retry_budget_bounds_repeated_faulting() {
    // A service that refaults on every single call can only consume the
    // configured retry budget before the fault surfaces to the client.
    #[derive(Debug)]
    struct Refaulter {
        me: ComponentId,
    }
    impl composite::Service for Refaulter {
        fn interface(&self) -> &'static str {
            "lock"
        }
        fn call(
            &mut self,
            ctx: &mut composite::ServiceCtx<'_>,
            _f: &str,
            _a: &[Value],
        ) -> Result<Value, ServiceError> {
            ctx.raise_fault(self.me);
            Ok(Value::Int(1))
        }
        fn reset(&mut self) {}
    }
    let mut k = Kernel::with_costs(CostModel::free());
    let app = k.add_client_component("app");
    let svc = k.add_component("lock", Box::new(Refaulter { me: ComponentId(2) }));
    let t = k.create_thread(app, Priority(5));
    let spec = superglue::compile_all()
        .unwrap()
        .get("lock")
        .unwrap()
        .stub_spec
        .clone();
    let mut rt = FtRuntime::new(
        k,
        RuntimeConfig {
            max_retries: 2,
            ..RuntimeConfig::default()
        },
    );
    rt.install_stub(app, svc, Box::new(CompiledStub::new(Arc::new(spec))));
    let err = rt
        .interface_call(app, t, svc, "lock_alloc", &[Value::Int(1)])
        .unwrap_err();
    assert!(matches!(err, CallError::Fault { .. }));
    assert!(rt.stats().unrecovered >= 1);
    // Exactly max_retries reboots were attempted.
    assert_eq!(rt.stats().faults_handled, 2);
}
