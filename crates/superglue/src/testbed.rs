//! Full-system assembly: the simulated COMPOSITE OS in the three
//! protection variants the paper evaluates.
//!
//! | Variant | Stubs | Corresponds to |
//! |---|---|---|
//! | [`Variant::Bare`] | none | base COMPOSITE (a fault crashes clients) |
//! | [`Variant::C3`] | hand-written ([`sg_c3::stubs`]) | COMPOSITE + C³ |
//! | [`Variant::SuperGlue`] | compiler-generated ([`crate::CompiledStub`]) | COMPOSITE + SuperGlue |

use composite::{ComponentId, CostModel, Kernel, Priority, ThreadId};
use sg_c3::stubs::{C3EvtStub, C3FsStub, C3LockStub, C3MmStub, C3SchedStub, C3TmrStub};
use sg_c3::{FtRuntime, RecoveryPolicy, RuntimeConfig};
use sg_services::cbuf::CbufService;
use sg_services::event::EventService;
use sg_services::lock::LockService;
use sg_services::mm::MemoryManager;
use sg_services::ramfs::RamFs;
use sg_services::scheduler::Scheduler;
use sg_services::storage::StorageService;
use sg_services::timer::TimerService;
use superglue_idl::IdlError;

use crate::sources::compile_all;
use crate::stub::CompiledStub;

/// Which fault-tolerance layer protects the system services.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Variant {
    /// No stubs: the base COMPOSITE comparator.
    Bare,
    /// Hand-written C³ stubs.
    C3,
    /// SuperGlue compiler-generated stubs.
    SuperGlue,
}

impl std::fmt::Display for Variant {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Variant::Bare => "COMPOSITE",
            Variant::C3 => "COMPOSITE+C3",
            Variant::SuperGlue => "COMPOSITE+SuperGlue",
        })
    }
}

/// Component ids of the assembled system.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SystemIds {
    /// First application/client component.
    pub app1: ComponentId,
    /// Second application/client component (cross-component workloads).
    pub app2: ComponentId,
    /// Scheduler service.
    pub sched: ComponentId,
    /// Memory manager service.
    pub mm: ComponentId,
    /// RAM filesystem service.
    pub fs: ComponentId,
    /// Lock service.
    pub lock: ComponentId,
    /// Event manager service.
    pub evt: ComponentId,
    /// Timer manager service.
    pub tmr: ComponentId,
    /// Storage component (unprotected infrastructure).
    pub storage: ComponentId,
    /// Zero-copy buffer component (unprotected infrastructure).
    pub cbuf: ComponentId,
}

impl SystemIds {
    /// The six fault-injection targets in the paper's Table II row order.
    #[must_use]
    pub fn targets(&self) -> [(&'static str, ComponentId); 6] {
        [
            ("Sched", self.sched),
            ("MM", self.mm),
            ("FS", self.fs),
            ("Lock", self.lock),
            ("Event", self.evt),
            ("Timer", self.tmr),
        ]
    }
}

/// A fully assembled system: runtime + component ids.
#[derive(Debug)]
pub struct Testbed {
    /// The fault-tolerant runtime (kernel + stubs).
    pub runtime: FtRuntime,
    /// Component ids.
    pub ids: SystemIds,
    /// Which variant was built.
    pub variant: Variant,
}

impl Testbed {
    /// Build the full system with the paper-calibrated cost model and
    /// the on-demand recovery policy.
    ///
    /// # Errors
    ///
    /// [`IdlError`] if the shipped IDL fails to compile (SuperGlue
    /// variant only).
    pub fn build(variant: Variant) -> Result<Self, IdlError> {
        Self::build_with(
            variant,
            CostModel::paper_defaults(),
            RecoveryPolicy::OnDemand,
        )
    }

    /// Build with explicit cost model and recovery policy.
    ///
    /// # Errors
    ///
    /// [`IdlError`] if the shipped IDL fails to compile (SuperGlue
    /// variant only).
    pub fn build_with(
        variant: Variant,
        costs: CostModel,
        policy: RecoveryPolicy,
    ) -> Result<Self, IdlError> {
        Self::build_with_elide(variant, costs, policy, false)
    }

    /// [`Testbed::build`] with certified tracking elision toggled: when
    /// `elide` is true the SuperGlue variant interprets
    /// [`crate::sources::compile_all_elided`] stub specs (σ-constant
    /// fast paths, dead-store suppression). Recovery behavior and
    /// traces are byte-identical either way — only dead bookkeeping is
    /// skipped. The toggle is a no-op for `Bare` and `C3`.
    ///
    /// # Errors
    ///
    /// [`IdlError`] if the shipped IDL fails to compile or an
    /// `sm_elide` request cannot be proven (SuperGlue variant only).
    pub fn build_elided(variant: Variant, elide: bool) -> Result<Self, IdlError> {
        Self::build_with_elide(
            variant,
            CostModel::paper_defaults(),
            RecoveryPolicy::OnDemand,
            elide,
        )
    }

    /// Build with explicit cost model, recovery policy and elision
    /// toggle (see [`Testbed::build_elided`]).
    ///
    /// # Errors
    ///
    /// [`IdlError`] if the shipped IDL fails to compile (SuperGlue
    /// variant only).
    pub fn build_with_elide(
        variant: Variant,
        costs: CostModel,
        policy: RecoveryPolicy,
        elide: bool,
    ) -> Result<Self, IdlError> {
        let mut k = Kernel::with_costs(costs);
        let app1 = k.add_client_component("app1");
        let app2 = k.add_client_component("app2");
        let storage = k.add_component("storage", Box::new(StorageService::new()));
        let cbuf = k.add_component("cbuf", Box::new(CbufService::new()));
        let sched = k.add_component("sched", Box::new(Scheduler::new()));
        let mm = k.add_component("mm", Box::new(MemoryManager::new()));
        let fs = k.add_component("fs", Box::new(RamFs::new(storage, cbuf)));
        let lock = k.add_component("lock", Box::new(LockService::new()));
        let evt = k.add_component("evt", Box::new(EventService::new()));
        let tmr = k.add_component("tmr", Box::new(TimerService::new()));
        // RamFS persists through storage + cbuf (G1).
        k.grant(fs, storage);
        k.grant(fs, cbuf);

        let ids = SystemIds {
            app1,
            app2,
            sched,
            mm,
            fs,
            lock,
            evt,
            tmr,
            storage,
            cbuf,
        };
        let config = RuntimeConfig {
            policy,
            storage: Some(storage),
            max_retries: 3,
            ..RuntimeConfig::default()
        };
        let mut runtime = FtRuntime::new(k, config);

        let services = [sched, mm, fs, lock, evt, tmr];
        match variant {
            Variant::Bare => {
                for app in [app1, app2] {
                    for svc in services {
                        runtime.kernel_mut_pub().grant(app, svc);
                    }
                }
            }
            Variant::C3 => {
                for app in [app1, app2] {
                    runtime.install_stub(app, sched, Box::new(C3SchedStub::new()));
                    runtime.install_stub(app, mm, Box::new(C3MmStub::new()));
                    runtime.install_stub(app, fs, Box::new(C3FsStub::new()));
                    runtime.install_stub(app, lock, Box::new(C3LockStub::new()));
                    runtime.install_stub(app, evt, Box::new(C3EvtStub::new()));
                    runtime.install_stub(app, tmr, Box::new(C3TmrStub::new()));
                }
            }
            Variant::SuperGlue => {
                let compiled = if elide {
                    crate::sources::compile_all_elided()?
                } else {
                    compile_all()?
                };
                for app in [app1, app2] {
                    for (iface, svc) in [
                        ("sched", sched),
                        ("mm", mm),
                        ("fs", fs),
                        ("lock", lock),
                        ("evt", evt),
                        ("tmr", tmr),
                    ] {
                        let spec = compiled
                            .get(iface)
                            .expect("all six interfaces compiled")
                            .stub_spec
                            .clone();
                        runtime.install_stub(
                            app,
                            svc,
                            Box::new(CompiledStub::new(std::sync::Arc::new(spec))),
                        );
                    }
                }
            }
        }
        Ok(Self {
            runtime,
            ids,
            variant,
        })
    }

    /// Spawn a runnable thread homed in `home`.
    pub fn spawn_thread(&mut self, home: ComponentId, priority: Priority) -> ThreadId {
        self.runtime.kernel_mut_pub().create_thread(home, priority)
    }

    /// Sum of descriptors tracked across every installed stub.
    #[must_use]
    pub fn total_tracked(&self) -> usize {
        let mut n = 0;
        for app in [self.ids.app1, self.ids.app2] {
            for (_, svc) in self.ids.targets() {
                if let Some(s) = self.runtime.stub(app, svc) {
                    n += s.tracked_count();
                }
            }
        }
        n
    }
}

/// Extension trait making `kernel_mut` usable from the testbed without
/// importing `KernelAccess` at every call site.
trait KernelMutExt {
    fn kernel_mut_pub(&mut self) -> &mut Kernel;
}

impl KernelMutExt for FtRuntime {
    fn kernel_mut_pub(&mut self) -> &mut Kernel {
        use composite::KernelAccess as _;
        self.kernel_mut()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use composite::{Executor, InterfaceCall as _, KernelAccess as _, RunExit, Value};
    use sg_services::api::ClientEnd;
    use sg_services::workloads::{
        shared_desc, EventTrigger, EventWaiter, FsOpenWriteRead, LockContender, LockOwner,
        MmGrantAliasRevoke, SchedPingPong, TimerPeriodic,
    };

    fn attach_all(tb: &mut Testbed, ex: &mut Executor<FtRuntime>, rounds: u32) -> Vec<ThreadId> {
        let ids = tb.ids;
        let mut threads = Vec::new();
        // Sched ping-pong.
        let t1 = tb.spawn_thread(ids.app1, Priority(5));
        let t2 = tb.spawn_thread(ids.app1, Priority(5));
        ex.attach(
            t1,
            Box::new(SchedPingPong::new(
                ClientEnd::new(ids.app1, t1, ids.sched),
                t2,
                rounds,
                true,
            )),
        );
        ex.attach(
            t2,
            Box::new(SchedPingPong::new(
                ClientEnd::new(ids.app1, t2, ids.sched),
                t1,
                rounds,
                false,
            )),
        );
        // Lock owner/contender.
        let t3 = tb.spawn_thread(ids.app1, Priority(5));
        let t4 = tb.spawn_thread(ids.app1, Priority(5));
        let shared = shared_desc();
        ex.attach(
            t3,
            Box::new(LockOwner::new(
                ClientEnd::new(ids.app1, t3, ids.lock),
                shared.clone(),
                rounds,
                2,
            )),
        );
        ex.attach(
            t4,
            Box::new(LockContender::new(
                ClientEnd::new(ids.app1, t4, ids.lock),
                shared,
                rounds,
            )),
        );
        // Event waiter/trigger across components.
        let t5 = tb.spawn_thread(ids.app1, Priority(5));
        let t6 = tb.spawn_thread(ids.app2, Priority(5));
        let shared_e = shared_desc();
        ex.attach(
            t5,
            Box::new(EventWaiter::new(
                ClientEnd::new(ids.app1, t5, ids.evt),
                shared_e.clone(),
                rounds,
            )),
        );
        ex.attach(
            t6,
            Box::new(EventTrigger::new(
                ClientEnd::new(ids.app2, t6, ids.evt),
                shared_e,
                rounds,
            )),
        );
        // Timer.
        let t7 = tb.spawn_thread(ids.app1, Priority(5));
        ex.attach(
            t7,
            Box::new(TimerPeriodic::new(
                ClientEnd::new(ids.app1, t7, ids.tmr),
                1_000_000,
                rounds,
            )),
        );
        // MM.
        let t8 = tb.spawn_thread(ids.app1, Priority(5));
        ex.attach(
            t8,
            Box::new(MmGrantAliasRevoke::new(
                ClientEnd::new(ids.app1, t8, ids.mm),
                ids.app2,
                rounds,
            )),
        );
        // FS.
        let t9 = tb.spawn_thread(ids.app1, Priority(5));
        ex.attach(
            t9,
            Box::new(FsOpenWriteRead::new(
                ClientEnd::new(ids.app1, t9, ids.fs),
                rounds,
            )),
        );
        threads.extend([t1, t2, t3, t4, t5, t6, t7, t8, t9]);
        threads
    }

    #[test]
    fn bare_variant_crashes_on_fault() {
        let mut tb = Testbed::build(Variant::Bare).unwrap();
        let mut ex: Executor<FtRuntime> = Executor::new();
        let threads = attach_all(&mut tb, &mut ex, 30);
        ex.run(&mut tb.runtime, 50);
        tb.runtime.inject_fault(tb.ids.fs);
        tb.runtime.inject_fault(tb.ids.lock);
        ex.run(&mut tb.runtime, 100_000);
        let crashed = threads
            .iter()
            .filter(|&&t| {
                tb.runtime.kernel().thread(t).unwrap().state == composite::ThreadState::Crashed
            })
            .count();
        assert!(crashed > 0, "bare COMPOSITE must lose workloads to faults");
    }

    #[test]
    fn all_workloads_complete_without_faults_under_superglue() {
        let mut tb = Testbed::build(Variant::SuperGlue).unwrap();
        let mut ex: Executor<FtRuntime> = Executor::new();
        attach_all(&mut tb, &mut ex, 8);
        assert_eq!(ex.run(&mut tb.runtime, 1_000_000), RunExit::AllDone);
        assert_eq!(tb.runtime.stats().faults_handled, 0);
    }

    #[test]
    fn all_workloads_survive_faults_in_every_service_under_superglue() {
        let mut tb = Testbed::build(Variant::SuperGlue).unwrap();
        let mut ex: Executor<FtRuntime> = Executor::new();
        attach_all(&mut tb, &mut ex, 25);
        let targets = tb.ids.targets();
        for (_, svc) in targets {
            ex.run(&mut tb.runtime, 120);
            tb.runtime.inject_fault(svc);
        }
        assert_eq!(ex.run(&mut tb.runtime, 2_000_000), RunExit::AllDone);
        assert_eq!(
            tb.runtime.stats().unrecovered,
            0,
            "{:#?}",
            tb.runtime.stats()
        );
        assert!(tb.runtime.stats().faults_handled >= 1);
    }

    #[test]
    fn all_workloads_survive_faults_under_c3() {
        let mut tb = Testbed::build(Variant::C3).unwrap();
        let mut ex: Executor<FtRuntime> = Executor::new();
        attach_all(&mut tb, &mut ex, 25);
        let targets = tb.ids.targets();
        for (_, svc) in targets {
            ex.run(&mut tb.runtime, 120);
            tb.runtime.inject_fault(svc);
        }
        assert_eq!(ex.run(&mut tb.runtime, 2_000_000), RunExit::AllDone);
        assert_eq!(tb.runtime.stats().unrecovered, 0);
    }

    #[test]
    fn superglue_lock_descriptor_survives_reboot() {
        let mut tb = Testbed::build(Variant::SuperGlue).unwrap();
        let t = tb.spawn_thread(tb.ids.app1, Priority(5));
        let (app, lock) = (tb.ids.app1, tb.ids.lock);
        let id = tb
            .runtime
            .interface_call(app, t, lock, "lock_alloc", &[Value::Int(1)])
            .unwrap()
            .int()
            .unwrap();
        tb.runtime
            .interface_call(app, t, lock, "lock_take", &[Value::Int(1), Value::Int(id)])
            .unwrap();
        tb.runtime.inject_fault(lock);
        // Release after the fault: recovery replays alloc+take (same
        // thread), then the release goes through.
        tb.runtime
            .interface_call(
                app,
                t,
                lock,
                "lock_release",
                &[Value::Int(1), Value::Int(id)],
            )
            .unwrap();
        assert_eq!(tb.runtime.stats().faults_handled, 1);
        assert!(tb.runtime.stats().descriptors_recovered >= 1);
    }

    #[test]
    fn superglue_event_keeps_global_id_across_recovery() {
        let mut tb = Testbed::build(Variant::SuperGlue).unwrap();
        let t1 = tb.spawn_thread(tb.ids.app1, Priority(5));
        let t2 = tb.spawn_thread(tb.ids.app2, Priority(5));
        let (a1, a2, evt) = (tb.ids.app1, tb.ids.app2, tb.ids.evt);
        let id = tb
            .runtime
            .interface_call(
                a1,
                t1,
                evt,
                "evt_split",
                &[Value::from(a1.0), Value::Int(0), Value::Int(7)],
            )
            .unwrap()
            .int()
            .unwrap();
        tb.runtime.inject_fault(evt);
        // The foreign client triggers: G0 lookup + U0 upcall restore the
        // event under its original id.
        tb.runtime
            .interface_call(
                a2,
                t2,
                evt,
                "evt_trigger",
                &[Value::from(a2.0), Value::Int(id)],
            )
            .unwrap();
        assert!(tb.runtime.stats().upcalls >= 1);
        let got = tb
            .runtime
            .interface_call(
                a1,
                t1,
                evt,
                "evt_wait",
                &[Value::from(a1.0), Value::Int(id)],
            )
            .unwrap();
        assert_eq!(got, Value::Int(id));
    }

    #[test]
    fn superglue_fs_offset_restored_from_accumulated_retvals() {
        let mut tb = Testbed::build(Variant::SuperGlue).unwrap();
        let t = tb.spawn_thread(tb.ids.app1, Priority(5));
        let (app, fs) = (tb.ids.app1, tb.ids.fs);
        let fd = tb
            .runtime
            .interface_call(
                app,
                t,
                fs,
                "tsplit",
                &[Value::Int(1), Value::Int(0), Value::from("f.bin")],
            )
            .unwrap()
            .int()
            .unwrap();
        tb.runtime
            .interface_call(
                app,
                t,
                fs,
                "twrite",
                &[Value::Int(1), Value::Int(fd), Value::from(vec![1, 2, 3])],
            )
            .unwrap();
        tb.runtime.inject_fault(fs);
        // Recovery replays tsplit + tseek(offset=3 from accumulated
        // twrite return values); the read at the restored offset sees
        // EOF.
        let r = tb
            .runtime
            .interface_call(
                app,
                t,
                fs,
                "tread",
                &[Value::Int(1), Value::Int(fd), Value::Int(10)],
            )
            .unwrap();
        assert_eq!(r, Value::from(vec![]));
        // And the persisted data survives (G1): rewind and read.
        tb.runtime
            .interface_call(
                app,
                t,
                fs,
                "tseek",
                &[Value::Int(1), Value::Int(fd), Value::Int(0)],
            )
            .unwrap();
        let r = tb
            .runtime
            .interface_call(
                app,
                t,
                fs,
                "tread",
                &[Value::Int(1), Value::Int(fd), Value::Int(10)],
            )
            .unwrap();
        assert_eq!(r, Value::from(vec![1, 2, 3]));
    }

    #[test]
    fn superglue_mm_alias_recovery_crosses_edges() {
        let mut tb = Testbed::build(Variant::SuperGlue).unwrap();
        let t1 = tb.spawn_thread(tb.ids.app1, Priority(5));
        let t2 = tb.spawn_thread(tb.ids.app2, Priority(5));
        let (a1, a2, mm) = (tb.ids.app1, tb.ids.app2, tb.ids.mm);
        // app1 creates a root mapping; app2 aliases from it.
        let root = tb
            .runtime
            .interface_call(
                a1,
                t1,
                mm,
                "mman_get_page",
                &[Value::from(a1.0), Value::Int(0x1000)],
            )
            .unwrap()
            .int()
            .unwrap();
        tb.runtime
            .interface_call(
                a2,
                t2,
                mm,
                "mman_alias_page",
                &[
                    Value::from(a2.0),
                    Value::Int(root),
                    Value::from(a2.0),
                    Value::Int(0x9000),
                ],
            )
            .unwrap();
        tb.runtime.inject_fault(mm);
        // app2 creates another alias: the parent (owned by app1's edge)
        // is recovered through a storage lookup + upcall.
        tb.runtime
            .interface_call(
                a2,
                t2,
                mm,
                "mman_alias_page",
                &[
                    Value::from(a2.0),
                    Value::Int(root),
                    Value::from(a2.0),
                    Value::Int(0xa000),
                ],
            )
            .unwrap();
        assert!(tb.runtime.stats().upcalls >= 1);
        assert_eq!(
            tb.runtime.kernel().pages().translate(a1, 0x1000),
            tb.runtime.kernel().pages().translate(a2, 0xa000)
        );
    }

    #[test]
    fn variant_display_names() {
        assert_eq!(Variant::Bare.to_string(), "COMPOSITE");
        assert_eq!(Variant::C3.to_string(), "COMPOSITE+C3");
        assert_eq!(Variant::SuperGlue.to_string(), "COMPOSITE+SuperGlue");
    }
}
