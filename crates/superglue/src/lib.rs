//! SuperGlue: IDL-based, system-level fault tolerance.
//!
//! This crate is the paper's primary contribution assembled end-to-end:
//!
//! 1. the six system services' interfaces are described *declaratively*
//!    in SuperGlue IDL (`idl/*.sg`, embedded in [`sources`]);
//! 2. the [`superglue_idl`] front end and [`superglue_compiler`] back end
//!    turn each description into a
//!    [`CompiledStubSpec`](superglue_compiler::CompiledStubSpec) plus
//!    generated stub source;
//! 3. the generic [`stub::CompiledStub`] interprets a compiled spec as a
//!    live interface stub — one object per (client, server) edge —
//!    plugged into the shared C³ recovery runtime
//!    ([`sg_c3::FtRuntime`]);
//! 4. [`testbed`] assembles the full simulated COMPOSITE OS (kernel, six
//!    services, storage, cbuf, client components) in three protection
//!    variants — **Bare**, **C³** (hand-written stubs), **SuperGlue**
//!    (generated stubs) — the exact systems the paper's evaluation
//!    compares.
//!
//! # Quickstart
//!
//! ```
//! use superglue::testbed::{Testbed, Variant};
//!
//! // Build a full OS protected by SuperGlue-generated stubs.
//! let mut tb = Testbed::build(Variant::SuperGlue)?;
//! let t = tb.spawn_thread(tb.ids.app1, composite::Priority(5));
//!
//! // Allocate a lock through the generated stub, crash the lock server,
//! // and keep using the same descriptor: recovery is transparent.
//! let end = sg_services::api::ClientEnd::new(tb.ids.app1, t, tb.ids.lock);
//! let id = sg_services::api::lock::alloc(&mut tb.runtime, &end)?;
//! tb.runtime.inject_fault(tb.ids.lock);
//! sg_services::api::lock::take(&mut tb.runtime, &end, id)?;
//! assert_eq!(tb.runtime.stats().faults_handled, 1);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod sources;
pub mod stub;
pub mod testbed;

pub use sources::{compile_all, idl_sources, CompiledInterfaces};
pub use stub::CompiledStub;
pub use testbed::{Testbed, Variant};
