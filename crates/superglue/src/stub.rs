//! The generic compiled stub: one interpreter for every interface.
//!
//! Where C³ needs a hand-written stub per service
//! ([`sg_c3::stubs`]), SuperGlue needs exactly one *generic* stub whose
//! behavior is entirely driven by the compiler's
//! [`CompiledStubSpec`]:
//!
//! * descriptor tracking tables (state, metadata, parent links, last
//!   observed arguments) populated according to the spec's argument
//!   annotations;
//! * σ-checked state transitions (invalid branches are counted as
//!   detections);
//! * the Fig 4 redo loop with micro-reboot on the fault exception;
//! * **R0** recovery walks over the precomputed shortest paths, with
//!   `sm_recover_via` substitutions and per-position argument synthesis;
//! * **D1** parent-first ordering, with storage-discovered **U0** upcalls
//!   for cross-component parents;
//! * **D0**/`Y_dr` close semantics;
//! * **G0** storage records + restore upcalls for global descriptors;
//! * thread-affine deferral of blocking walk steps;
//! * client-visible→server descriptor id translation across reboots;
//! * **certified tracking elision**: when the spec carries applied
//!   elision facts ([`superglue_compiler::ElisionFacts`]), the
//!   interpreter skips the σ-table read (constant successor), dead
//!   metadata/last-argument stores, the pending-walk resume probe, the
//!   thread-affinity stamp and the id-translation probe — each skip is
//!   backed by an SG060–SG065 proof, so recovery behavior and traces
//!   are byte-identical with elision on or off.
//!
//! All per-call interpretation is precomputed at stub-build time: the
//! function-name dispatch is one hash probe ([`CompiledStubSpec`]'s
//! dispatch table), descriptor lookups index a slab ([`IdSlab`]), the
//! last-observed-arguments table is a flat array of inline [`ArgVec`]s
//! indexed by the compiler-assigned `track_slot`, and the σ step reads a
//! dense table. The steady-state invoke path performs no map lookups, no
//! heap allocation, and no refcount traffic: the interpreter runs over an
//! [`Interp`] view that borrows the spec and the tracking tables as
//! disjoint fields, so the spec reference is a plain (Copy) `&` rather
//! than a per-call `Arc` clone.

use std::sync::Arc;

use composite::{
    ArgVec, CallError, IdSlab, Mechanism, ServiceError, ThreadId, TraceEventKind, Value,
};
use sg_c3::stub::{is_server_fault, InterfaceStub};
use sg_c3::StubEnv;
use superglue_compiler::{ArgSource, CompiledFn, CompiledStubSpec, RestoreArg, RetvalSpec};
use superglue_sm::{FnId, State};

/// Pass-through invocation that still honors the fault exception: the
/// server is micro-rebooted (and this stub's descriptors marked faulty)
/// before the call is redone, so untracked-descriptor calls observe
/// post-reboot semantics (e.g. NotFound) rather than the raw fault.
macro_rules! passthrough {
    ($self:ident, $env:ident, $fname:ident, $args:ident) => {
        loop {
            match $env.invoke($fname, $args) {
                Err(e) if is_server_fault(&e, $env.server) => {
                    $env.ensure_rebooted()?;
                    $self.mark_faulty();
                }
                other => return other,
            }
        }
    };
}

/// Parent id conventionally meaning "no parent" (root descriptors).
const NO_PARENT: i64 = 0;

#[derive(Debug, Clone)]
struct GenDesc {
    /// Current server-side id (translated on every call).
    server_id: i64,
    /// Expected state-machine state.
    state: State,
    /// Thread whose call produced the current state (thread affinity).
    state_thread: Option<ThreadId>,
    faulty: bool,
    /// Whether this edge created the descriptor (owns the metadata).
    creator: bool,
    /// Client-visible parent id, when any.
    parent: Option<i64>,
    children: Vec<i64>,
    /// Tracked metadata (`desc_data` arguments and return values),
    /// indexed by compiler-interned slot.
    meta: Box<[Option<Value>]>,
    /// Last observed argument vector per tracked interface function,
    /// indexed by the compiler-assigned dense `track_slot`. Inline
    /// [`ArgVec`]s: recording a call's arguments never heap-allocates.
    last_args: Box<[Option<ArgVec>]>,
    /// A recovery walk that stopped at a thread-affine step: (walk,
    /// resume index). Completed when `state_thread` next arrives.
    pending_walk: Option<(Vec<FnId>, usize)>,
}

impl GenDesc {
    fn new(
        server_id: i64,
        state: State,
        thread: ThreadId,
        creator: bool,
        parent: Option<i64>,
        meta_slots: usize,
        track_slots: usize,
    ) -> Self {
        Self {
            server_id,
            state,
            state_thread: Some(thread),
            faulty: false,
            creator,
            parent,
            children: Vec::new(),
            meta: vec![None; meta_slots].into_boxed_slice(),
            last_args: vec![None; track_slots].into_boxed_slice(),
            pending_walk: None,
        }
    }
}

/// Record the last observed arguments for a tracked function. The slot
/// holds an inline [`ArgVec`], and each value clone is an rc bump or an
/// inline copy, so the steady-state tracking write allocates nothing.
fn store_last_args(slot: &mut Option<ArgVec>, args: &[Value]) {
    match slot {
        Some(prev) if prev.len() == args.len() => prev.clone_from_slice(args),
        other => *other = Some(args.into()),
    }
}

fn parent_of_args(cf: &CompiledFn, args: &[Value]) -> Option<i64> {
    cf.parent_arg
        .and_then(|i| args.get(i))
        .and_then(|v| v.int().ok())
        .filter(|&p| p != NO_PARENT)
}

fn desc_of_args(cf: &CompiledFn, args: &[Value]) -> Option<i64> {
    cf.desc_arg
        .and_then(|i| args.get(i))
        .and_then(|v| v.int().ok())
}

/// The compiler-driven interface stub.
#[derive(Debug)]
pub struct CompiledStub {
    spec: Arc<CompiledStubSpec>,
    descs: IdSlab<GenDesc>,
    /// Closed-descriptor carcasses recycled by the next creation, so
    /// create/close workloads do not allocate tracking tables per cycle.
    pool: Vec<GenDesc>,
}

impl CompiledStub {
    /// A stub interpreting the given compiled specification.
    #[must_use]
    pub fn new(spec: Arc<CompiledStubSpec>) -> Self {
        Self {
            spec,
            descs: IdSlab::new(),
            pool: Vec::new(),
        }
    }

    /// The interface name.
    #[must_use]
    pub fn iface(&self) -> &str {
        &self.spec.interface
    }

    /// The interpreter view: disjoint borrows of the spec (shared) and
    /// the tracking tables (mutable), so spec reads never require an
    /// `Arc` refcount bump to coexist with table updates.
    fn interp(&mut self) -> Interp<'_> {
        Interp {
            spec: &self.spec,
            descs: &mut self.descs,
            pool: &mut self.pool,
        }
    }
}

/// One invocation's view of a [`CompiledStub`]: `spec` is a plain shared
/// reference (Copy — reading it does not borrow `self`), `descs`/`pool`
/// are the mutable tracking state.
struct Interp<'s> {
    spec: &'s CompiledStubSpec,
    descs: &'s mut IdSlab<GenDesc>,
    pool: &'s mut Vec<GenDesc>,
}

impl<'s> Interp<'s> {
    fn new_desc(
        &mut self,
        server_id: i64,
        state: State,
        thread: ThreadId,
        creator: bool,
        parent: Option<i64>,
    ) -> GenDesc {
        if let Some(mut d) = self.pool.pop() {
            d.server_id = server_id;
            d.state = state;
            d.state_thread = Some(thread);
            d.faulty = false;
            d.creator = creator;
            d.parent = parent;
            d.children.clear();
            d.meta.fill(None);
            d.last_args.fill_with(|| None);
            d.pending_walk = None;
            return d;
        }
        GenDesc::new(
            server_id,
            state,
            thread,
            creator,
            parent,
            self.spec.meta_names.len(),
            self.spec.track_slots,
        )
    }

    /// Return a removed descriptor's tables to the carcass pool.
    fn recycle(&mut self, d: GenDesc) {
        // Bounded so faulty workloads cannot grow the pool without
        // limit; tables are all sized by the (fixed) spec.
        if self.pool.len() < 64 {
            self.pool.push(d);
        }
    }

    /// Would [`Self::translate_args`] change anything? False in the
    /// steady state (server ids only diverge across a reboot), letting
    /// the hot path pass the caller's slice through untouched.
    fn translation_needed(&self, cf: &CompiledFn, desc: Option<i64>, args: &[Value]) -> bool {
        if let (Some(_), Some(id)) = (cf.desc_arg, desc) {
            if self.descs.get(id).is_some_and(|d| d.server_id != id) {
                return true;
            }
        }
        if cf.parent_arg.is_some() {
            if let Some(p) = parent_of_args(cf, args) {
                if self.descs.get(p).is_some_and(|pd| pd.server_id != p) {
                    return true;
                }
            }
        }
        false
    }

    /// Rewrite descriptor/parent argument positions to current server
    /// ids. Only called when the rewrite actually changes something; the
    /// copy lives in a stack [`ArgVec`] and every `Value` clone is at
    /// worst a reference-count bump.
    fn translate_args(&self, cf: &CompiledFn, desc: Option<i64>, args: &[Value]) -> ArgVec {
        let mut out: ArgVec = args.into();
        if let (Some(pos), Some(id)) = (cf.desc_arg, desc) {
            if let Some(d) = self.descs.get(id) {
                out[pos] = Value::Int(d.server_id);
            }
        }
        if let Some(pos) = cf.parent_arg {
            if let Some(p) = parent_of_args(cf, args) {
                if let Some(pd) = self.descs.get(p) {
                    out[pos] = Value::Int(pd.server_id);
                }
            }
        }
        out
    }

    /// Synthesize replay arguments for one walk step per the compiled
    /// plan, overlaying tracked state onto the last observed arguments.
    fn synth_args(&self, env: &StubEnv<'_>, fid: FnId, desc_id: i64) -> ArgVec {
        let cf = self.spec.fn_of(fid);
        let d = self.descs.get(desc_id);
        let base: Option<&[Value]> = d.and_then(|d| {
            cf.track_slot
                .and_then(|s| d.last_args.get(s))
                .and_then(|o| o.as_deref())
        });
        cf.replay_args
            .iter()
            .enumerate()
            .map(|(pos, src)| match src {
                ArgSource::ClientId => Value::from(env.client.0),
                ArgSource::DescId => Value::Int(d.map_or(desc_id, |d| d.server_id)),
                ArgSource::ParentId => {
                    let p = d.and_then(|d| d.parent);
                    match p {
                        Some(p) => Value::Int(self.descs.get(p).map_or(p, |pd| pd.server_id)),
                        None => Value::Int(NO_PARENT),
                    }
                }
                // clone(): replayed values must outlive the tracking
                // tables they come from; cheap (rc bump / inline copy).
                ArgSource::Meta(slot) => d
                    .and_then(|d| d.meta.get(*slot).and_then(|m| m.clone()))
                    .or_else(|| base.and_then(|b| b.get(pos).cloned()))
                    .unwrap_or(Value::Int(0)),
                ArgSource::LastObserved => base
                    .and_then(|b| b.get(pos).cloned())
                    .unwrap_or(Value::Int(0)),
            })
            .collect()
    }

    // -----------------------------------------------------------------
    // Tracking updates
    // -----------------------------------------------------------------

    fn harvest(
        &mut self,
        cf: &CompiledFn,
        desc_id: i64,
        args: &[Value],
        ret: &Value,
        thread: ThreadId,
    ) {
        let Some(d) = self.descs.get_mut(desc_id) else {
            return;
        };
        // live_data_args / retval_eff / store_slot are the certified
        // harvest plan: identical to data_args / retval / track_slot
        // unless the tracking-elision certifier proved a write dead
        // (never read by any replay or restore plan).
        for &(pos, slot) in &cf.live_data_args {
            if let Some(v) = args.get(pos) {
                // clone(): tracked metadata must survive the call; cheap
                // (rc bump / inline copy) under the shared-value repr.
                d.meta[slot] = Some(v.clone());
            }
        }
        match cf.retval_eff {
            RetvalSpec::None => {}
            RetvalSpec::NewDesc(slot) => {
                d.meta[slot] = Some(Value::Int(desc_id));
            }
            RetvalSpec::SetData(slot) => {
                // clone(): the return value is also handed to the caller;
                // cheap-clone repr makes this an rc bump at worst.
                d.meta[slot] = Some(ret.clone());
            }
            RetvalSpec::AccumData(slot) => {
                let add = match ret {
                    Value::Int(n) => *n,
                    Value::Bytes(b) => b.len() as i64,
                    _ => 0,
                };
                let cur = d.meta[slot]
                    .as_ref()
                    .and_then(|v| v.int().ok())
                    .unwrap_or(0);
                d.meta[slot] = Some(Value::Int(cur + add));
            }
        }
        if let Some(slot) = cf.store_slot {
            store_last_args(&mut d.last_args[slot], args);
        }
        if !self.spec.elide_affinity {
            d.state_thread = Some(thread);
        }
    }

    fn close(&mut self, env: &mut StubEnv<'_>, desc_id: i64) {
        let spec = self.spec;
        let model = spec.model;
        let mut dropped = 0u64;
        if model.close_children {
            // D0: drop the tracked subtree. take() not clone(): whenever
            // close_children is set the descriptor itself is removed
            // below, so its child list can be consumed in place.
            let mut stack = self
                .descs
                .get_mut(desc_id)
                .map(|d| std::mem::take(&mut d.children))
                .unwrap_or_default();
            while let Some(c) = stack.pop() {
                if let Some(mut cd) = self.descs.remove(c) {
                    dropped += 1;
                    stack.append(&mut cd.children);
                    self.recycle(cd);
                }
            }
        }
        let remove =
            model.close_removes_tracking || model.close_children || !model.parent.has_parent();
        if remove {
            if let Some(d) = self.descs.remove(desc_id) {
                dropped += 1;
                if let Some(p) = d.parent {
                    if let Some(pd) = self.descs.get_mut(p) {
                        pd.children.retain(|&c| c != desc_id);
                    }
                }
                self.recycle(d);
            }
        }
        env.kernel.trace_instant(
            env.server,
            env.thread,
            TraceEventKind::DescriptorClosed {
                desc: desc_id,
                dropped,
            },
        );
        env.note_teardown(dropped);
        if spec.records_creations {
            if let Some(storage) = env.storage {
                let _ = env.kernel.invoke(
                    env.client,
                    env.thread,
                    storage,
                    "st_unrecord",
                    &[Value::from(spec.interface.as_str()), Value::Int(desc_id)],
                );
            }
        }
    }

    fn record_creation(
        &mut self,
        env: &mut StubEnv<'_>,
        desc_id: i64,
        parent: Option<i64>,
        args: &[Value],
        cf: &CompiledFn,
    ) {
        let spec = self.spec;
        if !spec.records_creations {
            return;
        }
        // aux = the first tracked integer argument that is neither the
        // parent nor a component id (e.g. the event group).
        let aux = cf
            .data_args
            .iter()
            .filter(|(pos, _)| {
                Some(*pos) != cf.parent_arg
                    && cf.replay_args.get(*pos) != Some(&ArgSource::ClientId)
            })
            .filter_map(|(pos, _)| args.get(*pos))
            .find_map(|v| v.int().ok())
            .unwrap_or(0);
        let _ = env.storage_record(
            &spec.interface,
            desc_id,
            env.client,
            parent.unwrap_or(NO_PARENT),
            aux,
        );
    }

    // -----------------------------------------------------------------
    // Recovery
    // -----------------------------------------------------------------

    /// Recover a parent that is not tracked on this edge: discover its
    /// creator through the storage records and upcall (U0 across edges).
    fn recover_foreign(&mut self, env: &mut StubEnv<'_>, desc_id: i64) -> Result<(), CallError> {
        let creator = env.storage_lookup_creator(&self.spec.interface, desc_id)?;
        if creator == env.client {
            // Racy self-reference: nothing more we can do.
            return Err(CallError::Service(ServiceError::NotFound));
        }
        env.upcall_recover(creator, desc_id)
    }

    fn effective_state(&self, state: State) -> State {
        match state {
            State::After(f) => match self.spec.recover_via.get(&f) {
                Some(&g) => State::After(g),
                None => state,
            },
            other => other,
        }
    }

    fn replay_walk(
        &mut self,
        env: &mut StubEnv<'_>,
        desc_id: i64,
        walk: &[FnId],
        start: usize,
    ) -> Result<(), CallError> {
        let spec = self.spec;
        for (i, &fid) in walk.iter().enumerate().skip(start) {
            let roles = spec.machine.roles(fid);
            // Thread-affine blocking steps may not be replayed verbatim
            // by a different thread: either substitute the declared
            // restore entry point (sm_recover_block) passing the recorded
            // owner, or defer the remaining walk to the owner.
            if roles.blocks {
                let owner = self.descs.get(desc_id).and_then(|d| d.state_thread);
                if owner != Some(env.thread) {
                    if let Some(&gid) = spec.recover_block.get(&fid) {
                        let gname = spec.machine.function_name(gid);
                        let owner_id = owner.map_or(0, |t| i64::from(t.0));
                        let mut args = self.synth_args(env, gid, desc_id);
                        for (pos, src) in spec.fn_of(gid).replay_args.iter().enumerate() {
                            if *src == ArgSource::LastObserved {
                                args[pos] = Value::Int(owner_id);
                            }
                        }
                        env.replay_for(gname, &args, Some(desc_id), Mechanism::T1)?;
                        // T1: the blocking step completed thread-affinely
                        // on the recorded owner's behalf, not verbatim by
                        // the recovering thread (C³ counts its
                        // `lock_restore` substitution the same way).
                        env.note_deferred_completion();
                        continue;
                    }
                    if let Some(d) = self.descs.get_mut(desc_id) {
                        // to_vec(): recovery-only path; the deferred tail
                        // must outlive this borrow of the walk.
                        d.pending_walk = Some((walk.to_vec(), i));
                    }
                    env.note_deferred_completion();
                    return Ok(());
                }
            }
            let fname = spec.machine.function_name(fid);
            let args = self.synth_args(env, fid, desc_id);
            let ret = env.replay_for(fname, &args, Some(desc_id), Mechanism::R0)?;
            if roles.creates {
                if let Ok(new_id) = ret.int() {
                    if let Some(d) = self.descs.get_mut(desc_id) {
                        d.server_id = new_id;
                    }
                }
            }
        }
        Ok(())
    }

    fn complete_pending(&mut self, env: &mut StubEnv<'_>, desc_id: i64) -> Result<(), CallError> {
        let Some(d) = self.descs.get(desc_id) else {
            return Ok(());
        };
        if d.state_thread != Some(env.thread) {
            return Ok(());
        }
        // clone(): a deferred walk is rare (one per thread-affine fault)
        // and must be detached from the tracking table while it replays.
        let Some((walk, start)) = d.pending_walk.clone() else {
            return Ok(());
        };
        if let Some(d) = self.descs.get_mut(desc_id) {
            d.pending_walk = None;
        }
        self.replay_walk(env, desc_id, &walk, start)
    }

    fn restore_args(&self, env: &StubEnv<'_>, desc_id: i64, plan: &[RestoreArg]) -> ArgVec {
        let d = self.descs.get(desc_id);
        plan.iter()
            .map(|a| match a {
                RestoreArg::Creator => Value::from(env.client.0),
                RestoreArg::DescId => Value::Int(desc_id),
                // clone(): restored metadata outlives the table; cheap.
                RestoreArg::Meta(slot) => d
                    .and_then(|d| d.meta.get(*slot).and_then(|m| m.clone()))
                    .unwrap_or(Value::Int(0)),
            })
            .collect()
    }

    fn mark_faulty(&mut self) {
        for d in self.descs.values_mut() {
            d.faulty = true;
        }
    }

    fn call(
        &mut self,
        env: &mut StubEnv<'_>,
        fname: &str,
        args: &[Value],
    ) -> Result<Value, CallError> {
        // Copy out the spec reference ('s outlives this borrow of self),
        // so compiled-plan reads coexist with tracking-table mutation.
        let spec = self.spec;
        let Some((fid, cf)) = spec.fn_by_name(fname) else {
            // Not part of the described interface: pass through (with
            // fault handling).
            passthrough!(self, env, fname, args);
        };

        if cf.roles.creates {
            let parent = parent_of_args(cf, args);
            let mut g0_attempted = false;
            loop {
                // D1: a faulty (or foreign, post-fault) parent recovers
                // before the creation that depends on it.
                if let Some(p) = parent {
                    if self.descs.get(p).is_some_and(|d| d.faulty) {
                        env.note_parent_first();
                        self.recover_descriptor(env, p)?;
                    }
                }
                let translated;
                let real_args: &[Value] =
                    if !spec.elide_translation && self.translation_needed(cf, None, args) {
                        translated = self.translate_args(cf, None, args);
                        &translated
                    } else {
                        args
                    };
                match env.invoke(fname, real_args) {
                    Ok(v) => {
                        let id = v.int().map_err(|e| CallError::Service(e.into()))?;
                        let state = State::After(fid);
                        let mut d = self.new_desc(id, state, env.thread, true, parent);
                        if let Some(slot) = cf.store_slot {
                            store_last_args(&mut d.last_args[slot], args);
                        }
                        self.descs.insert(id, d);
                        if let Some(p) = parent {
                            if let Some(pd) = self.descs.get_mut(p) {
                                if !pd.children.contains(&id) {
                                    pd.children.push(id);
                                }
                            }
                        }
                        self.harvest(cf, id, args, &v, env.thread);
                        env.kernel.trace_instant(
                            env.server,
                            env.thread,
                            TraceEventKind::DescriptorCreated { desc: id },
                        );
                        self.record_creation(env, id, parent, args, cf);
                        return Ok(v);
                    }
                    Err(e) if is_server_fault(&e, env.server) => {
                        env.ensure_rebooted()?;
                        self.mark_faulty();
                    }
                    // The parent vanished with the reboot and is tracked
                    // by another component: G0-style discovery (once).
                    Err(CallError::Service(ServiceError::NotFound))
                        if !g0_attempted
                            && parent.is_some()
                            && spec.records_creations
                            && !self.descs.contains_key(parent.expect("checked")) =>
                    {
                        g0_attempted = true;
                        self.recover_foreign(env, parent.expect("checked"))?;
                    }
                    Err(e) => return Err(e),
                }
            }
        }

        let Some(desc_id) = desc_of_args(cf, args) else {
            passthrough!(self, env, fname, args);
        };
        if !self.descs.contains_key(desc_id) {
            if spec.model.global {
                // First use of a foreign global descriptor: track it so a
                // later fault can be recovered via G0.
                let init_state = spec
                    .machine
                    .creation_fns()
                    .next()
                    .map_or(State::Init, State::After);
                let d = self.new_desc(desc_id, init_state, env.thread, false, None);
                self.descs.insert(desc_id, d);
            } else {
                // Untracked local descriptor: pass through (with fault
                // handling so the redo observes post-reboot semantics).
                passthrough!(self, env, fname, args);
            }
        }

        let mut g0_attempted = false;
        loop {
            if self.descs.get(desc_id).is_some_and(|d| d.faulty) {
                self.recover_descriptor(env, desc_id)?;
            }
            // elide_pending: the certifier proved every blocking walk
            // step has an `sm_recover_block` substitute, so a deferred
            // walk tail can never exist and the resume probe is dead.
            if !spec.elide_pending {
                self.complete_pending(env, desc_id)?;
            }
            // Steady state: server ids equal the client-visible ids, so
            // the caller's slice passes through with no copy; after a
            // reboot the ids diverge and a stack ArgVec carries the
            // rewritten arguments until the descriptor is re-created.
            // elide_translation: recovery provably re-creates every
            // descriptor under its client-visible id, so the divergence
            // probe is dead.
            let translated;
            let call_args: &[Value] =
                if !spec.elide_translation && self.translation_needed(cf, Some(desc_id), args) {
                    translated = self.translate_args(cf, Some(desc_id), args);
                    &translated
                } else {
                    args
                };
            match env.invoke(fname, call_args) {
                Ok(v) => {
                    // One descriptor lookup covers the σ step, metadata
                    // harvest and close detection (the hot path).
                    let mut terminated = false;
                    if let Some(d) = self.descs.get_mut(desc_id) {
                        match cf.sigma_const {
                            // Certified (SG060 clean): σ(s, f) reaches
                            // the same successor from every live state,
                            // so the table read and the invalid-branch
                            // check are provably dead.
                            Some(next) => d.state = next,
                            None => match spec.step(d.state, fid) {
                                Some(next) => d.state = next,
                                None => {
                                    // Invalid σ branch: fault detection
                                    // (§III-B); tracking resynchronizes to
                                    // the observed call.
                                    env.stats.invalid_transitions += 1;
                                    d.state = if cf.roles.terminates {
                                        State::Terminated
                                    } else {
                                        State::After(fid)
                                    };
                                }
                            },
                        }
                        if d.state == State::Terminated {
                            terminated = true;
                        } else {
                            // The certified harvest plan: identical to
                            // data_args / retval / track_slot unless the
                            // elision certifier proved a write dead.
                            for &(pos, slot) in &cf.live_data_args {
                                if let Some(val) = args.get(pos) {
                                    // clone(): tracked metadata must
                                    // survive the call; rc bump at worst.
                                    d.meta[slot] = Some(val.clone());
                                }
                            }
                            match cf.retval_eff {
                                RetvalSpec::None | RetvalSpec::NewDesc(_) => {}
                                // clone(): rc bump; `v` is also returned.
                                RetvalSpec::SetData(slot) => d.meta[slot] = Some(v.clone()),
                                RetvalSpec::AccumData(slot) => {
                                    let add = match &v {
                                        Value::Int(n) => *n,
                                        Value::Bytes(b) => b.len() as i64,
                                        _ => 0,
                                    };
                                    let cur = d.meta[slot]
                                        .as_ref()
                                        .and_then(|x| x.int().ok())
                                        .unwrap_or(0);
                                    d.meta[slot] = Some(Value::Int(cur + add));
                                }
                            }
                            if let Some(slot) = cf.store_slot {
                                store_last_args(&mut d.last_args[slot], args);
                            }
                            if !spec.elide_affinity {
                                d.state_thread = Some(env.thread);
                            }
                        }
                    }
                    if terminated {
                        self.close(env, desc_id);
                    }
                    return Ok(v);
                }
                Err(CallError::WouldBlock) => return Err(CallError::WouldBlock),
                Err(e) if is_server_fault(&e, env.server) => {
                    env.ensure_rebooted()?;
                    self.mark_faulty();
                }
                Err(CallError::Service(ServiceError::NotFound)) if !g0_attempted => {
                    // Unknown id at the (possibly rebuilt) server: give
                    // recovery exactly one chance, then redo.
                    g0_attempted = true;
                    if let Some(d) = self.descs.get_mut(desc_id) {
                        d.faulty = true;
                    }
                }
                Err(e) => return Err(e),
            }
        }
    }

    fn recover_descriptor(&mut self, env: &mut StubEnv<'_>, desc_id: i64) -> Result<(), CallError> {
        loop {
            match self.recover_descriptor_once(env, desc_id) {
                // The server faulted again *mid-walk* (a correlated
                // fault): the parent episode's bookkeeping survives —
                // reboot, re-mark every descriptor, and re-run the walk
                // as a child recovery episode. Bounded by the env's
                // retry budget (ensure_rebooted burns one per pass).
                Err(e) if is_server_fault(&e, env.server) && env.retries_left > 0 => {
                    env.stats.nested_recoveries += 1;
                    env.ensure_rebooted()?;
                    self.mark_faulty();
                }
                other => return other,
            }
        }
    }

    fn recover_descriptor_once(
        &mut self,
        env: &mut StubEnv<'_>,
        desc_id: i64,
    ) -> Result<(), CallError> {
        let spec = self.spec;
        let Some(d) = self.descs.get(desc_id) else {
            // Untracked on this edge: only meaningful for interfaces with
            // storage-recorded creations (global / XCParent).
            if spec.records_creations {
                return self.recover_foreign(env, desc_id);
            }
            return Ok(());
        };
        if !d.faulty {
            return Ok(());
        }
        let (creator, parent, state) = (d.creator, d.parent, d.state);

        if spec.model.global && !creator {
            // G0 + U0: the creator's edge rebuilds under the original id.
            self.recover_foreign(env, desc_id)?;
            if let Some(d) = self.descs.get_mut(desc_id) {
                d.faulty = false;
            }
            env.note_descriptor_recovered();
            return Ok(());
        }

        // D1: parents recover root-first.
        if let Some(p) = parent {
            if self.descs.contains_key(p) {
                if self.descs.get(p).is_some_and(|d| d.faulty) {
                    env.note_parent_first();
                }
                self.recover_descriptor(env, p)?;
            } else if spec.records_creations {
                env.note_parent_first();
                self.recover_foreign(env, p)?;
            }
        }

        let effective = self.effective_state(state);
        let walk = match effective {
            State::Terminated | State::Faulty | State::Init => Vec::new(),
            s => spec
                .machine
                .recovery_walk(s)
                .map_err(|_| CallError::Service(ServiceError::NotFound))?,
        };

        if let Some((restore_fn, plan)) = spec.restore.as_ref() {
            // Global creator: the creation step is replaced by the
            // restore upcall, which preserves the original global id.
            let args = self.restore_args(env, desc_id, plan);
            env.replay_for(restore_fn, &args, Some(desc_id), Mechanism::R0)?;
            if spec.cursor_slot.is_some() {
                // CR0: the restore plan's final argument was the last
                // *committed* cursor, so the endpoint resumes exactly
                // where its consumer committed — peeked-but-uncommitted
                // observations are deliberately replayed.
                env.note_mechanism(Mechanism::Cr0);
            }
            if let Some(d) = self.descs.get_mut(desc_id) {
                d.faulty = false;
                d.server_id = desc_id;
            }
            // Replay any post-creation steps of the walk.
            self.replay_walk(env, desc_id, &walk, 1)?;
        } else {
            if let Some(d) = self.descs.get_mut(desc_id) {
                d.faulty = false;
            }
            self.replay_walk(env, desc_id, &walk, 0)?;
        }
        env.note_descriptor_recovered();
        Ok(())
    }

    fn recover_all(&mut self, env: &mut StubEnv<'_>) -> Result<(), CallError> {
        let ids: Vec<i64> = self
            .descs
            .iter()
            .filter(|(_, d)| d.faulty)
            .map(|(id, _)| id)
            .collect();
        for id in ids {
            match self.recover_descriptor(env, id) {
                Ok(()) => {}
                // The descriptor no longer exists anywhere authoritative
                // (freed by another client before the fault): drop the
                // stale tracking record instead of aborting the eager
                // pass.
                Err(CallError::Service(ServiceError::NotFound)) => {
                    if let Some(d) = self.descs.remove(id) {
                        self.recycle(d);
                    }
                }
                Err(e) => return Err(e),
            }
        }
        Ok(())
    }
}

impl InterfaceStub for CompiledStub {
    fn interface(&self) -> &'static str {
        // Interface names come from the static idl table; leak-free
        // static access is not possible for dynamic specs, so map the
        // known six (falling back to a generic tag).
        match self.spec.interface.as_str() {
            "sched" => "sched",
            "mm" => "mm",
            "fs" => "fs",
            "lock" => "lock",
            "evt" => "evt",
            "tmr" => "tmr",
            "chan" => "chan",
            _ => "superglue",
        }
    }

    fn call(
        &mut self,
        env: &mut StubEnv<'_>,
        fname: &str,
        args: &[Value],
    ) -> Result<Value, CallError> {
        self.interp().call(env, fname, args)
    }

    fn recover_descriptor(&mut self, env: &mut StubEnv<'_>, desc_id: i64) -> Result<(), CallError> {
        self.interp().recover_descriptor(env, desc_id)
    }

    fn mark_faulty(&mut self) {
        self.interp().mark_faulty();
    }

    fn recover_all(&mut self, env: &mut StubEnv<'_>) -> Result<(), CallError> {
        self.interp().recover_all(env)
    }

    fn tracked_count(&self) -> usize {
        self.descs.len()
    }

    fn faulty_count(&self) -> usize {
        self.descs.values().filter(|d| d.faulty).count()
    }
}
