//! The generic compiled stub: one interpreter for every interface.
//!
//! Where C³ needs a hand-written stub per service
//! ([`sg_c3::stubs`]), SuperGlue needs exactly one *generic* stub whose
//! behavior is entirely driven by the compiler's
//! [`CompiledStubSpec`]:
//!
//! * descriptor tracking tables (state, metadata, parent links, last
//!   observed arguments) populated according to the spec's argument
//!   annotations;
//! * σ-checked state transitions (invalid branches are counted as
//!   detections);
//! * the Fig 4 redo loop with micro-reboot on the fault exception;
//! * **R0** recovery walks over the precomputed shortest paths, with
//!   `sm_recover_via` substitutions and per-position argument synthesis;
//! * **D1** parent-first ordering, with storage-discovered **U0** upcalls
//!   for cross-component parents;
//! * **D0**/`Y_dr` close semantics;
//! * **G0** storage records + restore upcalls for global descriptors;
//! * thread-affine deferral of blocking walk steps;
//! * client-visible→server descriptor id translation across reboots.

use std::collections::BTreeMap;
use std::sync::Arc;

use composite::{CallError, Mechanism, ServiceError, ThreadId, TraceEventKind, Value};
use sg_c3::stub::{is_server_fault, InterfaceStub};
use sg_c3::StubEnv;
use superglue_compiler::{ArgSource, CompiledFn, CompiledStubSpec, RestoreArg, RetvalSpec};
use superglue_sm::{FnId, State};

/// Pass-through invocation that still honors the fault exception: the
/// server is micro-rebooted (and this stub's descriptors marked faulty)
/// before the call is redone, so untracked-descriptor calls observe
/// post-reboot semantics (e.g. NotFound) rather than the raw fault.
macro_rules! passthrough {
    ($self:ident, $env:ident, $fname:ident, $args:ident) => {
        loop {
            match $env.invoke($fname, $args) {
                Err(e) if is_server_fault(&e, $env.server) => {
                    $env.ensure_rebooted()?;
                    $self.mark_faulty();
                }
                other => return other,
            }
        }
    };
}

/// Parent id conventionally meaning "no parent" (root descriptors).
const NO_PARENT: i64 = 0;

#[derive(Debug, Clone)]
struct GenDesc {
    /// Current server-side id (translated on every call).
    server_id: i64,
    /// Expected state-machine state.
    state: State,
    /// Thread whose call produced the current state (thread affinity).
    state_thread: Option<ThreadId>,
    faulty: bool,
    /// Whether this edge created the descriptor (owns the metadata).
    creator: bool,
    /// Client-visible parent id, when any.
    parent: Option<i64>,
    children: Vec<i64>,
    /// Tracked metadata (`desc_data` arguments and return values),
    /// indexed by compiler-interned slot.
    meta: Vec<Option<Value>>,
    /// Last observed argument vector per interface function.
    last_args: BTreeMap<FnId, Vec<Value>>,
    /// A recovery walk that stopped at a thread-affine step: (walk,
    /// resume index). Completed when `state_thread` next arrives.
    pending_walk: Option<(Vec<FnId>, usize)>,
}

impl GenDesc {
    fn new(
        server_id: i64,
        state: State,
        thread: ThreadId,
        creator: bool,
        parent: Option<i64>,
        meta_slots: usize,
    ) -> Self {
        Self {
            server_id,
            state,
            state_thread: Some(thread),
            faulty: false,
            creator,
            parent,
            children: Vec::new(),
            meta: vec![None; meta_slots],
            last_args: BTreeMap::new(),
            pending_walk: None,
        }
    }
}

/// The compiler-driven interface stub.
#[derive(Debug)]
pub struct CompiledStub {
    spec: Arc<CompiledStubSpec>,
    descs: BTreeMap<i64, GenDesc>,
}

impl CompiledStub {
    /// A stub interpreting the given compiled specification.
    #[must_use]
    pub fn new(spec: Arc<CompiledStubSpec>) -> Self {
        Self {
            spec,
            descs: BTreeMap::new(),
        }
    }

    /// The interface name.
    #[must_use]
    pub fn iface(&self) -> &str {
        &self.spec.interface
    }

    // -----------------------------------------------------------------
    // Argument plumbing
    // -----------------------------------------------------------------

    fn parent_of_args(cf: &CompiledFn, args: &[Value]) -> Option<i64> {
        cf.parent_arg
            .and_then(|i| args.get(i))
            .and_then(|v| v.int().ok())
            .filter(|&p| p != NO_PARENT)
    }

    fn desc_of_args(cf: &CompiledFn, args: &[Value]) -> Option<i64> {
        cf.desc_arg
            .and_then(|i| args.get(i))
            .and_then(|v| v.int().ok())
    }

    /// Rewrite descriptor/parent argument positions to current server
    /// ids.
    fn translate_args(&self, cf: &CompiledFn, desc: Option<i64>, args: &[Value]) -> Vec<Value> {
        let mut out = args.to_vec();
        if let (Some(pos), Some(id)) = (cf.desc_arg, desc) {
            if let Some(d) = self.descs.get(&id) {
                out[pos] = Value::Int(d.server_id);
            }
        }
        if let Some(pos) = cf.parent_arg {
            if let Some(p) = Self::parent_of_args(cf, args) {
                if let Some(pd) = self.descs.get(&p) {
                    out[pos] = Value::Int(pd.server_id);
                }
            }
        }
        out
    }

    /// Synthesize replay arguments for one walk step per the compiled
    /// plan, overlaying tracked state onto the last observed arguments.
    fn synth_args(&self, env: &StubEnv<'_>, fid: FnId, desc_id: i64) -> Vec<Value> {
        let cf = self.spec.fn_of(fid);
        let d = self.descs.get(&desc_id);
        let base: Option<&Vec<Value>> = d.and_then(|d| d.last_args.get(&fid));
        cf.replay_args
            .iter()
            .enumerate()
            .map(|(pos, src)| match src {
                ArgSource::ClientId => Value::from(env.client.0),
                ArgSource::DescId => Value::Int(d.map_or(desc_id, |d| d.server_id)),
                ArgSource::ParentId => {
                    let p = d.and_then(|d| d.parent);
                    match p {
                        Some(p) => Value::Int(self.descs.get(&p).map_or(p, |pd| pd.server_id)),
                        None => Value::Int(NO_PARENT),
                    }
                }
                ArgSource::Meta(slot) => d
                    .and_then(|d| d.meta.get(*slot).cloned().flatten())
                    .or_else(|| base.and_then(|b| b.get(pos).cloned()))
                    .unwrap_or(Value::Int(0)),
                ArgSource::LastObserved => base
                    .and_then(|b| b.get(pos).cloned())
                    .unwrap_or(Value::Int(0)),
            })
            .collect()
    }

    // -----------------------------------------------------------------
    // Tracking updates
    // -----------------------------------------------------------------

    fn harvest(
        &mut self,
        cf: &CompiledFn,
        fid: FnId,
        desc_id: i64,
        args: &[Value],
        ret: &Value,
        thread: ThreadId,
    ) {
        let Some(d) = self.descs.get_mut(&desc_id) else {
            return;
        };
        for &(pos, slot) in &cf.data_args {
            if let Some(v) = args.get(pos) {
                d.meta[slot] = Some(v.clone());
            }
        }
        match cf.retval {
            RetvalSpec::None => {}
            RetvalSpec::NewDesc(slot) => {
                d.meta[slot] = Some(Value::Int(desc_id));
            }
            RetvalSpec::SetData(slot) => {
                d.meta[slot] = Some(ret.clone());
            }
            RetvalSpec::AccumData(slot) => {
                let add = match ret {
                    Value::Int(n) => *n,
                    Value::Bytes(b) => b.len() as i64,
                    _ => 0,
                };
                let cur = d.meta[slot]
                    .as_ref()
                    .and_then(|v| v.int().ok())
                    .unwrap_or(0);
                d.meta[slot] = Some(Value::Int(cur + add));
            }
        }
        if cf.track_args {
            d.last_args.insert(fid, args.to_vec());
        }
        d.state_thread = Some(thread);
    }

    fn close(&mut self, env: &mut StubEnv<'_>, desc_id: i64) {
        let model = self.spec.model;
        let mut dropped = 0u64;
        if model.close_children {
            // D0: drop the tracked subtree.
            let mut stack = self
                .descs
                .get(&desc_id)
                .map(|d| d.children.clone())
                .unwrap_or_default();
            while let Some(c) = stack.pop() {
                if let Some(cd) = self.descs.remove(&c) {
                    dropped += 1;
                    stack.extend(cd.children);
                }
            }
        }
        let remove =
            model.close_removes_tracking || model.close_children || !model.parent.has_parent();
        if remove {
            if let Some(d) = self.descs.remove(&desc_id) {
                dropped += 1;
                if let Some(p) = d.parent {
                    if let Some(pd) = self.descs.get_mut(&p) {
                        pd.children.retain(|&c| c != desc_id);
                    }
                }
            }
        }
        env.kernel.trace_instant(
            env.server,
            env.thread,
            TraceEventKind::DescriptorClosed {
                desc: desc_id,
                dropped,
            },
        );
        env.note_teardown(dropped);
        if self.spec.records_creations {
            let iface = self.spec.interface.clone();
            if let Some(storage) = env.storage {
                let _ = env.kernel.invoke(
                    env.client,
                    env.thread,
                    storage,
                    "st_unrecord",
                    &[Value::from(iface.as_str()), Value::Int(desc_id)],
                );
            }
        }
    }

    fn record_creation(
        &mut self,
        env: &mut StubEnv<'_>,
        desc_id: i64,
        parent: Option<i64>,
        args: &[Value],
        cf: &CompiledFn,
    ) {
        if !self.spec.records_creations {
            return;
        }
        // aux = the first tracked integer argument that is neither the
        // parent nor a component id (e.g. the event group).
        let aux = cf
            .data_args
            .iter()
            .filter(|(pos, _)| {
                Some(*pos) != cf.parent_arg
                    && cf.replay_args.get(*pos) != Some(&ArgSource::ClientId)
            })
            .filter_map(|(pos, _)| args.get(*pos))
            .find_map(|v| v.int().ok())
            .unwrap_or(0);
        let iface = self.spec.interface.clone();
        let _ = env.storage_record(
            &iface,
            desc_id,
            env.client,
            parent.unwrap_or(NO_PARENT),
            aux,
        );
    }

    // -----------------------------------------------------------------
    // Recovery
    // -----------------------------------------------------------------

    /// Recover a parent that is not tracked on this edge: discover its
    /// creator through the storage records and upcall (U0 across edges).
    fn recover_foreign(&mut self, env: &mut StubEnv<'_>, desc_id: i64) -> Result<(), CallError> {
        let iface = self.spec.interface.clone();
        let creator = env.storage_lookup_creator(&iface, desc_id)?;
        if creator == env.client {
            // Racy self-reference: nothing more we can do.
            return Err(CallError::Service(ServiceError::NotFound));
        }
        env.upcall_recover(creator, desc_id)
    }

    fn effective_state(&self, state: State) -> State {
        match state {
            State::After(f) => match self.spec.recover_via.get(&f) {
                Some(&g) => State::After(g),
                None => state,
            },
            other => other,
        }
    }

    fn replay_walk(
        &mut self,
        env: &mut StubEnv<'_>,
        desc_id: i64,
        walk: &[FnId],
        start: usize,
    ) -> Result<(), CallError> {
        for (i, &fid) in walk.iter().enumerate().skip(start) {
            let roles = self.spec.machine.roles(fid);
            // Thread-affine blocking steps may not be replayed verbatim
            // by a different thread: either substitute the declared
            // restore entry point (sm_recover_block) passing the recorded
            // owner, or defer the remaining walk to the owner.
            if roles.blocks {
                let owner = self.descs.get(&desc_id).and_then(|d| d.state_thread);
                if owner != Some(env.thread) {
                    if let Some(&gid) = self.spec.recover_block.get(&fid) {
                        let gname = self.spec.machine.function_name(gid).to_owned();
                        let owner_id = owner.map_or(0, |t| i64::from(t.0));
                        let mut args = self.synth_args(env, gid, desc_id);
                        for (pos, src) in self.spec.fn_of(gid).replay_args.iter().enumerate() {
                            if *src == ArgSource::LastObserved {
                                args[pos] = Value::Int(owner_id);
                            }
                        }
                        env.replay_for(&gname, &args, Some(desc_id), Mechanism::T1)?;
                        // T1: the blocking step completed thread-affinely
                        // on the recorded owner's behalf, not verbatim by
                        // the recovering thread (C³ counts its
                        // `lock_restore` substitution the same way).
                        env.note_deferred_completion();
                        continue;
                    }
                    if let Some(d) = self.descs.get_mut(&desc_id) {
                        d.pending_walk = Some((walk.to_vec(), i));
                    }
                    env.note_deferred_completion();
                    return Ok(());
                }
            }
            let fname = self.spec.machine.function_name(fid).to_owned();
            let args = self.synth_args(env, fid, desc_id);
            let ret = env.replay_for(&fname, &args, Some(desc_id), Mechanism::R0)?;
            if roles.creates {
                if let Ok(new_id) = ret.int() {
                    if let Some(d) = self.descs.get_mut(&desc_id) {
                        d.server_id = new_id;
                    }
                }
            }
        }
        Ok(())
    }

    fn complete_pending(&mut self, env: &mut StubEnv<'_>, desc_id: i64) -> Result<(), CallError> {
        let Some(d) = self.descs.get(&desc_id) else {
            return Ok(());
        };
        if d.state_thread != Some(env.thread) {
            return Ok(());
        }
        let Some((walk, start)) = d.pending_walk.clone() else {
            return Ok(());
        };
        if let Some(d) = self.descs.get_mut(&desc_id) {
            d.pending_walk = None;
        }
        self.replay_walk(env, desc_id, &walk, start)
    }

    fn restore_args(&self, env: &StubEnv<'_>, desc_id: i64, plan: &[RestoreArg]) -> Vec<Value> {
        let d = self.descs.get(&desc_id);
        plan.iter()
            .map(|a| match a {
                RestoreArg::Creator => Value::from(env.client.0),
                RestoreArg::DescId => Value::Int(desc_id),
                RestoreArg::Meta(slot) => d
                    .and_then(|d| d.meta.get(*slot).cloned().flatten())
                    .unwrap_or(Value::Int(0)),
            })
            .collect()
    }
}

impl InterfaceStub for CompiledStub {
    fn interface(&self) -> &'static str {
        // Interface names come from the static idl table; leak-free
        // static access is not possible for dynamic specs, so map the
        // known six (falling back to a generic tag).
        match self.spec.interface.as_str() {
            "sched" => "sched",
            "mm" => "mm",
            "fs" => "fs",
            "lock" => "lock",
            "evt" => "evt",
            "tmr" => "tmr",
            _ => "superglue",
        }
    }

    fn call(
        &mut self,
        env: &mut StubEnv<'_>,
        fname: &str,
        args: &[Value],
    ) -> Result<Value, CallError> {
        let spec = Arc::clone(&self.spec);
        let Some((fid, cf)) = spec.fn_by_name(fname) else {
            // Not part of the described interface: pass through (with
            // fault handling).
            passthrough!(self, env, fname, args);
        };

        if cf.roles.creates {
            let parent = Self::parent_of_args(cf, args);
            let mut g0_attempted = false;
            loop {
                // D1: a faulty (or foreign, post-fault) parent recovers
                // before the creation that depends on it.
                if let Some(p) = parent {
                    if self.descs.get(&p).is_some_and(|d| d.faulty) {
                        env.note_parent_first();
                        self.recover_descriptor(env, p)?;
                    }
                }
                let real_args = self.translate_args(cf, None, args);
                match env.invoke(fname, &real_args) {
                    Ok(v) => {
                        let id = v.int().map_err(|e| CallError::Service(e.into()))?;
                        let state = State::After(fid);
                        let mut d = GenDesc::new(
                            id,
                            state,
                            env.thread,
                            true,
                            parent,
                            spec.meta_names.len(),
                        );
                        if cf.track_args {
                            d.last_args.insert(fid, args.to_vec());
                        }
                        self.descs.insert(id, d);
                        if let Some(p) = parent {
                            if let Some(pd) = self.descs.get_mut(&p) {
                                if !pd.children.contains(&id) {
                                    pd.children.push(id);
                                }
                            }
                        }
                        self.harvest(cf, fid, id, args, &v, env.thread);
                        env.kernel.trace_instant(
                            env.server,
                            env.thread,
                            TraceEventKind::DescriptorCreated { desc: id },
                        );
                        self.record_creation(env, id, parent, args, cf);
                        return Ok(v);
                    }
                    Err(e) if is_server_fault(&e, env.server) => {
                        env.ensure_rebooted()?;
                        self.mark_faulty();
                    }
                    // The parent vanished with the reboot and is tracked
                    // by another component: G0-style discovery (once).
                    Err(CallError::Service(ServiceError::NotFound))
                        if !g0_attempted
                            && parent.is_some()
                            && self.spec.records_creations
                            && !self.descs.contains_key(&parent.expect("checked")) =>
                    {
                        g0_attempted = true;
                        self.recover_foreign(env, parent.expect("checked"))?;
                    }
                    Err(e) => return Err(e),
                }
            }
        }

        let Some(desc_id) = Self::desc_of_args(cf, args) else {
            passthrough!(self, env, fname, args);
        };
        if !self.descs.contains_key(&desc_id) {
            if self.spec.model.global {
                // First use of a foreign global descriptor: track it so a
                // later fault can be recovered via G0.
                let init_state = self
                    .spec
                    .machine
                    .creation_fns()
                    .next()
                    .map_or(State::Init, State::After);
                let slots = self.spec.meta_names.len();
                self.descs.insert(
                    desc_id,
                    GenDesc::new(desc_id, init_state, env.thread, false, None, slots),
                );
            } else {
                // Untracked local descriptor: pass through (with fault
                // handling so the redo observes post-reboot semantics).
                passthrough!(self, env, fname, args);
            }
        }

        let mut g0_attempted = false;
        loop {
            if self.descs.get(&desc_id).is_some_and(|d| d.faulty) {
                self.recover_descriptor(env, desc_id)?;
            }
            self.complete_pending(env, desc_id)?;
            let real_args = self.translate_args(cf, Some(desc_id), args);
            match env.invoke(fname, &real_args) {
                Ok(v) => {
                    // One descriptor lookup covers the σ step, metadata
                    // harvest and close detection (the hot path).
                    let mut terminated = false;
                    if let Some(d) = self.descs.get_mut(&desc_id) {
                        match spec.step(d.state, fid) {
                            Some(next) => d.state = next,
                            None => {
                                // Invalid σ branch: fault detection
                                // (§III-B); tracking resynchronizes to
                                // the observed call.
                                env.stats.invalid_transitions += 1;
                                d.state = if cf.roles.terminates {
                                    State::Terminated
                                } else {
                                    State::After(fid)
                                };
                            }
                        }
                        if d.state == State::Terminated {
                            terminated = true;
                        } else {
                            for &(pos, slot) in &cf.data_args {
                                if let Some(val) = args.get(pos) {
                                    d.meta[slot] = Some(val.clone());
                                }
                            }
                            match cf.retval {
                                RetvalSpec::None | RetvalSpec::NewDesc(_) => {}
                                RetvalSpec::SetData(slot) => d.meta[slot] = Some(v.clone()),
                                RetvalSpec::AccumData(slot) => {
                                    let add = match &v {
                                        Value::Int(n) => *n,
                                        Value::Bytes(b) => b.len() as i64,
                                        _ => 0,
                                    };
                                    let cur = d.meta[slot]
                                        .as_ref()
                                        .and_then(|x| x.int().ok())
                                        .unwrap_or(0);
                                    d.meta[slot] = Some(Value::Int(cur + add));
                                }
                            }
                            if cf.track_args {
                                d.last_args.insert(fid, args.to_vec());
                            }
                            d.state_thread = Some(env.thread);
                        }
                    }
                    if terminated {
                        self.close(env, desc_id);
                    }
                    return Ok(v);
                }
                Err(CallError::WouldBlock) => return Err(CallError::WouldBlock),
                Err(e) if is_server_fault(&e, env.server) => {
                    env.ensure_rebooted()?;
                    self.mark_faulty();
                }
                Err(CallError::Service(ServiceError::NotFound)) if !g0_attempted => {
                    // Unknown id at the (possibly rebuilt) server: give
                    // recovery exactly one chance, then redo.
                    g0_attempted = true;
                    if let Some(d) = self.descs.get_mut(&desc_id) {
                        d.faulty = true;
                    }
                }
                Err(e) => return Err(e),
            }
        }
    }

    fn recover_descriptor(&mut self, env: &mut StubEnv<'_>, desc_id: i64) -> Result<(), CallError> {
        let Some(d) = self.descs.get(&desc_id) else {
            // Untracked on this edge: only meaningful for interfaces with
            // storage-recorded creations (global / XCParent).
            if self.spec.records_creations {
                return self.recover_foreign(env, desc_id);
            }
            return Ok(());
        };
        if !d.faulty {
            return Ok(());
        }
        let (creator, parent, state) = (d.creator, d.parent, d.state);

        if self.spec.model.global && !creator {
            // G0 + U0: the creator's edge rebuilds under the original id.
            self.recover_foreign(env, desc_id)?;
            if let Some(d) = self.descs.get_mut(&desc_id) {
                d.faulty = false;
            }
            env.note_descriptor_recovered();
            return Ok(());
        }

        // D1: parents recover root-first.
        if let Some(p) = parent {
            if self.descs.contains_key(&p) {
                if self.descs.get(&p).is_some_and(|d| d.faulty) {
                    env.note_parent_first();
                }
                self.recover_descriptor(env, p)?;
            } else if self.spec.records_creations {
                env.note_parent_first();
                self.recover_foreign(env, p)?;
            }
        }

        let effective = self.effective_state(state);
        let walk = match effective {
            State::Terminated | State::Faulty | State::Init => Vec::new(),
            s => self
                .spec
                .machine
                .recovery_walk(s)
                .map_err(|_| CallError::Service(ServiceError::NotFound))?,
        };

        if let Some((restore_fn, plan)) = self.spec.restore.clone() {
            // Global creator: the creation step is replaced by the
            // restore upcall, which preserves the original global id.
            let args = self.restore_args(env, desc_id, &plan);
            env.replay_for(&restore_fn, &args, Some(desc_id), Mechanism::R0)?;
            if let Some(d) = self.descs.get_mut(&desc_id) {
                d.faulty = false;
                d.server_id = desc_id;
            }
            // Replay any post-creation steps of the walk.
            self.replay_walk(env, desc_id, &walk, 1)?;
        } else {
            if let Some(d) = self.descs.get_mut(&desc_id) {
                d.faulty = false;
            }
            self.replay_walk(env, desc_id, &walk, 0)?;
        }
        env.note_descriptor_recovered();
        Ok(())
    }

    fn mark_faulty(&mut self) {
        for d in self.descs.values_mut() {
            d.faulty = true;
        }
    }

    fn recover_all(&mut self, env: &mut StubEnv<'_>) -> Result<(), CallError> {
        let ids: Vec<i64> = self
            .descs
            .iter()
            .filter(|(_, d)| d.faulty)
            .map(|(&id, _)| id)
            .collect();
        for id in ids {
            match self.recover_descriptor(env, id) {
                Ok(()) => {}
                // The descriptor no longer exists anywhere authoritative
                // (freed by another client before the fault): drop the
                // stale tracking record instead of aborting the eager
                // pass.
                Err(CallError::Service(ServiceError::NotFound)) => {
                    self.descs.remove(&id);
                }
                Err(e) => return Err(e),
            }
        }
        Ok(())
    }

    fn tracked_count(&self) -> usize {
        self.descs.len()
    }

    fn faulty_count(&self) -> usize {
        self.descs.values().filter(|d| d.faulty).count()
    }
}
