//! The shipped SuperGlue IDL files and their compilation products.
//!
//! The six `.sg` files under `idl/` are the complete declarative
//! replacement for the hand-written C³ stub code — the artifact Fig 6(c)
//! measures. They are embedded here so every consumer (runtime, fault
//! campaign, benches, examples) compiles the identical specifications.

use std::collections::BTreeMap;
use std::sync::Arc;

use superglue_compiler::{compile, Compilation};
use superglue_idl::IdlError;

/// The six (interface name, IDL source) pairs, in the paper's Table II
/// row order.
#[must_use]
pub fn idl_sources() -> [(&'static str, &'static str); 6] {
    [
        ("sched", include_str!("../../../idl/sched.sg")),
        ("mm", include_str!("../../../idl/mm.sg")),
        ("fs", include_str!("../../../idl/fs.sg")),
        ("lock", include_str!("../../../idl/lock.sg")),
        ("evt", include_str!("../../../idl/evt.sg")),
        ("tmr", include_str!("../../../idl/tmr.sg")),
    ]
}

/// All six interfaces compiled: specs, stub specs, generated sources.
#[derive(Debug, Clone)]
pub struct CompiledInterfaces {
    compilations: BTreeMap<&'static str, Arc<Compilation>>,
}

impl CompiledInterfaces {
    /// The compilation for one interface.
    #[must_use]
    pub fn get(&self, iface: &str) -> Option<&Arc<Compilation>> {
        self.compilations.get(iface)
    }

    /// Iterate over (interface, compilation) in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, &Arc<Compilation>)> {
        self.compilations.iter().map(|(&k, v)| (k, v))
    }

    /// Number of compiled interfaces.
    #[must_use]
    pub fn len(&self) -> usize {
        self.compilations.len()
    }

    /// Whether no interfaces were compiled.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.compilations.is_empty()
    }
}

/// Parse, validate and compile all six shipped IDL files.
///
/// # Errors
///
/// The first [`IdlError`] across the files, tagged with the file name in
/// the message path.
pub fn compile_all() -> Result<CompiledInterfaces, IdlError> {
    let mut compilations = BTreeMap::new();
    for (name, src) in idl_sources() {
        let spec = superglue_idl::compile_interface(name, src)?;
        compilations.insert(name, Arc::new(compile(&spec)));
    }
    Ok(CompiledInterfaces { compilations })
}

/// [`compile_all`] with every certified tracking elision applied to the
/// runtime stub specs (`--elide` mode): σ-constant fast paths, dead
/// harvest/store suppression and the pending/affinity/translation probe
/// skips, each backed by an SG060–SG065 proof. Generated sources and
/// certificates are identical to [`compile_all`]'s.
///
/// # Errors
///
/// The first [`IdlError`] across the files; an unprovable `sm_elide`
/// request surfaces as a semantic error (the linter reports it as
/// SG060–SG065 with spans).
pub fn compile_all_elided() -> Result<CompiledInterfaces, IdlError> {
    let mut compilations = BTreeMap::new();
    for (name, src) in idl_sources() {
        let spec = superglue_idl::compile_interface(name, src)?;
        let c =
            superglue_compiler::compile_elided(&spec).map_err(|message| IdlError::Semantic {
                message: format!("{name}: {message}"),
            })?;
        compilations.insert(name, Arc::new(c));
    }
    Ok(CompiledInterfaces { compilations })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_six_idl_files_compile() {
        let c = compile_all().expect("shipped IDL must be valid");
        assert_eq!(c.len(), 6);
        for iface in ["sched", "mm", "fs", "lock", "evt", "tmr"] {
            assert!(c.get(iface).is_some(), "{iface} missing");
        }
    }

    #[test]
    fn idl_files_average_around_paper_size() {
        // §VII: "The average SuperGlue IDL file ... is 37 lines of code".
        let total: usize = idl_sources()
            .iter()
            .map(|(_, s)| superglue_idl::idl_loc(s))
            .sum();
        let avg = total / 6;
        assert!(
            (15..=60).contains(&avg),
            "average IDL LOC {avg} out of expected band"
        );
    }

    #[test]
    fn generated_loc_is_an_order_of_magnitude_larger() {
        let c = compile_all().unwrap();
        for (name, src) in idl_sources() {
            let idl = superglue_idl::idl_loc(src);
            let generated = c.get(name).unwrap().generated_loc();
            assert!(
                generated >= 4 * idl,
                "{name}: generated {generated} LOC vs IDL {idl} LOC — expected a large expansion"
            );
        }
    }

    #[test]
    fn evt_is_global_and_fs_has_resource_data() {
        let c = compile_all().unwrap();
        assert!(c.get("evt").unwrap().stub_spec.model.global);
        assert!(c.get("fs").unwrap().stub_spec.model.resource_has_data);
        assert!(c.get("mm").unwrap().stub_spec.model.close_children);
        assert!(c.get("lock").unwrap().stub_spec.model.blocks);
    }
}
