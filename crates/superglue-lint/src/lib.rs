//! `sglint`: a recovery-soundness static analyzer for SuperGlue IDL
//! specs and their compiled stubs.
//!
//! The SuperGlue paper's central claim is that interface-level
//! specification makes system-level fault tolerance *checkable*: the IDL
//! names the descriptor state machine, the tracked metadata, and the
//! recovery substitutions, so a tool can prove — before any stub code
//! runs — that every reachable descriptor state is recoverable and every
//! replayed argument is synthesizable. C³-style hand-written stubs had no
//! such artifact, and their "untracked argument" bugs surfaced only under
//! fault injection. This crate turns those properties into compile-time
//! diagnostics:
//!
//! * **state-graph soundness** ([`graph`], `SG01x`) — terminal
//!   reachability (no descriptor leaks), no transitions out of terminal
//!   functions, no orphan functions;
//! * **recoverability completeness** ([`graph`], `SG02x`) — every
//!   reachable state has a replay chain; blocking functions are never
//!   replayed mid-walk; blocked states have `sm_recover_block` entry
//!   points; `sm_recover_via` substitutions do not silently discard
//!   tracked effects;
//! * **tracking sufficiency** ([`tracking`], `SG03x`/`SG041`) — every
//!   argument of every replayable function is synthesizable from tracked
//!   state, and tracked state is actually consumed;
//! * **stub conformance** ([`conformance`], `SG05x`) — the compiled
//!   [`CompiledStubSpec`](superglue_compiler::CompiledStubSpec) agrees
//!   with an independent recomputation of all of the above;
//! * **tracking-elision certification** ([`elision`], `SG06x`) — every
//!   `sm_elide` fast-path request is proven idempotent-on-replay
//!   (constant σ-successor, dead stores, dead harvests, dead affinity),
//!   and the compiler's elision certificate matches an independent
//!   recomputation, so an emitted stub can never elide anything
//!   unproven;
//! * **channel-cursor soundness** ([`channel`], `SG07x`) — a
//!   peek-before-commit channel (`sm_channel`/`sm_cursor`) declares a
//!   committed cursor the G0 restore plan can carry, and no effective
//!   recovery walk replays a data-moving function, so a re-seated
//!   endpoint observes every message exactly once.
//!
//! The library entry points are [`lint_source`] (text → report),
//! [`lint_parsed`] (AST → report), [`lint_spec`] (validated spec →
//! report), and [`compile_checked`] — the checked replacement for
//! [`superglue_compiler::compile`] that refuses to emit stubs for specs
//! with errors. The `sglint` binary wraps [`lint_source`] for CI use.

pub mod channel;
pub mod conformance;
pub mod diag;
pub mod elision;
pub mod graph;
pub mod tracking;

use std::collections::BTreeMap;

pub use diag::{Code, Diagnostic, LintReport, Severity};

use superglue_idl::ast::SmDecl;
use superglue_idl::{IdlError, IdlFile, InterfaceSpec, Span};
use superglue_sm::{FnId, State, StateMachine};

/// Source locations harvested from a parsed [`IdlFile`], so diagnostics
/// computed over the (span-free) model types can still point at the
/// offending declaration. All lookups are by name and degrade to `None`
/// when the index is [`empty`](SpanIndex::empty) — analyses over
/// hand-built [`InterfaceSpec`]s simply produce span-less diagnostics.
#[derive(Debug, Clone, Default)]
pub struct SpanIndex {
    fns: Vec<(String, Span)>,
    params: Vec<(String, String, Span)>,
    sm: Vec<(SmDecl, Span)>,
}

impl SpanIndex {
    /// An index with no locations (for specs not built from source).
    #[must_use]
    pub fn empty() -> Self {
        Self::default()
    }

    /// Harvest spans from a parsed file.
    #[must_use]
    pub fn from_file(file: &IdlFile) -> Self {
        let mut idx = Self::default();
        for f in &file.functions {
            idx.fns.push((f.name.clone(), f.span));
            for p in &f.params {
                idx.params.push((f.name.clone(), p.name.clone(), p.span));
            }
        }
        for (decl, &span) in file.sm_decls.iter().zip(&file.sm_spans) {
            idx.sm.push((decl.clone(), span));
        }
        idx
    }

    /// The span of a function's name token.
    #[must_use]
    pub fn fn_span(&self, name: &str) -> Option<Span> {
        self.fns.iter().find(|(n, _)| n == name).map(|&(_, s)| s)
    }

    /// The span of a parameter of a function.
    #[must_use]
    pub fn param_span(&self, func: &str, param: &str) -> Option<Span> {
        self.params
            .iter()
            .find(|(f, p, _)| f == func && p == param)
            .map(|&(_, _, s)| s)
    }

    /// The span of the first `sm_*` declaration matching `pred`.
    #[must_use]
    pub fn sm_span(&self, mut pred: impl FnMut(&SmDecl) -> bool) -> Option<Span> {
        self.sm.iter().find(|(d, _)| pred(d)).map(|&(_, s)| s)
    }
}

/// Whether a parameter is the client component id, which replay
/// synthesizes from the invocation context ([`superglue_compiler`] uses
/// the same predicate when lowering replay plans).
pub(crate) fn compid_like(ty: &str, name: &str) -> bool {
    ty.contains("componentid") || name == "compid"
}

/// Human rendering of a state using function *names* (the machine's own
/// `Display` uses opaque `fn#N` ids).
pub(crate) fn fmt_state(machine: &StateMachine, s: State) -> String {
    match s {
        State::After(f) => format!("after({})", machine.function_name(f)),
        other => other.to_string(),
    }
}

/// Render a replay walk as a state path:
/// `s0 --lock_alloc--> after(lock_alloc) --lock_take--> after(lock_take)`.
pub(crate) fn fmt_walk(machine: &StateMachine, walk: &[FnId]) -> String {
    let mut out = String::from("s0");
    for &f in walk {
        out.push_str(&format!(
            " --{}--> {}",
            machine.function_name(f),
            fmt_state(machine, State::After(f))
        ));
    }
    out
}

/// The state recovery actually rebuilds for `After(f)`: the
/// `sm_recover_via` substitute when one is declared, else `f` itself.
pub(crate) fn recovery_target(spec: &InterfaceSpec, f: FnId) -> FnId {
    spec.recover_via
        .iter()
        .find(|&&(src, _)| src == f)
        .map_or(f, |&(_, tgt)| tgt)
}

/// Independent recomputation of the replayable-function set — the
/// functions whose arguments recovery must be able to synthesize — each
/// mapped to a human-readable reason. Mirrors the compiler's
/// `walk_functions`: every function on the effective (post-substitution)
/// recovery walk of any reachable state, plus creation functions, plus
/// `sm_recover_block` restore entry points.
pub(crate) fn replayable_fns(spec: &InterfaceSpec) -> BTreeMap<FnId, String> {
    let mut out = BTreeMap::new();
    for i in 0..spec.fns.len() {
        let f = FnId(i as u32);
        let target = recovery_target(spec, f);
        if let Ok(walk) = spec.machine.recovery_walk(State::After(target)) {
            for g in walk {
                out.entry(g).or_insert_with(|| {
                    format!(
                        "on the recovery walk for state after({})",
                        spec.machine.function_name(f)
                    )
                });
            }
        }
        if spec.machine.roles(f).creates {
            out.entry(f)
                .or_insert_with(|| "a creation function".to_owned());
        }
    }
    for &(_, g) in &spec.recover_block {
        out.entry(g)
            .or_insert_with(|| "an sm_recover_block restore entry point".to_owned());
    }
    out
}

/// Map a front-end [`IdlError`] to its diagnostic.
fn front_end_diag(err: &IdlError) -> Diagnostic {
    match err {
        IdlError::Lex { span, found } => {
            Diagnostic::new(Code::SyntaxError, format!("unexpected character {found:?}"))
                .with_span(Some(*span))
        }
        IdlError::UnterminatedComment { span } => {
            Diagnostic::new(Code::SyntaxError, "unterminated block comment").with_span(Some(*span))
        }
        IdlError::Parse {
            span,
            expected,
            found,
        } => Diagnostic::new(
            Code::SyntaxError,
            format!("expected {expected}, found {found}"),
        )
        .with_span(Some(*span)),
        IdlError::Semantic { message } => Diagnostic::new(Code::SemanticError, message.clone()),
        IdlError::Model(e) => Diagnostic::new(Code::ModelError, e.to_string()),
        other => Diagnostic::new(Code::SemanticError, other.to_string()),
    }
}

/// Lint a validated interface spec (with optional source spans).
///
/// Runs the graph, tracking, and stub-conformance analyses; the
/// conformance pass cross-checks a freshly lowered
/// [`CompiledStubSpec`](superglue_compiler::CompiledStubSpec) against the
/// lint's own recomputation, so a regression in the compiler's lowering
/// surfaces here even when the spec itself is sound.
#[must_use]
pub fn lint_spec(spec: &InterfaceSpec, spans: &SpanIndex) -> LintReport {
    let mut diags = graph::check(spec, spans);
    diags.extend(tracking::check(spec, spans));
    diags.extend(channel::check(spec, spans));
    let stub = superglue_compiler::ir::lower(spec);
    diags.extend(conformance::check(spec, &stub));
    diags.extend(elision::check(spec, &stub, spans));
    LintReport::new(&spec.name, diags)
}

/// Lint a parsed (but not yet validated) IDL file.
///
/// Validation failures become `SG002`/`SG003` diagnostics; a valid file
/// proceeds to the full [`lint_spec`] analyses with source spans.
#[must_use]
pub fn lint_parsed(name: &str, file: &IdlFile) -> LintReport {
    match superglue_idl::validate::validate(name, file) {
        Err(err) => LintReport::new(name, vec![front_end_diag(&err)]),
        Ok(spec) => lint_spec(&spec, &SpanIndex::from_file(file)),
    }
}

/// Lint IDL source text. Lex/parse failures become `SG001` diagnostics.
#[must_use]
pub fn lint_source(name: &str, source: &str) -> LintReport {
    match superglue_idl::parser::parse(source) {
        Err(err) => LintReport::new(name, vec![front_end_diag(&err)]),
        Ok(file) => lint_parsed(name, &file),
    }
}

/// Compile an interface **only if it lints clean of errors** — the
/// checked replacement for [`superglue_compiler::compile`]. Warnings and
/// notes do not block compilation (gate on
/// [`LintReport::fails`] with `deny_warnings` yourself for stricter
/// policies); any error-severity diagnostic refuses stub emission, so
/// unsound specs can never reach the runtime.
///
/// # Errors
///
/// The full [`LintReport`] when any error-severity diagnostic fires.
pub fn compile_checked(
    name: &str,
    source: &str,
) -> Result<superglue_compiler::Compilation, LintReport> {
    let report = lint_source(name, source);
    if report.has_errors() {
        return Err(report);
    }
    let spec = superglue_idl::compile_interface(name, source)
        .expect("lint found no front-end errors, so compilation must succeed");
    Ok(superglue_compiler::compile(&spec))
}

#[cfg(test)]
mod tests {
    use super::*;

    const LOCK: &str = include_str!("../../../idl/lock.sg");

    #[test]
    fn compid_detection() {
        assert!(compid_like("componentid_t", "cid"));
        assert!(compid_like("long", "compid"));
        assert!(!compid_like("long", "owner"));
    }

    #[test]
    fn replayable_set_matches_compiler_track_args() {
        let spec = superglue_idl::compile_interface("lock", LOCK).unwrap();
        let stub = superglue_compiler::ir::lower(&spec);
        let ours = replayable_fns(&spec);
        for (i, f) in stub.fns.iter().enumerate() {
            assert_eq!(
                f.track_args,
                ours.contains_key(&FnId(i as u32)),
                "replayable-set divergence on {}",
                f.name
            );
        }
        // lock_restore is replayable only because it is a restore entry.
        let (restore_id, _) = stub.fn_by_name("lock_restore").unwrap();
        assert!(ours[&restore_id].contains("restore entry point"));
    }

    #[test]
    fn walk_rendering_uses_function_names() {
        let spec = superglue_idl::compile_interface("lock", LOCK).unwrap();
        let take = spec.machine.function_by_name("lock_take").unwrap();
        let walk = spec.machine.recovery_walk(State::After(take)).unwrap();
        assert_eq!(
            fmt_walk(&spec.machine, &walk),
            "s0 --lock_alloc--> after(lock_alloc) --lock_take--> after(lock_take)"
        );
    }

    #[test]
    fn syntax_error_becomes_sg001_with_span() {
        let report = lint_source("bad", "sm_creation(;\n");
        assert!(report.has_errors());
        assert_eq!(report.diagnostics[0].code, Code::SyntaxError);
        assert!(report.diagnostics[0].span.is_some());
    }

    #[test]
    fn semantic_error_becomes_sg002() {
        let report = lint_source("bad", "sm_creation(ghost);\n");
        assert_eq!(report.diagnostics[0].code, Code::SemanticError);
        assert!(report.diagnostics[0]
            .message
            .contains("undeclared function"));
    }

    #[test]
    fn compile_checked_accepts_sound_spec() {
        let out = compile_checked("lock", LOCK).expect("lock.sg is sound");
        assert_eq!(out.stub_spec.interface, "lock");
        assert!(out.client_source.contains("lock_take"));
    }

    #[test]
    fn compile_checked_refuses_unsound_spec() {
        // lock.sg without its recovery declarations: blocked states become
        // unrestorable, so stub emission must be refused.
        let broken: String = LOCK
            .lines()
            .filter(|l| !l.contains("sm_recover"))
            .collect::<Vec<_>>()
            .join("\n");
        let report = compile_checked("lock", &broken).unwrap_err();
        assert!(report.has_errors());
        assert!(report
            .diagnostics
            .iter()
            .any(|d| d.code == Code::BlockingMidWalk || d.code == Code::BlockedStateNotRestorable));
    }

    #[test]
    fn span_index_lookups() {
        let file = superglue_idl::parser::parse(LOCK).unwrap();
        let idx = SpanIndex::from_file(&file);
        assert!(idx.fn_span("lock_take").is_some());
        assert!(idx.param_span("lock_restore", "owner").is_some());
        assert!(idx
            .sm_span(|d| matches!(d, SmDecl::RecoverBlock(f, _) if f == "lock_take"))
            .is_some());
        assert!(idx.fn_span("nope").is_none());
        assert!(SpanIndex::empty().fn_span("lock_take").is_none());
    }
}
