//! Tracking-elision certification (`SG060`–`SG065`).
//!
//! `sm_elide(f)` asks the compiler to drop `f`'s per-call descriptor
//! bookkeeping and emit an untracked fast-path stub. That is only sound
//! when nothing observable depends on the elided writes: the recovery
//! replay must reconstruct the descriptor without reading them, the
//! fault-detection counters must be statically decided, and the restore
//! protocol must not consult the skipped stamps. This module proves (or
//! refutes) each request **independently of the compiler's certifier**:
//! every fact is recomputed here from the validated [`InterfaceSpec`]
//! and its state machine alone — no [`superglue_compiler::ElisionFacts`]
//! code, no [`superglue_sm::MachineFacts`], no lowered replay plans.
//!
//! Per-request refutations:
//!
//! * `SG060` — the σ-successor is not constant over the resync domain,
//!   so the transition check (and its invalid-transition accounting)
//!   stays live;
//! * `SG061` — the replay plan falls back to the stored last arguments,
//!   so the per-call store cannot be skipped;
//! * `SG062` — the request names a creation, whose descriptor install
//!   and creation record are never elidable;
//! * `SG063` — the function blocks and some effective recovery walk
//!   blocks too, so restore reads the thread-affinity stamp;
//! * `SG065` — a tracked argument or return value of the function is in
//!   the replay read-set, so the metadata harvest feeds recovery.
//!
//! `SG064` is the cross-check: the compiler's certificate
//! ([`ElisionFacts::certify`]) and the elision fields of the compiled
//! stub itself are compared fact-by-fact against this module's
//! derivation. Any drift — a certifier regression, a stale certificate,
//! or a hand-tampered stub that elides something unproven — is an
//! error, so an unsound fast path can never ship silently.

use std::collections::BTreeSet;

use superglue_compiler::{CompiledStubSpec, ElisionFacts, RetvalSpec};
use superglue_idl::ast::SmDecl;
use superglue_idl::{FnSig, InterfaceSpec, TrackKind};
use superglue_sm::{FnId, State};

use crate::diag::{Code, Diagnostic};
use crate::{compid_like, fmt_state, recovery_target, replayable_fns, SpanIndex};

/// The lint's own elision facts, derived from the validated spec.
struct LintFacts {
    /// Per-function constant σ-successor over the resync domain (all
    /// non-terminal `After` states). `None` for creations, partial σ,
    /// state-dependent successors, or when terminal calls do not
    /// provably untrack the descriptor.
    sigma_const: Vec<Option<State>>,
    /// Per-function: parameters whose replay source is the stored
    /// last-argument fallback. Empty means the store is dead.
    store_live_args: Vec<Vec<String>>,
    /// Per-function: tracked-data parameters in the replay read-set.
    live_harvest: Vec<Vec<String>>,
    /// Per-function: the tracked (non-creation) return value lands in a
    /// slot nothing reads.
    retval_dead: Vec<bool>,
    /// Metadata names some replay or restore plan reads.
    live_meta: BTreeSet<String>,
    /// No effective walk needs pending-call bookkeeping.
    pending_dead: bool,
    /// No effective walk contains a blocking function.
    affinity_dead: bool,
    /// Blocking functions on effective walks (for messages).
    blocking_walk_fns: Vec<String>,
    /// Descriptor ids survive micro-reboots without translation.
    id_stable: bool,
    /// Creation records have no reader (never true for valid specs).
    records_dead: bool,
    /// Terminal calls provably remove tracking, keeping `Terminated`
    /// out of the resync domain.
    terminals_untrack: bool,
}

/// Metadata slots a creation is guaranteed to have written by the time
/// any replay runs: its harvested parameters plus the returned id.
fn creation_written(sig: &FnSig) -> BTreeSet<String> {
    let mut set: BTreeSet<String> = sig.data_params().map(|p| p.name.clone()).collect();
    if let Some((_, name, _)) = &sig.retval_tracked {
        set.insert(name.clone());
    }
    set
}

/// Recompute every elision fact from the validated spec.
fn certify(spec: &InterfaceSpec) -> LintFacts {
    let machine = &spec.machine;
    let n = spec.fns.len();

    // σ-constancy is only usable when closing a descriptor removes its
    // tracking entry; otherwise `Terminated` persists on live entries
    // and the non-terminal-`After` domain under-approximates.
    let terminals_untrack = spec.model.close_removes_tracking
        || spec.model.close_children
        || !spec.model.parent.has_parent();

    // The resync domain: every state a live tracked descriptor can hold
    // when a non-creation function is applied (creations bypass σ, and
    // the invalid-transition resync can park a descriptor in `After(f)`
    // for *any* non-terminal f, σ edges or not).
    let live_states: Vec<State> = (0..n)
        .map(|i| FnId(i as u32))
        .filter(|&f| !machine.roles(f).terminates)
        .map(State::After)
        .collect();

    let sigma_const: Vec<Option<State>> = (0..n)
        .map(|i| {
            let f = FnId(i as u32);
            if !terminals_untrack || machine.roles(f).creates || live_states.is_empty() {
                return None;
            }
            let mut succ: Option<State> = None;
            for &s in &live_states {
                match machine.step(s, f) {
                    Ok(t) if succ.is_none() || succ == Some(t) => succ = Some(t),
                    _ => return None,
                }
            }
            succ
        })
        .collect();

    // Effective recovery walks: recovery replays toward the
    // `sm_recover_via`-substituted state, so blocking-ness must be
    // judged on the substituted walks, plus the close-out walk.
    let mut walk_fns: BTreeSet<FnId> = BTreeSet::new();
    for i in 0..n {
        let f = FnId(i as u32);
        if machine.roles(f).terminates {
            continue;
        }
        if let Ok(walk) = machine.recovery_walk(State::After(recovery_target(spec, f))) {
            walk_fns.extend(walk);
        }
    }
    if let Ok(walk) = machine.recovery_walk(State::Terminated) {
        walk_fns.extend(walk);
    }
    let blocking: Vec<FnId> = walk_fns
        .iter()
        .copied()
        .filter(|&f| machine.roles(f).blocks)
        .collect();
    let affinity_dead = blocking.is_empty();
    let pending_dead = blocking.iter().all(|b| {
        spec.recover_block
            .iter()
            .find(|&&(src, _)| src == *b)
            .is_some_and(|&(_, g)| !machine.roles(g).blocks)
    });
    let blocking_walk_fns: Vec<String> = blocking
        .iter()
        .map(|&f| machine.function_name(f).to_owned())
        .collect();

    // The replay read-set, by metadata name: tracked-data parameters of
    // replayable functions (compid-like ones replay from the invocation
    // context instead), plus the G0 restore upcall's metadata.
    let replayable = replayable_fns(spec);
    let mut live_meta: BTreeSet<String> = BTreeSet::new();
    for &f in replayable.keys() {
        for p in &spec.fns[f.index()].params {
            if p.track == TrackKind::Data && !compid_like(&p.ty, &p.name) {
                live_meta.insert(p.name.clone());
            }
        }
    }
    if spec.model.global {
        if let Some(create) = spec.fns.iter().find(|s| machine.roles(s.id).creates) {
            for p in create.data_params() {
                if !compid_like(&p.ty, &p.name) {
                    live_meta.insert(p.name.clone());
                }
            }
        }
        // A channel's restore upcall additionally carries the committed
        // cursor (the sm_cursor function's tracked return value).
        if let Some(cid) = spec.cursor {
            if let Some((_, cname, _)) = &spec.fns[cid.index()].retval_tracked {
                live_meta.insert(cname.clone());
            }
        }
    }

    let creations: Vec<&FnSig> = spec
        .fns
        .iter()
        .filter(|s| machine.roles(s.id).creates)
        .collect();
    let any_creation_written: Option<BTreeSet<String>> = creations
        .iter()
        .map(|s| creation_written(s))
        .reduce(|a, b| a.intersection(&b).cloned().collect());

    // Dead store: the replay plan never falls back to the stored last
    // arguments. Identity sources (descriptor, parent, client id) never
    // do; metadata falls back only when the slot is unwritten, so
    // guaranteed-at-creation slots are safe; an unannotated parameter
    // *is* the fallback.
    let store_live_args: Vec<Vec<String>> = spec
        .fns
        .iter()
        .map(|sig| {
            if !replayable.contains_key(&sig.id) {
                return Vec::new();
            }
            let guaranteed = if machine.roles(sig.id).creates {
                Some(creation_written(sig))
            } else {
                any_creation_written.clone()
            };
            sig.params
                .iter()
                .filter(|p| match p.track {
                    TrackKind::Desc | TrackKind::Parent | TrackKind::DataParent => false,
                    TrackKind::Data | TrackKind::None if compid_like(&p.ty, &p.name) => false,
                    TrackKind::Data => !guaranteed.as_ref().is_some_and(|g| g.contains(&p.name)),
                    TrackKind::None => true,
                })
                .map(|p| p.name.clone())
                .collect()
        })
        .collect();

    let live_harvest: Vec<Vec<String>> = spec
        .fns
        .iter()
        .map(|sig| {
            sig.data_params()
                .filter(|p| live_meta.contains(&p.name))
                .map(|p| p.name.clone())
                .collect()
        })
        .collect();

    let retval_dead: Vec<bool> = spec
        .fns
        .iter()
        .map(|sig| match &sig.retval_tracked {
            Some((_, name, _)) if !machine.roles(sig.id).creates => !live_meta.contains(name),
            _ => false,
        })
        .collect();

    // Id stability: globally addressable ids are pinned by G0 restore;
    // local ones survive only when every creation echoes the original
    // id back as a replayed metadata argument (the service-echo
    // contract, e.g. a scheduler keyed by kernel thread id).
    let id_stable = spec.model.global
        || (!creations.is_empty()
            && creations.iter().all(|sig| {
                sig.retval_tracked.as_ref().is_some_and(|(_, rname, _)| {
                    sig.params.iter().any(|p| {
                        p.track == TrackKind::Data
                            && !compid_like(&p.ty, &p.name)
                            && p.name == *rname
                    })
                })
            }));

    // Creation records are written exactly when G0 restore (global) or
    // cross-component creator discovery (XCParent) reads them, so this
    // is always false — computed honestly for tamper detection.
    let records = spec.model.global || spec.model.parent.crosses_components();
    let records_dead = records && !spec.model.global && !spec.model.parent.crosses_components();

    LintFacts {
        sigma_const,
        store_live_args,
        live_harvest,
        retval_dead,
        live_meta,
        pending_dead,
        affinity_dead,
        blocking_walk_fns,
        id_stable,
        records_dead,
        terminals_untrack,
    }
}

/// Why σ-constancy fails for `f`, for the `SG060` note.
fn sigma_counterexample(spec: &InterfaceSpec, f: FnId, facts: &LintFacts) -> String {
    let machine = &spec.machine;
    if !facts.terminals_untrack {
        return "closing a descriptor does not provably remove its tracking entry under \
                this model, so `terminated` stays in the resync domain"
            .to_owned();
    }
    let name = machine.function_name(f);
    let mut seen: Option<(State, State)> = None;
    for i in 0..spec.fns.len() {
        let g = FnId(i as u32);
        if machine.roles(g).terminates {
            continue;
        }
        let s = State::After(g);
        match machine.step(s, f) {
            Err(_) => {
                return format!(
                    "σ({}, {name}) is undefined: a call there must be flagged as an \
                     invalid transition, so the σ read stays live",
                    fmt_state(machine, s)
                );
            }
            Ok(t) => match seen {
                None => seen = Some((s, t)),
                Some((s0, t0)) if t0 != t => {
                    return format!(
                        "σ({}, {name}) = {} but σ({}, {name}) = {}",
                        fmt_state(machine, s0),
                        fmt_state(machine, t0),
                        fmt_state(machine, s),
                        fmt_state(machine, t)
                    );
                }
                Some(_) => {}
            },
        }
    }
    "the resync domain is empty".to_owned()
}

/// `SG060`–`SG063`/`SG065`: refute unprovable `sm_elide` requests. One
/// diagnostic per failing request — the first failing obligation, in
/// proof order, matching the compiler certifier's rejection order.
fn requests(spec: &InterfaceSpec, facts: &LintFacts, spans: &SpanIndex) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for &f in &spec.elide {
        let sig = &spec.fns[f.index()];
        let name = &sig.name;
        let span = spans.sm_span(|d| matches!(d, SmDecl::Elide(n) if n == name));
        if spec.machine.roles(f).creates {
            diags.push(
                Diagnostic::new(
                    Code::ElisionRecordLive,
                    format!(
                        "sm_elide({name}): {name} is a creation — it installs the \
                         descriptor and (for global or cross-component interfaces) \
                         writes the creation record recovery reads; nothing here is \
                         elidable"
                    ),
                )
                .with_span(span)
                .with_note("elision applies to calls made after creation; drop the request"),
            );
            continue;
        }
        if facts.sigma_const[f.index()].is_none() {
            diags.push(
                Diagnostic::new(
                    Code::ElisionSigmaLive,
                    format!(
                        "sm_elide({name}): the σ-successor of {name} is not constant \
                         over the resync domain, so the per-call transition check \
                         (and its invalid-transition accounting) stays live"
                    ),
                )
                .with_span(span)
                .with_note(sigma_counterexample(spec, f, facts)),
            );
            continue;
        }
        let live_store = &facts.store_live_args[f.index()];
        if !live_store.is_empty() {
            diags.push(
                Diagnostic::new(
                    Code::ElisionReplayReadsArgs,
                    format!(
                        "sm_elide({name}): replaying {name} falls back to the stored \
                         last arguments for [{}], so the per-call argument store \
                         cannot be skipped",
                        live_store.join(", ")
                    ),
                )
                .with_span(span)
                .with_note(
                    "every replayed argument must be an identity source (desc, parent, \
                     component id) or metadata every creation is guaranteed to write",
                ),
            );
            continue;
        }
        let live_harvest = &facts.live_harvest[f.index()];
        let retval_live = sig.retval_tracked.is_some()
            && !spec.machine.roles(f).creates
            && !facts.retval_dead[f.index()];
        if !live_harvest.is_empty() || retval_live {
            let mut what: Vec<String> = live_harvest.clone();
            if retval_live {
                if let Some((_, rname, _)) = &sig.retval_tracked {
                    what.push(format!("{rname} (return value)"));
                }
            }
            diags.push(
                Diagnostic::new(
                    Code::ElisionLiveMetadataHarvest,
                    format!(
                        "sm_elide({name}): {name} harvests [{}] into the replay \
                         read-set — recovery replays from that metadata, so the \
                         harvest cannot be skipped",
                        what.join(", ")
                    ),
                )
                .with_span(span)
                .with_note(
                    "only functions whose tracked data and return value feed no replay \
                     or restore plan can run untracked",
                ),
            );
            continue;
        }
        if spec.machine.roles(f).blocks && !facts.affinity_dead {
            diags.push(
                Diagnostic::new(
                    Code::ElisionAffinityLive,
                    format!(
                        "sm_elide({name}): {name} blocks, and an effective recovery \
                         walk contains a blocking call ([{}]) whose restore \
                         substitute reads the thread-affinity stamp {name} would \
                         stop writing",
                        facts.blocking_walk_fns.join(", ")
                    ),
                )
                .with_span(span)
                .with_note(
                    "sm_recover_block substitutes locate the blocked owner through the \
                     affinity stamp; redirect the walk (sm_recover_via) off every \
                     blocking call first",
                ),
            );
        }
    }
    diags
}

fn slot_name(stub: &CompiledStubSpec, slot: usize) -> String {
    stub.meta_names
        .get(slot)
        .cloned()
        .unwrap_or_else(|| format!("<slot {slot}>"))
}

fn fmt_opt_state(spec: &InterfaceSpec, s: Option<State>) -> String {
    s.map_or_else(
        || "not constant".to_owned(),
        |t| fmt_state(&spec.machine, t),
    )
}

/// `SG064`: the compiler's certificate and the stub's elision fields
/// must agree with the lint's independent derivation, and the stub must
/// not elide anything the lint cannot prove.
fn drift(
    spec: &InterfaceSpec,
    stub: &CompiledStubSpec,
    facts: &LintFacts,
    lint_rejects: bool,
) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let mut d = |msg: String| {
        diags.push(Diagnostic::new(Code::ElisionFactsDrift, msg).with_note(
            "the compiler certificate and sglint's independent recomputation must be \
             byte-equivalent; regenerate the stubs from the spec",
        ));
    };

    // Fact-by-fact certificate comparison.
    let cert = ElisionFacts::certify(stub);
    for (spec_level, got, want) in [
        ("pending_dead", cert.pending_dead, facts.pending_dead),
        ("affinity_dead", cert.affinity_dead, facts.affinity_dead),
        ("id_stable", cert.id_stable, facts.id_stable),
        ("records_dead", cert.records_dead, facts.records_dead),
    ] {
        if got != want {
            d(format!(
                "certificate drift: compiler proves {spec_level}={got}, independent \
                 recomputation proves {want}"
            ));
        }
    }
    let cert_live: BTreeSet<String> = cert.live_meta.iter().map(|&s| slot_name(stub, s)).collect();
    if cert_live != facts.live_meta {
        d(format!(
            "certificate drift: compiler read-set is [{}], independent recomputation \
             says [{}]",
            cert_live.into_iter().collect::<Vec<_>>().join(", "),
            facts
                .live_meta
                .iter()
                .cloned()
                .collect::<Vec<_>>()
                .join(", ")
        ));
    }
    for (i, cf) in cert.fns.iter().enumerate() {
        if cf.sigma_const != facts.sigma_const[i] {
            d(format!(
                "certificate drift on {}: compiler σ-successor is {}, independent \
                 recomputation says {}",
                cf.name,
                fmt_opt_state(spec, cf.sigma_const),
                fmt_opt_state(spec, facts.sigma_const[i])
            ));
        }
        if cf.store_dead != facts.store_live_args[i].is_empty() {
            d(format!(
                "certificate drift on {}: compiler proves store_dead={}, independent \
                 recomputation proves {}",
                cf.name,
                cf.store_dead,
                facts.store_live_args[i].is_empty()
            ));
        }
        let cert_harvest: Vec<String> = cf
            .live_data_args
            .iter()
            .map(|&(_, slot)| slot_name(stub, slot))
            .collect();
        if cert_harvest != facts.live_harvest[i] {
            d(format!(
                "certificate drift on {}: compiler keeps harvests [{}], independent \
                 recomputation keeps [{}]",
                cf.name,
                cert_harvest.join(", "),
                facts.live_harvest[i].join(", ")
            ));
        }
        if cf.retval_dead != facts.retval_dead[i] {
            d(format!(
                "certificate drift on {}: compiler proves retval_dead={}, independent \
                 recomputation proves {}",
                cf.name, cf.retval_dead, facts.retval_dead[i]
            ));
        }
    }

    // The stub itself must not elide anything unproven — catches stale
    // or hand-tampered stub specs whose fields no longer follow from
    // any certificate.
    let requested: BTreeSet<usize> = stub.elide_requests.iter().map(|f| f.index()).collect();
    for (i, cf) in stub.fns.iter().enumerate() {
        if let Some(s) = cf.sigma_const {
            if !requested.contains(&i) {
                d(format!(
                    "stub installs a σ fast path for {} without an sm_elide request",
                    cf.name
                ));
            } else if facts.sigma_const[i] != Some(s) {
                d(format!(
                    "stub elides the σ step of {} to {}, but the independent \
                     recomputation proves {}",
                    cf.name,
                    fmt_state(&spec.machine, s),
                    fmt_opt_state(spec, facts.sigma_const[i])
                ));
            }
        }
        if cf.track_args && cf.store_slot.is_none() && !facts.store_live_args[i].is_empty() {
            d(format!(
                "stub elides the last-argument store of {}, but replay reads [{}]",
                cf.name,
                facts.store_live_args[i].join(", ")
            ));
        }
        for &(pos, slot) in &cf.data_args {
            if !cf.live_data_args.contains(&(pos, slot))
                && facts.live_meta.contains(&slot_name(stub, slot))
            {
                d(format!(
                    "stub elides the {} harvest of {}, but that slot is in the replay \
                     read-set",
                    slot_name(stub, slot),
                    cf.name
                ));
            }
        }
        if !matches!(cf.retval, RetvalSpec::None)
            && matches!(cf.retval_eff, RetvalSpec::None)
            && !facts.retval_dead[i]
        {
            d(format!(
                "stub elides the return-value capture of {}, but the slot is live",
                cf.name
            ));
        }
    }
    for (toggle, on, proven) in [
        (
            "pending-call bookkeeping",
            stub.elide_pending,
            facts.pending_dead,
        ),
        (
            "thread-affinity stamps",
            stub.elide_affinity,
            facts.affinity_dead,
        ),
        (
            "post-recovery id translation",
            stub.elide_translation,
            facts.id_stable,
        ),
        ("creation records", stub.elide_records, facts.records_dead),
    ] {
        if on && !proven {
            d(format!(
                "stub elides {toggle}, but the independent recomputation cannot prove \
                 it dead"
            ));
        }
    }

    // Accept/reject agreement: the compiler must refuse exactly the
    // requests the lint refutes.
    let mut applied = stub.clone();
    match cert.apply(&mut applied) {
        Ok(()) if lint_rejects => d(
            "the compiler certifier accepts this spec's sm_elide requests, but the \
             independent recomputation refutes at least one"
                .to_owned(),
        ),
        Err(why) if !lint_rejects => d(format!(
            "the compiler certifier rejects an sm_elide request the independent \
             recomputation proves: {why}"
        )),
        _ => {}
    }
    diags
}

/// Run the elision certification checks of `stub` against `spec`.
#[must_use]
pub fn check(spec: &InterfaceSpec, stub: &CompiledStubSpec, spans: &SpanIndex) -> Vec<Diagnostic> {
    if stub.fns.len() != spec.fns.len() || stub.interface != spec.name {
        return Vec::new(); // conformance reports the mismatch
    }
    let facts = certify(spec);
    let mut diags = requests(spec, &facts, spans);
    let lint_rejects = !diags.is_empty();
    diags.extend(drift(spec, stub, &facts, lint_rejects));
    diags
}

#[cfg(test)]
mod tests {
    use super::*;
    use superglue_compiler::ir::lower;

    const SHIPPED: [(&str, &str); 6] = [
        ("sched", include_str!("../../../idl/sched.sg")),
        ("mm", include_str!("../../../idl/mm.sg")),
        ("fs", include_str!("../../../idl/fs.sg")),
        ("lock", include_str!("../../../idl/lock.sg")),
        ("evt", include_str!("../../../idl/evt.sg")),
        ("tmr", include_str!("../../../idl/tmr.sg")),
    ];

    fn run(name: &str, src: &str) -> Vec<Diagnostic> {
        let file = superglue_idl::parser::parse(src).unwrap();
        let spec = superglue_idl::validate::validate(name, &file).unwrap();
        let stub = lower(&spec);
        check(&spec, &stub, &SpanIndex::from_file(&file))
    }

    fn codes(diags: &[Diagnostic]) -> Vec<Code> {
        diags.iter().map(|d| d.code).collect()
    }

    #[test]
    fn shipped_specs_certify_clean() {
        for (name, src) in SHIPPED {
            let d = run(name, src);
            assert_eq!(d, Vec::new(), "{name} failed certification");
        }
    }

    #[test]
    fn partial_sigma_request_is_sg060() {
        // A lock-shaped machine: σ(after(take), take) is undefined, so
        // the transition check is live and the request is refuted.
        let d = run(
            "l",
            "service_global_info = { desc_block = true };\n\
             sm_creation(alloc);\nsm_terminal(free);\nsm_block(take);\nsm_wakeup(rel);\n\
             sm_transition(alloc, take);\nsm_transition(take, rel);\n\
             sm_transition(rel, take);\nsm_transition(rel, free);\nsm_transition(alloc, free);\n\
             sm_elide(take);\n\
             desc_data_retval(long, id)\nalloc(componentid_t compid);\n\
             int take(componentid_t compid, desc(long id));\n\
             int rel(componentid_t compid, desc(long id));\n\
             int free(componentid_t compid, desc(long id));\n",
        );
        assert_eq!(codes(&d), vec![Code::ElisionSigmaLive]);
        assert!(d[0].message.contains("take"));
        assert!(d[0].notes[0].contains("undefined"), "{:?}", d[0].notes);
        assert!(d[0].span.is_some());
    }

    #[test]
    fn replay_reading_stored_args_is_sg061() {
        // `off` is replayed from metadata no creation writes, so replay
        // falls back to the stored last arguments.
        let d = run(
            "s",
            "sm_creation(mk);\nsm_terminal(rm);\n\
             sm_transition(mk, seek);\nsm_transition(seek, seek);\n\
             sm_transition(seek, rm);\nsm_transition(mk, rm);\n\
             sm_elide(seek);\n\
             desc_data_retval(long, id)\nmk(componentid_t compid);\n\
             int seek(componentid_t compid, desc(long id), desc_data(long off));\n\
             int rm(componentid_t compid, desc(long id));\n",
        );
        assert_eq!(codes(&d), vec![Code::ElisionReplayReadsArgs]);
        assert!(d[0].message.contains("off"));
    }

    #[test]
    fn creation_request_is_sg062() {
        let d = run(
            "x",
            "sm_creation(mk);\nsm_terminal(rm);\n\
             sm_transition(mk, rm);\n\
             sm_elide(mk);\n\
             desc_data_retval(long, id)\nmk(componentid_t compid);\n\
             int rm(componentid_t compid, desc(long id));\n",
        );
        assert_eq!(codes(&d), vec![Code::ElisionRecordLive]);
        assert!(d[0].message.contains("creation"));
    }

    #[test]
    fn live_harvest_request_is_sg065() {
        // `v` is creation-written (store stays dead) but also replayed
        // (harvest stays live): the SG065 obligation fails alone.
        let d = run(
            "h",
            "sm_creation(mk);\nsm_terminal(rm);\n\
             sm_transition(mk, set);\nsm_transition(set, set);\n\
             sm_transition(set, rm);\nsm_transition(mk, rm);\n\
             sm_elide(set);\n\
             desc_data_retval(long, id)\nmk(componentid_t compid, desc_data(long v));\n\
             int set(componentid_t compid, desc(long id), desc_data(long v));\n\
             int rm(componentid_t compid, desc(long id));\n",
        );
        assert_eq!(codes(&d), vec![Code::ElisionLiveMetadataHarvest]);
        assert!(d[0].message.contains('v'));
    }

    #[test]
    fn tampered_stub_sigma_is_sg064() {
        let (name, src) = SHIPPED[3]; // lock: nothing is σ-constant
        let spec = superglue_idl::compile_interface(name, src).unwrap();
        let mut stub = lower(&spec);
        let (take, _) = stub.fn_by_name("lock_take").unwrap();
        stub.elide_requests = vec![take];
        stub.fns[take.index()].sigma_const = Some(State::After(take));
        let d = check(&spec, &stub, &SpanIndex::empty());
        assert!(
            d.iter().any(|x| x.code == Code::ElisionFactsDrift
                && x.message.contains("σ fast path")
                || x.message.contains("σ step")),
            "{d:?}"
        );
    }

    #[test]
    fn tampered_spec_toggle_is_sg064() {
        let (name, src) = SHIPPED[3]; // lock: affinity stays live
        let spec = superglue_idl::compile_interface(name, src).unwrap();
        let mut stub = lower(&spec);
        stub.elide_affinity = true;
        let d = check(&spec, &stub, &SpanIndex::empty());
        assert_eq!(codes(&d), vec![Code::ElisionFactsDrift]);
        assert!(d[0].message.contains("thread-affinity"));
    }

    #[test]
    fn tampered_retval_elision_is_sg064() {
        let (name, src) = SHIPPED[2]; // fs: tread accumulates a live offset
        let spec = superglue_idl::compile_interface(name, src).unwrap();
        let mut stub = lower(&spec);
        let (tread, _) = stub.fn_by_name("tread").unwrap();
        stub.fns[tread.index()].retval_eff = RetvalSpec::None;
        let d = check(&spec, &stub, &SpanIndex::empty());
        assert_eq!(codes(&d), vec![Code::ElisionFactsDrift]);
        assert!(d[0].message.contains("return-value"));
    }

    #[test]
    fn applied_shipped_stubs_stay_clean() {
        // The full pipeline product — certify + apply — must satisfy
        // the lint's own proofs, not just the unapplied lowering.
        for (name, src) in SHIPPED {
            let spec = superglue_idl::compile_interface(name, src).unwrap();
            let mut stub = lower(&spec);
            ElisionFacts::certify(&stub)
                .clone()
                .apply(&mut stub)
                .unwrap();
            let d = check(&spec, &stub, &SpanIndex::empty());
            assert_eq!(d, Vec::new(), "{name} applied stub failed certification");
        }
    }
}
