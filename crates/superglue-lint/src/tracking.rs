//! Tracking-sufficiency dataflow.
//!
//! Recovery replays interface functions, so every argument of every
//! *replayable* function must be synthesizable from tracked state: the
//! descriptor id (`desc`), the parent id (`parent_desc`), tracked
//! metadata (`desc_data`, `desc_data_retval[_accum]`), or the client
//! component id (synthesized from the invocation context). An argument
//! covered by none of these falls back to "last observed value at this
//! position" — per *function*, not per *descriptor* — which is exactly
//! the C³ untracked-argument bug the paper reports finding in
//! hand-written recovery stubs (§V). `SG030` makes that bug class a
//! compile-time error.
//!
//! `sm_recover_block` restore entry points are the one sanctioned
//! exception: the runtime passes the blocked owner's id in the (single)
//! untracked position (`SG031`/`SG032` police that shape). `SG041` warns
//! about the dual waste: metadata that is tracked but never consumed by
//! any replay or restore plan.

use std::collections::{BTreeMap, BTreeSet};

use superglue_idl::{InterfaceSpec, ParamSpec, Span, TrackKind};
use superglue_sm::FnId;

use crate::diag::{Code, Diagnostic};
use crate::{compid_like, replayable_fns, SpanIndex};

/// Run all tracking checks.
#[must_use]
pub fn check(spec: &InterfaceSpec, spans: &SpanIndex) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    untracked_arguments(spec, spans, &mut diags);
    unused_tracking(spec, spans, &mut diags);
    diags
}

fn untracked_params(spec: &InterfaceSpec, f: FnId) -> Vec<&ParamSpec> {
    spec.fns[f.index()]
        .params
        .iter()
        .filter(|p| p.track == TrackKind::None && !compid_like(&p.ty, &p.name))
        .collect()
}

/// `SG030`–`SG032`: argument synthesis for every replayable function.
fn untracked_arguments(spec: &InterfaceSpec, spans: &SpanIndex, diags: &mut Vec<Diagnostic>) {
    let replayable = replayable_fns(spec);
    let restore_targets: BTreeSet<FnId> = spec.recover_block.iter().map(|&(_, g)| g).collect();
    for (&f, reason) in &replayable {
        let sig = &spec.fns[f.index()];
        let untracked = untracked_params(spec, f);
        if restore_targets.contains(&f) {
            if spec.machine.roles(f).blocks {
                diags.push(
                    Diagnostic::new(
                        Code::RestoreTargetBlocks,
                        format!(
                            "sm_recover_block target {} is itself a blocking function: \
                             restoring a blocked state would block the recovering thread",
                            sig.name
                        ),
                    )
                    .with_span(spans.fn_span(&sig.name))
                    .with_note("restore entry points must record the blocked owner and return"),
                );
            }
            match untracked.as_slice() {
                [] => diags.push(
                    Diagnostic::new(
                        Code::BadRestoreSignature,
                        format!(
                            "sm_recover_block target {} has no owner parameter: exactly one \
                             unannotated, non-component-id parameter is required to receive \
                             the blocked owner's id",
                            sig.name
                        ),
                    )
                    .with_span(spans.fn_span(&sig.name))
                    .with_note(
                        "add a plain parameter (e.g. `long owner`); the runtime fills it \
                         with the recorded owner during restore",
                    ),
                ),
                [_owner] => {}
                [owner, extra @ ..] => {
                    for p in extra {
                        diags.push(
                            Diagnostic::new(
                                Code::UntrackedArgument,
                                format!(
                                    "parameter {} of restore entry point {} would be \
                                     clobbered: the runtime passes the blocked owner's id in \
                                     every untracked position, and {} is already the owner \
                                     slot",
                                    p.name, sig.name, owner.name
                                ),
                            )
                            .with_span(spans.param_span(&sig.name, &p.name))
                            .with_note(format!("annotate it, e.g. desc_data({} {})", p.ty, p.name)),
                        );
                    }
                }
            }
            continue;
        }
        for p in untracked {
            diags.push(
                Diagnostic::new(
                    Code::UntrackedArgument,
                    format!(
                        "argument {} of function {} is captured by no annotation, but {} is \
                         {}: replay would pass the last value observed at this position, \
                         which may belong to a different descriptor (the C3 \
                         untracked-argument bug)",
                        p.name, sig.name, sig.name, reason
                    ),
                )
                .with_span(spans.param_span(&sig.name, &p.name))
                .with_note(format!(
                    "annotate it, e.g. desc_data({} {}), or desc(...)/parent_desc(...) if it \
                     names a descriptor",
                    p.ty, p.name
                )),
            );
        }
    }
}

/// `SG041`: tracked metadata nothing ever consumes. A slot is consumed
/// when some replayable function replays it (`desc_data` on a walk
/// function) or when the G0 restore plan of a global interface carries
/// it; everything else costs per-descriptor memory — the paper's
/// embedded-systems budget — for no recovery benefit.
fn unused_tracking(spec: &InterfaceSpec, spans: &SpanIndex, diags: &mut Vec<Diagnostic>) {
    let replayable = replayable_fns(spec);

    let mut consumed: BTreeSet<&str> = BTreeSet::new();
    for &f in replayable.keys() {
        for p in &spec.fns[f.index()].params {
            if p.track == TrackKind::Data && !compid_like(&p.ty, &p.name) {
                consumed.insert(&p.name);
            }
        }
    }
    if spec.model.global {
        // The restore upcall carries the creation function's tracked
        // metadata (including the parent slot).
        if let Some(create) = spec.fns.iter().find(|s| spec.machine.roles(s.id).creates) {
            for p in create.data_params() {
                if !compid_like(&p.ty, &p.name) {
                    consumed.insert(&p.name);
                }
            }
        }
        // A channel's restore upcall additionally carries the committed
        // cursor, so the sm_cursor function's tracked return value is
        // consumed even though no replayed function reads it.
        if let Some(cid) = spec.cursor {
            if let Some((_, cname, _)) = &spec.fns[cid.index()].retval_tracked {
                consumed.insert(cname);
            }
        }
    }

    // Slot → (writers, first span). Creation retvals are exempt: that
    // slot *is* the descriptor id, consumed implicitly as desc(...).
    let mut writers: BTreeMap<&str, Vec<String>> = BTreeMap::new();
    let mut first_span: BTreeMap<&str, Option<Span>> = BTreeMap::new();
    for sig in &spec.fns {
        for p in &sig.params {
            if matches!(p.track, TrackKind::Data | TrackKind::DataParent)
                && !compid_like(&p.ty, &p.name)
            {
                writers.entry(&p.name).or_default().push(sig.name.clone());
                first_span
                    .entry(&p.name)
                    .or_insert_with(|| spans.param_span(&sig.name, &p.name));
            }
        }
        if !spec.machine.roles(sig.id).creates {
            if let Some((_, name, _)) = &sig.retval_tracked {
                writers
                    .entry(name)
                    .or_default()
                    .push(format!("{} (return value)", sig.name));
                first_span
                    .entry(name)
                    .or_insert_with(|| spans.fn_span(&sig.name));
            }
        }
    }

    for (slot, who) in &writers {
        if consumed.contains(slot) {
            continue;
        }
        diags.push(
            Diagnostic::new(
                Code::UnusedTrackedData,
                format!(
                    "tracked metadata slot {slot:?} is never consumed by any recovery replay \
                     or restore plan"
                ),
            )
            .with_span(first_span[slot])
            .with_note(format!("written by: {}", who.join(", ")))
            .with_note(
                "tracking it costs per-descriptor memory for no recovery benefit; drop the \
                 annotation or consume it on a replay path",
            ),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint(src: &str) -> Vec<Diagnostic> {
        let file = superglue_idl::parser::parse(src).unwrap();
        let spec = superglue_idl::validate::validate("t", &file).unwrap();
        check(&spec, &SpanIndex::from_file(&file))
    }

    fn codes(diags: &[Diagnostic]) -> Vec<Code> {
        diags.iter().map(|d| d.code).collect()
    }

    #[test]
    fn untracked_argument_on_walk_is_sg030() {
        // `flags` is replayed (use is on every walk to after(use)) but
        // captured by nothing.
        let d = lint(
            "sm_creation(mk);\nsm_terminal(rm);\n\
             sm_transition(mk, use);\nsm_transition(use, rm);\nsm_transition(mk, rm);\n\
             desc_data_retval(long, id)\nmk(componentid_t compid);\n\
             int use(desc(long id), int flags);\nint rm(desc(long id));\n",
        );
        assert_eq!(codes(&d), vec![Code::UntrackedArgument]);
        assert!(d[0].message.contains("flags"));
        assert!(d[0].message.contains("recovery walk"));
        assert!(d[0].span.is_some());
    }

    #[test]
    fn compid_and_off_walk_arguments_are_exempt() {
        // `hint` is on a function that is never replayed (recover_via
        // redirects it and nothing else walks through it), and compid is
        // synthesized from context.
        let d = lint(
            "sm_creation(mk);\nsm_terminal(rm);\n\
             sm_transition(mk, use);\nsm_transition(use, rm);\nsm_transition(mk, rm);\n\
             sm_recover_via(use, mk);\n\
             desc_data_retval(long, id)\nmk(componentid_t compid);\n\
             desc_data_retval_accum(long, progress)\nuse(componentid_t compid, desc(long id), int hint);\n\
             int rm(desc(long id));\n",
        );
        // `use` tracks progress nothing consumes -> only the SG041 warning
        // (plus nothing about `hint`, which is never replayed) ... except
        // the substitution also loses effects; that is graph's concern,
        // not tracking's.
        assert_eq!(codes(&d), vec![Code::UnusedTrackedData]);
    }

    #[test]
    fn restore_entry_without_owner_slot_is_sg031() {
        let d = lint(
            "service_global_info = { desc_block = true };\n\
             sm_creation(alloc);\nsm_terminal(free);\nsm_block(take);\nsm_wakeup(rel);\n\
             sm_transition(alloc, take);\nsm_transition(take, rel);\nsm_transition(rel, free);\n\
             sm_recover_via(rel, alloc);\nsm_recover_block(take, fix);\n\
             desc_data_retval(long, id)\nalloc(componentid_t compid);\n\
             int take(desc(long id));\nint rel(desc(long id));\n\
             int fix(componentid_t compid, desc(long id));\nint free(desc(long id));\n",
        );
        assert_eq!(codes(&d), vec![Code::BadRestoreSignature]);
        assert!(d[0].message.contains("fix"));
    }

    #[test]
    fn restore_entry_with_extra_untracked_params_is_sg030() {
        let d = lint(
            "service_global_info = { desc_block = true };\n\
             sm_creation(alloc);\nsm_terminal(free);\nsm_block(take);\nsm_wakeup(rel);\n\
             sm_transition(alloc, take);\nsm_transition(take, rel);\nsm_transition(rel, free);\n\
             sm_recover_via(rel, alloc);\nsm_recover_block(take, fix);\n\
             desc_data_retval(long, id)\nalloc(componentid_t compid);\n\
             int take(desc(long id));\nint rel(desc(long id));\n\
             int fix(desc(long id), long owner, long extra);\nint free(desc(long id));\n",
        );
        assert_eq!(codes(&d), vec![Code::UntrackedArgument]);
        assert!(d[0].message.contains("extra"));
        assert!(d[0].message.contains("clobbered"));
    }

    #[test]
    fn blocking_restore_entry_is_sg032() {
        let d = lint(
            "service_global_info = { desc_block = true };\n\
             sm_creation(alloc);\nsm_terminal(free);\nsm_block(take);\nsm_block(fix);\nsm_wakeup(rel);\n\
             sm_transition(alloc, take);\nsm_transition(take, rel);\nsm_transition(rel, free);\n\
             sm_transition(alloc, fix);\nsm_transition(fix, rel);\n\
             sm_recover_via(rel, alloc);\nsm_recover_via(fix, alloc);\nsm_recover_block(take, fix);\n\
             desc_data_retval(long, id)\nalloc(componentid_t compid);\n\
             int take(desc(long id));\nint rel(desc(long id));\n\
             int fix(desc(long id), long owner);\nint free(desc(long id));\n",
        );
        assert!(codes(&d).contains(&Code::RestoreTargetBlocks));
    }

    #[test]
    fn unconsumed_metadata_is_sg041() {
        let d = lint(
            "sm_creation(mk);\nsm_terminal(rm);\n\
             sm_transition(mk, poke);\nsm_transition(poke, rm);\nsm_transition(mk, rm);\n\
             desc_data_retval(long, id)\nmk(componentid_t compid);\n\
             int poke(desc(long id), desc_data(long stamp));\nint rm(desc(long id));\n",
        );
        // poke is replayable (walk to after(poke)) and replays `stamp`
        // itself, so `stamp` IS consumed; nothing fires.
        assert_eq!(codes(&d), Vec::<Code>::new());

        // But when recover_via takes poke off every walk, the slot is
        // written and never replayed.
        let d = lint(
            "sm_creation(mk);\nsm_terminal(rm);\n\
             sm_transition(mk, poke);\nsm_transition(poke, rm);\nsm_transition(mk, rm);\n\
             sm_recover_via(poke, mk);\n\
             desc_data_retval(long, id)\nmk(componentid_t compid);\n\
             int poke(desc(long id), desc_data(long stamp));\nint rm(desc(long id));\n",
        );
        assert_eq!(codes(&d), vec![Code::UnusedTrackedData]);
        assert!(d[0].notes[0].contains("poke"));
    }

    #[test]
    fn global_restore_plan_consumes_creation_metadata() {
        // A desc_data(parent_desc(...)) slot is *written* to metadata but
        // replayed as the parent id, never as Meta — so only the G0
        // restore upcall of a global interface consumes it (the evt.sg
        // pattern). Non-global, the tracking is dead weight.
        let body = "sm_creation(mk);\nsm_terminal(rm);\nsm_transition(mk, rm);\n\
             desc_data_retval(long, id)\n\
             mk(componentid_t compid, desc_data(parent_desc(long pp)));\n\
             int rm(desc(long id));\n";
        let local = format!("service_global_info = {{ desc_has_parent = parent }};\n{body}");
        assert_eq!(codes(&lint(&local)), vec![Code::UnusedTrackedData]);
        let global = format!(
            "service_global_info = {{ desc_has_parent = parent, desc_is_global = true }};\n{body}"
        );
        assert_eq!(codes(&lint(&global)), Vec::<Code>::new());
    }
}
