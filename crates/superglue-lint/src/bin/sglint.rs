//! `sglint` — recovery-soundness analyzer for SuperGlue IDL specs.
//!
//! ```text
//! usage: sglint [--format human|json] [--deny-warnings] [--emit-certs DIR] <spec.sg>...
//! ```
//!
//! Exit status: 0 when every spec is clean (warnings allowed unless
//! `--deny-warnings`), 1 when any diagnostic fails the build, 2 on usage
//! or I/O errors. Human output is compiler-style
//! (`file:line:col: error[SG021]: ...`); `--format json` emits one JSON
//! object per file (JSON-lines). `--emit-certs DIR` writes the
//! deterministic elision certificate of every error-free spec to
//! `DIR/<name>.cert.json` — the artifact CI diffs against the compiler's
//! own certification. See the repository README for the diagnostic-code
//! table.

use std::path::Path;
use std::process::ExitCode;

use superglue_lint::{lint_source, Severity};

const USAGE: &str =
    "usage: sglint [--format human|json] [--deny-warnings] [--emit-certs DIR] <spec.sg>...";

#[derive(Clone, Copy, PartialEq, Eq)]
enum Format {
    Human,
    Json,
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut format = Format::Human;
    let mut deny_warnings = false;
    let mut emit_certs: Option<String> = None;
    let mut files: Vec<String> = Vec::new();

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--deny-warnings" => deny_warnings = true,
            "--format" => match it.next().map(String::as_str) {
                Some("human") => format = Format::Human,
                Some("json") => format = Format::Json,
                _ => {
                    eprintln!("sglint: --format expects 'human' or 'json'\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            "--emit-certs" => match it.next() {
                Some(dir) => emit_certs = Some(dir.clone()),
                None => {
                    eprintln!("sglint: --emit-certs expects a directory\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            "-h" | "--help" => {
                println!("{USAGE}");
                println!();
                println!("Statically verifies the recovery soundness of SuperGlue IDL specs:");
                println!("state-graph shape (SG01x), recoverability of every reachable state");
                println!("(SG02x), tracking sufficiency of every replayed argument (SG03x),");
                println!("blocking/metadata hygiene (SG04x), compiled-stub conformance");
                println!("(SG05x), tracking-elision certification (SG06x), and");
                println!("channel-cursor soundness (SG07x). A spec with");
                println!("errors is refused by the checked compiler. --emit-certs DIR writes");
                println!("each clean spec's elision certificate to DIR/<name>.cert.json.");
                return ExitCode::SUCCESS;
            }
            flag if flag.starts_with('-') => {
                eprintln!("sglint: unknown flag {flag:?}\n{USAGE}");
                return ExitCode::from(2);
            }
            file => files.push(file.to_owned()),
        }
    }
    if files.is_empty() {
        eprintln!("sglint: no input files\n{USAGE}");
        return ExitCode::from(2);
    }

    let mut failed = false;
    let (mut errors, mut warnings, mut notes) = (0usize, 0usize, 0usize);
    for file in &files {
        let source = match std::fs::read_to_string(file) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("sglint: {file}: {e}");
                return ExitCode::from(2);
            }
        };
        let name = Path::new(file)
            .file_stem()
            .and_then(|s| s.to_str())
            .unwrap_or("interface");
        let report = lint_source(name, &source);
        match format {
            Format::Human => print!("{}", report.render_human(file)),
            Format::Json => println!("{}", report.to_json(file).to_line()),
        }
        errors += report.count(Severity::Error);
        warnings += report.count(Severity::Warning);
        notes += report.count(Severity::Note);
        failed |= report.fails(deny_warnings);

        if let Some(dir) = &emit_certs {
            if !report.has_errors() {
                let spec = superglue_idl::compile_interface(name, &source)
                    .expect("lint found no errors, so the front end must accept the spec");
                let stub = superglue_compiler::ir::lower(&spec);
                let cert =
                    superglue_compiler::ElisionFacts::certify(&stub).to_json(&stub.meta_names);
                let path = Path::new(dir).join(format!("{name}.cert.json"));
                if let Err(e) =
                    std::fs::create_dir_all(dir).and_then(|()| std::fs::write(&path, cert))
                {
                    eprintln!("sglint: {}: {e}", path.display());
                    return ExitCode::from(2);
                }
            }
        }
    }

    if format == Format::Human {
        eprintln!(
            "sglint: {} spec(s) checked: {errors} error(s), {warnings} warning(s), {notes} note(s)",
            files.len()
        );
    }
    if failed {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}
