//! Graph analyses over the descriptor state machine.
//!
//! Soundness here means two things (§III-B of the paper): the machine's
//! *shape* must let every descriptor die (`SG01x` — no leaks, no dead
//! edges, no orphans), and the machine's *recovery walks* must actually
//! be executable (`SG02x` — a replay chain exists for every reachable
//! state, never blocks mid-walk, and blocked states are restorable).
//! `SG040` flags the one legitimate-but-noteworthy shape: a blocking
//! interface with no wakeup function (timers — woken by the clock).

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use superglue_idl::ast::SmDecl;
use superglue_idl::{InterfaceSpec, TrackKind};
use superglue_sm::{FnId, State};

use crate::diag::{Code, Diagnostic};
use crate::{compid_like, fmt_state, fmt_walk, recovery_target, SpanIndex};

/// Run all graph checks.
#[must_use]
pub fn check(spec: &InterfaceSpec, spans: &SpanIndex) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    terminal_reachability(spec, spans, &mut diags);
    dead_terminal_edges(spec, spans, &mut diags);
    orphan_functions(spec, spans, &mut diags);
    recoverability(spec, spans, &mut diags);
    substitution_effects(spec, spans, &mut diags);
    blocking_without_wakeup(spec, spans, &mut diags);
    diags
}

/// `SG010` / `SG011`: a terminal function must exist, and the terminated
/// state must be reachable from *every* reachable state — otherwise a
/// descriptor can get parked where no walk ever destroys it, and the
/// server's tracking memory leaks.
fn terminal_reachability(spec: &InterfaceSpec, spans: &SpanIndex, diags: &mut Vec<Diagnostic>) {
    let m = &spec.machine;
    if m.terminal_fns().next().is_none() {
        diags.push(
            Diagnostic::new(
                Code::NoTerminal,
                "no sm_terminal function is declared: descriptors can never be destroyed, \
                 so per-descriptor tracking memory grows without bound",
            )
            .with_note("declare sm_terminal(<fn>) on the function that releases the descriptor"),
        );
        return; // Every state would also trip SG011; don't pile on.
    }

    // Reverse reachability from Terminated over σ.
    let mut rev: BTreeMap<State, Vec<State>> = BTreeMap::new();
    for (src, _, dst) in m.edges() {
        rev.entry(dst).or_default().push(src);
    }
    let mut reaches_terminal = BTreeSet::from([State::Terminated]);
    let mut queue = VecDeque::from([State::Terminated]);
    while let Some(s) = queue.pop_front() {
        for &p in rev.get(&s).into_iter().flatten() {
            if reaches_terminal.insert(p) {
                queue.push_back(p);
            }
        }
    }

    let mut states = vec![State::Init];
    states.extend((0..m.function_count()).map(|i| State::After(FnId(i as u32))));
    for s in states {
        if m.recovery_walk(s).is_err() {
            continue; // Unreachable states are SG013's concern.
        }
        if !reaches_terminal.contains(&s) {
            let span = match s {
                State::After(f) => spans.fn_span(m.function_name(f)),
                _ => None,
            };
            let mut d = Diagnostic::new(
                Code::TerminalUnreachable,
                format!(
                    "no terminal function is reachable from state {}: a descriptor parked \
                     there can never be destroyed (leak)",
                    fmt_state(m, s)
                ),
            )
            .with_span(span);
            if let Ok(walk) = m.recovery_walk(s) {
                if !walk.is_empty() {
                    d = d.with_note(format!("a client reaches it via: {}", fmt_walk(m, &walk)));
                }
            }
            diags.push(d.with_note(
                "add sm_transition edges leading (transitively) to a terminal function",
            ));
        }
    }
}

/// `SG012`: an `sm_transition(f, g)` where `f` is terminal describes an
/// edge out of a state that never exists — terminal functions collapse
/// into the terminated state, so the edge is dead and almost certainly a
/// spec typo (the author believed the descriptor survives `f`).
fn dead_terminal_edges(spec: &InterfaceSpec, spans: &SpanIndex, diags: &mut Vec<Diagnostic>) {
    let m = &spec.machine;
    for (src, g, _) in m.edges() {
        let State::After(f) = src else { continue };
        if !m.roles(f).terminates {
            continue;
        }
        let (fname, gname) = (m.function_name(f), m.function_name(g));
        let span =
            spans.sm_span(|d| matches!(d, SmDecl::Transition(a, b) if a == fname && b == gname));
        diags.push(
            Diagnostic::new(
                Code::TransitionOutOfTerminal,
                format!(
                    "sm_transition({fname}, {gname}) leaves terminal function {fname}, but \
                     state after({fname}) never exists: terminal functions destroy the \
                     descriptor"
                ),
            )
            .with_span(span)
            .with_note("remove the edge, or remove sm_terminal if the descriptor survives"),
        );
    }
}

/// `SG013`: a declared function that participates in no reachable state
/// and is not a recovery entry point — clients can never call it along a
/// valid protocol, so either edges are missing or the function is dead.
fn orphan_functions(spec: &InterfaceSpec, spans: &SpanIndex, diags: &mut Vec<Diagnostic>) {
    let m = &spec.machine;
    let restore_targets: BTreeSet<FnId> = spec.recover_block.iter().map(|&(_, g)| g).collect();
    for i in 0..m.function_count() {
        let f = FnId(i as u32);
        // Terminal functions have no After-state by design; restore entry
        // points are invoked only during recovery, never by clients.
        if m.roles(f).terminates || restore_targets.contains(&f) {
            continue;
        }
        if m.recovery_walk(State::After(f)).is_err() {
            let name = m.function_name(f);
            diags.push(
                Diagnostic::new(
                    Code::OrphanFunction,
                    format!(
                        "function {name} participates in no reachable state of the machine: \
                         no valid call sequence ever invokes it"
                    ),
                )
                .with_span(spans.fn_span(name))
                .with_note("connect it with sm_transition edges, or drop it from the interface"),
            );
        }
    }
}

/// `SG020` / `SG021` / `SG022`: for every reachable state, the effective
/// (post-`sm_recover_via`) replay walk must exist, must not replay a
/// blocking function before its final step (the recovering thread would
/// block with the walk unfinished), and may end in a blocking function
/// only when an `sm_recover_block` entry point can restore the blocked
/// state on the owner's behalf.
fn recoverability(spec: &InterfaceSpec, spans: &SpanIndex, diags: &mut Vec<Diagnostic>) {
    let m = &spec.machine;
    let restorable: BTreeSet<FnId> = spec.recover_block.iter().map(|&(s, _)| s).collect();
    for i in 0..m.function_count() {
        let f = FnId(i as u32);
        let state = State::After(f);
        if m.recovery_walk(state).is_err() {
            continue; // Unreachable: SG013 territory.
        }
        let fname = m.function_name(f);
        let target = recovery_target(spec, f);
        let walk = match m.recovery_walk(State::After(target)) {
            Ok(w) => w,
            Err(_) => {
                // Unreachable through `validate` (it rejects unreachable
                // substitution targets), kept as defense in depth for
                // hand-built specs.
                let span = spans.sm_span(|d| matches!(d, SmDecl::RecoverVia(a, _) if a == fname));
                diags.push(
                    Diagnostic::new(
                        Code::NoReplayChain,
                        format!(
                            "reachable state {} has no recovery replay chain: its substituted \
                             target after({}) is unreachable from s0",
                            fmt_state(m, state),
                            m.function_name(target)
                        ),
                    )
                    .with_span(span)
                    .with_note("point sm_recover_via at a state on some creation path"),
                );
                continue;
            }
        };
        for (idx, &g) in walk.iter().enumerate() {
            if !m.roles(g).blocks {
                continue;
            }
            let gname = m.function_name(g);
            let span = spans
                .sm_span(|d| matches!(d, SmDecl::Block(n) if n == gname))
                .or_else(|| spans.fn_span(gname));
            if idx + 1 < walk.len() {
                diags.push(
                    Diagnostic::new(
                        Code::BlockingMidWalk,
                        format!(
                            "recovering state {} replays blocking function {gname} at step \
                             {} of {}: the recovering thread would block before the walk \
                             completes",
                            fmt_state(m, state),
                            idx + 1,
                            walk.len()
                        ),
                    )
                    .with_span(span)
                    .with_note(format!("replay walk: {}", fmt_walk(m, &walk)))
                    .with_note(format!(
                        "declare sm_recover_via({fname}, <fn>) so recovery rebuilds a state \
                         whose walk avoids {gname}"
                    )),
                );
            } else if !restorable.contains(&g) {
                diags.push(
                    Diagnostic::new(
                        Code::BlockedStateNotRestorable,
                        format!(
                            "state {} is a blocked state: its recovery walk ends by replaying \
                             blocking function {gname}, and no sm_recover_block entry point \
                             can restore it on the blocked owner's behalf",
                            fmt_state(m, state)
                        ),
                    )
                    .with_span(span)
                    .with_note(format!("replay walk: {}", fmt_walk(m, &walk)))
                    .with_note(format!(
                        "declare sm_recover_block({gname}, <restore fn>), or \
                         sm_recover_via({fname}, <fn>) to recover to an unblocked state"
                    )),
                );
            }
        }
    }
}

/// `SG023`: an `sm_recover_via(f, g)` substitution is justified when `f`
/// blocks (replay must not block) or wakes (the wakeup is re-established
/// by the woken party). For any *other* `f`, the substitution silently
/// drops `f`'s effects unless `f` tracked them into metadata that the
/// substituted walk replays — the fs pattern, where `tread`/`twrite`
/// accumulate the offset that the substituted `tseek` then restores.
fn substitution_effects(spec: &InterfaceSpec, spans: &SpanIndex, diags: &mut Vec<Diagnostic>) {
    let m = &spec.machine;
    for &(src, tgt) in &spec.recover_via {
        let roles = m.roles(src);
        if roles.blocks || roles.wakes {
            continue;
        }
        let sig = &spec.fns[src.index()];
        let mut writes: BTreeSet<&str> = sig
            .params
            .iter()
            .filter(|p| {
                matches!(p.track, TrackKind::Data | TrackKind::DataParent)
                    && !compid_like(&p.ty, &p.name)
            })
            .map(|p| p.name.as_str())
            .collect();
        if !roles.creates {
            if let Some((_, name, _)) = &sig.retval_tracked {
                writes.insert(name.as_str());
            }
        }
        let Ok(walk) = m.recovery_walk(State::After(tgt)) else {
            continue; // SG020 already reported the missing chain.
        };
        let consumed: BTreeSet<&str> = walk
            .iter()
            .flat_map(|&g| {
                spec.fns[g.index()]
                    .params
                    .iter()
                    .filter(|p| p.track == TrackKind::Data && !compid_like(&p.ty, &p.name))
                    .map(|p| p.name.as_str())
            })
            .collect();
        if writes.intersection(&consumed).next().is_some() {
            continue;
        }
        let (sname, tname) = (m.function_name(src), m.function_name(tgt));
        let span = spans.sm_span(|d| matches!(d, SmDecl::RecoverVia(a, _) if a == sname));
        let consumed_note = if consumed.is_empty() {
            "the substituted walk consumes no tracked metadata at all".to_owned()
        } else {
            format!(
                "the substituted walk consumes only: {}",
                consumed.iter().copied().collect::<Vec<_>>().join(", ")
            )
        };
        diags.push(
            Diagnostic::new(
                Code::SubstitutionLosesEffects,
                format!(
                    "sm_recover_via({sname}, {tname}) silently discards the effects of \
                     {sname}: it neither blocks nor wakes, and none of the state it tracks \
                     is replayed on the substituted walk"
                ),
            )
            .with_span(span)
            .with_note(consumed_note)
            .with_note(format!(
                "track {sname}'s effect (e.g. desc_data / desc_data_retval_accum) and \
                 consume it on the walk to after({tname}), or remove the substitution"
            )),
        );
    }
}

/// `SG040` (note): a blocking interface with no wakeup function relies on
/// threads being woken externally — legitimate for timers (the clock
/// wakes them), but worth stating, because recovery then applies only
/// eager time-based wakeup (**T0**) and can never replay a wakeup.
fn blocking_without_wakeup(spec: &InterfaceSpec, spans: &SpanIndex, diags: &mut Vec<Diagnostic>) {
    let m = &spec.machine;
    if m.blocking_fns().next().is_none() || m.wakeup_fns().next().is_some() {
        return;
    }
    let blockers: Vec<&str> = m.blocking_fns().map(|f| m.function_name(f)).collect();
    let span = spans.sm_span(|d| matches!(d, SmDecl::Block(_)));
    diags.push(
        Diagnostic::new(
            Code::BlockingWithoutWakeup,
            format!(
                "blocking function(s) {} have no sm_wakeup counterpart: blocked threads are \
                 assumed to be woken externally (e.g. by the clock), so recovery applies \
                 eager time-based wakeup (T0) only",
                blockers.join(", ")
            ),
        )
        .with_span(span),
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use superglue_idl::InterfaceSpec;
    use superglue_sm::machine::StateMachineBuilder;
    use superglue_sm::model::DescriptorResourceModelBuilder;

    fn lint(src: &str) -> Vec<Diagnostic> {
        let file = superglue_idl::parser::parse(src).unwrap();
        let spec = superglue_idl::validate::validate("t", &file).unwrap();
        check(&spec, &SpanIndex::from_file(&file))
    }

    fn codes(diags: &[Diagnostic]) -> Vec<Code> {
        diags.iter().map(|d| d.code).collect()
    }

    #[test]
    fn missing_terminal_is_sg010() {
        let d = lint("sm_creation(a);\ndesc_data_retval(long, id)\na(componentid_t compid);\n");
        assert_eq!(codes(&d), vec![Code::NoTerminal]);
    }

    #[test]
    fn leaked_state_is_sg011_with_witness() {
        // after(b) can loop on itself but never reach the terminal.
        let d = lint(
            "sm_creation(a);\nsm_terminal(free);\n\
             sm_transition(a, b);\nsm_transition(b, b);\nsm_transition(a, free);\n\
             desc_data_retval(long, id)\na(componentid_t compid);\n\
             int b(desc(long id));\nint free(desc(long id));\n",
        );
        assert_eq!(codes(&d), vec![Code::TerminalUnreachable]);
        assert!(d[0].message.contains("after(b)"));
        assert!(d[0].notes[0].contains("s0 --a--> after(a) --b--> after(b)"));
        assert!(d[0].span.is_some());
    }

    #[test]
    fn transition_out_of_terminal_is_sg012() {
        let d = lint(
            "sm_creation(a);\nsm_terminal(free);\n\
             sm_transition(a, free);\nsm_transition(free, b);\nsm_transition(a, b);\n\
             sm_transition(b, free);\n\
             desc_data_retval(long, id)\na(componentid_t compid);\n\
             int b(desc(long id));\nint free(desc(long id));\n",
        );
        assert_eq!(codes(&d), vec![Code::TransitionOutOfTerminal]);
        assert!(d[0].message.contains("sm_transition(free, b)"));
        assert!(d[0].span.is_some());
    }

    #[test]
    fn orphan_function_is_sg013() {
        let d = lint(
            "sm_creation(a);\nsm_terminal(free);\nsm_transition(a, free);\n\
             desc_data_retval(long, id)\na(componentid_t compid);\n\
             int lost(desc(long id));\nint free(desc(long id));\n",
        );
        assert_eq!(codes(&d), vec![Code::OrphanFunction]);
        assert!(d[0].message.contains("lost"));
    }

    #[test]
    fn unreachable_substitution_target_is_sg020() {
        // `validate` rejects this, so exercise the defense-in-depth path
        // with a hand-built spec: recover_via points at a function that is
        // registered but never reachable.
        let mut b = StateMachineBuilder::new("t");
        let a = b.function("a");
        let bad = b.function("bad");
        b.creation(a);
        let machine = b.build().unwrap();
        let spec = InterfaceSpec {
            name: "t".into(),
            model: DescriptorResourceModelBuilder::new().build().unwrap(),
            machine,
            fns: vec![
                superglue_idl::FnSig {
                    id: a,
                    name: "a".into(),
                    ret: None,
                    retval_tracked: Some((
                        "long".into(),
                        "id".into(),
                        superglue_idl::ast::RetvalMode::Set,
                    )),
                    params: vec![],
                },
                superglue_idl::FnSig {
                    id: bad,
                    name: "bad".into(),
                    ret: None,
                    retval_tracked: None,
                    params: vec![],
                },
            ],
            recover_via: vec![(a, bad)],
            recover_block: vec![],
            elide: vec![],
            channel: None,
            cursor: None,
        };
        let d = check(&spec, &SpanIndex::empty());
        assert!(codes(&d).contains(&Code::NoReplayChain));
    }

    #[test]
    fn blocking_mid_walk_is_sg021() {
        // alloc -> take(block) -> release -> free, with no recovery
        // declarations: recovering after(release) replays take mid-walk.
        let d = lint(
            "service_global_info = { desc_block = true };\n\
             sm_creation(alloc);\nsm_terminal(free);\nsm_block(take);\nsm_wakeup(release);\n\
             sm_transition(alloc, take);\nsm_transition(take, release);\n\
             sm_transition(release, free);\n\
             desc_data_retval(long, id)\nalloc(componentid_t compid);\n\
             int take(desc(long id));\nint release(desc(long id));\nint free(desc(long id));\n",
        );
        assert!(codes(&d).contains(&Code::BlockingMidWalk));
        assert!(codes(&d).contains(&Code::BlockedStateNotRestorable));
        let mid = d.iter().find(|x| x.code == Code::BlockingMidWalk).unwrap();
        assert!(mid.message.contains("after(release)"));
        assert!(mid.notes[0].contains("--take-->"));
    }

    #[test]
    fn blocked_final_state_without_restore_is_sg022() {
        let d = lint(
            "service_global_info = { desc_block = true };\n\
             sm_creation(alloc);\nsm_terminal(free);\nsm_block(take);\nsm_wakeup(rel);\n\
             sm_transition(alloc, take);\nsm_transition(take, rel);\nsm_transition(rel, free);\n\
             sm_recover_via(rel, alloc);\n\
             desc_data_retval(long, id)\nalloc(componentid_t compid);\n\
             int take(desc(long id));\nint rel(desc(long id));\nint free(desc(long id));\n",
        );
        assert_eq!(codes(&d), vec![Code::BlockedStateNotRestorable]);
        assert!(d[0].notes[1].contains("sm_recover_block(take"));
    }

    #[test]
    fn lossy_substitution_is_sg023() {
        // `touch` neither blocks nor wakes and tracks nothing, yet its
        // recovery is substituted away.
        let d = lint(
            "sm_creation(open);\nsm_terminal(close);\n\
             sm_transition(open, touch);\nsm_transition(touch, close);\n\
             sm_transition(open, close);\nsm_recover_via(touch, open);\n\
             desc_data_retval(long, fd)\nopen(componentid_t compid);\n\
             int touch(desc(long fd));\nint close(desc(long fd));\n",
        );
        assert_eq!(codes(&d), vec![Code::SubstitutionLosesEffects]);
        assert!(d[0].message.contains("sm_recover_via(touch, open)"));
    }

    #[test]
    fn tracked_substitution_is_clean() {
        // The fs pattern: touch accumulates an offset that the substituted
        // seek replays.
        let d = lint(
            "sm_creation(open);\nsm_terminal(close);\n\
             sm_transition(open, seek);\nsm_transition(open, touch);\n\
             sm_transition(seek, touch);\nsm_transition(touch, seek);\n\
             sm_transition(seek, close);\nsm_transition(touch, close);\n\
             sm_transition(open, close);\nsm_recover_via(touch, seek);\n\
             desc_data_retval(long, fd)\nopen(componentid_t compid);\n\
             long seek(desc(long fd), desc_data(long offset));\n\
             desc_data_retval_accum(long, offset)\ntouch(desc(long fd));\n\
             int close(desc(long fd));\n",
        );
        assert_eq!(codes(&d), Vec::<Code>::new());
    }

    #[test]
    fn clock_woken_blocking_is_sg040_note_only() {
        let d = lint(
            "service_global_info = { desc_block = true };\n\
             sm_creation(mk);\nsm_terminal(free);\nsm_block(wait);\n\
             sm_transition(mk, wait);\nsm_transition(wait, free);\nsm_transition(mk, free);\n\
             sm_recover_via(wait, mk);\n\
             desc_data_retval(long, id)\nmk(componentid_t compid);\n\
             int wait(desc(long id));\nint free(desc(long id));\n",
        );
        assert_eq!(codes(&d), vec![Code::BlockingWithoutWakeup]);
        assert_eq!(d[0].severity, crate::Severity::Note);
    }
}
