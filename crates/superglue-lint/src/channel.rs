//! Channel-cursor soundness (`SG07x`).
//!
//! A channel interface (`sm_channel`) connects pipeline stages with
//! peek-before-commit delivery: a consumer peeks the message at its
//! cursor, processes it, then commits, and the commit's tracked return
//! value (`sm_cursor`) is the new cursor. Recovery re-seats a rebooted
//! endpoint at the last *committed* cursor via the G0 restore upcall —
//! that is the whole exactly-once argument, and it only holds when three
//! properties do:
//!
//! * a committed cursor exists at all (`SG070` — without one, a restored
//!   endpoint has no position and redelivery is unbounded);
//! * the cursor can actually ride the restore upcall (`SG071` — the
//!   commit function's return value must be tracked in `Set` mode on a
//!   non-creation function of a global interface);
//! * recovery never replays a data-moving function (`SG072` — a replayed
//!   send re-emits, a replayed peek re-observes, a replayed commit
//!   re-advances; every effective walk must consist of creation
//!   functions only, which `sm_recover_via` substitutions arrange).

use superglue_idl::ast::{RetvalMode, SmDecl};
use superglue_idl::InterfaceSpec;
use superglue_sm::{FnId, State};

use crate::diag::{Code, Diagnostic};
use crate::{fmt_state, fmt_walk, recovery_target, SpanIndex};

/// Run all channel checks. Interfaces with no `sm_channel` declaration
/// are out of scope and produce nothing.
#[must_use]
pub fn check(spec: &InterfaceSpec, spans: &SpanIndex) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    if spec.channel.is_none() {
        return diags;
    }
    missing_cursor(spec, spans, &mut diags);
    cursor_restorable(spec, spans, &mut diags);
    replay_observes(spec, spans, &mut diags);
    diags
}

/// `SG070`: a channel with no committed cursor.
fn missing_cursor(spec: &InterfaceSpec, spans: &SpanIndex, diags: &mut Vec<Diagnostic>) {
    if spec.cursor.is_some() {
        return;
    }
    let span = spans.sm_span(|d| matches!(d, SmDecl::Channel(_)));
    diags.push(
        Diagnostic::new(
            Code::ChannelWithoutCursor,
            "sm_channel interface declares no sm_cursor commit function: a rebooted \
             endpoint has no committed position to resume from, so redelivery is \
             unbounded (at-least-once at best)",
        )
        .with_span(span)
        .with_note(
            "declare sm_cursor(<commit fn>) whose tracked return value \
             (desc_data_retval) is the committed cursor",
        ),
    );
}

/// `SG071`: the committed cursor must be able to ride the G0 restore
/// upcall — tracked, `Set`-mode, on a non-creation function, and the
/// interface must be global so a restore plan exists to carry it.
fn cursor_restorable(spec: &InterfaceSpec, spans: &SpanIndex, diags: &mut Vec<Diagnostic>) {
    let Some(cid) = spec.cursor else { return };
    let sig = &spec.fns[cid.index()];
    let span = spans
        .sm_span(|d| matches!(d, SmDecl::Cursor(_)))
        .or_else(|| spans.fn_span(&sig.name));
    let mut fail = |why: &str, note: String| {
        diags.push(
            Diagnostic::new(
                Code::CursorNotRestorable,
                format!(
                    "committed cursor of sm_cursor function {} cannot be restored: {why}",
                    sig.name
                ),
            )
            .with_span(span)
            .with_note(note),
        );
    };
    if !spec.model.global {
        fail(
            "the interface is not global, so no G0 restore plan exists to carry the \
             cursor back to a rebooted endpoint",
            "set desc_is_global = true in service_global_info".to_owned(),
        );
        return;
    }
    if spec.machine.roles(cid).creates {
        fail(
            "it is a creation function, so its tracked return value is the descriptor \
             id, not a cursor",
            "point sm_cursor at the commit function that advances the consumer's \
             position"
                .to_owned(),
        );
        return;
    }
    match &sig.retval_tracked {
        None => fail(
            "its return value is untracked, so no metadata slot ever holds the \
             committed position",
            format!(
                "annotate the declaration: desc_data_retval(long, cursor) {}(...)",
                sig.name
            ),
        ),
        Some((_, cname, RetvalMode::Accum)) => fail(
            "its return value is tracked in accumulate mode, so restore would pass a \
             running sum instead of the last committed position",
            format!("track {cname:?} with desc_data_retval (Set mode), not _accum"),
        ),
        Some((_, _, RetvalMode::Set)) => {}
    }
}

/// `SG072`: every effective recovery walk of a channel interface must
/// consist of creation functions only — anything else re-observes or
/// re-emits messages on replay.
fn replay_observes(spec: &InterfaceSpec, spans: &SpanIndex, diags: &mut Vec<Diagnostic>) {
    let m = &spec.machine;
    for i in 0..m.function_count() {
        let f = FnId(i as u32);
        let state = State::After(f);
        if m.recovery_walk(state).is_err() {
            continue; // Unreachable: SG013 territory.
        }
        let target = recovery_target(spec, f);
        let Ok(walk) = m.recovery_walk(State::After(target)) else {
            continue; // SG020 already reported the missing chain.
        };
        let Some(&g) = walk.iter().find(|&&g| !m.roles(g).creates) else {
            continue;
        };
        let (fname, gname) = (m.function_name(f), m.function_name(g));
        diags.push(
            Diagnostic::new(
                Code::ChannelReplayObserves,
                format!(
                    "channel function {gname} is replayed on the recovery walk of state \
                     {}: replaying a data-moving channel function re-observes or \
                     re-emits messages, breaking exactly-once delivery",
                    fmt_state(m, state)
                ),
            )
            .with_span(spans.fn_span(gname))
            .with_note(format!("replay walk: {}", fmt_walk(m, &walk)))
            .with_note(format!(
                "declare sm_recover_via({fname}, <creation fn>) so recovery collapses \
                 to the restored endpoint"
            )),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint(src: &str) -> Vec<Diagnostic> {
        let file = superglue_idl::parser::parse(src).unwrap();
        let spec = superglue_idl::validate::validate("t", &file).unwrap();
        check(&spec, &SpanIndex::from_file(&file))
    }

    fn codes(diags: &[Diagnostic]) -> Vec<Code> {
        diags.iter().map(|d| d.code).collect()
    }

    const SOUND: &str = "service_global_info = { desc_is_global = true };\n\
         sm_creation(open);\nsm_terminal(close);\n\
         sm_transition(open, commit);\nsm_transition(commit, commit);\n\
         sm_transition(commit, close);\nsm_transition(open, close);\n\
         sm_recover_via(commit, open);\n\
         sm_channel(open);\nsm_cursor(commit);\n\
         desc_data_retval(long, cid)\nopen(componentid_t compid, desc_data(long chan_no));\n\
         desc_data_retval(long, cursor)\nlong commit(componentid_t compid, desc(long cid));\n\
         int close(componentid_t compid, desc(long cid));\n";

    #[test]
    fn sound_channel_is_clean() {
        assert_eq!(codes(&lint(SOUND)), Vec::<Code>::new());
    }

    #[test]
    fn non_channel_interfaces_are_out_of_scope() {
        let src = SOUND.replace("sm_channel(open);\nsm_cursor(commit);\n", "");
        assert_eq!(codes(&lint(&src)), Vec::<Code>::new());
    }

    #[test]
    fn channel_without_cursor_is_sg070() {
        let src = SOUND
            .replace("sm_cursor(commit);\n", "")
            .replace("desc_data_retval(long, cursor)\nlong commit", "long commit");
        let d = lint(&src);
        assert_eq!(codes(&d), vec![Code::ChannelWithoutCursor]);
        assert!(d[0].span.is_some(), "should point at sm_channel");
        assert!(d[0].notes[0].contains("sm_cursor"));
    }

    #[test]
    fn untracked_cursor_retval_is_sg071() {
        let src = SOUND.replace("desc_data_retval(long, cursor)\nlong commit", "long commit");
        let d = lint(&src);
        assert_eq!(codes(&d), vec![Code::CursorNotRestorable]);
        assert!(d[0].message.contains("untracked"));
        assert!(d[0].notes[0].contains("desc_data_retval"));
    }

    #[test]
    fn accumulated_cursor_is_sg071() {
        let src = SOUND.replace(
            "desc_data_retval(long, cursor)",
            "desc_data_retval_accum(long, cursor)",
        );
        let d = lint(&src);
        assert_eq!(codes(&d), vec![Code::CursorNotRestorable]);
        assert!(d[0].message.contains("accumulate"));
    }

    #[test]
    fn non_global_channel_is_sg071() {
        let src = SOUND.replace("service_global_info = { desc_is_global = true };\n", "");
        let d = lint(&src);
        assert_eq!(codes(&d), vec![Code::CursorNotRestorable]);
        assert!(d[0].message.contains("not global"));
    }

    #[test]
    fn cursor_on_creation_fn_is_sg071() {
        let src = SOUND.replace("sm_cursor(commit);", "sm_cursor(open);");
        let d = lint(&src);
        assert_eq!(codes(&d), vec![Code::CursorNotRestorable]);
        assert!(d[0].message.contains("creation"));
    }

    #[test]
    fn replayed_data_fn_is_sg072() {
        // Without the recover_via substitution, recovering after(commit)
        // replays commit itself — a re-advanced cursor.
        let src = SOUND.replace("sm_recover_via(commit, open);\n", "");
        let d = lint(&src);
        assert_eq!(codes(&d), vec![Code::ChannelReplayObserves]);
        assert!(d[0].message.contains("commit"));
        assert!(d[0].notes[0].contains("--commit-->"));
        assert!(d[0].notes[1].contains("sm_recover_via"));
    }
}
