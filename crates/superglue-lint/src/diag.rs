//! Diagnostics: stable codes, severities, spans, and rendering.
//!
//! Every finding of the analyzer is a [`Diagnostic`] with a stable
//! [`Code`] (`SG001`–`SG072`), a severity, an optional source span from
//! the IDL lexer, a one-line message, and zero or more indented notes
//! (counterexample state paths, fix hints). Reports render either as
//! compiler-style human text or as JSON lines via [`composite::json`].

use std::fmt;

use composite::json::Json;
use superglue_idl::Span;

/// How bad a finding is.
///
/// * [`Severity::Error`] — the spec violates a recovery-soundness
///   property; the compiler refuses to emit stubs.
/// * [`Severity::Warning`] — suspicious but not provably unsound; fails
///   the build only under `--deny-warnings`.
/// * [`Severity::Note`] — informational (e.g. a time-woken blocking
///   interface); never fails the build.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Recovery-soundness violation.
    Error,
    /// Suspicious construct; fatal only under `--deny-warnings`.
    Warning,
    /// Informational.
    Note,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Error => "error",
            Severity::Warning => "warning",
            Severity::Note => "note",
        })
    }
}

/// Stable diagnostic codes. The numeric bands group the soundness
/// properties (see DESIGN.md §8 for the full table):
///
/// * `SG00x` — front-end failures (lex/parse/semantic/model);
/// * `SG01x` — state-graph soundness (reachability, leaks, dead edges);
/// * `SG02x` — recoverability completeness (replay chains);
/// * `SG03x` — tracking sufficiency (argument synthesis, restore
///   signatures);
/// * `SG04x` — blocking/wakeup and metadata hygiene;
/// * `SG05x` — stub conformance (compiler/IR drift);
/// * `SG06x` — tracking-elision certification (`sm_elide` requests that
///   cannot be proven unobservable, and certificate drift);
/// * `SG07x` — channel-cursor soundness (`sm_channel`/`sm_cursor`
///   interfaces whose peek-before-commit recovery cannot deliver
///   exactly-once replay).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[non_exhaustive]
pub enum Code {
    /// Lexical or syntactic error in the `.sg` source.
    SyntaxError,
    /// Semantic validation failure in the IDL front end.
    SemanticError,
    /// Descriptor-resource-model or state-machine construction failure.
    ModelError,
    /// No `sm_terminal` function is declared: descriptors can never be
    /// reclaimed.
    NoTerminal,
    /// A terminal state is unreachable from some reachable state — a
    /// descriptor leak.
    TerminalUnreachable,
    /// A transition leaves a terminal function's state, which never
    /// exists (terminals collapse to the terminated state).
    TransitionOutOfTerminal,
    /// A declared function participates in no reachable state of the
    /// machine and is not a recovery entry point.
    OrphanFunction,
    /// A reachable state has no recovery replay chain back from the
    /// creation functions.
    NoReplayChain,
    /// A blocking function is replayed mid-walk (before the final step)
    /// on some recovery chain.
    BlockingMidWalk,
    /// A blocked state's replay ends in a blocking function with no
    /// `sm_recover_block` entry point to restore it thread-affinely.
    BlockedStateNotRestorable,
    /// An `sm_recover_via` substitution discards the effects of a
    /// non-blocking function that tracks no metadata the replacement
    /// replay consumes.
    SubstitutionLosesEffects,
    /// A replay-path function takes an argument no annotation captures —
    /// the C³ "untracked argument" bug class.
    UntrackedArgument,
    /// An `sm_recover_block` target has no owner slot (exactly one
    /// unannotated non-component-id parameter is required).
    BadRestoreSignature,
    /// An `sm_recover_block` target may itself block.
    RestoreTargetBlocks,
    /// A blocking interface declares no wakeup function; blocked threads
    /// are assumed time-woken (T0 eager wakeup only).
    BlockingWithoutWakeup,
    /// Tracked metadata is never consumed by any replay or restore plan.
    UnusedTrackedData,
    /// Compiled stub drift: the `track_args` set disagrees with the
    /// independently recomputed replayable-function set.
    ConformanceTrackArgs,
    /// Compiled stub drift: the dense σ table disagrees with the state
    /// machine's edges.
    ConformanceSigma,
    /// Compiled stub drift: the recovery substitution maps disagree with
    /// the interface spec.
    ConformanceRecoveryMaps,
    /// Compiled stub drift: the G0 restore plan disagrees with the model
    /// and creation signature.
    ConformanceRestorePlan,
    /// Compiled stub drift: a function's replay/retval plan disagrees
    /// with its annotations.
    ConformanceReplayPlan,
    /// `sm_elide` on a function whose σ-successor is not constant over
    /// the resync domain: the transition check is live fault detection
    /// and cannot be skipped.
    ElisionSigmaLive,
    /// `sm_elide` on a function whose replay plan reads its stored
    /// last-arguments (a `LastObserved` source, or a metadata fallback
    /// no creation guarantees): the store feeds recovery.
    ElisionReplayReadsArgs,
    /// `sm_elide` on a creation function: creations install descriptor
    /// state directly and their storage-component records are read by
    /// recovery — there is no unobservable prologue to skip.
    ElisionRecordLive,
    /// `sm_elide` on a blocking function while some effective recovery
    /// walk blocks: the thread-affinity stamp is read by restore.
    ElisionAffinityLive,
    /// Elision-certificate drift: the compiler's certified facts (or the
    /// elisions applied to the emitted stub) disagree with the lint's
    /// independent recomputation.
    ElisionFactsDrift,
    /// `sm_elide` on a function with a live metadata harvest (tracked
    /// argument or return value in the replay read-set): the harvest
    /// feeds replay or restore.
    ElisionLiveMetadataHarvest,
    /// `sm_channel` without `sm_cursor`: a rebooted endpoint has no
    /// committed position to resume from, so redelivery is unbounded
    /// (at-least-once at best, never exactly-once).
    ChannelWithoutCursor,
    /// The `sm_cursor` commit function's cursor cannot ride the restore
    /// upcall: its return value is untracked, accumulated instead of
    /// set, it is a creation function, or the interface is not global
    /// (no G0 restore plan exists to carry the cursor).
    CursorNotRestorable,
    /// A channel interface replays a non-creation function on some
    /// effective recovery walk: replay would re-observe or re-emit
    /// messages, breaking exactly-once delivery.
    ChannelReplayObserves,
}

impl Code {
    /// The stable `SGxxx` code string.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            Code::SyntaxError => "SG001",
            Code::SemanticError => "SG002",
            Code::ModelError => "SG003",
            Code::NoTerminal => "SG010",
            Code::TerminalUnreachable => "SG011",
            Code::TransitionOutOfTerminal => "SG012",
            Code::OrphanFunction => "SG013",
            Code::NoReplayChain => "SG020",
            Code::BlockingMidWalk => "SG021",
            Code::BlockedStateNotRestorable => "SG022",
            Code::SubstitutionLosesEffects => "SG023",
            Code::UntrackedArgument => "SG030",
            Code::BadRestoreSignature => "SG031",
            Code::RestoreTargetBlocks => "SG032",
            Code::BlockingWithoutWakeup => "SG040",
            Code::UnusedTrackedData => "SG041",
            Code::ConformanceTrackArgs => "SG050",
            Code::ConformanceSigma => "SG051",
            Code::ConformanceRecoveryMaps => "SG052",
            Code::ConformanceRestorePlan => "SG053",
            Code::ConformanceReplayPlan => "SG054",
            Code::ElisionSigmaLive => "SG060",
            Code::ElisionReplayReadsArgs => "SG061",
            Code::ElisionRecordLive => "SG062",
            Code::ElisionAffinityLive => "SG063",
            Code::ElisionFactsDrift => "SG064",
            Code::ElisionLiveMetadataHarvest => "SG065",
            Code::ChannelWithoutCursor => "SG070",
            Code::CursorNotRestorable => "SG071",
            Code::ChannelReplayObserves => "SG072",
        }
    }

    /// The default severity of this code.
    #[must_use]
    pub fn severity(self) -> Severity {
        match self {
            Code::NoTerminal
            | Code::OrphanFunction
            | Code::UnusedTrackedData
            | Code::ChannelWithoutCursor => Severity::Warning,
            Code::BlockingWithoutWakeup => Severity::Note,
            _ => Severity::Error,
        }
    }
}

impl fmt::Display for Code {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Schema identifier leading every JSON report object.
pub const REPORT_SCHEMA: &str = "superglue-lint-report";
/// JSON report format version (bump on any shape change).
pub const REPORT_VERSION: u64 = 1;

/// One analyzer finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable code.
    pub code: Code,
    /// Severity (defaults to [`Code::severity`]).
    pub severity: Severity,
    /// Source location, when one is known.
    pub span: Option<Span>,
    /// One-line description of the violation.
    pub message: String,
    /// Indented follow-up lines: counterexample state paths, fix hints.
    pub notes: Vec<String>,
}

impl Diagnostic {
    /// A diagnostic with the code's default severity and no span.
    #[must_use]
    pub fn new(code: Code, message: impl Into<String>) -> Self {
        Self {
            code,
            severity: code.severity(),
            span: None,
            message: message.into(),
            notes: Vec::new(),
        }
    }

    /// Attach a source span.
    #[must_use]
    pub fn with_span(mut self, span: Option<Span>) -> Self {
        self.span = span;
        self
    }

    /// Append a note line.
    #[must_use]
    pub fn with_note(mut self, note: impl Into<String>) -> Self {
        self.notes.push(note.into());
        self
    }
}

/// The analyzer's verdict on one interface spec.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LintReport {
    /// Interface name (conventionally the `.sg` file stem).
    pub interface: String,
    /// Findings, sorted by (span, code).
    pub diagnostics: Vec<Diagnostic>,
}

impl LintReport {
    /// Build a report, sorting diagnostics deterministically.
    #[must_use]
    pub fn new(interface: impl Into<String>, mut diagnostics: Vec<Diagnostic>) -> Self {
        diagnostics.sort_by(|a, b| {
            let key = |d: &Diagnostic| {
                (
                    d.span.map_or((u32::MAX, u32::MAX), |s| (s.line, s.col)),
                    d.code,
                    d.message.clone(),
                )
            };
            key(a).cmp(&key(b))
        });
        Self {
            interface: interface.into(),
            diagnostics,
        }
    }

    /// Number of findings at the given severity.
    #[must_use]
    pub fn count(&self, severity: Severity) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == severity)
            .count()
    }

    /// Whether any error-severity finding exists.
    #[must_use]
    pub fn has_errors(&self) -> bool {
        self.count(Severity::Error) > 0
    }

    /// Whether the report fails the build: always on errors, and on
    /// warnings when `deny_warnings` is set.
    #[must_use]
    pub fn fails(&self, deny_warnings: bool) -> bool {
        self.has_errors() || (deny_warnings && self.count(Severity::Warning) > 0)
    }

    /// Compiler-style human rendering, one block per diagnostic:
    ///
    /// ```text
    /// idl/lock.sg:12:1: error[SG021]: blocking function `lock_take` ...
    ///     state path: s0 --lock_alloc--> after(lock_alloc) ...
    /// ```
    #[must_use]
    pub fn render_human(&self, file_label: &str) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            match d.span {
                Some(s) => out.push_str(&format!("{file_label}:{s}: ")),
                None => out.push_str(&format!("{file_label}: ")),
            }
            out.push_str(&format!("{}[{}]: {}\n", d.severity, d.code, d.message));
            for note in &d.notes {
                out.push_str(&format!("    {note}\n"));
            }
        }
        out
    }

    /// JSON rendering (one object per report; JSON-lines friendly).
    ///
    /// The object leads with `schema`/`version` and keeps a fixed key
    /// order throughout (insertion-ordered objects), so downstream
    /// consumers can dispatch on the format before reading findings and
    /// byte-compare reports across runs. The shape is pinned by a golden
    /// test — bump [`REPORT_VERSION`] when changing it.
    #[must_use]
    pub fn to_json(&self, file_label: &str) -> Json {
        let mut obj = Json::object();
        obj.push("schema", REPORT_SCHEMA)
            .push("version", REPORT_VERSION)
            .push("interface", self.interface.as_str())
            .push("file", file_label)
            .push("errors", self.count(Severity::Error))
            .push("warnings", self.count(Severity::Warning))
            .push("notes", self.count(Severity::Note));
        let diags: Vec<Json> = self
            .diagnostics
            .iter()
            .map(|d| {
                let mut j = Json::object();
                j.push("code", d.code.as_str())
                    .push("severity", d.severity.to_string());
                match d.span {
                    Some(s) => {
                        j.push("line", u64::from(s.line))
                            .push("col", u64::from(s.col));
                    }
                    None => {
                        j.push("line", Json::Null).push("col", Json::Null);
                    }
                }
                j.push("message", d.message.as_str()).push(
                    "notes",
                    Json::Array(d.notes.iter().map(|n| Json::from(n.as_str())).collect()),
                );
                j
            })
            .collect();
        obj.push("diagnostics", Json::Array(diags));
        obj
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_stable_and_unique() {
        let all = [
            Code::SyntaxError,
            Code::SemanticError,
            Code::ModelError,
            Code::NoTerminal,
            Code::TerminalUnreachable,
            Code::TransitionOutOfTerminal,
            Code::OrphanFunction,
            Code::NoReplayChain,
            Code::BlockingMidWalk,
            Code::BlockedStateNotRestorable,
            Code::SubstitutionLosesEffects,
            Code::UntrackedArgument,
            Code::BadRestoreSignature,
            Code::RestoreTargetBlocks,
            Code::BlockingWithoutWakeup,
            Code::UnusedTrackedData,
            Code::ConformanceTrackArgs,
            Code::ConformanceSigma,
            Code::ConformanceRecoveryMaps,
            Code::ConformanceRestorePlan,
            Code::ConformanceReplayPlan,
            Code::ElisionSigmaLive,
            Code::ElisionReplayReadsArgs,
            Code::ElisionRecordLive,
            Code::ElisionAffinityLive,
            Code::ElisionFactsDrift,
            Code::ElisionLiveMetadataHarvest,
            Code::ChannelWithoutCursor,
            Code::CursorNotRestorable,
            Code::ChannelReplayObserves,
        ];
        let mut strs: Vec<&str> = all.iter().map(|c| c.as_str()).collect();
        strs.sort_unstable();
        strs.dedup();
        assert_eq!(strs.len(), all.len());
        for c in all {
            assert!(c.as_str().starts_with("SG"));
        }
    }

    #[test]
    fn report_sorts_and_counts() {
        let d1 = Diagnostic::new(Code::UntrackedArgument, "b").with_span(Some(Span::new(9, 1)));
        let d2 = Diagnostic::new(Code::TerminalUnreachable, "a").with_span(Some(Span::new(2, 4)));
        let d3 = Diagnostic::new(Code::UnusedTrackedData, "c");
        let r = LintReport::new("x", vec![d1, d2, d3]);
        assert_eq!(r.diagnostics[0].code, Code::TerminalUnreachable);
        assert_eq!(r.diagnostics[2].code, Code::UnusedTrackedData); // span-less last
        assert_eq!(r.count(Severity::Error), 2);
        assert_eq!(r.count(Severity::Warning), 1);
        assert!(r.has_errors());
        assert!(r.fails(false));
    }

    #[test]
    fn deny_warnings_promotes_warnings() {
        let r = LintReport::new("x", vec![Diagnostic::new(Code::UnusedTrackedData, "w")]);
        assert!(!r.fails(false));
        assert!(r.fails(true));
        let notes = LintReport::new("x", vec![Diagnostic::new(Code::BlockingWithoutWakeup, "n")]);
        assert!(!notes.fails(true));
    }

    #[test]
    fn human_rendering_includes_span_code_and_notes() {
        let d = Diagnostic::new(Code::BlockingMidWalk, "boom")
            .with_span(Some(Span::new(3, 7)))
            .with_note("state path: s0");
        let r = LintReport::new("lock", vec![d]);
        let text = r.render_human("idl/lock.sg");
        assert_eq!(
            text,
            "idl/lock.sg:3:7: error[SG021]: boom\n    state path: s0\n"
        );
    }

    #[test]
    fn json_report_shape_is_pinned() {
        // Byte-exact golden for the JSON report: schema/version lead,
        // key order is fixed. Bump REPORT_VERSION if this must change.
        let d = Diagnostic::new(Code::ElisionSigmaLive, "boom").with_span(Some(Span::new(3, 7)));
        let r = LintReport::new("x", vec![d]);
        assert_eq!(
            r.to_json("idl/x.sg").to_line(),
            "{\"schema\":\"superglue-lint-report\",\"version\":1,\
             \"interface\":\"x\",\"file\":\"idl/x.sg\",\
             \"errors\":1,\"warnings\":0,\"notes\":0,\
             \"diagnostics\":[{\"code\":\"SG060\",\"severity\":\"error\",\
             \"line\":3,\"col\":7,\"message\":\"boom\",\"notes\":[]}]}"
        );
    }

    #[test]
    fn json_rendering_is_compact_and_complete() {
        let d = Diagnostic::new(Code::NoTerminal, "leaky");
        let r = LintReport::new("mm", vec![d]);
        let line = r.to_json("idl/mm.sg").to_line();
        assert!(line.contains("\"interface\":\"mm\""));
        assert!(line.contains("\"code\":\"SG010\""));
        assert!(line.contains("\"severity\":\"warning\""));
        assert!(line.contains("\"line\":null"));
    }
}
