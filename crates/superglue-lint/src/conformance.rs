//! Stub-conformance pass: cross-check a compiled
//! [`CompiledStubSpec`] against an independent recomputation from the
//! validated [`InterfaceSpec`].
//!
//! The compiler's lowering ([`superglue_compiler::ir::lower`]) and this
//! module share no code beyond the model types, so drift in either —
//! a lowering regression, or a hand-tampered stub spec — produces
//! `SG05x` errors. This is the paper's "generated stubs are trustworthy
//! because the generator is checked" argument made executable.

use std::collections::BTreeMap;

use superglue_compiler::{ArgSource, CompiledStubSpec, RestoreArg, RetvalSpec};
use superglue_idl::ast::RetvalMode;
use superglue_idl::{FnSig, InterfaceSpec, TrackKind};
use superglue_sm::{FnId, State};

use crate::diag::{Code, Diagnostic};
use crate::{compid_like, fmt_state, replayable_fns};

/// Run all conformance checks of `stub` against `spec`.
#[must_use]
pub fn check(spec: &InterfaceSpec, stub: &CompiledStubSpec) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    if stub.interface != spec.name {
        diags.push(Diagnostic::new(
            Code::ConformanceReplayPlan,
            format!(
                "compiled stub is for interface {:?}, spec is {:?}",
                stub.interface, spec.name
            ),
        ));
    }
    if stub.fns.len() != spec.fns.len() {
        diags.push(Diagnostic::new(
            Code::ConformanceReplayPlan,
            format!(
                "compiled stub has {} functions, the interface declares {}",
                stub.fns.len(),
                spec.fns.len()
            ),
        ));
        return diags; // Nothing below is index-safe.
    }
    track_args(spec, stub, &mut diags);
    sigma(spec, stub, &mut diags);
    recovery_maps(spec, stub, &mut diags);
    restore_plan(spec, stub, &mut diags);
    per_fn_plans(spec, stub, &mut diags);
    diags
}

/// Resolve a metadata slot index to its name, tolerating corrupt tables.
fn slot_name(stub: &CompiledStubSpec, slot: usize) -> String {
    stub.meta_names
        .get(slot)
        .cloned()
        .unwrap_or_else(|| format!("<slot {slot}>"))
}

/// `SG050`: `track_args` must equal the recomputed replayable set —
/// a function wrongly untracked loses the last-observed fallback values
/// recovery may need; wrongly tracked, it wastes hot-path memory.
fn track_args(spec: &InterfaceSpec, stub: &CompiledStubSpec, diags: &mut Vec<Diagnostic>) {
    let replayable = replayable_fns(spec);
    for (i, cf) in stub.fns.iter().enumerate() {
        let expected = replayable.contains_key(&FnId(i as u32));
        if cf.track_args != expected {
            diags.push(Diagnostic::new(
                Code::ConformanceTrackArgs,
                format!(
                    "function {}: compiled track_args is {}, but the independently \
                     recomputed replayable set says {}",
                    cf.name, cf.track_args, expected
                ),
            ));
        }
    }
}

/// `SG051`: the dense σ table must agree with the machine's edge map —
/// the runtime steps descriptor state through this table, so a wrong cell
/// is a wrong fault-detection verdict.
fn sigma(spec: &InterfaceSpec, stub: &CompiledStubSpec, diags: &mut Vec<Diagnostic>) {
    let n = spec.fns.len();
    let mut expected: Vec<Option<State>> = vec![None; (n + 1) * n];
    for (src, f, dst) in spec.machine.edges() {
        let idx = match src {
            State::Init => 0usize,
            State::After(g) => 1 + g.index(),
            State::Terminated | State::Faulty => continue,
        };
        expected[idx * n + f.index()] = Some(dst);
    }
    if stub.sigma.len() != expected.len() {
        diags.push(Diagnostic::new(
            Code::ConformanceSigma,
            format!(
                "dense sigma table has {} cells, the machine demands {} ({} states x {} \
                 functions)",
                stub.sigma.len(),
                expected.len(),
                n + 1,
                n
            ),
        ));
        return;
    }
    for (cell, (got, want)) in stub.sigma.iter().zip(&expected).enumerate() {
        if got == want {
            continue;
        }
        let src = if cell / n == 0 {
            State::Init
        } else {
            State::After(FnId((cell / n - 1) as u32))
        };
        let render = |s: &Option<State>| {
            s.map_or_else(
                || "invalid branch".to_owned(),
                |t| fmt_state(&spec.machine, t),
            )
        };
        diags.push(Diagnostic::new(
            Code::ConformanceSigma,
            format!(
                "dense sigma disagrees with the machine at ({}, {}): stub says {}, machine \
                 says {}",
                fmt_state(&spec.machine, src),
                stub.fns[cell % n].name,
                render(got),
                render(want)
            ),
        ));
        return; // The first divergent cell is enough to act on.
    }
}

fn render_map(spec: &InterfaceSpec, map: &BTreeMap<FnId, FnId>) -> String {
    let pairs: Vec<String> = map
        .iter()
        .map(|(&f, &g)| {
            format!(
                "{} -> {}",
                spec.machine.function_name(f),
                spec.machine.function_name(g)
            )
        })
        .collect();
    format!("{{{}}}", pairs.join(", "))
}

/// `SG052`: the recovery substitution maps must match the declarations.
fn recovery_maps(spec: &InterfaceSpec, stub: &CompiledStubSpec, diags: &mut Vec<Diagnostic>) {
    let want_via: BTreeMap<FnId, FnId> = spec.recover_via.iter().copied().collect();
    if stub.recover_via != want_via {
        diags.push(Diagnostic::new(
            Code::ConformanceRecoveryMaps,
            format!(
                "sm_recover_via map drift: stub has {}, spec declares {}",
                render_map(spec, &stub.recover_via),
                render_map(spec, &want_via)
            ),
        ));
    }
    let want_block: BTreeMap<FnId, FnId> = spec.recover_block.iter().copied().collect();
    if stub.recover_block != want_block {
        diags.push(Diagnostic::new(
            Code::ConformanceRecoveryMaps,
            format!(
                "sm_recover_block map drift: stub has {}, spec declares {}",
                render_map(spec, &stub.recover_block),
                render_map(spec, &want_block)
            ),
        ));
    }
}

/// `SG053`: the G0 restore plan must exist exactly for global interfaces
/// and carry `[creator, descid, <creation metadata in order>]`; and
/// creation recording must match the model (global or cross-component
/// parents).
fn restore_plan(spec: &InterfaceSpec, stub: &CompiledStubSpec, diags: &mut Vec<Diagnostic>) {
    let want_records = spec.model.global || spec.model.parent.crosses_components();
    if stub.records_creations != want_records {
        diags.push(Diagnostic::new(
            Code::ConformanceRestorePlan,
            format!(
                "records_creations is {}, but the model demands {} (global: {}, parent \
                 policy: {})",
                stub.records_creations, want_records, spec.model.global, spec.model.parent
            ),
        ));
    }
    match (&stub.restore, spec.model.global) {
        (None, false) => {}
        (None, true) => diags.push(Diagnostic::new(
            Code::ConformanceRestorePlan,
            "interface is global (G0) but the compiled stub has no restore plan",
        )),
        (Some((name, _)), false) => diags.push(Diagnostic::new(
            Code::ConformanceRestorePlan,
            format!("interface is not global, yet the stub carries restore plan {name:?}"),
        )),
        (Some((name, args)), true) => {
            let want_name = format!("{}_restore", spec.name);
            if *name != want_name {
                diags.push(Diagnostic::new(
                    Code::ConformanceRestorePlan,
                    format!("restore upcall is named {name:?}, expected {want_name:?}"),
                ));
            }
            let mut want: Vec<String> = vec!["creator".into(), "descid".into()];
            if let Some(create) = spec.fns.iter().find(|s| spec.machine.roles(s.id).creates) {
                for p in create.data_params() {
                    if !compid_like(&p.ty, &p.name) {
                        want.push(format!("meta:{}", p.name));
                    }
                }
            }
            // Channel interfaces re-seat restored endpoints at the last
            // *committed* cursor: the sm_cursor function's tracked return
            // value rides the restore upcall after the creation metadata.
            if let Some(cid) = spec.cursor {
                if let Some((_, cname, _)) = &spec.fns[cid.index()].retval_tracked {
                    want.push(format!("meta:{cname}"));
                }
            }
            let got: Vec<String> = args
                .iter()
                .map(|a| match a {
                    RestoreArg::Creator => "creator".to_owned(),
                    RestoreArg::DescId => "descid".to_owned(),
                    RestoreArg::Meta(slot) => format!("meta:{}", slot_name(stub, *slot)),
                })
                .collect();
            if got != want {
                diags.push(Diagnostic::new(
                    Code::ConformanceRestorePlan,
                    format!(
                        "restore argument plan drift: stub passes [{}], the model demands \
                         [{}]",
                        got.join(", "),
                        want.join(", ")
                    ),
                ));
            }
        }
    }
}

/// Expected replay-argument rendering for one parameter, mirroring the
/// compiler's lowering rules from the annotations alone.
fn want_arg(p: &superglue_idl::ParamSpec) -> String {
    match p.track {
        TrackKind::Desc => "descid".to_owned(),
        TrackKind::Parent | TrackKind::DataParent => "parentid".to_owned(),
        TrackKind::Data => {
            if compid_like(&p.ty, &p.name) {
                "clientid".to_owned()
            } else {
                format!("meta:{}", p.name)
            }
        }
        TrackKind::None => {
            if compid_like(&p.ty, &p.name) {
                "clientid".to_owned()
            } else {
                "last-observed".to_owned()
            }
        }
    }
}

fn got_arg(stub: &CompiledStubSpec, a: &ArgSource) -> String {
    match a {
        ArgSource::ClientId => "clientid".to_owned(),
        ArgSource::DescId => "descid".to_owned(),
        ArgSource::ParentId => "parentid".to_owned(),
        ArgSource::Meta(slot) => format!("meta:{}", slot_name(stub, *slot)),
        ArgSource::LastObserved => "last-observed".to_owned(),
    }
}

/// `SG054`: per-function plans — roles, descriptor/parent positions,
/// metadata captures, return-value treatment, and the replay synthesis
/// plan must all agree with the annotations.
fn per_fn_plans(spec: &InterfaceSpec, stub: &CompiledStubSpec, diags: &mut Vec<Diagnostic>) {
    for (cf, sig) in stub.fns.iter().zip(&spec.fns) {
        let mut drift = |what: String| {
            diags.push(Diagnostic::new(
                Code::ConformanceReplayPlan,
                format!("function {}: {what}", sig.name),
            ));
        };
        if cf.name != sig.name {
            drift(format!("compiled under the name {:?}", cf.name));
            continue;
        }
        let roles = spec.machine.roles(sig.id);
        if cf.roles != roles {
            drift(format!(
                "compiled roles {:?} disagree with the machine's {:?}",
                cf.roles, roles
            ));
        }
        let want_desc = sig.params.iter().position(|p| p.track == TrackKind::Desc);
        if cf.desc_arg != want_desc {
            drift(format!(
                "desc argument position is {:?}, annotations say {:?}",
                cf.desc_arg, want_desc
            ));
        }
        let want_parent = sig
            .params
            .iter()
            .position(|p| matches!(p.track, TrackKind::Parent | TrackKind::DataParent));
        if cf.parent_arg != want_parent {
            drift(format!(
                "parent argument position is {:?}, annotations say {:?}",
                cf.parent_arg, want_parent
            ));
        }
        let want_data: Vec<(usize, String)> = sig
            .params
            .iter()
            .enumerate()
            .filter(|(_, p)| matches!(p.track, TrackKind::Data | TrackKind::DataParent))
            .map(|(i, p)| (i, p.name.clone()))
            .collect();
        let got_data: Vec<(usize, String)> = cf
            .data_args
            .iter()
            .map(|&(i, slot)| (i, slot_name(stub, slot)))
            .collect();
        if got_data != want_data {
            drift(format!(
                "metadata captures are {got_data:?}, annotations say {want_data:?}"
            ));
        }
        let want_ret = expected_retval(sig, roles.creates);
        let got_ret = match cf.retval {
            RetvalSpec::None => "ignored".to_owned(),
            RetvalSpec::NewDesc(slot) => format!("new-desc:{}", slot_name(stub, slot)),
            RetvalSpec::SetData(slot) => format!("set:{}", slot_name(stub, slot)),
            RetvalSpec::AccumData(slot) => format!("accum:{}", slot_name(stub, slot)),
        };
        if got_ret != want_ret {
            drift(format!(
                "return value is treated as {got_ret}, annotations say {want_ret}"
            ));
        }
        let want_replay: Vec<String> = sig.params.iter().map(want_arg).collect();
        let got_replay: Vec<String> = cf.replay_args.iter().map(|a| got_arg(stub, a)).collect();
        if got_replay != want_replay {
            drift(format!(
                "replay plan is [{}], annotations demand [{}]",
                got_replay.join(", "),
                want_replay.join(", ")
            ));
        }
    }
}

fn expected_retval(sig: &FnSig, creates: bool) -> String {
    match &sig.retval_tracked {
        None => "ignored".to_owned(),
        Some((_, name, mode)) => {
            if creates {
                format!("new-desc:{name}")
            } else {
                match mode {
                    RetvalMode::Set => format!("set:{name}"),
                    RetvalMode::Accum => format!("accum:{name}"),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use superglue_compiler::ir::lower;

    const EVT: &str = include_str!("../../../idl/evt.sg");
    const LOCK: &str = include_str!("../../../idl/lock.sg");

    fn spec(name: &str, src: &str) -> InterfaceSpec {
        superglue_idl::compile_interface(name, src).unwrap()
    }

    #[test]
    fn faithful_lowering_is_clean() {
        for (name, src) in [("evt", EVT), ("lock", LOCK)] {
            let s = spec(name, src);
            let stub = lower(&s);
            assert_eq!(check(&s, &stub), Vec::new(), "{name} drifted");
        }
    }

    #[test]
    fn tampered_track_args_is_sg050() {
        let s = spec("lock", LOCK);
        let mut stub = lower(&s);
        let (id, _) = stub.fn_by_name("lock_restore").unwrap();
        stub.fns[id.index()].track_args = false;
        let d = check(&s, &stub);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].code, Code::ConformanceTrackArgs);
        assert!(d[0].message.contains("lock_restore"));
    }

    #[test]
    fn tampered_sigma_is_sg051() {
        let s = spec("lock", LOCK);
        let mut stub = lower(&s);
        // Invent an edge: taking a lock twice in a row.
        let (take, _) = stub.fn_by_name("lock_take").unwrap();
        let n = stub.fns.len();
        stub.sigma[(1 + take.index()) * n + take.index()] = Some(State::After(take));
        let d = check(&s, &stub);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].code, Code::ConformanceSigma);
        assert!(d[0].message.contains("after(lock_take)"));
        assert!(d[0].message.contains("invalid branch"));
    }

    #[test]
    fn tampered_recovery_maps_is_sg052() {
        let s = spec("lock", LOCK);
        let mut stub = lower(&s);
        stub.recover_via.clear();
        stub.recover_block.clear();
        let d = check(&s, &stub);
        assert_eq!(d.len(), 2);
        assert!(d.iter().all(|x| x.code == Code::ConformanceRecoveryMaps));
    }

    #[test]
    fn tampered_restore_plan_is_sg053() {
        let s = spec("evt", EVT);
        let mut stub = lower(&s);
        // Drop the metadata arguments from the G0 restore upcall.
        let (name, _) = stub.restore.clone().unwrap();
        stub.restore = Some((name, vec![RestoreArg::Creator, RestoreArg::DescId]));
        let d = check(&s, &stub);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].code, Code::ConformanceRestorePlan);
        assert!(d[0].message.contains("meta:parent_evtid"));

        let mut stub = lower(&s);
        stub.restore = None;
        let d = check(&s, &stub);
        assert!(d.iter().any(|x| x.message.contains("no restore plan")));
    }

    #[test]
    fn tampered_replay_plan_is_sg054() {
        let s = spec("evt", EVT);
        let mut stub = lower(&s);
        let (id, _) = stub.fn_by_name("evt_wait").unwrap();
        // Replay the descriptor argument from stale observations instead.
        stub.fns[id.index()].replay_args[1] = ArgSource::LastObserved;
        let d = check(&s, &stub);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].code, Code::ConformanceReplayPlan);
        assert!(d[0].message.contains("evt_wait"));
        assert!(d[0].message.contains("last-observed"));
    }

    #[test]
    fn truncated_fn_table_is_reported_and_bails() {
        let s = spec("lock", LOCK);
        let mut stub = lower(&s);
        stub.fns.pop();
        let d = check(&s, &stub);
        assert_eq!(d.len(), 1);
        assert!(d[0].message.contains("functions"));
    }
}
