//! Mutation coverage for the linter's recovery-soundness checks.
//!
//! Every fault-tolerance annotation in the six shipped `idl/*.sg` specs
//! is dropped, one at a time, at the AST level: each `sm_terminal` /
//! `sm_recover_via` / `sm_recover_block` declaration, each parameter
//! annotation (`desc` / `desc_data` / `parent_desc` / the combined
//! form), and each `desc_data_retval[_accum]` annotation. The linter
//! must flag **every mutant whose compiled recovery behavior differs
//! from the original** — zero false negatives — and must stay silent on
//! mutants whose lowered stub is semantically unchanged — zero false
//! positives.
//!
//! Whether a mutant is benign is decided by comparing a *semantic
//! projection* of the lowered [`CompiledStubSpec`]s, not by a hand-kept
//! allowlist: metadata slot indices are resolved to slot names and
//! component-id slots are ignored (replay synthesizes the client id
//! regardless of tracking), so the projection is exactly the stub
//! behavior a client can observe through recovery. One mutant in the
//! corpus is benign this way: dropping `desc_data` from `evt_split`'s
//! `componentid_t compid` parameter.
//!
//! [`CompiledStubSpec`]: superglue_compiler::CompiledStubSpec

use std::fmt::Write as _;

use superglue_compiler::ir::{self, ArgSource, RestoreArg, RetvalSpec};
use superglue_idl::ast::{CType, IdlFile, ParamAnnot, SmDecl};
use superglue_idl::{parser, validate, InterfaceSpec};
use superglue_lint::lint_parsed;

/// The six shipped IDL files, same set `superglue::sources` embeds.
const IDL: [(&str, &str); 6] = [
    ("sched", include_str!("../../../idl/sched.sg")),
    ("mm", include_str!("../../../idl/mm.sg")),
    ("fs", include_str!("../../../idl/fs.sg")),
    ("lock", include_str!("../../../idl/lock.sg")),
    ("evt", include_str!("../../../idl/evt.sg")),
    ("tmr", include_str!("../../../idl/tmr.sg")),
];

struct Mutant {
    desc: String,
    file: IdlFile,
}

/// All single-annotation-drop mutants of `file`.
///
/// `sm_transition` / `sm_creation` / `sm_block` / `sm_wakeup` are left
/// alone: they define the service protocol itself, not its fault
/// tolerance, so dropping them produces a *different service* rather
/// than an unsound spec of the same one.
fn mutants(file: &IdlFile) -> Vec<Mutant> {
    let mut out = Vec::new();
    for (i, decl) in file.sm_decls.iter().enumerate() {
        if !matches!(
            decl,
            SmDecl::Terminal(_) | SmDecl::RecoverVia(..) | SmDecl::RecoverBlock(..)
        ) {
            continue;
        }
        let mut m = file.clone();
        m.sm_decls.remove(i);
        m.sm_spans.remove(i);
        out.push(Mutant {
            desc: format!("drop {decl:?}"),
            file: m,
        });
    }
    for (fi, f) in file.functions.iter().enumerate() {
        for (pi, p) in f.params.iter().enumerate() {
            if p.annot == ParamAnnot::None {
                continue;
            }
            let mut m = file.clone();
            m.functions[fi].params[pi].annot = ParamAnnot::None;
            out.push(Mutant {
                desc: format!("drop {:?} from {}({})", p.annot, f.name, p.name),
                file: m,
            });
        }
        if f.retval.is_some() {
            let mut m = file.clone();
            m.functions[fi].retval = None;
            // `desc_data_retval` may also supply the return type; keep
            // the mutant syntactically complete so the diagnostics
            // reflect the lost tracking, not a missing return type.
            if m.functions[fi].ret.is_none() {
                m.functions[fi].ret = Some(CType::simple("long"));
            }
            out.push(Mutant {
                desc: format!("drop retval annotation from {}", f.name),
                file: m,
            });
        }
    }
    out
}

/// Render the recovery-relevant behavior of the lowered stub, with slot
/// indices resolved to names and component-id arguments ignored.
fn projection(spec: &InterfaceSpec) -> String {
    let stub = ir::lower(spec);
    let slot = |s: usize| {
        stub.meta_names
            .get(s)
            .cloned()
            .unwrap_or_else(|| format!("slot#{s}"))
    };
    let compid_like =
        |ty: &str, name: &str| ty.to_lowercase().contains("componentid") || name == "compid";
    let mut p = String::new();
    for (from, f, to) in stub.machine.edges() {
        let _ = writeln!(
            p,
            "edge {from:?} --{}--> {to:?}",
            stub.machine.function_name(f)
        );
    }
    for (fid, cf) in stub.fns.iter().enumerate() {
        let _ = write!(
            p,
            "fn {} roles={:?} desc={:?} parent={:?} track_args={} data=[",
            cf.name, cf.roles, cf.desc_arg, cf.parent_arg, cf.track_args
        );
        for &(pos, s) in &cf.data_args {
            let param = &spec.fns[fid].params[pos];
            if compid_like(&param.ty, &param.name) {
                continue;
            }
            let _ = write!(p, "({pos},{}) ", slot(s));
        }
        let _ = write!(p, "] retval=");
        let _ = match cf.retval {
            RetvalSpec::None => write!(p, "ignored"),
            RetvalSpec::NewDesc(s) => write!(p, "new-desc:{}", slot(s)),
            RetvalSpec::SetData(s) => write!(p, "set:{}", slot(s)),
            RetvalSpec::AccumData(s) => write!(p, "accum:{}", slot(s)),
        };
        let _ = write!(p, " replay=[");
        for a in &cf.replay_args {
            let _ = match a {
                ArgSource::ClientId => write!(p, "client "),
                ArgSource::DescId => write!(p, "desc "),
                ArgSource::ParentId => write!(p, "parent "),
                ArgSource::Meta(s) => write!(p, "meta:{} ", slot(*s)),
                ArgSource::LastObserved => write!(p, "last-observed "),
            };
        }
        let _ = writeln!(p, "]");
    }
    for (f, g) in &stub.recover_via {
        let _ = writeln!(
            p,
            "recover_via {} -> {}",
            stub.machine.function_name(*f),
            stub.machine.function_name(*g)
        );
    }
    for (f, g) in &stub.recover_block {
        let _ = writeln!(
            p,
            "recover_block {} -> {}",
            stub.machine.function_name(*f),
            stub.machine.function_name(*g)
        );
    }
    let _ = writeln!(p, "records_creations={}", stub.records_creations);
    if let Some((name, args)) = &stub.restore {
        let _ = write!(p, "restore {name}(");
        for a in args {
            let _ = match a {
                RestoreArg::Creator => write!(p, "creator "),
                RestoreArg::DescId => write!(p, "descid "),
                RestoreArg::Meta(s) => write!(p, "meta:{} ", slot(*s)),
            };
        }
        let _ = writeln!(p, ")");
    }
    let _ = writeln!(p, "sigma={:?}", stub.sigma);
    p
}

#[test]
fn every_semantic_mutant_is_flagged_and_every_benign_one_is_not() {
    let mut total = 0usize;
    let mut benign: Vec<String> = Vec::new();
    for (name, src) in IDL {
        let file = parser::parse(src).expect("shipped IDL parses");
        let original = validate::validate(name, &file).expect("shipped IDL validates");
        let original_proj = projection(&original);
        for m in mutants(&file) {
            total += 1;
            let report = lint_parsed(name, &m.file);
            let flagged = report.fails(true);
            match validate::validate(name, &m.file) {
                Err(_) => assert!(
                    flagged,
                    "{name}: mutant `{}` fails validation but the lint report \
                     has no error diagnostic",
                    m.desc
                ),
                Ok(mutated) => {
                    if projection(&mutated) == original_proj {
                        assert!(
                            !flagged,
                            "{name}: mutant `{}` compiles to the same stub but was \
                             flagged (false positive):\n{}",
                            m.desc,
                            report.render_human(name)
                        );
                        benign.push(format!("{name}: {}", m.desc));
                    } else {
                        assert!(
                            flagged,
                            "{name}: mutant `{}` changes the compiled recovery \
                             behavior but lints clean (false negative)",
                            m.desc
                        );
                    }
                }
            }
        }
    }
    // The corpus is meaningful: dozens of mutants, and exactly the one
    // independently-verified benign case (evt_split's compid is
    // synthesized from the client id during replay whether or not it is
    // tracked). A second benign entry means a check regressed.
    assert!(
        total >= 50,
        "mutant generator degraded: only {total} mutants"
    );
    assert_eq!(
        benign,
        vec!["evt: drop DescData from evt_split(compid)".to_owned()],
        "set of benign mutants changed"
    );
}

/// Whether `a` elides bookkeeping that `b` keeps. Both must be derived
/// from the same lowered stub (same slot numbering), so field
/// comparison is exact.
fn elides_beyond(
    a: &superglue_compiler::CompiledStubSpec,
    b: &superglue_compiler::CompiledStubSpec,
) -> bool {
    a.fns.iter().zip(&b.fns).any(|(x, y)| {
        (x.sigma_const.is_some() && x.sigma_const != y.sigma_const)
            || (x.store_slot.is_none() && y.store_slot.is_some())
            || y.live_data_args
                .iter()
                .any(|e| !x.live_data_args.contains(e))
            || (matches!(x.retval_eff, RetvalSpec::None)
                && !matches!(y.retval_eff, RetvalSpec::None))
    }) || (a.elide_pending && !b.elide_pending)
        || (a.elide_affinity && !b.elide_affinity)
        || (a.elide_translation && !b.elide_translation)
        || (a.elide_records && !b.elide_records)
}

/// Elision certificates must *flip* under every mutation that changes a
/// certified fact, and a **stale** certificate — the original spec's
/// facts applied to a mutant's stub — must never be silently accepted:
/// whenever the stale graft elides anything the mutant cannot prove,
/// the lint's independent recomputation reports `SG064`.
#[test]
fn every_proof_invalidating_mutation_flips_the_certificate() {
    use superglue_compiler::ElisionFacts;
    use superglue_lint::{elision, Code, SpanIndex};

    let mut flipped = 0usize;
    let mut grafts_checked = 0usize;
    for (name, src) in IDL {
        let file = parser::parse(src).expect("shipped IDL parses");
        let original = validate::validate(name, &file).expect("shipped IDL validates");
        let orig_stub = ir::lower(&original);
        let orig_facts = ElisionFacts::certify(&orig_stub);
        let orig_cert = orig_facts.to_json(&orig_stub.meta_names);
        for m in mutants(&file) {
            let Ok(mspec) = validate::validate(name, &m.file) else {
                continue; // refused outright — nothing to accept a cert for
            };
            let mstub = ir::lower(&mspec);
            let fresh_facts = ElisionFacts::certify(&mstub);
            let mut_cert = fresh_facts.to_json(&mstub.meta_names);
            if mut_cert == orig_cert {
                continue; // no elision fact changed: the old cert is current
            }
            flipped += 1;
            // Graft the stale facts onto the mutant's stub. Slot indices
            // are only comparable when the mutation kept the metadata
            // table, and a graft the certifier itself refuses is already
            // detected.
            if mstub.meta_names != orig_stub.meta_names || mstub.fns.len() != orig_stub.fns.len() {
                continue;
            }
            let mut stale = mstub.clone();
            if orig_facts.apply(&mut stale).is_err() {
                continue;
            }
            let mut fresh = mstub.clone();
            if fresh_facts.apply(&mut fresh).is_err() {
                continue; // the mutant's own requests are unprovable: SG06x territory
            }
            grafts_checked += 1;
            let diags = elision::check(&mspec, &stale, &SpanIndex::empty());
            let drift_flagged = diags.iter().any(|d| d.code == Code::ElisionFactsDrift);
            if elides_beyond(&stale, &fresh) {
                assert!(
                    drift_flagged,
                    "{name}: mutant `{}` invalidates the elision proof, but the stale \
                     certificate was accepted without SG064",
                    m.desc
                );
            }
        }
    }
    assert!(
        flipped >= 10,
        "certificate-flip corpus degraded: only {flipped} mutants change any fact"
    );
    assert!(
        grafts_checked >= 5,
        "stale-graft corpus degraded: only {grafts_checked} grafts exercised"
    );
}

/// The originals themselves must be clean — otherwise "flagged" is
/// meaningless because everything is flagged.
#[test]
fn originals_lint_clean_under_deny_warnings() {
    for (name, src) in IDL {
        let file = parser::parse(src).expect("shipped IDL parses");
        let report = lint_parsed(name, &file);
        assert!(
            !report.fails(true),
            "{name}: shipped spec fails --deny-warnings:\n{}",
            report.render_human(name)
        );
    }
}
