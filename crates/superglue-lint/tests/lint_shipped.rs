//! The seven shipped `idl/*.sg` specs must lint clean.
//!
//! This is the analyzer's precision bar: all the shipped interfaces are
//! sound (they drive the runtime's recovery tests), so any error or
//! warning here is a false positive. The single allowed finding is the
//! `SG040` *note* on `tmr.sg` — a true statement about the timer design
//! (blocked waiters are clock-woken, there is no wakeup function) that
//! must never fail a build, even under `--deny-warnings`.

use superglue_lint::{compile_checked, lint_source, Code, Severity};

const IDL: [(&str, &str); 7] = [
    ("sched", include_str!("../../../idl/sched.sg")),
    ("mm", include_str!("../../../idl/mm.sg")),
    ("fs", include_str!("../../../idl/fs.sg")),
    ("lock", include_str!("../../../idl/lock.sg")),
    ("evt", include_str!("../../../idl/evt.sg")),
    ("tmr", include_str!("../../../idl/tmr.sg")),
    ("chan", include_str!("../../../idl/chan.sg")),
];

#[test]
fn shipped_specs_have_no_errors_or_warnings() {
    for (name, src) in IDL {
        let report = lint_source(name, src);
        assert_eq!(
            report.count(Severity::Error),
            0,
            "{name}: {:?}",
            report.diagnostics
        );
        assert_eq!(
            report.count(Severity::Warning),
            0,
            "{name}: {:?}",
            report.diagnostics
        );
        assert!(
            !report.fails(true),
            "{name} must pass even under --deny-warnings"
        );
    }
}

#[test]
fn only_tmr_gets_the_clock_woken_note() {
    for (name, src) in IDL {
        let report = lint_source(name, src);
        let notes: Vec<_> = report
            .diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Note)
            .collect();
        if name == "tmr" {
            assert_eq!(notes.len(), 1, "{name}");
            assert_eq!(notes[0].code, Code::BlockingWithoutWakeup);
            assert!(notes[0].span.is_some(), "note should point at sm_block");
        } else {
            assert!(notes.is_empty(), "{name}: {notes:?}");
        }
    }
}

#[test]
fn checked_compilation_succeeds_for_all_shipped_specs() {
    for (name, src) in IDL {
        let out = compile_checked(name, src)
            .unwrap_or_else(|report| panic!("{name} refused: {:?}", report.diagnostics));
        assert_eq!(out.stub_spec.interface, name);
        assert!(!out.client_source.is_empty());
        assert!(!out.server_source.is_empty());
    }
}

#[test]
fn reports_are_deterministic() {
    for (name, src) in IDL {
        assert_eq!(lint_source(name, src), lint_source(name, src), "{name}");
    }
}
