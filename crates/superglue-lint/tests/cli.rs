//! End-to-end tests of the `sglint` binary: exit codes, output formats,
//! and flag handling, exactly as CI invokes it.

use std::path::PathBuf;
use std::process::{Command, Output};

fn sglint(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_sglint"))
        .args(args)
        .output()
        .expect("sglint runs")
}

fn idl(name: &str) -> String {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../idl")
        .join(name)
        .display()
        .to_string()
}

fn bad_spec(name: &str) -> String {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/bad_specs")
        .join(name)
        .display()
        .to_string()
}

#[test]
fn shipped_specs_pass_even_with_deny_warnings() {
    let files: Vec<String> = ["sched.sg", "mm.sg", "fs.sg", "lock.sg", "evt.sg", "tmr.sg"]
        .iter()
        .map(|f| idl(f))
        .collect();
    let mut args: Vec<&str> = vec!["--deny-warnings"];
    args.extend(files.iter().map(String::as_str));
    let out = sglint(&args);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(
        stderr.contains("6 spec(s) checked"),
        "summary missing: {stderr}"
    );
    // tmr's clock-woken note is informational: printed, never fatal.
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("SG040"), "expected tmr note: {stdout}");
}

#[test]
fn error_diagnostics_fail_the_run() {
    let out = sglint(&[&bad_spec("leak.sg")]);
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("error[SG011]"), "{stdout}");
}

#[test]
fn warnings_fail_only_under_deny_warnings() {
    let spec = bad_spec("no_terminal.sg");
    let out = sglint(&[&spec]);
    assert_eq!(out.status.code(), Some(0), "warning alone must not fail");
    let out = sglint(&["--deny-warnings", &spec]);
    assert_eq!(out.status.code(), Some(1));
}

#[test]
fn json_format_emits_one_object_per_file() {
    let out = sglint(&["--format", "json", &bad_spec("untracked_arg.sg")]);
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8(out.stdout).unwrap();
    let lines: Vec<&str> = stdout.lines().collect();
    assert_eq!(lines.len(), 1, "one JSON line per input file: {stdout}");
    assert!(lines[0].starts_with('{') && lines[0].ends_with('}'));
    assert!(lines[0].contains("\"code\":\"SG030\""), "{stdout}");
    assert!(
        lines[0].contains("\"interface\":\"untracked_arg\""),
        "{stdout}"
    );
}

#[test]
fn emit_certs_writes_one_deterministic_certificate_per_clean_spec() {
    let dir = std::env::temp_dir().join(format!("sglint-certs-{}", std::process::id()));
    let out = sglint(&[
        "--emit-certs",
        dir.to_str().unwrap(),
        &idl("sched.sg"),
        &idl("lock.sg"),
    ]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let sched = std::fs::read_to_string(dir.join("sched.cert.json")).unwrap();
    assert!(
        sched.contains("\"schema\": \"superglue-elision-cert\""),
        "{sched}"
    );
    assert!(sched.contains("\"interface\": \"sched\""), "{sched}");
    let lock = std::fs::read_to_string(dir.join("lock.cert.json")).unwrap();
    assert!(lock.contains("\"affinity_dead\": false"), "{lock}");
    // Re-running produces byte-identical artifacts.
    let out = sglint(&["--emit-certs", dir.to_str().unwrap(), &idl("sched.sg")]);
    assert_eq!(out.status.code(), Some(0));
    assert_eq!(
        std::fs::read_to_string(dir.join("sched.cert.json")).unwrap(),
        sched
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn emit_certs_skips_specs_with_errors() {
    let dir = std::env::temp_dir().join(format!("sglint-certs-bad-{}", std::process::id()));
    let out = sglint(&["--emit-certs", dir.to_str().unwrap(), &bad_spec("leak.sg")]);
    assert_eq!(out.status.code(), Some(1));
    assert!(!dir.join("leak.cert.json").exists());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn usage_errors_exit_2() {
    assert_eq!(sglint(&[]).status.code(), Some(2), "no files");
    assert_eq!(
        sglint(&["--bogus", "x.sg"]).status.code(),
        Some(2),
        "unknown flag"
    );
    assert_eq!(
        sglint(&["/nonexistent/definitely-missing.sg"])
            .status
            .code(),
        Some(2),
        "unreadable file"
    );
}

#[test]
fn help_exits_0_and_documents_flags() {
    let out = sglint(&["--help"]);
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8(out.stdout).unwrap();
    for needle in ["--deny-warnings", "--format", "SG0"] {
        assert!(stdout.contains(needle), "help missing {needle}: {stdout}");
    }
}
