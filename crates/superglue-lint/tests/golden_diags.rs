//! Golden-file snapshot tests for `sglint` diagnostics.
//!
//! Every `.sg` file under `tests/bad_specs/` is a minimal spec that
//! violates exactly one (occasionally two) recovery-soundness property.
//! The linter's full human-readable report for each is compared
//! **byte-for-byte** against a checked-in snapshot under
//! `tests/golden_diags/`, so any drift in wording, spans, ordering, or
//! severity shows up as a readable diff in review.
//!
//! To regenerate after an intentional diagnostic change:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test -p superglue-lint --test golden_diags
//! ```

use std::fs;
use std::path::PathBuf;

use superglue_lint::lint_source;

/// Each bad spec and the diagnostic codes it must trigger. The list is
/// the contract: a spec here that lints clean means a check regressed
/// into a false negative.
const BAD_SPECS: [(&str, &[&str]); 21] = [
    ("syntax", &["SG001"]),
    ("unknown_fn", &["SG002"]),
    ("no_terminal", &["SG010"]),
    ("leak", &["SG011"]),
    ("dead_terminal_edge", &["SG012"]),
    ("orphan", &["SG013"]),
    ("blocking_midwalk", &["SG021", "SG022"]),
    ("blocking_final", &["SG022"]),
    ("lost_substitution", &["SG023"]),
    ("untracked_arg", &["SG030"]),
    ("bad_restore_sig", &["SG031"]),
    ("blocking_restore", &["SG032"]),
    ("unused_meta", &["SG041", "SG040"]),
    ("elide_sigma_live", &["SG060"]),
    ("elide_replay_reads", &["SG061"]),
    ("elide_recorded_creation", &["SG062"]),
    ("elide_blocking_affine", &["SG063"]),
    ("elide_live_meta", &["SG065"]),
    ("chan_no_cursor", &["SG070"]),
    ("chan_untracked_cursor", &["SG071"]),
    ("chan_replayed_peek", &["SG072"]),
];

fn specs_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/bad_specs")
}

fn spec_path(stem: &str) -> PathBuf {
    specs_dir().join(format!("{stem}.sg"))
}

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden_diags")
}

fn golden_path(file: &str) -> PathBuf {
    golden_dir().join(file)
}

/// Compare `actual` against the checked-in snapshot, or rewrite the
/// snapshot when `UPDATE_GOLDEN` is set.
fn assert_matches_golden(file: &str, actual: &str) {
    let path = golden_path(file);
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        fs::create_dir_all(path.parent().unwrap()).unwrap();
        fs::write(&path, actual).unwrap();
        return;
    }
    let expected = fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); run with UPDATE_GOLDEN=1 to create it",
            path.display()
        )
    });
    assert_eq!(
        actual, expected,
        "diagnostics for {file} differ from golden snapshot; \
         if the change is intentional, regenerate with UPDATE_GOLDEN=1"
    );
}

fn check_bad_spec(stem: &str, codes: &[&str]) {
    let src = fs::read_to_string(spec_path(stem)).expect("bad spec exists");
    let report = lint_source(stem, &src);
    assert!(
        report.fails(true),
        "{stem}.sg is in the negative corpus but lints clean under --deny-warnings"
    );
    let got: Vec<&str> = report.diagnostics.iter().map(|d| d.code.as_str()).collect();
    for code in codes {
        assert!(
            got.contains(code),
            "{stem}.sg should trigger {code}, got {got:?}"
        );
    }
    let label = format!("tests/bad_specs/{stem}.sg");
    assert_matches_golden(&format!("{stem}.txt"), &report.render_human(&label));
}

#[test]
fn negative_corpus_matches_golden_diagnostics() {
    for (stem, codes) in BAD_SPECS {
        check_bad_spec(stem, codes);
    }
}

/// Every file in `tests/bad_specs/` is listed in `BAD_SPECS`, and every
/// snapshot in `tests/golden_diags/` belongs to a listed spec — no
/// unchecked specs or stale snapshots survive unnoticed.
#[test]
fn corpus_and_snapshot_dirs_have_no_strays() {
    let mut specs: Vec<String> = fs::read_dir(specs_dir())
        .unwrap()
        .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
        .collect();
    specs.sort_unstable();
    let mut expected: Vec<String> = BAD_SPECS.iter().map(|(s, _)| format!("{s}.sg")).collect();
    expected.sort_unstable();
    assert_eq!(
        specs, expected,
        "tests/bad_specs/ out of sync with BAD_SPECS"
    );

    let Ok(entries) = fs::read_dir(golden_dir()) else {
        // First run before generation; the corpus test reports it.
        return;
    };
    let mut snaps: Vec<String> = entries
        .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
        .collect();
    snaps.sort_unstable();
    let mut expected: Vec<String> = BAD_SPECS.iter().map(|(s, _)| format!("{s}.txt")).collect();
    expected.sort_unstable();
    assert_eq!(
        snaps, expected,
        "tests/golden_diags/ out of sync with BAD_SPECS"
    );
}
