//! Token definitions for the SuperGlue IDL lexer.

use std::fmt;

use crate::Span;

/// Lexical token kinds.
///
/// The IDL is a C-prototype subset, so the token set is tiny: identifiers
/// (which also cover type names and the `sm_*` keywords — keyword
/// recognition happens in the parser), integer literals (array sizes,
/// rarely used), and punctuation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`evt_split`, `desc_data`, `true`, `long`…).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `,`
    Comma,
    /// `;`
    Semi,
    /// `=`
    Eq,
    /// `*` (pointer declarator)
    Star,
    /// End of input (always the final token).
    Eof,
}

impl TokenKind {
    /// Identifier text, if this token is an identifier.
    #[must_use]
    pub fn ident(&self) -> Option<&str> {
        match self {
            TokenKind::Ident(s) => Some(s),
            _ => None,
        }
    }
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Ident(s) => write!(f, "identifier {s:?}"),
            TokenKind::Int(v) => write!(f, "integer {v}"),
            TokenKind::LParen => f.write_str("'('"),
            TokenKind::RParen => f.write_str("')'"),
            TokenKind::LBrace => f.write_str("'{'"),
            TokenKind::RBrace => f.write_str("'}'"),
            TokenKind::Comma => f.write_str("','"),
            TokenKind::Semi => f.write_str("';'"),
            TokenKind::Eq => f.write_str("'='"),
            TokenKind::Star => f.write_str("'*'"),
            TokenKind::Eof => f.write_str("end of input"),
        }
    }
}

/// A token with its source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// The token kind and payload.
    pub kind: TokenKind,
    /// Source location of the first character.
    pub span: Span,
}

impl Token {
    /// Construct a token.
    #[must_use]
    pub fn new(kind: TokenKind, span: Span) -> Self {
        Self { kind, span }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        assert_eq!(TokenKind::Ident("x".into()).to_string(), "identifier \"x\"");
        assert_eq!(TokenKind::Semi.to_string(), "';'");
        assert_eq!(TokenKind::Eof.to_string(), "end of input");
        assert_eq!(TokenKind::Int(4).to_string(), "integer 4");
    }

    #[test]
    fn ident_accessor() {
        assert_eq!(TokenKind::Ident("abc".into()).ident(), Some("abc"));
        assert_eq!(TokenKind::Comma.ident(), None);
    }
}
