//! Front end for the SuperGlue interface description language.
//!
//! The SuperGlue IDL (§IV-A of the paper, Table I and Fig 3) is a thin
//! layer over C function prototypes: a `service_global_info` block sets
//! the descriptor-resource model, `sm_*` declarations describe the
//! descriptor state machine, and parameter annotations (`desc`,
//! `desc_data`, `parent_desc`, `desc_data_retval`) tell the compiler what
//! to track.
//!
//! The paper's implementation reused the C preprocessor plus `pycparser`;
//! here the whole front end is a self-contained lexer ([`lexer`]) and
//! recursive-descent parser ([`parser`]) producing an AST ([`ast`]),
//! followed by semantic validation ([`validate`]) that lowers the AST
//! into the formal model types of [`superglue_sm`]: a
//! [`superglue_sm::DescriptorResourceModel`] and a
//! [`superglue_sm::StateMachine`], bundled as an [`InterfaceSpec`].
//!
//! # Example
//!
//! ```
//! let src = r#"
//! service_global_info = {
//!     desc_block = true
//! };
//! sm_creation(lock_alloc);
//! sm_terminal(lock_free);
//! sm_block(lock_take);
//! sm_wakeup(lock_release);
//! sm_transition(lock_alloc, lock_take);
//! sm_transition(lock_take, lock_release);
//! sm_transition(lock_release, lock_take);
//! sm_transition(lock_release, lock_free);
//! sm_transition(lock_alloc, lock_free);
//!
//! desc_data_retval(long, lockid)
//! lock_alloc(componentid_t compid);
//! int lock_take(componentid_t compid, desc(long lockid));
//! int lock_release(componentid_t compid, desc(long lockid));
//! int lock_free(componentid_t compid, desc(long lockid));
//! "#;
//! let spec = superglue_idl::compile_interface("lock", src)?;
//! assert_eq!(spec.name, "lock");
//! assert!(spec.model.blocks);
//! assert_eq!(spec.machine.function_count(), 4);
//! # Ok::<(), superglue_idl::IdlError>(())
//! ```

pub mod ast;
pub mod lexer;
pub mod parser;
pub mod token;
pub mod validate;

mod error;

pub use ast::{CType, FnDecl, GlobalValue, IdlFile, Param, ParamAnnot, SmDecl};
pub use error::{IdlError, Span};
pub use validate::{FnSig, InterfaceSpec, ParamSpec, TrackKind};

/// Parse and validate one IDL source file into an [`InterfaceSpec`].
///
/// `name` is the interface/service name (conventionally the `.sg` file
/// stem, e.g. `"evt"` or `"lock"`).
///
/// # Errors
///
/// Returns an [`IdlError`] describing the first lexical, syntactic, or
/// semantic problem, with source position where applicable.
pub fn compile_interface(name: &str, source: &str) -> Result<InterfaceSpec, IdlError> {
    let file = parser::parse(source)?;
    validate::validate(name, &file)
}

/// Count non-blank, non-comment lines of an IDL source — the LOC metric
/// of Fig 6(c).
#[must_use]
pub fn idl_loc(source: &str) -> usize {
    source
        .lines()
        .map(str::trim)
        .filter(|l| {
            !l.is_empty() && !l.starts_with("//") && !l.starts_with("/*") && !l.starts_with('*')
        })
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idl_loc_skips_blanks_and_comments() {
        let src = "\n// comment\n/* block\n * inner\n*/\nint f();\n\nint g();\n";
        assert_eq!(idl_loc(src), 2);
    }

    #[test]
    fn compile_interface_reports_name() {
        let src = "sm_creation(f);\ndesc_data_retval(long, id)\nf();\n";
        let spec = compile_interface("svc", src).unwrap();
        assert_eq!(spec.name, "svc");
    }
}
