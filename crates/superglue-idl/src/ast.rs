//! Abstract syntax tree for SuperGlue IDL files.

use std::fmt;

use superglue_sm::ParentPolicy;

use crate::Span;

/// A parsed IDL file: global info, state-machine declarations, and
/// annotated function prototypes, in source order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct IdlFile {
    /// Key/value pairs of the `service_global_info` block (empty when the
    /// block is absent — every property then defaults to false/`Solo`).
    pub global_info: Vec<(String, GlobalValue)>,
    /// `sm_*` declarations in source order.
    pub sm_decls: Vec<SmDecl>,
    /// Source locations of the `sm_*` declarations, index-aligned with
    /// [`IdlFile::sm_decls`] (the span of each declaration's keyword).
    pub sm_spans: Vec<Span>,
    /// Function prototypes in source order.
    pub functions: Vec<FnDecl>,
}

impl IdlFile {
    /// The source span of the first `sm_*` declaration matching `pred`.
    #[must_use]
    pub fn sm_span_where(&self, pred: impl FnMut(&SmDecl) -> bool) -> Option<Span> {
        self.sm_decls
            .iter()
            .position(pred)
            .and_then(|i| self.sm_spans.get(i).copied())
    }
}

/// Value of a `service_global_info` entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GlobalValue {
    /// `true` / `false`.
    Bool(bool),
    /// `Solo` / `Parent` / `XCParent` (case-insensitive in the surface
    /// syntax).
    Policy(ParentPolicy),
}

impl fmt::Display for GlobalValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GlobalValue::Bool(b) => write!(f, "{b}"),
            GlobalValue::Policy(p) => write!(f, "{p}"),
        }
    }
}

/// A state-machine declaration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SmDecl {
    /// `sm_transition(f, g)` — `g` may follow `f`.
    Transition(String, String),
    /// `sm_creation(f)` — `f ∈ I^create`.
    Creation(String),
    /// `sm_terminal(f)` — `f ∈ I^terminate`.
    Terminal(String),
    /// `sm_block(f)` — `f ∈ I^block`.
    Block(String),
    /// `sm_wakeup(f)` — `f ∈ I^wakeup`.
    Wakeup(String),
    /// `sm_recover_via(f, g)` — when recovering a descriptor whose
    /// expected state is `After(f)`, rebuild to `After(g)` instead. Used
    /// for data-transfer functions (reads/writes, waits) whose replay
    /// would re-perform I/O or block, where the paper's C³ stubs
    /// hand-coded an equivalent substitution.
    RecoverVia(String, String),
    /// `sm_recover_block(f, g)` — when a recovery walk must replay the
    /// blocking function `f` on behalf of a *different* thread (the
    /// recorded state owner), invoke the recovery entry point `g`
    /// instead, passing the owner thread id. Locks need this: a taken
    /// lock must be restored to its recorded holder, not usurped by the
    /// recovering thread.
    RecoverBlock(String, String),
    /// `sm_elide(f)` — request the tracking-elision fast path for `f`:
    /// the stub compiler may drop `f`'s per-call descriptor bookkeeping
    /// (σ-table write, metadata harvest, last-argument store) *iff* the
    /// certifier proves the elision unobservable (sglint SG060–SG06x).
    /// Requesting an unprovable elision is a lint error, never a silent
    /// downgrade.
    Elide(String),
    /// `sm_channel(f)` — this interface's descriptors are channel
    /// endpoints opened by the creation function `f`; message-observing
    /// functions follow peek-before-commit semantics, so recovery must
    /// re-seat a rebooted endpoint at its last *committed* cursor rather
    /// than replaying observations.
    Channel(String),
    /// `sm_cursor(f)` — `f` is the channel's cursor-commit function: its
    /// tracked return value is the committed cursor position, harvested
    /// into descriptor metadata on every commit and passed to the
    /// restore upcall (CR0 committed-cursor replay).
    Cursor(String),
}

/// A C type as written: one or more identifier words plus pointer depth
/// (e.g. `unsigned long`, `char *`, `componentid_t`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CType {
    /// The identifier words, in order.
    pub words: Vec<String>,
    /// Number of `*` declarators.
    pub pointers: u8,
}

impl CType {
    /// Construct from words and pointer depth.
    #[must_use]
    pub fn new(words: Vec<String>, pointers: u8) -> Self {
        Self { words, pointers }
    }

    /// Shorthand for a single-word non-pointer type.
    #[must_use]
    pub fn simple(word: &str) -> Self {
        Self {
            words: vec![word.to_owned()],
            pointers: 0,
        }
    }
}

impl fmt::Display for CType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.words.join(" "))?;
        for _ in 0..self.pointers {
            write!(f, " *")?;
        }
        Ok(())
    }
}

/// Tracking annotation attached to a parameter (Table I, "descriptor
/// state tracking" rows).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParamAnnot {
    /// Unannotated parameter — passed through, not tracked.
    None,
    /// `desc_data(type name)` — track this argument in the descriptor's
    /// metadata.
    DescData,
    /// `desc(type name)` — this argument *is* the descriptor id (lookup
    /// key).
    Desc,
    /// `parent_desc(type name)` — this argument names the parent
    /// descriptor.
    ParentDesc,
    /// `desc_data(parent_desc(type name))` — tracked metadata that is
    /// also the parent descriptor id (Fig 3's `parent_evtid`).
    DescDataParent,
}

impl ParamAnnot {
    /// Whether this annotation marks the parameter as the parent
    /// descriptor.
    #[must_use]
    pub fn is_parent(self) -> bool {
        matches!(self, ParamAnnot::ParentDesc | ParamAnnot::DescDataParent)
    }

    /// Whether the argument value is stored into descriptor metadata.
    #[must_use]
    pub fn is_tracked(self) -> bool {
        matches!(self, ParamAnnot::DescData | ParamAnnot::DescDataParent)
    }
}

/// One function parameter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Param {
    /// Declared C type.
    pub ty: CType,
    /// Parameter name.
    pub name: String,
    /// Tracking annotation.
    pub annot: ParamAnnot,
    /// Source location of the parameter (its first token).
    pub span: Span,
}

/// How a `desc_data_retval`-style annotation treats the return value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RetvalMode {
    /// `desc_data_retval(type, name)` — store the return value under
    /// `name` (on a creation function, the value is also the new
    /// descriptor's id).
    Set,
    /// `desc_data_retval_accum(type, name)` — add the return value (or
    /// the byte length of a buffer return) to the metadata under `name`;
    /// how read/write offsets are derived from return values (§II-C).
    Accum,
}

/// A function prototype with its annotations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FnDecl {
    /// Declared return type; `None` when omitted (Fig 3's `evt_split`
    /// style, where `desc_data_retval` supplies the type).
    pub ret: Option<CType>,
    /// `desc_data_retval[_accum](type, name)` annotation: how the return
    /// value is tracked.
    pub retval: Option<(CType, String, RetvalMode)>,
    /// Function name.
    pub name: String,
    /// Source location of the function name token.
    pub span: Span,
    /// Parameters in order.
    pub params: Vec<Param>,
}

impl FnDecl {
    /// The parameter annotated as the descriptor lookup key, if any.
    #[must_use]
    pub fn desc_param(&self) -> Option<&Param> {
        self.params.iter().find(|p| p.annot == ParamAnnot::Desc)
    }

    /// The parameter annotated as the parent descriptor, if any.
    #[must_use]
    pub fn parent_param(&self) -> Option<&Param> {
        self.params.iter().find(|p| p.annot.is_parent())
    }

    /// All parameters whose values are tracked as descriptor metadata.
    pub fn tracked_params(&self) -> impl Iterator<Item = &Param> {
        self.params.iter().filter(|p| p.annot.is_tracked())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ctype_display() {
        assert_eq!(CType::simple("long").to_string(), "long");
        assert_eq!(
            CType::new(vec!["unsigned".into(), "long".into()], 0).to_string(),
            "unsigned long"
        );
        assert_eq!(CType::new(vec!["char".into()], 2).to_string(), "char * *");
    }

    #[test]
    fn annot_predicates() {
        assert!(ParamAnnot::ParentDesc.is_parent());
        assert!(ParamAnnot::DescDataParent.is_parent());
        assert!(!ParamAnnot::Desc.is_parent());
        assert!(ParamAnnot::DescData.is_tracked());
        assert!(ParamAnnot::DescDataParent.is_tracked());
        assert!(!ParamAnnot::None.is_tracked());
    }

    #[test]
    fn fn_decl_param_queries() {
        let f = FnDecl {
            ret: Some(CType::simple("int")),
            retval: None,
            name: "evt_wait".into(),
            span: Span::default(),
            params: vec![
                Param {
                    ty: CType::simple("componentid_t"),
                    name: "compid".into(),
                    annot: ParamAnnot::None,
                    span: Span::default(),
                },
                Param {
                    ty: CType::simple("long"),
                    name: "evtid".into(),
                    annot: ParamAnnot::Desc,
                    span: Span::default(),
                },
                Param {
                    ty: CType::simple("long"),
                    name: "parent".into(),
                    annot: ParamAnnot::DescDataParent,
                    span: Span::default(),
                },
            ],
        };
        assert_eq!(f.desc_param().unwrap().name, "evtid");
        assert_eq!(f.parent_param().unwrap().name, "parent");
        assert_eq!(f.tracked_params().count(), 1);
    }

    #[test]
    fn global_value_display() {
        assert_eq!(GlobalValue::Bool(true).to_string(), "true");
        assert_eq!(
            GlobalValue::Policy(ParentPolicy::XcParent).to_string(),
            "XCParent"
        );
    }
}
