//! Hand-written lexer for the SuperGlue IDL.
//!
//! Handles `//` line comments, `/* … */` block comments, identifiers
//! (including `_`), decimal integer literals, and the punctuation set of
//! [`crate::token::TokenKind`]. Positions are tracked for diagnostics.

use crate::token::{Token, TokenKind};
use crate::{IdlError, Span};

/// Tokenize an entire source string.
///
/// The returned vector always ends with an [`TokenKind::Eof`] token.
///
/// # Errors
///
/// [`IdlError::Lex`] on a character outside the language, or
/// [`IdlError::UnterminatedComment`] when a `/*` never closes.
pub fn lex(source: &str) -> Result<Vec<Token>, IdlError> {
    Lexer::new(source).run()
}

struct Lexer<'a> {
    chars: std::iter::Peekable<std::str::Chars<'a>>,
    line: u32,
    col: u32,
}

impl<'a> Lexer<'a> {
    fn new(source: &'a str) -> Self {
        Self {
            chars: source.chars().peekable(),
            line: 1,
            col: 1,
        }
    }

    fn span(&self) -> Span {
        Span::new(self.line, self.col)
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.next()?;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn peek(&mut self) -> Option<char> {
        self.chars.peek().copied()
    }

    fn run(mut self) -> Result<Vec<Token>, IdlError> {
        let mut out = Vec::new();
        loop {
            // Skip whitespace.
            while matches!(self.peek(), Some(c) if c.is_whitespace()) {
                self.bump();
            }
            let span = self.span();
            let Some(c) = self.peek() else {
                out.push(Token::new(TokenKind::Eof, span));
                return Ok(out);
            };
            match c {
                '/' => {
                    self.bump();
                    match self.peek() {
                        Some('/') => {
                            while let Some(c) = self.peek() {
                                if c == '\n' {
                                    break;
                                }
                                self.bump();
                            }
                        }
                        Some('*') => {
                            self.bump();
                            let mut closed = false;
                            while let Some(c) = self.bump() {
                                if c == '*' && self.peek() == Some('/') {
                                    self.bump();
                                    closed = true;
                                    break;
                                }
                            }
                            if !closed {
                                return Err(IdlError::UnterminatedComment { span });
                            }
                        }
                        other => {
                            return Err(IdlError::Lex {
                                span,
                                found: other.unwrap_or('/'),
                            });
                        }
                    }
                }
                '(' => {
                    self.bump();
                    out.push(Token::new(TokenKind::LParen, span));
                }
                ')' => {
                    self.bump();
                    out.push(Token::new(TokenKind::RParen, span));
                }
                '{' => {
                    self.bump();
                    out.push(Token::new(TokenKind::LBrace, span));
                }
                '}' => {
                    self.bump();
                    out.push(Token::new(TokenKind::RBrace, span));
                }
                ',' => {
                    self.bump();
                    out.push(Token::new(TokenKind::Comma, span));
                }
                ';' => {
                    self.bump();
                    out.push(Token::new(TokenKind::Semi, span));
                }
                '=' => {
                    self.bump();
                    out.push(Token::new(TokenKind::Eq, span));
                }
                '*' => {
                    self.bump();
                    out.push(Token::new(TokenKind::Star, span));
                }
                c if c.is_ascii_digit() => {
                    let mut v: i64 = 0;
                    while let Some(d) = self.peek() {
                        let Some(digit) = d.to_digit(10) else { break };
                        v = v * 10 + i64::from(digit);
                        self.bump();
                    }
                    out.push(Token::new(TokenKind::Int(v), span));
                }
                c if c.is_ascii_alphabetic() || c == '_' => {
                    let mut s = String::new();
                    while let Some(c) = self.peek() {
                        if c.is_ascii_alphanumeric() || c == '_' {
                            s.push(c);
                            self.bump();
                        } else {
                            break;
                        }
                    }
                    out.push(Token::new(TokenKind::Ident(s), span));
                }
                other => return Err(IdlError::Lex { span, found: other }),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_fig3_fragment() {
        let toks = kinds("sm_transition(evt_split, evt_wait);");
        assert_eq!(
            toks,
            vec![
                TokenKind::Ident("sm_transition".into()),
                TokenKind::LParen,
                TokenKind::Ident("evt_split".into()),
                TokenKind::Comma,
                TokenKind::Ident("evt_wait".into()),
                TokenKind::RParen,
                TokenKind::Semi,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn lexes_global_info_block() {
        let toks = kinds("service_global_info = { desc_block = true };");
        assert!(toks.contains(&TokenKind::LBrace));
        assert!(toks.contains(&TokenKind::Eq));
        assert!(toks.contains(&TokenKind::Ident("true".into())));
    }

    #[test]
    fn skips_line_and_block_comments() {
        let toks = kinds("// hello\nint /* inline */ x;");
        assert_eq!(
            toks,
            vec![
                TokenKind::Ident("int".into()),
                TokenKind::Ident("x".into()),
                TokenKind::Semi,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn tracks_line_and_column() {
        let toks = lex("a\n  b").unwrap();
        assert_eq!(toks[0].span, Span::new(1, 1));
        assert_eq!(toks[1].span, Span::new(2, 3));
    }

    #[test]
    fn integers_and_stars() {
        let toks = kinds("char *buf 16");
        assert_eq!(toks[0], TokenKind::Ident("char".into()));
        assert_eq!(toks[1], TokenKind::Star);
        assert_eq!(toks[2], TokenKind::Ident("buf".into()));
        assert_eq!(toks[3], TokenKind::Int(16));
    }

    #[test]
    fn rejects_unknown_character() {
        let err = lex("int $x;").unwrap_err();
        assert!(matches!(err, IdlError::Lex { found: '$', .. }));
    }

    #[test]
    fn rejects_unterminated_comment() {
        let err = lex("/* never closes").unwrap_err();
        assert!(matches!(err, IdlError::UnterminatedComment { .. }));
    }

    #[test]
    fn lone_slash_is_an_error() {
        let err = lex("a / b").unwrap_err();
        assert!(matches!(err, IdlError::Lex { .. }));
    }

    #[test]
    fn empty_input_yields_only_eof() {
        assert_eq!(kinds(""), vec![TokenKind::Eof]);
        assert_eq!(kinds("   \n\t "), vec![TokenKind::Eof]);
    }
}
