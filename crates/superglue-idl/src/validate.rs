//! Semantic validation: lower a parsed [`IdlFile`] into an
//! [`InterfaceSpec`] — the checked, model-level description the SuperGlue
//! compiler consumes.

use superglue_sm::machine::StateMachineBuilder;
use superglue_sm::model::DescriptorResourceModelBuilder;
use superglue_sm::{DescriptorResourceModel, FnId, StateMachine};

use crate::ast::{FnDecl, GlobalValue, IdlFile, ParamAnnot, RetvalMode, SmDecl};
use crate::IdlError;

/// How a parameter participates in descriptor tracking (lowered from
/// [`ParamAnnot`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrackKind {
    /// Pass-through.
    None,
    /// Stored into descriptor metadata.
    Data,
    /// The descriptor lookup key.
    Desc,
    /// The parent descriptor id.
    Parent,
    /// Stored into metadata *and* the parent descriptor id.
    DataParent,
}

impl From<ParamAnnot> for TrackKind {
    fn from(a: ParamAnnot) -> Self {
        match a {
            ParamAnnot::None => TrackKind::None,
            ParamAnnot::DescData => TrackKind::Data,
            ParamAnnot::Desc => TrackKind::Desc,
            ParamAnnot::ParentDesc => TrackKind::Parent,
            ParamAnnot::DescDataParent => TrackKind::DataParent,
        }
    }
}

/// A validated parameter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParamSpec {
    /// C type, as written.
    pub ty: String,
    /// Parameter name.
    pub name: String,
    /// Tracking role.
    pub track: TrackKind,
}

/// A validated function signature, index-aligned with the machine's
/// [`FnId`]s.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FnSig {
    /// Function id in the interface's state machine.
    pub id: FnId,
    /// Function name.
    pub name: String,
    /// Declared return type (textual), if written.
    pub ret: Option<String>,
    /// `desc_data_retval[_accum]` annotation: (type, tracked name,
    /// mode). Present on every creation function — there, the returned
    /// value is the new descriptor's id.
    pub retval_tracked: Option<(String, String, RetvalMode)>,
    /// Parameters in order.
    pub params: Vec<ParamSpec>,
}

impl FnSig {
    /// The parameter that names the descriptor, if any.
    #[must_use]
    pub fn desc_param(&self) -> Option<&ParamSpec> {
        self.params.iter().find(|p| p.track == TrackKind::Desc)
    }

    /// The parameter that names the parent descriptor, if any.
    #[must_use]
    pub fn parent_param(&self) -> Option<&ParamSpec> {
        self.params
            .iter()
            .find(|p| matches!(p.track, TrackKind::Parent | TrackKind::DataParent))
    }

    /// Parameters tracked into descriptor metadata.
    pub fn data_params(&self) -> impl Iterator<Item = &ParamSpec> {
        self.params
            .iter()
            .filter(|p| matches!(p.track, TrackKind::Data | TrackKind::DataParent))
    }
}

/// A fully validated interface: the checked output of the IDL front end
/// and the input to the SuperGlue compiler.
#[derive(Debug, Clone, PartialEq)]
pub struct InterfaceSpec {
    /// Interface/service name.
    pub name: String,
    /// The descriptor-resource model from `service_global_info`.
    pub model: DescriptorResourceModel,
    /// The descriptor state machine from the `sm_*` declarations.
    pub machine: StateMachine,
    /// Function signatures, where `fns[i].id == FnId(i)`.
    pub fns: Vec<FnSig>,
    /// Recovery-state substitutions from `sm_recover_via(f, g)`: when a
    /// descriptor's expected state is `After(f)`, recovery rebuilds to
    /// `After(g)` instead.
    pub recover_via: Vec<(FnId, FnId)>,
    /// Blocking-function restore substitutions from
    /// `sm_recover_block(f, g)`: replaying blocking `f` for another
    /// thread calls the recovery entry point `g` with the owner id.
    pub recover_block: Vec<(FnId, FnId)>,
    /// Tracking-elision requests from `sm_elide(f)`, in declaration
    /// order. Validation only checks the name resolves and is not
    /// duplicated; whether the elision is *provable* is the certifier's
    /// job (sglint SG060–SG06x / the compiler's certificate pass).
    pub elide: Vec<FnId>,
    /// `sm_channel(f)`: this interface's descriptors are channel
    /// endpoints opened by `f`, and recovery follows peek-before-commit
    /// semantics (re-seat at the last committed cursor, CR0). Validation
    /// only resolves the name and rejects duplicates; the soundness rules
    /// (a committed cursor exists, is tracked, and peeks are shielded
    /// from replay) are sglint's SG070–SG07x checks.
    pub channel: Option<FnId>,
    /// `sm_cursor(f)`: `f` is the cursor-commit function whose tracked
    /// return value is the committed cursor position.
    pub cursor: Option<FnId>,
}

impl InterfaceSpec {
    /// Look up a function signature by name.
    #[must_use]
    pub fn fn_by_name(&self, name: &str) -> Option<&FnSig> {
        self.fns.iter().find(|f| f.name == name)
    }
}

fn semantic(msg: impl Into<String>) -> IdlError {
    IdlError::Semantic {
        message: msg.into(),
    }
}

/// Validate a parsed file and lower it to an [`InterfaceSpec`].
///
/// # Errors
///
/// [`IdlError::Semantic`] for any violated rule:
/// * unknown or duplicated `service_global_info` keys, or a value of the
///   wrong kind;
/// * `sm_*` declarations naming undeclared functions;
/// * creation functions without a `desc_data_retval` annotation;
/// * non-creation functions without a `desc(...)` parameter;
/// * `desc_block` inconsistent with `sm_block`/`sm_wakeup` (the paper's
///   invariant `I^block ≠ ∅ ↔ B_r`);
/// * `desc_has_parent != Solo` with no creation function taking a
///   `parent_desc(...)` argument;
/// * model inconsistencies per
///   [`DescriptorResourceModel::validate`](superglue_sm::DescriptorResourceModel::validate)
///   and machine problems per
///   [`StateMachineBuilder::build`](superglue_sm::StateMachineBuilder::build).
pub fn validate(name: &str, file: &IdlFile) -> Result<InterfaceSpec, IdlError> {
    let model = lower_model(file)?;
    let machine = lower_machine(name, file)?;

    // Lower function signatures, aligned with machine FnIds.
    let mut fns = Vec::with_capacity(file.functions.len());
    for f in &file.functions {
        let id = machine
            .function_by_name(&f.name)
            .expect("machine was built from the same declarations");
        fns.push(lower_fn(id, f));
    }
    // Sort by id so fns[i].id == FnId(i).
    fns.sort_by_key(|f: &FnSig| f.id);

    let mut recover_block = Vec::new();
    for decl in &file.sm_decls {
        if let SmDecl::RecoverBlock(f, g) = decl {
            let fid = machine.function_by_name(f).ok_or_else(|| {
                semantic(format!(
                    "sm_recover_block references undeclared function {f:?}"
                ))
            })?;
            let gid = machine.function_by_name(g).ok_or_else(|| {
                semantic(format!(
                    "sm_recover_block references undeclared function {g:?}"
                ))
            })?;
            if !machine.roles(fid).blocks {
                return Err(semantic(format!(
                    "sm_recover_block source {f:?} must be a blocking function"
                )));
            }
            if recover_block.iter().any(|&(s, _)| s == fid) {
                return Err(semantic(format!(
                    "duplicate sm_recover_block declaration for source {f:?}"
                )));
            }
            recover_block.push((fid, gid));
        }
    }

    let mut recover_via = Vec::new();
    for decl in &file.sm_decls {
        if let SmDecl::RecoverVia(f, g) = decl {
            let fid = machine.function_by_name(f).ok_or_else(|| {
                semantic(format!(
                    "sm_recover_via references undeclared function {f:?}"
                ))
            })?;
            let gid = machine.function_by_name(g).ok_or_else(|| {
                semantic(format!(
                    "sm_recover_via references undeclared function {g:?}"
                ))
            })?;
            if machine
                .recovery_walk(superglue_sm::State::After(fid))
                .is_err()
            {
                return Err(semantic(format!(
                    "sm_recover_via source {f:?} is not a reachable state of the machine; \
                     the substitution could never apply"
                )));
            }
            if machine
                .recovery_walk(superglue_sm::State::After(gid))
                .is_err()
            {
                return Err(semantic(format!(
                    "sm_recover_via target {g:?} is not reachable from the initial state"
                )));
            }
            if recover_via.iter().any(|&(s, _)| s == fid) {
                return Err(semantic(format!(
                    "duplicate sm_recover_via declaration for source {f:?}"
                )));
            }
            recover_via.push((fid, gid));
        }
    }

    let mut elide = Vec::new();
    for decl in &file.sm_decls {
        if let SmDecl::Elide(f) = decl {
            let fid = machine.function_by_name(f).ok_or_else(|| {
                semantic(format!("sm_elide references undeclared function {f:?}"))
            })?;
            if elide.contains(&fid) {
                return Err(semantic(format!(
                    "duplicate sm_elide declaration for {f:?}"
                )));
            }
            elide.push(fid);
        }
    }

    let mut channel = None;
    let mut cursor = None;
    for decl in &file.sm_decls {
        match decl {
            SmDecl::Channel(f) => {
                let fid = machine.function_by_name(f).ok_or_else(|| {
                    semantic(format!("sm_channel references undeclared function {f:?}"))
                })?;
                if channel.is_some() {
                    return Err(semantic("duplicate sm_channel declaration"));
                }
                channel = Some(fid);
            }
            SmDecl::Cursor(f) => {
                let fid = machine.function_by_name(f).ok_or_else(|| {
                    semantic(format!("sm_cursor references undeclared function {f:?}"))
                })?;
                if cursor.is_some() {
                    return Err(semantic("duplicate sm_cursor declaration"));
                }
                cursor = Some(fid);
            }
            _ => {}
        }
    }
    if cursor.is_some() && channel.is_none() {
        return Err(semantic(
            "sm_cursor declared without sm_channel: a committed cursor only \
             makes sense on a channel interface",
        ));
    }

    check_cross_rules(&model, &machine, &fns)?;

    Ok(InterfaceSpec {
        name: name.to_owned(),
        model,
        machine,
        fns,
        recover_via,
        recover_block,
        elide,
        channel,
        cursor,
    })
}

fn lower_model(file: &IdlFile) -> Result<DescriptorResourceModel, IdlError> {
    let mut b = DescriptorResourceModelBuilder::new();
    let mut seen: Vec<&str> = Vec::new();
    for (key, value) in &file.global_info {
        if seen.contains(&key.as_str()) {
            return Err(semantic(format!(
                "duplicate service_global_info key {key:?}"
            )));
        }
        seen.push(key);
        let bool_val = || match value {
            GlobalValue::Bool(v) => Ok(*v),
            GlobalValue::Policy(_) => Err(semantic(format!(
                "key {key:?} expects true/false, got a parent policy"
            ))),
        };
        match key.as_str() {
            "desc_block" => b = b.blocks(bool_val()?),
            "resc_has_data" => b = b.resource_has_data(bool_val()?),
            "desc_is_global" => b = b.global(bool_val()?),
            "desc_close_children" => b = b.close_children(bool_val()?),
            "desc_close_remove" => b = b.close_removes_tracking(bool_val()?),
            "desc_has_data" => b = b.descriptor_has_data(bool_val()?),
            "desc_has_parent" => match value {
                GlobalValue::Policy(p) => b = b.parent(*p),
                GlobalValue::Bool(_) => {
                    return Err(semantic(
                        "key \"desc_has_parent\" expects Solo, Parent or XCParent",
                    ))
                }
            },
            other => {
                return Err(semantic(format!(
                    "unknown service_global_info key {other:?}"
                )))
            }
        }
    }
    b.build().map_err(IdlError::from)
}

fn lower_machine(name: &str, file: &IdlFile) -> Result<StateMachine, IdlError> {
    let mut b = StateMachineBuilder::new(name);
    let mut ids = std::collections::BTreeMap::new();
    for f in &file.functions {
        if ids.contains_key(f.name.as_str()) {
            return Err(semantic(format!("function {:?} declared twice", f.name)));
        }
        ids.insert(f.name.as_str(), b.function(f.name.clone()));
    }
    let lookup = |n: &str| {
        ids.get(n).copied().ok_or_else(|| {
            semantic(format!(
                "sm declaration references undeclared function {n:?}"
            ))
        })
    };
    let mut seen_edges: Vec<(superglue_sm::FnId, superglue_sm::FnId)> = Vec::new();
    for decl in &file.sm_decls {
        match decl {
            SmDecl::Transition(f, g) => {
                let names = (f.clone(), g.clone());
                let (f, g) = (lookup(f)?, lookup(g)?);
                if seen_edges.contains(&(f, g)) {
                    return Err(semantic(format!(
                        "duplicate sm_transition({}, {}) edge",
                        names.0, names.1
                    )));
                }
                seen_edges.push((f, g));
                b.transition(f, g);
            }
            SmDecl::Creation(f) => {
                let f = lookup(f)?;
                b.creation(f);
            }
            SmDecl::Terminal(f) => {
                let f = lookup(f)?;
                b.terminal(f);
            }
            SmDecl::Block(f) => {
                let f = lookup(f)?;
                b.block(f);
            }
            SmDecl::Wakeup(f) => {
                let f = lookup(f)?;
                b.wakeup(f);
            }
            SmDecl::RecoverVia(_, _)
            | SmDecl::RecoverBlock(_, _)
            | SmDecl::Elide(_)
            | SmDecl::Channel(_)
            | SmDecl::Cursor(_) => {
                // Handled after the machine is built (needs reachability
                // and role information).
            }
        }
    }
    b.build().map_err(IdlError::from)
}

fn lower_fn(id: FnId, f: &FnDecl) -> FnSig {
    FnSig {
        id,
        name: f.name.clone(),
        ret: f.ret.as_ref().map(ToString::to_string),
        retval_tracked: f
            .retval
            .as_ref()
            .map(|(t, n, m)| (t.to_string(), n.clone(), *m)),
        params: f
            .params
            .iter()
            .map(|p| ParamSpec {
                ty: p.ty.to_string(),
                name: p.name.clone(),
                track: p.annot.into(),
            })
            .collect(),
    }
}

fn check_cross_rules(
    model: &DescriptorResourceModel,
    machine: &StateMachine,
    fns: &[FnSig],
) -> Result<(), IdlError> {
    let has_block = machine.blocking_fns().next().is_some();
    if model.blocks && !has_block {
        return Err(semantic(
            "desc_block = true but no sm_block function is declared",
        ));
    }
    if !model.blocks && has_block {
        return Err(semantic(
            "sm_block declared but desc_block = false (I^block != {} <-> B_r)",
        ));
    }

    for sig in fns {
        let is_creation = machine.roles(sig.id).creates;
        if is_creation {
            match &sig.retval_tracked {
                None => {
                    return Err(semantic(format!(
                        "creation function {:?} needs a desc_data_retval annotation naming the returned descriptor",
                        sig.name
                    )))
                }
                Some((_, _, RetvalMode::Accum)) => {
                    return Err(semantic(format!(
                        "creation function {:?} cannot use desc_data_retval_accum: the return value is the descriptor id",
                        sig.name
                    )))
                }
                Some(_) => {}
            }
        } else if sig.desc_param().is_none() {
            return Err(semantic(format!(
                "function {:?} needs a desc(...) parameter to identify the descriptor it acts on",
                sig.name
            )));
        }
    }

    if model.parent.has_parent() {
        let any_parent = fns
            .iter()
            .filter(|s| machine.roles(s.id).creates)
            .any(|s| s.parent_param().is_some());
        if !any_parent {
            return Err(semantic(
                "desc_has_parent != Solo but no creation function takes a parent_desc(...) argument",
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    const FIG3: &str = r#"
service_global_info = {
        desc_has_parent    = parent,
        desc_close_remove  = true,
        desc_is_global     = true,
        desc_block         = true,
        desc_has_data      = true
};
sm_transition(evt_split,   evt_wait);
sm_transition(evt_wait,    evt_trigger);
sm_transition(evt_trigger, evt_wait);
sm_transition(evt_trigger, evt_free);
sm_transition(evt_split,   evt_free);
sm_creation(evt_split);
sm_terminal(evt_free);
sm_block(evt_wait);
sm_wakeup(evt_trigger);

desc_data_retval(long, evtid)
evt_split(desc_data(componentid_t compid),
          desc_data(parent_desc(long parent_evtid)),
          desc_data(int grp));
long evt_wait(componentid_t compid, desc(long evtid));
int evt_trigger(componentid_t compid, desc(long evtid));
int evt_free(componentid_t compid, desc(long evtid));
"#;

    fn spec(src: &str) -> Result<InterfaceSpec, IdlError> {
        validate("test", &parse(src).unwrap())
    }

    #[test]
    fn fig3_validates() {
        let s = spec(FIG3).unwrap();
        assert!(s.model.blocks && s.model.global && s.model.descriptor_has_data);
        assert_eq!(s.machine.function_count(), 4);
        assert_eq!(s.fns.len(), 4);
        // fns are FnId-aligned.
        for (i, f) in s.fns.iter().enumerate() {
            assert_eq!(f.id, FnId(i as u32));
        }
    }

    #[test]
    fn fig3_split_is_creation_with_retval() {
        let s = spec(FIG3).unwrap();
        let split = s.fn_by_name("evt_split").unwrap();
        assert!(s.machine.roles(split.id).creates);
        assert_eq!(split.retval_tracked.as_ref().unwrap().1, "evtid");
        assert_eq!(split.retval_tracked.as_ref().unwrap().2, RetvalMode::Set);
        assert_eq!(split.parent_param().unwrap().name, "parent_evtid");
        assert_eq!(split.data_params().count(), 3);
    }

    #[test]
    fn unknown_global_key_rejected() {
        let err = spec("service_global_info = { desc_is_cool = true };").unwrap_err();
        assert!(err.to_string().contains("unknown service_global_info key"));
    }

    #[test]
    fn duplicate_global_key_rejected() {
        let err =
            spec("service_global_info = { desc_block = true, desc_block = false };\nsm_creation(f);\ndesc_data_retval(long, x)\nf();\n")
                .unwrap_err();
        assert!(err.to_string().contains("duplicate"));
    }

    #[test]
    fn policy_key_needs_policy_value() {
        let err = spec("service_global_info = { desc_has_parent = true };").unwrap_err();
        assert!(err.to_string().contains("Solo, Parent or XCParent"));
    }

    #[test]
    fn bool_key_rejects_policy_value() {
        let err = spec("service_global_info = { desc_block = parent };").unwrap_err();
        assert!(err.to_string().contains("true/false"));
    }

    #[test]
    fn sm_decl_must_reference_declared_function() {
        let err = spec("sm_creation(ghost);\n").unwrap_err();
        assert!(err.to_string().contains("undeclared function"));
    }

    #[test]
    fn creation_needs_retval_annotation() {
        let err = spec("sm_creation(f);\nf();\n").unwrap_err();
        assert!(err.to_string().contains("desc_data_retval"));
    }

    #[test]
    fn non_creation_needs_desc_param() {
        let err = spec(
            "sm_creation(f);\nsm_transition(f, g);\ndesc_data_retval(long, id)\nf();\nint g(int x);\n",
        )
        .unwrap_err();
        assert!(err.to_string().contains("desc(...)"));
    }

    #[test]
    fn block_consistency_enforced_both_ways() {
        // desc_block without sm_block:
        let err = spec(
            "service_global_info = { desc_block = true };\nsm_creation(f);\ndesc_data_retval(long, id)\nf();\n",
        )
        .unwrap_err();
        assert!(err.to_string().contains("sm_block"));
        // A blocking interface may legitimately lack a wakeup function
        // (timers are woken by the clock).
        let ok = spec(
            "service_global_info = { desc_block = true };\nsm_creation(f);\nsm_block(g);\nsm_transition(f, g);\ndesc_data_retval(long, id)\nf();\nint g(desc(long id));\n",
        );
        assert!(ok.is_ok());
        // sm_block without desc_block:
        let err = spec(
            "sm_creation(f);\nsm_block(g);\nsm_transition(f, g);\ndesc_data_retval(long, id)\nf();\nint g(desc(long id));\n",
        )
        .unwrap_err();
        assert!(err.to_string().contains("desc_block = false"));
    }

    #[test]
    fn parent_model_needs_parent_param() {
        let err = spec(
            "service_global_info = { desc_has_parent = parent };\nsm_creation(f);\ndesc_data_retval(long, id)\nf();\n",
        )
        .unwrap_err();
        assert!(err.to_string().contains("parent_desc"));
    }

    #[test]
    fn duplicate_function_rejected() {
        let err = spec("sm_creation(f);\ndesc_data_retval(long, id)\nf();\ndesc_data_retval(long, id2)\nf();\n").unwrap_err();
        assert!(err.to_string().contains("declared twice"));
    }

    #[test]
    fn duplicate_transition_edge_rejected() {
        let err = spec(
            "sm_creation(f);\nsm_transition(f, g);\nsm_transition(f, g);\n\
             desc_data_retval(long, id)\nf();\nint g(desc(long id));\n",
        )
        .unwrap_err();
        assert!(err.to_string().contains("duplicate sm_transition"));
    }

    #[test]
    fn duplicate_recover_via_source_rejected() {
        let err = spec(
            "sm_creation(f);\nsm_transition(f, g);\nsm_recover_via(g, f);\nsm_recover_via(g, f);\n\
             desc_data_retval(long, id)\nf();\nint g(desc(long id));\n",
        )
        .unwrap_err();
        assert!(err.to_string().contains("duplicate sm_recover_via"));
    }

    #[test]
    fn duplicate_recover_block_source_rejected() {
        let err = spec(
            "service_global_info = { desc_block = true };\n\
             sm_creation(f);\nsm_block(g);\nsm_transition(f, g);\n\
             sm_recover_block(g, h);\nsm_recover_block(g, h);\n\
             desc_data_retval(long, id)\nf();\nint g(desc(long id));\nint h(desc(long id), long owner);\n",
        )
        .unwrap_err();
        assert!(err.to_string().contains("duplicate sm_recover_block"));
    }

    #[test]
    fn recover_via_unreachable_source_rejected() {
        // `g` is declared but never a state of the machine, so the
        // substitution could never apply — silently accepting it hides a
        // spec typo.
        let err = spec(
            "sm_creation(f);\nsm_recover_via(g, f);\n\
             desc_data_retval(long, id)\nf();\nint g(desc(long id));\n",
        )
        .unwrap_err();
        assert!(err.to_string().contains("not a reachable state"));
    }

    #[test]
    fn sm_elide_resolves_and_rejects_duplicates_and_unknowns() {
        let s = spec(
            "sm_creation(f);\nsm_transition(f, g);\nsm_elide(g);\n\
             desc_data_retval(long, id)\nf();\nint g(desc(long id));\n",
        )
        .unwrap();
        assert_eq!(s.elide, vec![s.fn_by_name("g").unwrap().id]);

        let err = spec(
            "sm_creation(f);\nsm_transition(f, g);\nsm_elide(g);\nsm_elide(g);\n\
             desc_data_retval(long, id)\nf();\nint g(desc(long id));\n",
        )
        .unwrap_err();
        assert!(err.to_string().contains("duplicate sm_elide"));

        let err = spec("sm_creation(f);\nsm_elide(ghost);\ndesc_data_retval(long, id)\nf();\n")
            .unwrap_err();
        assert!(err.to_string().contains("undeclared function"));
    }

    #[test]
    fn sm_channel_and_cursor_resolve() {
        let s = spec(
            "sm_creation(open);\nsm_transition(open, commit);\n\
             sm_channel(open);\nsm_cursor(commit);\n\
             desc_data_retval(long, cid)\nopen();\n\
             desc_data_retval(long, cursor)\nlong commit(desc(long cid));\n",
        )
        .unwrap();
        assert_eq!(s.channel, Some(s.fn_by_name("open").unwrap().id));
        assert_eq!(s.cursor, Some(s.fn_by_name("commit").unwrap().id));
    }

    #[test]
    fn duplicate_channel_decls_rejected() {
        let err = spec(
            "sm_creation(open);\nsm_channel(open);\nsm_channel(open);\n\
             desc_data_retval(long, cid)\nopen();\n",
        )
        .unwrap_err();
        assert!(err.to_string().contains("duplicate sm_channel"));
    }

    #[test]
    fn cursor_without_channel_rejected() {
        let err = spec(
            "sm_creation(open);\nsm_transition(open, commit);\nsm_cursor(commit);\n\
             desc_data_retval(long, cid)\nopen();\n\
             long commit(desc(long cid));\n",
        )
        .unwrap_err();
        assert!(err.to_string().contains("without sm_channel"));
    }

    #[test]
    fn channel_references_must_resolve() {
        let err = spec("sm_creation(f);\nsm_channel(ghost);\ndesc_data_retval(long, id)\nf();\n")
            .unwrap_err();
        assert!(err.to_string().contains("undeclared function"));
    }

    #[test]
    fn minimal_interface_validates() {
        let s = spec("sm_creation(f);\ndesc_data_retval(long, id)\nf();\n").unwrap();
        assert_eq!(s.fns.len(), 1);
        assert!(!s.model.blocks);
    }
}
