use std::fmt;

/// A half-open source region `(line, column)`, 1-based, attached to
/// diagnostics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Span {
    /// 1-based line number.
    pub line: u32,
    /// 1-based column number.
    pub col: u32,
}

impl Span {
    /// Construct a span.
    #[must_use]
    pub fn new(line: u32, col: u32) -> Self {
        Self { line, col }
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// Errors produced by the IDL front end.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum IdlError {
    /// A character the lexer cannot tokenize.
    Lex {
        /// Location of the offending character.
        span: Span,
        /// The character.
        found: char,
    },
    /// An unterminated block comment.
    UnterminatedComment {
        /// Where the comment started.
        span: Span,
    },
    /// The parser expected something else.
    Parse {
        /// Location of the unexpected token.
        span: Span,
        /// Human description of what was expected.
        expected: String,
        /// What was found instead.
        found: String,
    },
    /// Semantic validation failure (unknown function in an `sm_*`
    /// declaration, bad `service_global_info` key, model inconsistency…).
    Semantic {
        /// Explanation.
        message: String,
    },
    /// The underlying state-machine/model construction failed.
    Model(superglue_sm::Error),
}

impl fmt::Display for IdlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IdlError::Lex { span, found } => {
                write!(f, "{span}: unexpected character {found:?}")
            }
            IdlError::UnterminatedComment { span } => {
                write!(f, "{span}: unterminated block comment")
            }
            IdlError::Parse {
                span,
                expected,
                found,
            } => {
                write!(f, "{span}: expected {expected}, found {found}")
            }
            IdlError::Semantic { message } => write!(f, "semantic error: {message}"),
            IdlError::Model(e) => write!(f, "model error: {e}"),
        }
    }
}

impl std::error::Error for IdlError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            IdlError::Model(e) => Some(e),
            _ => None,
        }
    }
}

impl From<superglue_sm::Error> for IdlError {
    fn from(e: superglue_sm::Error) -> Self {
        IdlError::Model(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_display_as_line_col() {
        assert_eq!(Span::new(3, 14).to_string(), "3:14");
    }

    #[test]
    fn errors_display_nonempty() {
        let errs = [
            IdlError::Lex {
                span: Span::new(1, 1),
                found: '#',
            },
            IdlError::UnterminatedComment {
                span: Span::new(2, 2),
            },
            IdlError::Parse {
                span: Span::new(3, 3),
                expected: "identifier".into(),
                found: "';'".into(),
            },
            IdlError::Semantic {
                message: "x".into(),
            },
            IdlError::Model(superglue_sm::Error::NoCreationFunction),
        ];
        for e in errs {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn model_error_has_source() {
        use std::error::Error as _;
        let e = IdlError::Model(superglue_sm::Error::NoCreationFunction);
        assert!(e.source().is_some());
    }
}
