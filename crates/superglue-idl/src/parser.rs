//! Recursive-descent parser for the SuperGlue IDL.
//!
//! The grammar (see Fig 3 of the paper for a complete example):
//!
//! ```text
//! file        := item*
//! item        := global_info | sm_decl | fn_decl
//! global_info := "service_global_info" "=" "{" kv ("," kv)* ","? "}" ";"
//! kv          := IDENT "=" (true|false|solo|parent|xcparent)
//! sm_decl     := "sm_transition" "(" IDENT "," IDENT ")" ";"
//!              | ("sm_creation"|"sm_terminal"|"sm_block"|"sm_wakeup"|"sm_elide"
//!                |"sm_channel"|"sm_cursor")
//!                "(" IDENT ")" ";"
//! fn_decl     := retval_annot? type? IDENT "(" params? ")" ";"
//! retval_annot:= "desc_data_retval" "(" type "," IDENT ")"
//! params      := "void" | param ("," param)*
//! param       := "desc"        "(" type IDENT ")"
//!              | "parent_desc" "(" type IDENT ")"
//!              | "desc_data"   "(" ("parent_desc" "(" type IDENT ")" | type IDENT) ")"
//!              | type IDENT
//! type        := IDENT+ "*"*
//! ```

use superglue_sm::ParentPolicy;

use crate::ast::{CType, FnDecl, GlobalValue, IdlFile, Param, ParamAnnot, RetvalMode, SmDecl};
use crate::lexer::lex;
use crate::token::{Token, TokenKind};
use crate::{IdlError, Span};

/// Parse an IDL source string into an [`IdlFile`].
///
/// # Errors
///
/// Any lexical or syntactic error, with position.
pub fn parse(source: &str) -> Result<IdlFile, IdlError> {
    let tokens = lex(source)?;
    Parser { tokens, pos: 0 }.file()
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.tokens[self.pos.min(self.tokens.len() - 1)]
    }

    fn peek2(&self) -> &Token {
        &self.tokens[(self.pos + 1).min(self.tokens.len() - 1)]
    }

    fn bump(&mut self) -> Token {
        let t = self.tokens[self.pos.min(self.tokens.len() - 1)].clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn err(&self, expected: &str) -> IdlError {
        let t = self.peek();
        IdlError::Parse {
            span: t.span,
            expected: expected.to_owned(),
            found: t.kind.to_string(),
        }
    }

    fn expect(&mut self, kind: &TokenKind, what: &str) -> Result<Span, IdlError> {
        if &self.peek().kind == kind {
            Ok(self.bump().span)
        } else {
            Err(self.err(what))
        }
    }

    fn expect_ident(&mut self, what: &str) -> Result<String, IdlError> {
        match &self.peek().kind {
            TokenKind::Ident(_) => {
                let TokenKind::Ident(s) = self.bump().kind else {
                    unreachable!()
                };
                Ok(s)
            }
            _ => Err(self.err(what)),
        }
    }

    fn at_ident(&self, text: &str) -> bool {
        self.peek().kind.ident() == Some(text)
    }

    fn file(mut self) -> Result<IdlFile, IdlError> {
        let mut out = IdlFile::default();
        let mut pending_retval: Option<(CType, String, RetvalMode)> = None;
        loop {
            match &self.peek().kind {
                TokenKind::Eof => break,
                TokenKind::Ident(name) => match name.as_str() {
                    "service_global_info" => {
                        self.bump();
                        self.global_info(&mut out)?;
                    }
                    "sm_transition" | "sm_creation" | "sm_terminal" | "sm_block" | "sm_wakeup"
                    | "sm_recover_via" | "sm_recover_block" | "sm_elide" | "sm_channel"
                    | "sm_cursor" => {
                        let span = self.peek().span;
                        let kw = self.expect_ident("sm keyword")?;
                        out.sm_decls.push(self.sm_decl(&kw)?);
                        out.sm_spans.push(span);
                    }
                    "desc_data_retval" | "desc_data_retval_accum" => {
                        if pending_retval.is_some() {
                            return Err(IdlError::Parse {
                                span: self.peek().span,
                                expected: "a function prototype after desc_data_retval".into(),
                                found: "another desc_data_retval".into(),
                            });
                        }
                        let mode = if name == "desc_data_retval_accum" {
                            RetvalMode::Accum
                        } else {
                            RetvalMode::Set
                        };
                        self.bump();
                        self.expect(&TokenKind::LParen, "'('")?;
                        let ty = self.ctype()?;
                        self.expect(&TokenKind::Comma, "','")?;
                        let name = self.expect_ident("retval name")?;
                        self.expect(&TokenKind::RParen, "')'")?;
                        pending_retval = Some((ty, name, mode));
                    }
                    _ => {
                        let mut f = self.fn_decl()?;
                        f.retval = pending_retval.take();
                        out.functions.push(f);
                    }
                },
                _ => return Err(self.err("a declaration")),
            }
        }
        if pending_retval.is_some() {
            return Err(IdlError::Semantic {
                message: "desc_data_retval annotation not followed by a function prototype".into(),
            });
        }
        Ok(out)
    }

    fn global_info(&mut self, out: &mut IdlFile) -> Result<(), IdlError> {
        self.expect(&TokenKind::Eq, "'='")?;
        self.expect(&TokenKind::LBrace, "'{'")?;
        loop {
            if self.peek().kind == TokenKind::RBrace {
                self.bump();
                break;
            }
            let key = self.expect_ident("a service_global_info key")?;
            self.expect(&TokenKind::Eq, "'='")?;
            let span = self.peek().span;
            let raw = self.expect_ident("true, false, Solo, Parent or XCParent")?;
            let value = parse_global_value(&raw, span)?;
            out.global_info.push((key, value));
            match &self.peek().kind {
                TokenKind::Comma => {
                    self.bump();
                }
                TokenKind::RBrace => {}
                _ => return Err(self.err("',' or '}'")),
            }
        }
        self.expect(&TokenKind::Semi, "';'")?;
        Ok(())
    }

    fn sm_decl(&mut self, kw: &str) -> Result<SmDecl, IdlError> {
        self.expect(&TokenKind::LParen, "'('")?;
        let first = self.expect_ident("a function name")?;
        let decl = if kw == "sm_transition" || kw == "sm_recover_via" || kw == "sm_recover_block" {
            self.expect(&TokenKind::Comma, "','")?;
            let second = self.expect_ident("a function name")?;
            match kw {
                "sm_transition" => SmDecl::Transition(first, second),
                "sm_recover_via" => SmDecl::RecoverVia(first, second),
                _ => SmDecl::RecoverBlock(first, second),
            }
        } else {
            match kw {
                "sm_creation" => SmDecl::Creation(first),
                "sm_terminal" => SmDecl::Terminal(first),
                "sm_block" => SmDecl::Block(first),
                "sm_wakeup" => SmDecl::Wakeup(first),
                "sm_elide" => SmDecl::Elide(first),
                "sm_channel" => SmDecl::Channel(first),
                "sm_cursor" => SmDecl::Cursor(first),
                _ => unreachable!("caller checked the keyword"),
            }
        };
        self.expect(&TokenKind::RParen, "')'")?;
        self.expect(&TokenKind::Semi, "';'")?;
        Ok(decl)
    }

    /// Parse a type: one or more identifier words followed by `*`s.
    fn ctype(&mut self) -> Result<CType, IdlError> {
        let mut words = vec![self.expect_ident("a type")?];
        while let TokenKind::Ident(_) = &self.peek().kind {
            // Only continue while the *next* token is also part of a type
            // context; the caller handles name/word ambiguity.
            words.push(self.expect_ident("a type word")?);
        }
        let mut pointers = 0u8;
        while self.peek().kind == TokenKind::Star {
            self.bump();
            pointers = pointers.saturating_add(1);
        }
        Ok(CType::new(words, pointers))
    }

    /// Parse `type name` where the final identifier is the name.
    fn typed_name(&mut self) -> Result<(CType, String), IdlError> {
        let mut words = vec![self.expect_ident("a type")?];
        let mut pointers = 0u8;
        loop {
            match &self.peek().kind {
                TokenKind::Ident(_) => words.push(self.expect_ident("an identifier")?),
                TokenKind::Star => {
                    self.bump();
                    pointers = pointers.saturating_add(1);
                }
                _ => break,
            }
        }
        if words.len() < 2 {
            return Err(self.err("a parameter name after its type"));
        }
        let name = words.pop().expect("len >= 2");
        Ok((CType::new(words, pointers), name))
    }

    fn fn_decl(&mut self) -> Result<FnDecl, IdlError> {
        // Collect leading identifier words and stars until '('. The last
        // word is the function name; anything before is the return type.
        let mut spans = vec![self.peek().span];
        let mut words = vec![self.expect_ident("a function prototype")?];
        let mut pointers = 0u8;
        loop {
            match &self.peek().kind {
                TokenKind::Ident(_) if self.peek2().kind != TokenKind::Eq => {
                    spans.push(self.peek().span);
                    words.push(self.expect_ident("an identifier")?);
                }
                TokenKind::Star => {
                    self.bump();
                    pointers = pointers.saturating_add(1);
                }
                TokenKind::LParen => break,
                _ => return Err(self.err("'(' to start the parameter list")),
            }
        }
        let name = words.pop().expect("at least one word");
        let name_span = spans.pop().expect("span per word");
        let ret = if words.is_empty() {
            None
        } else {
            Some(CType::new(words, pointers))
        };
        self.expect(&TokenKind::LParen, "'('")?;
        let mut params = Vec::new();
        if self.peek().kind != TokenKind::RParen {
            if self.at_ident("void") && self.peek2().kind == TokenKind::RParen {
                self.bump();
            } else {
                loop {
                    params.push(self.param()?);
                    if self.peek().kind == TokenKind::Comma {
                        self.bump();
                    } else {
                        break;
                    }
                }
            }
        }
        self.expect(&TokenKind::RParen, "')'")?;
        self.expect(&TokenKind::Semi, "';'")?;
        Ok(FnDecl {
            ret,
            retval: None,
            name,
            span: name_span,
            params,
        })
    }

    fn param(&mut self) -> Result<Param, IdlError> {
        let span = self.peek().span;
        if self.at_ident("desc") && self.peek2().kind == TokenKind::LParen {
            self.bump();
            self.bump();
            let (ty, name) = self.typed_name()?;
            self.expect(&TokenKind::RParen, "')'")?;
            return Ok(Param {
                ty,
                name,
                annot: ParamAnnot::Desc,
                span,
            });
        }
        if self.at_ident("parent_desc") && self.peek2().kind == TokenKind::LParen {
            self.bump();
            self.bump();
            let (ty, name) = self.typed_name()?;
            self.expect(&TokenKind::RParen, "')'")?;
            return Ok(Param {
                ty,
                name,
                annot: ParamAnnot::ParentDesc,
                span,
            });
        }
        if self.at_ident("desc_data") && self.peek2().kind == TokenKind::LParen {
            self.bump();
            self.bump();
            let param = if self.at_ident("parent_desc") && self.peek2().kind == TokenKind::LParen {
                self.bump();
                self.bump();
                let (ty, name) = self.typed_name()?;
                self.expect(&TokenKind::RParen, "')'")?;
                Param {
                    ty,
                    name,
                    annot: ParamAnnot::DescDataParent,
                    span,
                }
            } else {
                let (ty, name) = self.typed_name()?;
                Param {
                    ty,
                    name,
                    annot: ParamAnnot::DescData,
                    span,
                }
            };
            self.expect(&TokenKind::RParen, "')'")?;
            return Ok(param);
        }
        let (ty, name) = self.typed_name()?;
        Ok(Param {
            ty,
            name,
            annot: ParamAnnot::None,
            span,
        })
    }
}

fn parse_global_value(raw: &str, span: Span) -> Result<GlobalValue, IdlError> {
    match raw.to_ascii_lowercase().as_str() {
        "true" => Ok(GlobalValue::Bool(true)),
        "false" => Ok(GlobalValue::Bool(false)),
        "solo" => Ok(GlobalValue::Policy(ParentPolicy::Solo)),
        "parent" => Ok(GlobalValue::Policy(ParentPolicy::Parent)),
        "xcparent" => Ok(GlobalValue::Policy(ParentPolicy::XcParent)),
        _ => Err(IdlError::Parse {
            span,
            expected: "true, false, Solo, Parent or XCParent".into(),
            found: format!("identifier {raw:?}"),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Fig 3 of the paper, verbatim (modulo the `desc_data` inner syntax
    /// which we normalize to `type name`).
    pub(crate) const FIG3: &str = r#"
service_global_info = {
        desc_has_parent    = parent,
        desc_close_remove  = true,
        desc_is_global     = true,
        desc_block         = true,
        desc_has_data      = true
};

sm_transition(evt_split,   evt_wait);
sm_transition(evt_wait,    evt_trigger);
sm_transition(evt_trigger, evt_wait);
sm_transition(evt_trigger, evt_free);
sm_transition(evt_split,   evt_free);

sm_creation(evt_split);
sm_terminal(evt_free);
sm_block(evt_wait);
sm_wakeup(evt_trigger);

desc_data_retval(long, evtid)
evt_split(desc_data(componentid_t compid),
          desc_data(parent_desc(long parent_evtid)),
          desc_data(int grp));
long evt_wait(componentid_t compid, desc(long evtid));
int evt_trigger(componentid_t compid, desc(long evtid));
int evt_free(componentid_t compid, desc(long evtid));
"#;

    #[test]
    fn parses_fig3() {
        let file = parse(FIG3).unwrap();
        assert_eq!(file.global_info.len(), 5);
        assert_eq!(file.sm_decls.len(), 9);
        assert_eq!(file.functions.len(), 4);
    }

    #[test]
    fn fig3_global_info_values() {
        let file = parse(FIG3).unwrap();
        let get = |k: &str| {
            file.global_info
                .iter()
                .find(|(key, _)| key == k)
                .map(|(_, v)| *v)
                .unwrap()
        };
        assert_eq!(
            get("desc_has_parent"),
            GlobalValue::Policy(ParentPolicy::Parent)
        );
        assert_eq!(get("desc_close_remove"), GlobalValue::Bool(true));
        assert_eq!(get("desc_is_global"), GlobalValue::Bool(true));
    }

    #[test]
    fn fig3_evt_split_annotations() {
        let file = parse(FIG3).unwrap();
        let split = &file.functions[0];
        assert_eq!(split.name, "evt_split");
        assert!(split.ret.is_none());
        let (ty, name, mode) = split.retval.as_ref().unwrap();
        assert_eq!(ty.to_string(), "long");
        assert_eq!(name, "evtid");
        assert_eq!(*mode, RetvalMode::Set);
        assert_eq!(split.params.len(), 3);
        assert_eq!(split.params[0].annot, ParamAnnot::DescData);
        assert_eq!(split.params[1].annot, ParamAnnot::DescDataParent);
        assert_eq!(split.params[1].name, "parent_evtid");
        assert_eq!(split.params[2].annot, ParamAnnot::DescData);
        assert_eq!(split.params[2].name, "grp");
    }

    #[test]
    fn fig3_evt_wait_signature() {
        let file = parse(FIG3).unwrap();
        let wait = &file.functions[1];
        assert_eq!(wait.name, "evt_wait");
        assert_eq!(wait.ret.as_ref().unwrap().to_string(), "long");
        assert_eq!(wait.params[0].annot, ParamAnnot::None);
        assert_eq!(wait.params[1].annot, ParamAnnot::Desc);
        assert_eq!(wait.params[1].name, "evtid");
    }

    #[test]
    fn parses_void_params_and_no_params() {
        let f = parse("int f(void);\nint g();\n").unwrap();
        assert!(f.functions[0].params.is_empty());
        assert!(f.functions[1].params.is_empty());
    }

    #[test]
    fn parses_multiword_and_pointer_types() {
        let f = parse("unsigned long h(char *buf, unsigned int n);\n").unwrap();
        let h = &f.functions[0];
        assert_eq!(h.ret.as_ref().unwrap().to_string(), "unsigned long");
        assert_eq!(h.params[0].ty.pointers, 1);
        assert_eq!(h.params[0].name, "buf");
        assert_eq!(h.params[1].ty.to_string(), "unsigned int");
        assert_eq!(h.params[1].name, "n");
    }

    #[test]
    fn sm_decl_forms() {
        let f = parse(
            "sm_creation(a);\nsm_terminal(b);\nsm_block(c);\nsm_wakeup(d);\nsm_transition(a, b);\n",
        )
        .unwrap();
        assert_eq!(
            f.sm_decls,
            vec![
                SmDecl::Creation("a".into()),
                SmDecl::Terminal("b".into()),
                SmDecl::Block("c".into()),
                SmDecl::Wakeup("d".into()),
                SmDecl::Transition("a".into(), "b".into()),
            ]
        );
    }

    #[test]
    fn sm_elide_parses() {
        let f = parse("sm_elide(evt_trigger);\n").unwrap();
        assert_eq!(f.sm_decls, vec![SmDecl::Elide("evt_trigger".into())]);
        assert_eq!(f.sm_spans.len(), 1);
    }

    #[test]
    fn sm_channel_and_cursor_parse() {
        let f = parse("sm_channel(chan_open);\nsm_cursor(chan_commit);\n").unwrap();
        assert_eq!(
            f.sm_decls,
            vec![
                SmDecl::Channel("chan_open".into()),
                SmDecl::Cursor("chan_commit".into()),
            ]
        );
        assert_eq!(f.sm_spans.len(), 2);
    }

    #[test]
    fn missing_semicolon_is_a_parse_error() {
        let err = parse("sm_creation(a)").unwrap_err();
        assert!(matches!(err, IdlError::Parse { .. }));
    }

    #[test]
    fn bad_global_value_is_rejected() {
        let err = parse("service_global_info = { desc_block = maybe };").unwrap_err();
        assert!(matches!(err, IdlError::Parse { .. }));
    }

    #[test]
    fn dangling_retval_annotation_is_rejected() {
        let err = parse("desc_data_retval(long, id)").unwrap_err();
        assert!(matches!(err, IdlError::Semantic { .. }));
    }

    #[test]
    fn double_retval_annotation_is_rejected() {
        let err =
            parse("desc_data_retval(long, a)\ndesc_data_retval(long, b)\nf();\n").unwrap_err();
        assert!(matches!(err, IdlError::Parse { .. }));
    }

    #[test]
    fn trailing_comma_in_global_info_allowed() {
        let f = parse("service_global_info = { desc_block = true, };").unwrap();
        assert_eq!(f.global_info.len(), 1);
    }

    #[test]
    fn empty_file_parses() {
        let f = parse("").unwrap();
        assert!(f.functions.is_empty());
        assert!(f.sm_decls.is_empty());
    }

    #[test]
    fn spans_recorded_for_decls() {
        let f =
            parse("sm_creation(a);\ndesc_data_retval(long, id)\nlong a(componentid_t compid);\n")
                .unwrap();
        assert_eq!(f.sm_spans.len(), f.sm_decls.len());
        assert_eq!(f.sm_spans[0], Span::new(1, 1));
        // The function's span is the name token, not the return type.
        assert_eq!(f.functions[0].span, Span::new(3, 6));
        assert_eq!(f.functions[0].params[0].span, Span::new(3, 8));
    }

    #[test]
    fn param_missing_name_is_rejected() {
        // A single bare word as a (non-void) parameter has no name.
        let err = parse("int f(x);").unwrap_err();
        assert!(matches!(err, IdlError::Parse { .. }));
    }
}
