//! Property-based tests for the IDL front end: total lexing/parsing
//! (never panics), and a generator of well-formed IDL files that must
//! always validate.

use proptest::prelude::*;

use superglue_idl::{compile_interface, idl_loc, lexer, parser};

proptest! {
    /// The lexer is total: arbitrary input yields Ok or a positioned
    /// error, never a panic.
    #[test]
    fn lexer_never_panics(input in ".{0,200}") {
        let _ = lexer::lex(&input);
    }

    /// The parser is total over arbitrary token-ish text.
    #[test]
    fn parser_never_panics(input in "[a-z_(),;={} \\n*0-9]{0,300}") {
        let _ = parser::parse(&input);
    }

    /// idl_loc never exceeds the physical line count.
    #[test]
    fn idl_loc_bounded_by_lines(input in ".{0,400}") {
        prop_assert!(idl_loc(&input) <= input.lines().count());
    }
}

/// A generated well-formed interface: a creation function, a chain of
/// `n` operation functions, optional terminal, optional model bits.
#[derive(Debug, Clone)]
struct GenIdl {
    ops: usize,
    blocking: bool,
    terminal: bool,
    desc_data: bool,
}

fn gen_idl() -> impl Strategy<Value = GenIdl> {
    (1usize..5, any::<bool>(), any::<bool>(), any::<bool>()).prop_map(
        |(ops, blocking, terminal, desc_data)| GenIdl { ops, blocking, terminal, desc_data },
    )
}

fn render(g: &GenIdl) -> String {
    let mut out = String::new();
    if g.blocking || g.desc_data {
        out.push_str("service_global_info = {\n");
        let mut kv = Vec::new();
        if g.blocking {
            kv.push("    desc_block = true".to_owned());
        }
        if g.desc_data {
            kv.push("    desc_has_data = true".to_owned());
        }
        out.push_str(&kv.join(",\n"));
        out.push_str("\n};\n");
    }
    out.push_str("sm_creation(x_open);\n");
    for i in 0..g.ops {
        let prev = if i == 0 { "x_open".to_owned() } else { format!("x_op{}", i - 1) };
        out.push_str(&format!("sm_transition({prev}, x_op{i});\n"));
    }
    if g.blocking {
        // The first op blocks; the creation wakes (arbitrary but valid).
        out.push_str("sm_block(x_op0);\n");
        out.push_str("sm_transition(x_op0, x_op0);\n");
    }
    if g.terminal {
        let last = if g.ops == 0 { "x_open".to_owned() } else { format!("x_op{}", g.ops - 1) };
        out.push_str("sm_terminal(x_close);\n");
        out.push_str(&format!("sm_transition({last}, x_close);\n"));
    }
    out.push_str("desc_data_retval(long, xid)\n");
    out.push_str("x_open(componentid_t compid);\n");
    for i in 0..g.ops {
        if g.desc_data {
            out.push_str(&format!(
                "int x_op{i}(componentid_t compid, desc(long xid), desc_data(long v{i}));\n"
            ));
        } else {
            out.push_str(&format!("int x_op{i}(componentid_t compid, desc(long xid));\n"));
        }
    }
    if g.terminal {
        out.push_str("int x_close(componentid_t compid, desc(long xid));\n");
    }
    out
}

proptest! {
    /// Every generated well-formed IDL parses, validates, and compiles;
    /// the machine exposes exactly the declared functions and a recovery
    /// walk exists to every operation state.
    #[test]
    fn generated_idl_always_validates(g in gen_idl()) {
        // A blocking op with ops==0 is impossible by construction (op0
        // always exists when blocking due to the extra transition), so
        // only skip the degenerate case.
        if g.blocking && g.ops == 0 {
            return Ok(());
        }
        let src = render(&g);
        let spec = compile_interface("gen", &src)
            .unwrap_or_else(|e| panic!("generated IDL must validate: {e}\n{src}"));
        let expected_fns = 1 + g.ops + usize::from(g.terminal);
        prop_assert_eq!(spec.machine.function_count(), expected_fns);

        // Chain states are reachable with walk length == position + 1.
        for i in 0..g.ops {
            let fid = spec.machine.function_by_name(&format!("x_op{i}")).expect("declared");
            let walk = spec
                .machine
                .recovery_walk(superglue_sm::State::After(fid))
                .expect("chain states reachable");
            prop_assert_eq!(walk.len(), i + 2); // open + op0..opi
        }
    }
}
