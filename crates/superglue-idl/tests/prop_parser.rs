//! Property-based tests for the IDL front end: total lexing/parsing
//! (never panics), and a generator of well-formed IDL files that must
//! always validate. Fuzz inputs are drawn from the repo's seeded
//! [`SplitMix64`] generator; the well-formed-IDL space (4 shape knobs)
//! is enumerated exhaustively.

use composite::rng::{mix, SplitMix64};
use superglue_idl::{compile_interface, idl_loc, lexer, parser};

const CASES: u64 = 128;

/// Random string over a byte alphabet, length in `[0, max_len)`.
fn random_string(rng: &mut SplitMix64, alphabet: &[u8], max_len: usize) -> String {
    let len = rng.gen_index(max_len);
    (0..len)
        .map(|_| char::from(alphabet[rng.gen_index(alphabet.len())]))
        .collect()
}

/// Printable-ish alphabet including newlines — enough to hit every lexer
/// state.
const FULL: &[u8] = b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789 \t\n\r(),;={}*_#/\\\"'.-+<>[]!@$%^&|~`?:";

/// The token-ish alphabet of the original parser fuzz property.
const TOKENISH: &[u8] = b"abcdefghijklmnopqrstuvwxyz_(),;={} \n*0123456789";

/// The lexer is total: arbitrary input yields Ok or a positioned error,
/// never a panic.
#[test]
fn lexer_never_panics() {
    for case in 0..CASES {
        let mut rng = SplitMix64::new(mix(0x1d1_0001, case));
        let input = random_string(&mut rng, FULL, 200);
        let _ = lexer::lex(&input);
    }
}

/// The parser is total over arbitrary token-ish text.
#[test]
fn parser_never_panics() {
    for case in 0..CASES {
        let mut rng = SplitMix64::new(mix(0x1d1_0002, case));
        let input = random_string(&mut rng, TOKENISH, 300);
        let _ = parser::parse(&input);
    }
}

/// idl_loc never exceeds the physical line count.
#[test]
fn idl_loc_bounded_by_lines() {
    for case in 0..CASES {
        let mut rng = SplitMix64::new(mix(0x1d1_0003, case));
        let input = random_string(&mut rng, FULL, 400);
        assert!(idl_loc(&input) <= input.lines().count(), "case {case}");
    }
}

/// A generated well-formed interface: a creation function, a chain of
/// `n` operation functions, optional terminal, optional model bits.
#[derive(Debug, Clone)]
struct GenIdl {
    ops: usize,
    blocking: bool,
    terminal: bool,
    desc_data: bool,
}

fn render(g: &GenIdl) -> String {
    let mut out = String::new();
    if g.blocking || g.desc_data {
        out.push_str("service_global_info = {\n");
        let mut kv = Vec::new();
        if g.blocking {
            kv.push("    desc_block = true".to_owned());
        }
        if g.desc_data {
            kv.push("    desc_has_data = true".to_owned());
        }
        out.push_str(&kv.join(",\n"));
        out.push_str("\n};\n");
    }
    out.push_str("sm_creation(x_open);\n");
    for i in 0..g.ops {
        let prev = if i == 0 {
            "x_open".to_owned()
        } else {
            format!("x_op{}", i - 1)
        };
        out.push_str(&format!("sm_transition({prev}, x_op{i});\n"));
    }
    if g.blocking {
        // The first op blocks; the creation wakes (arbitrary but valid).
        out.push_str("sm_block(x_op0);\n");
        out.push_str("sm_transition(x_op0, x_op0);\n");
    }
    if g.terminal {
        let last = if g.ops == 0 {
            "x_open".to_owned()
        } else {
            format!("x_op{}", g.ops - 1)
        };
        out.push_str("sm_terminal(x_close);\n");
        out.push_str(&format!("sm_transition({last}, x_close);\n"));
    }
    out.push_str("desc_data_retval(long, xid)\n");
    out.push_str("x_open(componentid_t compid);\n");
    for i in 0..g.ops {
        if g.desc_data {
            out.push_str(&format!(
                "int x_op{i}(componentid_t compid, desc(long xid), desc_data(long v{i}));\n"
            ));
        } else {
            out.push_str(&format!(
                "int x_op{i}(componentid_t compid, desc(long xid));\n"
            ));
        }
    }
    if g.terminal {
        out.push_str("int x_close(componentid_t compid, desc(long xid));\n");
    }
    out
}

/// Every well-formed IDL in the generator space parses, validates, and
/// compiles; the machine exposes exactly the declared functions and a
/// recovery walk exists to every operation state. The space is small
/// (4 × 2 × 2 × 2), so it is enumerated exhaustively.
#[test]
fn generated_idl_always_validates() {
    for ops in 1usize..5 {
        for blocking in [false, true] {
            for terminal in [false, true] {
                for desc_data in [false, true] {
                    let g = GenIdl {
                        ops,
                        blocking,
                        terminal,
                        desc_data,
                    };
                    let src = render(&g);
                    let spec = compile_interface("gen", &src)
                        .unwrap_or_else(|e| panic!("generated IDL must validate: {e}\n{src}"));
                    let expected_fns = 1 + g.ops + usize::from(g.terminal);
                    assert_eq!(spec.machine.function_count(), expected_fns);

                    // Chain states are reachable with walk length ==
                    // position + 1.
                    for i in 0..g.ops {
                        let fid = spec
                            .machine
                            .function_by_name(&format!("x_op{i}"))
                            .expect("declared");
                        let walk = spec
                            .machine
                            .recovery_walk(superglue_sm::State::After(fid))
                            .expect("chain states reachable");
                        assert_eq!(walk.len(), i + 2); // open + op0..opi
                    }
                }
            }
        }
    }
}
