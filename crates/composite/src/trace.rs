//! The kernel flight recorder: a bounded ring buffer of structured,
//! causally linked trace events.
//!
//! PR 1's `MetricsRegistry` answers *how often* each of the paper's
//! eight recovery mechanisms fired; this module answers *what happened*:
//! which fault triggered which micro-reboot, which σ-walk replays it
//! caused, in what order D1/T0/U0 fired, and where the simulated
//! nanoseconds went. Every [`TraceEvent`] is stamped with the virtual
//! [`SimTime`], the driving thread, the component it concerns, that
//! component's micro-reboot [`Epoch`], a monotonically assigned span id
//! and a *causal parent* span id — so a whole recovery episode forms a
//! tree rooted at the fault event.
//!
//! Design constraints (mirrored by the determinism test suite):
//!
//! * **Off by default, near-zero cost when disabled.** Every emission
//!   site is guarded by one branch on [`FlightRecorder::is_enabled`].
//! * **Bounded.** Events are retained in two rings of at most `capacity`
//!   each, dropping the *oldest* on overflow (flight-recorder semantics:
//!   the most recent window survives). *Ambient* events — invocations,
//!   block/wake/sleep, descriptor create/close — share one ring;
//!   *recovery-class* events — faults, reboots, σ-walk steps, upcalls,
//!   episode ends, and mechanism firings on a component inside an open
//!   episode — live in their own ring, so a flood of steady-state
//!   request traffic (a Fig 7 throughput run emits millions of ambient
//!   events) can never evict the recovery record. Every timed event that
//!   attributes to an episode is recovery-class, so latency attribution
//!   survives ambient overflow intact. Drops are counted per tier, never
//!   silent.
//! * **Deterministic.** Events depend only on simulated execution, never
//!   on wall clock or host scheduling; per-shard buffers are renumbered
//!   and merged in shard order ([`TraceShard::absorb`]), so `--jobs 1`
//!   and `--jobs 8` produce byte-identical dumps.
//!
//! ## Episodes and latency attribution
//!
//! A **recovery episode** for component `c` opens at a
//! [`TraceEventKind::FaultInjected`] on `c` and closes at the next fault
//! of `c` or when the trace is drained, emitting a
//! [`TraceEventKind::EpisodeEnd`] carrying the total simulated time
//! attributed to the episode. A fault raised *while a recovery is in
//! flight* (correlated faults) instead pushes a **child episode** on the
//! component's episode stack — bounded by [`MAX_EPISODE_DEPTH`] — and
//! the `EpisodeEnd` pops innermost-first, so the dump forms a proper
//! episode tree. Timed events (`dur > 0`: reboots, σ-walk steps, storage
//! round trips, upcalls) accumulate into the *innermost* open episode of
//! their component (no double counting across the tree); the `sgtrace
//! timeline` analyzer independently re-sums them and checks
//! conservation: the per-mechanism spans of an episode must account for
//! 100% of its attributed latency.

use std::collections::{BTreeMap, VecDeque};

use crate::ids::{ComponentId, Epoch, ThreadId};
use crate::json::Json;
use crate::metrics::Mechanism;
use crate::time::SimTime;

/// Default ring capacity used by the harness `--trace` flags.
pub const DEFAULT_TRACE_CAPACITY: usize = 1 << 16;

/// Schema version of the `--trace` JSON-lines emitter (the `"v"` field
/// on every shard header). Bump when an event field changes meaning.
pub const TRACE_SCHEMA_VERSION: u64 = 1;

/// Hard bound on nested recovery-episode depth: a fault raised while a
/// recovery is in flight opens a *child* episode, but the tree can never
/// grow deeper than this (the kernel clamps, keeping pathological
/// correlated-fault storms bounded and the analyzers' recursion finite).
pub const MAX_EPISODE_DEPTH: u32 = 8;

/// What one trace event records.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceEventKind {
    /// A component invocation began (`function`, on behalf of `client`).
    InvokeEnter {
        function: String,
        client: ComponentId,
    },
    /// The invocation identified by `parent` returned; `outcome` is one
    /// of `"ok"`, `"fault"`, `"would-block"`, `"err"`.
    InvokeExit { outcome: &'static str },
    /// The event's thread blocked inside the event's component.
    Block,
    /// The event's thread went to sleep until `until`.
    Sleep { until: SimTime },
    /// The event's thread was made runnable again.
    Wake,
    /// A fail-stop fault was injected into the event's component. Roots
    /// a new recovery episode; `depth > 0` marks a *nested* fault raised
    /// while another recovery episode was already in flight (the new
    /// episode becomes a child in the episode tree).
    FaultInjected { depth: u32 },
    /// The kernel watchdog converted an expired per-invocation step
    /// budget into a detected fault on the event's component.
    WatchdogFired,
    /// The component was marked degraded after a reboot storm; clients
    /// fail fast until `until`, when the booter cold-restarts it.
    DegradedMarked { until: SimTime },
    /// The booter cold-restarted the event's component, clearing its
    /// degraded mark.
    ColdRestart,
    /// The booter micro-rebooted the event's component; `dur` spans the
    /// reboot cost plus the post-reboot initialization upcall.
    Reboot,
    /// `n` firings of recovery mechanism `mech` (the same increment the
    /// [`MetricsRegistry`](crate::metrics::MetricsRegistry) counted —
    /// both are written by the single `Kernel::record_mechanism` choke
    /// point, so counters and trace can never disagree).
    MechanismFired { mech: Mechanism, n: u64 },
    /// One σ-walk function replay (`function`) rebuilding descriptor
    /// `desc` (`None` for the hand-written C³ stubs, which do not expose
    /// descriptor ids); `mech` is the walk flavor (R0 normal, T1
    /// deferred-completion substitution). `dur` spans the recovery-step
    /// charge plus the replayed invocation.
    WalkStep {
        function: String,
        desc: Option<i64>,
        mech: Mechanism,
    },
    /// A stub began tracking descriptor `desc`.
    DescriptorCreated { desc: i64 },
    /// Close semantics dropped descriptor `desc` and `dropped` tracked
    /// descriptors in total (itself plus any revoked subtree).
    DescriptorClosed { desc: i64, dropped: u64 },
    /// A kernel/booter-initiated upcall dispatched `function`.
    Upcall { function: String },
    /// A showstopper message was routed to the dead-letter queue:
    /// message `msg` on channel descriptor `desc` faulted its consumer
    /// `deliveries` times and is escalated past further re-delivery (the
    /// DL0 mechanism, sitting between watchdog detection and the
    /// reboot-storm backoff in the escalation ladder).
    DeadLetter {
        desc: i64,
        msg: i64,
        deliveries: u64,
    },
    /// The recovery episode rooted at `parent` closed; `attributed` is
    /// the total simulated time its timed events accumulated.
    EpisodeEnd { attributed: SimTime },
}

impl TraceEventKind {
    /// Stable snake_case name used in JSON output.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            TraceEventKind::InvokeEnter { .. } => "invoke_enter",
            TraceEventKind::InvokeExit { .. } => "invoke_exit",
            TraceEventKind::Block => "block",
            TraceEventKind::Sleep { .. } => "sleep",
            TraceEventKind::Wake => "wake",
            TraceEventKind::FaultInjected { .. } => "fault",
            TraceEventKind::WatchdogFired => "watchdog",
            TraceEventKind::DegradedMarked { .. } => "degraded",
            TraceEventKind::ColdRestart => "cold_restart",
            TraceEventKind::Reboot => "reboot",
            TraceEventKind::MechanismFired { .. } => "mechanism",
            TraceEventKind::WalkStep { .. } => "walk_step",
            TraceEventKind::DescriptorCreated { .. } => "desc_created",
            TraceEventKind::DescriptorClosed { .. } => "desc_closed",
            TraceEventKind::Upcall { .. } => "upcall",
            TraceEventKind::DeadLetter { .. } => "dead_letter",
            TraceEventKind::EpisodeEnd { .. } => "episode_end",
        }
    }

    /// Whether the event kind occurs only during recovery (faults,
    /// reboots, σ-walk steps, upcalls, episode ends) and is therefore
    /// always retained in the recovery ring tier. Mechanism firings are
    /// *not* listed: D0/G0/G1 also fire on every steady-state descriptor
    /// operation, so the recorder routes them by whether their component
    /// has an open recovery episode.
    #[must_use]
    pub fn is_recovery_class(&self) -> bool {
        matches!(
            self,
            TraceEventKind::FaultInjected { .. }
                | TraceEventKind::WatchdogFired
                | TraceEventKind::DegradedMarked { .. }
                | TraceEventKind::ColdRestart
                | TraceEventKind::Reboot
                | TraceEventKind::WalkStep { .. }
                | TraceEventKind::Upcall { .. }
                | TraceEventKind::DeadLetter { .. }
                | TraceEventKind::EpisodeEnd { .. }
        )
    }
}

/// One flight-recorder event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Monotonically assigned span id, unique within a [`TraceShard`].
    pub span: u64,
    /// Causal parent span (`None` for roots: fault injections and
    /// top-level invocations outside any recovery).
    pub parent: Option<u64>,
    /// Simulated start time of the event.
    pub time: SimTime,
    /// Simulated duration (zero for instant events).
    pub dur: SimTime,
    /// The thread driving the event.
    pub thread: ThreadId,
    /// The component the event concerns (the failed/recovering server
    /// for recovery events).
    pub component: ComponentId,
    /// That component's micro-reboot epoch when the event fired.
    pub epoch: Epoch,
    pub kind: TraceEventKind,
}

impl TraceEvent {
    /// One JSON-lines object; `names` resolves component ids (indexed by
    /// id) for human-readable dumps.
    #[must_use]
    pub fn to_json(&self, names: &[String]) -> Json {
        let mut j = Json::object();
        j.push("span", self.span);
        match self.parent {
            Some(p) => j.push("parent", p),
            None => j.push("parent", Json::Null),
        };
        j.push("ts", self.time.0)
            .push("dur", self.dur.0)
            .push("tid", self.thread.0)
            .push("comp", self.component.0)
            .push(
                "name",
                names
                    .get(self.component.0 as usize)
                    .map_or("?", String::as_str),
            )
            .push("epoch", self.epoch.0)
            .push("kind", self.kind.name());
        match &self.kind {
            TraceEventKind::InvokeEnter { function, client } => {
                j.push("function", function.as_str())
                    .push("client", client.0);
            }
            TraceEventKind::InvokeExit { outcome } => {
                j.push("outcome", *outcome);
            }
            TraceEventKind::Sleep { until } => {
                j.push("until", until.0);
            }
            TraceEventKind::MechanismFired { mech, n } => {
                j.push("mech", mech.name()).push("n", *n);
            }
            TraceEventKind::WalkStep {
                function,
                desc,
                mech,
            } => {
                j.push("function", function.as_str());
                match desc {
                    Some(d) => j.push("desc", *d),
                    None => j.push("desc", Json::Null),
                };
                j.push("mech", mech.name());
            }
            TraceEventKind::DescriptorCreated { desc } => {
                j.push("desc", *desc);
            }
            TraceEventKind::DescriptorClosed { desc, dropped } => {
                j.push("desc", *desc).push("dropped", *dropped);
            }
            TraceEventKind::Upcall { function } => {
                j.push("function", function.as_str());
            }
            TraceEventKind::DeadLetter {
                desc,
                msg,
                deliveries,
            } => {
                j.push("desc", *desc)
                    .push("msg", *msg)
                    .push("deliveries", *deliveries);
            }
            TraceEventKind::EpisodeEnd { attributed } => {
                j.push("attributed", attributed.0);
            }
            TraceEventKind::FaultInjected { depth } => {
                // Emitted only for nested faults so that the established
                // single-fault dumps stay byte-identical.
                if *depth > 0 {
                    j.push("depth", *depth);
                }
            }
            TraceEventKind::DegradedMarked { until } => {
                j.push("until", until.0);
            }
            TraceEventKind::Block
            | TraceEventKind::Wake
            | TraceEventKind::WatchdogFired
            | TraceEventKind::ColdRestart
            | TraceEventKind::Reboot => {}
        }
        j
    }
}

/// An in-flight timed span opened by `Kernel::trace_open` and closed —
/// with its measured duration — by `Kernel::trace_close`.
#[derive(Debug, Clone, Copy)]
pub struct TraceScope {
    pub(crate) span: u64,
    pub(crate) parent: Option<u64>,
    pub(crate) start: SimTime,
}

#[derive(Debug, Clone, Copy)]
struct Episode {
    root: u64,
    attributed: SimTime,
}

/// Per-component stack of open episodes: the last entry is the innermost
/// (nested) episode; timed events attribute to it alone, so the episode
/// tree conserves latency without double counting.
type EpisodeStack = Vec<Episode>;

/// The bounded event ring the kernel carries. All methods are cheap
/// no-ops while disabled.
#[derive(Debug, Default)]
pub struct FlightRecorder {
    enabled: bool,
    capacity: usize,
    /// Ambient tier: invocations, block/wake/sleep, descriptor events.
    /// Entries carry a push sequence number so `drain` can interleave
    /// the tiers back into emission order.
    ambient: VecDeque<(u64, TraceEvent)>,
    /// Recovery tier: never evicted by ambient traffic.
    recovery: VecDeque<(u64, TraceEvent)>,
    next_seq: u64,
    dropped: u64,
    dropped_recovery: u64,
    next_span: u64,
    /// Spans of in-flight kernel invocations (innermost last); the
    /// simulation is single-threaded, so one stack suffices.
    invoke_stack: Vec<u64>,
    /// Spans of in-flight recovery scopes (reboots, σ-walk steps, U0
    /// upcalls) — consulted before the invoke stack so that events
    /// emitted during recovery hang off the recovery tree.
    recovery_stack: Vec<u64>,
    /// Open recovery episodes per component (innermost last).
    episodes: BTreeMap<ComponentId, EpisodeStack>,
}

impl FlightRecorder {
    /// Turn recording on with the given ring capacity (minimum 1).
    pub fn enable(&mut self, capacity: usize) {
        self.enabled = true;
        self.capacity = capacity.max(1);
    }

    /// Whether events are being recorded.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Events currently retained (both tiers).
    #[must_use]
    pub fn len(&self) -> usize {
        self.ambient.len() + self.recovery.len()
    }

    /// Whether both tiers are empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.ambient.is_empty() && self.recovery.is_empty()
    }

    /// Allocate the next span id.
    pub(crate) fn alloc_span(&mut self) -> u64 {
        let s = self.next_span;
        self.next_span += 1;
        s
    }

    pub(crate) fn push_invoke(&mut self, span: u64) {
        self.invoke_stack.push(span);
    }

    pub(crate) fn pop_invoke(&mut self) {
        self.invoke_stack.pop();
    }

    pub(crate) fn push_scope(&mut self, span: u64) {
        self.recovery_stack.push(span);
    }

    pub(crate) fn pop_scope(&mut self) {
        self.recovery_stack.pop();
    }

    /// The causal parent for a new event concerning `c`: the innermost
    /// open recovery scope, else the innermost in-flight invocation,
    /// else the root of `c`'s open recovery episode.
    pub(crate) fn causal_parent(&self, c: ComponentId) -> Option<u64> {
        self.recovery_stack
            .last()
            .or_else(|| self.invoke_stack.last())
            .copied()
            .or_else(|| self.episodes.get(&c).and_then(|s| s.last()).map(|e| e.root))
    }

    /// Number of currently open episodes on `c` (nesting depth).
    pub(crate) fn episode_depth(&self, c: ComponentId) -> u32 {
        self.episodes.get(&c).map_or(0, |s| s.len() as u32)
    }

    /// Append an event, attributing its duration to the open episode of
    /// its component and dropping the oldest event of its tier on
    /// overflow.
    pub(crate) fn record(&mut self, ev: TraceEvent) {
        if ev.dur > SimTime::ZERO {
            // Attribute to the innermost open episode only — the episode
            // tree conserves latency without double counting.
            if let Some(ep) = self
                .episodes
                .get_mut(&ev.component)
                .and_then(|s| s.last_mut())
            {
                ep.attributed += ev.dur;
            }
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        // Mechanism firings belong to the recovery record exactly when
        // their component is inside an episode (those are the firings
        // whose durations attribute); steady-state firings are ambient.
        let recovery_class = ev.kind.is_recovery_class()
            || (matches!(ev.kind, TraceEventKind::MechanismFired { .. })
                && self.episodes.contains_key(&ev.component));
        let tier = if recovery_class {
            &mut self.recovery
        } else {
            &mut self.ambient
        };
        if tier.len() >= self.capacity {
            tier.pop_front();
            if recovery_class {
                self.dropped_recovery += 1;
            } else {
                self.dropped += 1;
            }
        }
        tier.push_back((seq, ev));
    }

    /// Open a recovery episode for `c` rooted at `root`, pushed on top of
    /// any episode already in flight (nested faults).
    pub(crate) fn begin_episode(&mut self, c: ComponentId, root: u64) {
        self.episodes.entry(c).or_default().push(Episode {
            root,
            attributed: SimTime::ZERO,
        });
    }

    /// Close `c`'s *innermost* open episode (if any), emitting its
    /// [`TraceEventKind::EpisodeEnd`].
    pub(crate) fn end_episode(
        &mut self,
        c: ComponentId,
        epoch: Epoch,
        time: SimTime,
        thread: ThreadId,
    ) {
        let Some(stack) = self.episodes.get_mut(&c) else {
            return;
        };
        let Some(ep) = stack.pop() else { return };
        if stack.is_empty() {
            self.episodes.remove(&c);
        }
        let span = self.alloc_span();
        self.record(TraceEvent {
            span,
            parent: Some(ep.root),
            time,
            dur: SimTime::ZERO,
            thread,
            component: c,
            epoch,
            kind: TraceEventKind::EpisodeEnd {
                attributed: ep.attributed,
            },
        });
    }

    /// Components with an open episode — one entry per open episode, in
    /// id order — drained by `Kernel::take_trace`, which must close them
    /// all (each `end_episode` call pops one nesting level).
    pub(crate) fn open_episode_components(&self) -> Vec<ComponentId> {
        self.episodes
            .iter()
            .flat_map(|(c, s)| std::iter::repeat_n(*c, s.len()))
            .collect()
    }

    /// Drain all recorded events and counters, resetting the recorder
    /// for continued use. The two tiers are interleaved back into
    /// emission order. Returns
    /// `(events, dropped_ambient, dropped_recovery, span_count)`.
    pub(crate) fn drain(&mut self) -> (Vec<TraceEvent>, u64, u64, u64) {
        let mut ambient = std::mem::take(&mut self.ambient);
        let mut recovery = std::mem::take(&mut self.recovery);
        let mut events = Vec::with_capacity(ambient.len() + recovery.len());
        loop {
            let take_ambient = match (ambient.front(), recovery.front()) {
                (Some((sa, _)), Some((sr, _))) => sa < sr,
                (Some(_), None) => true,
                (None, Some(_)) => false,
                (None, None) => break,
            };
            let src = if take_ambient {
                &mut ambient
            } else {
                &mut recovery
            };
            events.push(src.pop_front().expect("front checked").1);
        }
        let dropped = std::mem::take(&mut self.dropped);
        let dropped_recovery = std::mem::take(&mut self.dropped_recovery);
        let span_count = std::mem::take(&mut self.next_span);
        self.next_seq = 0;
        self.invoke_stack.clear();
        self.recovery_stack.clear();
        self.episodes.clear();
        (events, dropped, dropped_recovery, span_count)
    }
}

/// One drained, self-contained slice of trace: the events of one kernel
/// (or several absorbed in deterministic order), plus the component-name
/// table resolving ids. Plain data, `Send`, mergeable across campaign
/// shards in shard order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TraceShard {
    /// Harness-assigned context label, e.g. `"table2/lock/superglue/shard0"`.
    pub label: String,
    /// Component names indexed by component id.
    pub names: Vec<String>,
    pub events: Vec<TraceEvent>,
    /// Ambient events lost to ring overflow.
    pub dropped: u64,
    /// Recovery-class events lost to ring overflow. When zero, every
    /// fault/reboot/walk/mechanism/upcall event — and thus the full
    /// latency attribution of every episode — is present even if
    /// `dropped > 0`.
    pub dropped_recovery: u64,
    /// Span ids `0..span_count` are in use (absorbing renumbers by this
    /// offset, keeping spans unique within the merged shard).
    pub span_count: u64,
}

impl TraceShard {
    /// An empty shard carrying only a label.
    #[must_use]
    pub fn labeled(label: &str) -> Self {
        Self {
            label: label.to_owned(),
            ..Self::default()
        }
    }

    /// Append another shard's events, renumbering its spans past this
    /// shard's. Used when one logical shard spans several kernel
    /// lifetimes (machine reboots rebuild the testbed) and when harness
    /// tasks are merged in deterministic order.
    pub fn absorb(&mut self, other: TraceShard) {
        let offset = self.span_count;
        self.events.reserve(other.events.len());
        for mut ev in other.events {
            ev.span += offset;
            if let Some(p) = ev.parent.as_mut() {
                *p += offset;
            }
            self.events.push(ev);
        }
        self.span_count += other.span_count;
        self.dropped += other.dropped;
        self.dropped_recovery += other.dropped_recovery;
        if self.names.is_empty() {
            self.names = other.names;
        }
    }

    /// The shard-header JSON-lines object. Leads with the emitter's
    /// schema version so downstream tooling (`sgtrace`, `sgstat`) can
    /// detect drift.
    #[must_use]
    pub fn header_json(&self) -> Json {
        let mut j = Json::object();
        j.push("v", TRACE_SCHEMA_VERSION)
            .push("shard", self.label.as_str())
            .push(
                "names",
                Json::Array(self.names.iter().map(|n| Json::from(n.as_str())).collect()),
            )
            .push("events", self.events.len())
            .push("dropped", self.dropped)
            .push("dropped_recovery", self.dropped_recovery)
            .push("span_count", self.span_count);
        j
    }
}

/// Render shards as JSON-lines: one header object per shard followed by
/// its events, in shard order (byte-identical for any `--jobs`).
#[must_use]
pub fn shards_to_jsonl(shards: &[TraceShard]) -> String {
    let mut out = String::new();
    for shard in shards {
        out.push_str(&shard.header_json().to_line());
        out.push('\n');
        for ev in &shard.events {
            out.push_str(&ev.to_json(&shard.names).to_line());
            out.push('\n');
        }
    }
    out
}

/// Human label for one event in the Chrome viewer.
fn chrome_name(ev: &TraceEvent, names: &[String]) -> String {
    let comp = names
        .get(ev.component.0 as usize)
        .map_or("?", String::as_str);
    match &ev.kind {
        TraceEventKind::InvokeEnter { function, .. } => format!("call {comp}.{function}"),
        TraceEventKind::InvokeExit { outcome } => format!("ret {outcome}"),
        TraceEventKind::Block => format!("block in {comp}"),
        TraceEventKind::Sleep { .. } => "sleep".to_owned(),
        TraceEventKind::Wake => format!("wake ({comp})"),
        TraceEventKind::FaultInjected { depth: 0 } => format!("FAULT {comp}"),
        TraceEventKind::FaultInjected { depth } => format!("FAULT {comp} (nested x{depth})"),
        TraceEventKind::WatchdogFired => format!("WATCHDOG {comp}"),
        TraceEventKind::DegradedMarked { .. } => format!("degraded {comp}"),
        TraceEventKind::ColdRestart => format!("cold restart {comp}"),
        TraceEventKind::Reboot => format!("reboot {comp}"),
        TraceEventKind::MechanismFired { mech, n } => format!("{} x{n} ({comp})", mech.name()),
        TraceEventKind::WalkStep { function, mech, .. } => {
            format!("{} replay {comp}.{function}", mech.name())
        }
        TraceEventKind::DescriptorCreated { desc } => format!("{comp} desc+{desc}"),
        TraceEventKind::DescriptorClosed { desc, .. } => format!("{comp} desc-{desc}"),
        TraceEventKind::Upcall { function } => format!("upcall {comp}.{function}"),
        TraceEventKind::DeadLetter {
            msg, deliveries, ..
        } => format!("DEAD-LETTER {comp} msg {msg} (x{deliveries})"),
        TraceEventKind::EpisodeEnd { .. } => format!("episode end {comp}"),
    }
}

/// Render shards in Chrome `trace_event` JSON (loadable in
/// `chrome://tracing` and Perfetto): one process per shard, one track
/// per thread; timed events become complete (`"X"`) slices, instants
/// become `"i"` markers. Timestamps are microseconds (fractional: the
/// simulation is nanosecond-granular).
#[must_use]
pub fn shards_to_chrome(shards: &[TraceShard]) -> String {
    let mut events: Vec<Json> = Vec::new();
    for (pid, shard) in shards.iter().enumerate() {
        let mut meta = Json::object();
        meta.push("ph", "M")
            .push("pid", pid)
            .push("name", "process_name");
        let mut args = Json::object();
        args.push("name", shard.label.as_str());
        meta.push("args", args);
        events.push(meta);
        for ev in &shard.events {
            let mut j = Json::object();
            j.push("name", chrome_name(ev, &shard.names))
                .push("cat", ev.kind.name())
                .push("pid", pid)
                .push("tid", ev.thread.0)
                .push("ts", ev.time.0 as f64 / 1000.0);
            if ev.dur > SimTime::ZERO {
                j.push("ph", "X").push("dur", ev.dur.0 as f64 / 1000.0);
            } else {
                j.push("ph", "i").push("s", "t");
            }
            let mut args = Json::object();
            args.push("span", ev.span);
            if let Some(p) = ev.parent {
                args.push("parent", p);
            }
            args.push("epoch", ev.epoch.0);
            j.push("args", args);
            events.push(j);
        }
    }
    let mut top = Json::object();
    top.push("traceEvents", Json::Array(events))
        .push("displayTimeUnit", "ns");
    top.to_pretty()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(span: u64, parent: Option<u64>, c: u32, dur: u64, kind: TraceEventKind) -> TraceEvent {
        TraceEvent {
            span,
            parent,
            time: SimTime(10),
            dur: SimTime(dur),
            thread: ThreadId(1),
            component: ComponentId(c),
            epoch: Epoch::default(),
            kind,
        }
    }

    #[test]
    fn disabled_recorder_is_inert() {
        let r = FlightRecorder::default();
        assert!(!r.is_enabled());
        assert!(r.is_empty());
    }

    #[test]
    fn ring_drops_oldest_on_overflow() {
        let mut r = FlightRecorder::default();
        r.enable(2);
        for i in 0..4 {
            let s = r.alloc_span();
            r.record(ev(s, None, 1, 0, TraceEventKind::Wake));
            let _ = i;
        }
        let (events, dropped, dropped_recovery, span_count) = r.drain();
        assert_eq!(events.len(), 2);
        assert_eq!(dropped, 2);
        assert_eq!(dropped_recovery, 0);
        assert_eq!(span_count, 4);
        assert_eq!(events[0].span, 2, "oldest events dropped first");
    }

    #[test]
    fn ambient_flood_cannot_evict_recovery_events() {
        let mut r = FlightRecorder::default();
        r.enable(2);
        let root = r.alloc_span();
        r.record(ev(
            root,
            None,
            1,
            0,
            TraceEventKind::FaultInjected { depth: 0 },
        ));
        let s = r.alloc_span();
        r.record(ev(s, Some(root), 1, 40, TraceEventKind::Reboot));
        // A flood of steady-state traffic overflows the ambient tier...
        for _ in 0..10 {
            let s = r.alloc_span();
            r.record(ev(s, None, 1, 0, TraceEventKind::Wake));
        }
        let (events, dropped, dropped_recovery, _) = r.drain();
        assert_eq!(dropped, 8);
        assert_eq!(dropped_recovery, 0);
        // ...but the fault and the timed reboot survive, in emission
        // order ahead of the retained ambient tail.
        assert_eq!(events[0].kind, TraceEventKind::FaultInjected { depth: 0 });
        assert_eq!(events[1].kind, TraceEventKind::Reboot);
        assert_eq!(events.len(), 4);
    }

    #[test]
    fn episode_accumulates_timed_events_only_for_its_component() {
        let mut r = FlightRecorder::default();
        r.enable(64);
        let root = r.alloc_span();
        r.record(ev(
            root,
            None,
            3,
            0,
            TraceEventKind::FaultInjected { depth: 0 },
        ));
        r.begin_episode(ComponentId(3), root);
        let s = r.alloc_span();
        r.record(ev(s, Some(root), 3, 500, TraceEventKind::Reboot));
        let s = r.alloc_span();
        // A timed event on another component must not leak in.
        r.record(ev(s, None, 4, 999, TraceEventKind::Reboot));
        r.end_episode(ComponentId(3), Epoch::default(), SimTime(20), ThreadId(0));
        let (events, _, _, _) = r.drain();
        let end = events.last().unwrap();
        assert_eq!(end.parent, Some(root));
        assert_eq!(
            end.kind,
            TraceEventKind::EpisodeEnd {
                attributed: SimTime(500)
            }
        );
    }

    #[test]
    fn nested_episodes_pop_innermost_first_and_attribute_to_the_top() {
        let mut r = FlightRecorder::default();
        r.enable(64);
        let outer = r.alloc_span();
        r.record(ev(
            outer,
            None,
            3,
            0,
            TraceEventKind::FaultInjected { depth: 0 },
        ));
        r.begin_episode(ComponentId(3), outer);
        let s = r.alloc_span();
        r.record(ev(s, Some(outer), 3, 100, TraceEventKind::Reboot));
        // A correlated fault on the same component opens a child episode.
        let inner = r.alloc_span();
        r.record(ev(
            inner,
            Some(s),
            3,
            0,
            TraceEventKind::FaultInjected { depth: 1 },
        ));
        r.begin_episode(ComponentId(3), inner);
        assert_eq!(r.episode_depth(ComponentId(3)), 2);
        let s = r.alloc_span();
        r.record(ev(s, Some(inner), 3, 40, TraceEventKind::Reboot));
        r.end_episode(ComponentId(3), Epoch::default(), SimTime(20), ThreadId(0));
        let s = r.alloc_span();
        r.record(ev(s, Some(outer), 3, 7, TraceEventKind::Reboot));
        r.end_episode(ComponentId(3), Epoch::default(), SimTime(30), ThreadId(0));
        let (events, _, _, _) = r.drain();
        let ends: Vec<&TraceEvent> = events
            .iter()
            .filter(|e| matches!(e.kind, TraceEventKind::EpisodeEnd { .. }))
            .collect();
        assert_eq!(ends.len(), 2);
        // Innermost closes first, owning only its own timed events; the
        // outer episode resumes accumulating after the child closes.
        assert_eq!(ends[0].parent, Some(inner));
        assert_eq!(
            ends[0].kind,
            TraceEventKind::EpisodeEnd {
                attributed: SimTime(40)
            }
        );
        assert_eq!(ends[1].parent, Some(outer));
        assert_eq!(
            ends[1].kind,
            TraceEventKind::EpisodeEnd {
                attributed: SimTime(107)
            }
        );
    }

    #[test]
    fn absorb_renumbers_spans_and_parents() {
        let mut a = TraceShard::labeled("a");
        a.events.push(ev(
            0,
            None,
            1,
            0,
            TraceEventKind::FaultInjected { depth: 0 },
        ));
        a.span_count = 1;
        let mut b = TraceShard::labeled("b");
        b.events.push(ev(
            0,
            None,
            1,
            0,
            TraceEventKind::FaultInjected { depth: 0 },
        ));
        b.events.push(ev(1, Some(0), 1, 7, TraceEventKind::Reboot));
        b.span_count = 2;
        b.dropped = 3;
        a.absorb(b);
        assert_eq!(a.span_count, 3);
        assert_eq!(a.dropped, 3);
        assert_eq!(a.events[1].span, 1);
        assert_eq!(a.events[2].span, 2);
        assert_eq!(a.events[2].parent, Some(1));
    }

    #[test]
    fn causal_parent_prefers_recovery_scope() {
        let mut r = FlightRecorder::default();
        r.enable(16);
        assert_eq!(r.causal_parent(ComponentId(1)), None);
        r.begin_episode(ComponentId(1), 9);
        assert_eq!(r.causal_parent(ComponentId(1)), Some(9));
        r.push_invoke(11);
        assert_eq!(r.causal_parent(ComponentId(1)), Some(11));
        r.push_scope(12);
        assert_eq!(r.causal_parent(ComponentId(1)), Some(12));
        r.pop_scope();
        r.pop_invoke();
        assert_eq!(r.causal_parent(ComponentId(1)), Some(9));
    }

    #[test]
    fn jsonl_lines_carry_kind_fields() {
        let mut shard = TraceShard::labeled("t");
        shard.names = vec!["booter".into(), "lock".into()];
        shard.events.push(ev(
            0,
            None,
            1,
            0,
            TraceEventKind::WalkStep {
                function: "lock_take".into(),
                desc: Some(4),
                mech: Mechanism::R0,
            },
        ));
        shard.span_count = 1;
        let dump = shards_to_jsonl(std::slice::from_ref(&shard));
        let lines: Vec<&str> = dump.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains(r#""shard":"t""#));
        assert!(lines[1].contains(r#""kind":"walk_step""#));
        assert!(lines[1].contains(r#""function":"lock_take""#));
        assert!(lines[1].contains(r#""name":"lock""#));
        assert!(lines[1].contains(r#""desc":4"#));
    }

    #[test]
    fn chrome_dump_is_loadable_shape() {
        let mut shard = TraceShard::labeled("t");
        shard.names = vec!["booter".into(), "lock".into()];
        shard.events.push(ev(
            0,
            None,
            1,
            0,
            TraceEventKind::FaultInjected { depth: 0 },
        ));
        shard
            .events
            .push(ev(1, Some(0), 1, 250, TraceEventKind::Reboot));
        shard.span_count = 2;
        let dump = shards_to_chrome(&[shard]);
        assert!(dump.contains(r#""traceEvents""#));
        assert!(dump.contains(r#""ph": "M""#));
        assert!(dump.contains(r#""ph": "i""#));
        assert!(dump.contains(r#""ph": "X""#));
        assert!(dump.contains(r#""dur": 0.25"#));
    }
}
