//! Windowed recovery telemetry: per-component, per-simulated-time-window
//! activity series.
//!
//! [`MetricsSnapshot`](crate::metrics::MetricsSnapshot) answers "what
//! happened over the whole run"; this module answers "*when* did it
//! happen". The kernel carries a [`Telemetry`] accumulator (off by
//! default, enabled by the harnesses' `--series` flag) that buckets
//! invocations, faults, mechanism firings, and recovery latencies into
//! fixed-width simulated-time windows at the same choke points that feed
//! the metrics registry — so the series and the totals can never
//! disagree.
//!
//! Harnesses snapshot the accumulator per run into a [`SeriesSnapshot`]
//! (name-keyed plain data, `Send`) and merge snapshots shard-by-shard in
//! shard order, exactly like metrics: every campaign shard simulates its
//! own machine from virtual time zero, so window `w` of shard `a` and
//! window `w` of shard `b` describe the same post-boot interval and sum
//! meaningfully. The merged dump is byte-identical for any `--jobs`
//! value. Quantiles are estimated from the existing
//! [`LatencyStat::quantile_ns`] log₂ histogram — no extra hot-path state.

use std::collections::BTreeMap;

use crate::ids::ComponentId;
use crate::json::Json;
use crate::kernel::Kernel;
use crate::metrics::{LatencyStat, Mechanism, MECHANISMS};
use crate::time::SimTime;

/// Schema version of the `--series` JSON-lines emitter (the `"v"` field
/// on the header and every row). Bump when a field changes meaning.
///
/// * **v2** — the per-window `mechanisms` object gained the `DL0` and
///   `CR0` channel-recovery counters, appended after `U0` (same change
///   as metrics schema v2).
/// * **v1** — initial schema: the paper's eight mechanisms (R0–U0).
pub const SERIES_SCHEMA_VERSION: u64 = 2;

/// Default window width for the harnesses' `--series` flag: 1 ms of
/// simulated time, fine enough to resolve individual recovery episodes
/// in the micro-campaigns.
pub const DEFAULT_SERIES_WINDOW: SimTime = SimTime(1_000_000);

/// One window's activity for one component.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SeriesCell {
    /// Component invocations that *started* in the window.
    pub invocations: u64,
    /// Faults raised in the window (top-level and nested).
    pub faults: u64,
    /// Mechanism firings attributed to the window the firing started in,
    /// indexed like [`MECHANISMS`].
    pub mechanisms: [u64; 10],
    /// Recovery-episode latencies attributed to the window the episode
    /// started in (so a window's downtime never exceeds lookahead).
    pub recovery_latency: LatencyStat,
}

impl SeriesCell {
    fn merge(&mut self, other: &SeriesCell) {
        self.invocations += other.invocations;
        self.faults += other.faults;
        for (a, b) in self.mechanisms.iter_mut().zip(other.mechanisms.iter()) {
            *a += *b;
        }
        self.recovery_latency.merge(&other.recovery_latency);
    }

    fn is_empty(&self) -> bool {
        self.invocations == 0
            && self.faults == 0
            && self.mechanisms.iter().all(|&m| m == 0)
            && self.recovery_latency.count == 0
    }
}

/// The kernel-side accumulator: dense per-component-id slots, each a
/// sparse window map. All recording methods are single-branch no-ops
/// while disabled, so the invocation hot path stays flat.
#[derive(Debug, Default)]
pub struct Telemetry {
    /// Window width in simulated nanoseconds; 0 = disabled.
    window_ns: u64,
    cells: Vec<BTreeMap<u64, SeriesCell>>,
}

impl Telemetry {
    /// Turn the accumulator on with the given window width.
    ///
    /// # Panics
    ///
    /// Panics on a zero window (it would put everything in window 0 of
    /// an infinitely wide bucket — always a configuration bug).
    pub fn enable(&mut self, window: SimTime) {
        assert!(window.0 > 0, "telemetry window must be positive");
        self.window_ns = window.0;
    }

    /// Whether the accumulator is recording.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.window_ns > 0
    }

    /// The configured window width (0 while disabled).
    #[must_use]
    pub fn window_ns(&self) -> u64 {
        self.window_ns
    }

    #[inline]
    fn cell(&mut self, c: ComponentId, t: SimTime) -> &mut SeriesCell {
        let i = c.0 as usize;
        if i >= self.cells.len() {
            self.cells.resize_with(i + 1, BTreeMap::new);
        }
        self.cells[i].entry(t.0 / self.window_ns).or_default()
    }

    /// Count one invocation of `c` starting at `t`.
    #[inline]
    pub fn record_invocation(&mut self, c: ComponentId, t: SimTime) {
        if self.window_ns == 0 {
            return;
        }
        self.cell(c, t).invocations += 1;
    }

    /// Count one fault raised on `c` at `t`.
    #[inline]
    pub fn record_fault(&mut self, c: ComponentId, t: SimTime) {
        if self.window_ns == 0 {
            return;
        }
        self.cell(c, t).faults += 1;
    }

    /// Count `n` firings of mechanism `m` on `c` starting at `t`.
    #[inline]
    pub fn record_mechanism(&mut self, c: ComponentId, m: Mechanism, n: u64, t: SimTime) {
        if self.window_ns == 0 {
            return;
        }
        self.cell(c, t).mechanisms[m.index()] += n;
    }

    /// Record one recovery episode on `c` of duration `d` that started
    /// at `t`.
    #[inline]
    pub fn record_recovery_latency(&mut self, c: ComponentId, d: SimTime, t: SimTime) {
        if self.window_ns == 0 {
            return;
        }
        self.cell(c, t).recovery_latency.record(d);
    }

    pub(crate) fn component_windows(&self, c: ComponentId) -> Option<&BTreeMap<u64, SeriesCell>> {
        self.cells.get(c.0 as usize)
    }
}

/// A point-in-time, name-resolved copy of the series — plain data,
/// `Send`, mergeable across campaign shards in shard order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SeriesSnapshot {
    /// Window width in simulated nanoseconds (0 for an empty default
    /// snapshot; set on first merge or capture).
    pub window_ns: u64,
    /// Cells keyed `(component name, window index)` — BTreeMap, so dump
    /// order is deterministic.
    pub rows: BTreeMap<(String, u64), SeriesCell>,
}

impl SeriesSnapshot {
    /// Snapshot the kernel's telemetry accumulator, resolving component
    /// ids to names (empty when telemetry is disabled).
    #[must_use]
    pub fn from_kernel(kernel: &Kernel) -> Self {
        let telemetry = kernel.telemetry();
        let mut rows = BTreeMap::new();
        if !telemetry.is_enabled() {
            return Self::default();
        }
        for c in kernel.component_ids() {
            let Some(name) = kernel.component_name(c) else {
                continue;
            };
            let Some(windows) = telemetry.component_windows(c) else {
                continue;
            };
            for (&w, cell) in windows {
                if cell.is_empty() {
                    continue;
                }
                let slot: &mut SeriesCell = rows.entry((name.to_owned(), w)).or_default();
                slot.merge(cell);
            }
        }
        Self {
            window_ns: telemetry.window_ns(),
            rows,
        }
    }

    /// Merge another snapshot into this one (order-insensitive sums over
    /// aligned windows, so merging shard snapshots in shard order is
    /// bit-identical for any thread count).
    ///
    /// # Panics
    ///
    /// Panics when the two snapshots were captured with different window
    /// widths — their windows would not describe the same intervals.
    pub fn merge(&mut self, other: &SeriesSnapshot) {
        if other.window_ns == 0 {
            return;
        }
        if self.window_ns == 0 {
            self.window_ns = other.window_ns;
        }
        assert_eq!(
            self.window_ns, other.window_ns,
            "cannot merge series with different window widths"
        );
        for (key, cell) in &other.rows {
            self.rows.entry(key.clone()).or_default().merge(cell);
        }
    }

    /// Render as JSON-lines: one object per `(component, window)` cell in
    /// key order, each carrying the harness-supplied `context` label and
    /// p50/p90/p99 recovery-latency quantiles estimated from the log₂
    /// histogram. The caller prepends one [`series_header`] line per
    /// file.
    #[must_use]
    pub fn to_json_lines(&self, context: &str) -> String {
        let mut out = String::new();
        for ((name, window), cell) in &self.rows {
            let mut j = Json::object();
            j.push("v", SERIES_SCHEMA_VERSION)
                .push("context", context)
                .push("component", name.as_str())
                .push("window", *window)
                .push("t_start_ns", *window * self.window_ns)
                .push("invocations", cell.invocations)
                .push("faults", cell.faults);
            let mut mech = Json::object();
            for m in MECHANISMS {
                mech.push(m.name(), cell.mechanisms[m.index()]);
            }
            j.push("mechanisms", mech);
            let lat = &cell.recovery_latency;
            let mut l = Json::object();
            l.push("count", lat.count)
                .push("total_ns", lat.total_ns)
                .push("min_ns", lat.min_ns)
                .push("max_ns", lat.max_ns)
                .push("p50_ns", lat.quantile_ns(0.50))
                .push("p90_ns", lat.quantile_ns(0.90))
                .push("p99_ns", lat.quantile_ns(0.99));
            j.push("recovery_latency", l);
            out.push_str(&j.to_line());
            out.push('\n');
        }
        out
    }

    /// Total invocations across every cell (diagnostics / tests).
    #[must_use]
    pub fn total_invocations(&self) -> u64 {
        self.rows.values().map(|c| c.invocations).sum()
    }

    /// Total faults across every cell (diagnostics / tests).
    #[must_use]
    pub fn total_faults(&self) -> u64 {
        self.rows.values().map(|c| c.faults).sum()
    }
}

/// The one header line a `--series` file starts with: schema version and
/// the window width every row's `window` index is in units of.
#[must_use]
pub fn series_header(window_ns: u64) -> String {
    let mut j = Json::object();
    j.push("v", SERIES_SCHEMA_VERSION)
        .push("kind", "series")
        .push("window_ns", window_ns);
    let mut line = j.to_line();
    line.push('\n');
    line
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_telemetry_records_nothing() {
        let mut t = Telemetry::default();
        t.record_invocation(ComponentId(1), SimTime(5));
        t.record_fault(ComponentId(1), SimTime(5));
        t.record_mechanism(ComponentId(1), Mechanism::R0, 2, SimTime(5));
        assert!(!t.is_enabled());
        assert!(t.component_windows(ComponentId(1)).is_none());
    }

    #[test]
    fn events_bucket_by_window() {
        let mut t = Telemetry::default();
        t.enable(SimTime(100));
        let c = ComponentId(2);
        t.record_invocation(c, SimTime(0));
        t.record_invocation(c, SimTime(99));
        t.record_invocation(c, SimTime(100));
        t.record_fault(c, SimTime(250));
        t.record_mechanism(c, Mechanism::T0, 3, SimTime(250));
        t.record_recovery_latency(c, SimTime(40), SimTime(250));
        let w = t.component_windows(c).expect("slots exist");
        assert_eq!(w[&0].invocations, 2);
        assert_eq!(w[&1].invocations, 1);
        assert_eq!(w[&2].faults, 1);
        assert_eq!(w[&2].mechanisms[Mechanism::T0.index()], 3);
        assert_eq!(w[&2].recovery_latency.count, 1);
    }

    #[test]
    #[should_panic(expected = "window must be positive")]
    fn zero_window_rejected() {
        Telemetry::default().enable(SimTime::ZERO);
    }

    #[test]
    fn snapshot_merge_is_commutative_and_window_checked() {
        let mut a = SeriesSnapshot {
            window_ns: 100,
            rows: BTreeMap::new(),
        };
        a.rows.entry(("fs".into(), 0)).or_default().invocations = 2;
        let mut b = SeriesSnapshot {
            window_ns: 100,
            rows: BTreeMap::new(),
        };
        b.rows.entry(("fs".into(), 0)).or_default().invocations = 3;
        b.rows.entry(("mm".into(), 4)).or_default().faults = 1;

        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.rows[&("fs".into(), 0)].invocations, 5);

        // Merging an empty default in either direction is the identity.
        let mut with_empty = ab.clone();
        with_empty.merge(&SeriesSnapshot::default());
        assert_eq!(with_empty, ab);
        let mut empty = SeriesSnapshot::default();
        empty.merge(&ab);
        assert_eq!(empty, ab);
    }

    #[test]
    #[should_panic(expected = "different window widths")]
    fn mismatched_windows_refuse_to_merge() {
        let mut a = SeriesSnapshot {
            window_ns: 100,
            rows: BTreeMap::new(),
        };
        let b = SeriesSnapshot {
            window_ns: 200,
            rows: BTreeMap::new(),
        };
        a.merge(&b);
    }

    #[test]
    fn json_lines_shape() {
        let mut s = SeriesSnapshot {
            window_ns: 1_000_000,
            rows: BTreeMap::new(),
        };
        let cell = s.rows.entry(("lock".into(), 3)).or_default();
        cell.invocations = 7;
        cell.mechanisms[Mechanism::U0.index()] = 2;
        cell.recovery_latency.record(SimTime(900));
        let dump = s.to_json_lines("test/ctx");
        let lines: Vec<&str> = dump.lines().collect();
        assert_eq!(lines.len(), 1);
        assert!(lines[0].starts_with(r#"{"v":2,"#));
        assert!(lines[0].contains(r#""component":"lock""#));
        assert!(lines[0].contains(r#""window":3"#));
        assert!(lines[0].contains(r#""t_start_ns":3000000"#));
        assert!(lines[0].contains(r#""U0":2"#));
        assert!(lines[0].contains(r#""p99_ns":900"#));
        let header = series_header(s.window_ns);
        assert!(header.contains(r#""window_ns":1000000"#));
    }
}
