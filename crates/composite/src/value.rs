//! Dynamically typed values crossing component interfaces.
//!
//! COMPOSITE invocations pass register-sized words (plus shared buffers
//! for bulk data). The simulation mirrors that with a small dynamic value
//! type: integers for ids/offsets/flags, strings for paths, and byte
//! buffers standing in for zero-copy `cbuf` references.

use std::fmt;

/// A value passed to or returned from a component invocation.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub enum Value {
    /// Absence of a value (a `void` return).
    #[default]
    Unit,
    /// A register-sized integer.
    Int(i64),
    /// A string (file path etc.).
    Str(String),
    /// Bulk data (stands in for a zero-copy buffer reference).
    Bytes(Vec<u8>),
}

impl Value {
    /// Integer payload.
    ///
    /// # Errors
    ///
    /// [`TypeMismatch`] when the value is not an [`Value::Int`].
    pub fn int(&self) -> Result<i64, TypeMismatch> {
        match self {
            Value::Int(v) => Ok(*v),
            other => Err(TypeMismatch {
                expected: "int",
                found: other.kind(),
            }),
        }
    }

    /// String payload.
    ///
    /// # Errors
    ///
    /// [`TypeMismatch`] when the value is not a [`Value::Str`].
    pub fn str(&self) -> Result<&str, TypeMismatch> {
        match self {
            Value::Str(s) => Ok(s),
            other => Err(TypeMismatch {
                expected: "str",
                found: other.kind(),
            }),
        }
    }

    /// Byte payload.
    ///
    /// # Errors
    ///
    /// [`TypeMismatch`] when the value is not a [`Value::Bytes`].
    pub fn bytes(&self) -> Result<&[u8], TypeMismatch> {
        match self {
            Value::Bytes(b) => Ok(b),
            other => Err(TypeMismatch {
                expected: "bytes",
                found: other.kind(),
            }),
        }
    }

    fn kind(&self) -> &'static str {
        match self {
            Value::Unit => "unit",
            Value::Int(_) => "int",
            Value::Str(_) => "str",
            Value::Bytes(_) => "bytes",
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value::Int(i64::from(v))
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_owned())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

impl From<Vec<u8>> for Value {
    fn from(v: Vec<u8>) -> Self {
        Value::Bytes(v)
    }
}

impl From<()> for Value {
    fn from((): ()) -> Self {
        Value::Unit
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Unit => f.write_str("()"),
            Value::Int(v) => write!(f, "{v}"),
            Value::Str(s) => write!(f, "{s:?}"),
            Value::Bytes(b) => write!(f, "<{} bytes>", b.len()),
        }
    }
}

/// Error for a [`Value`] accessed at the wrong type — interface misuse
/// detected at the boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TypeMismatch {
    /// What the accessor wanted.
    pub expected: &'static str,
    /// What the value actually was.
    pub found: &'static str,
}

impl fmt::Display for TypeMismatch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "expected a {} value, found {}",
            self.expected, self.found
        )
    }
}

impl std::error::Error for TypeMismatch {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors_succeed_on_matching_kind() {
        assert_eq!(Value::Int(3).int().unwrap(), 3);
        assert_eq!(Value::Str("p".into()).str().unwrap(), "p");
        assert_eq!(Value::Bytes(vec![1]).bytes().unwrap(), &[1]);
    }

    #[test]
    fn accessors_fail_on_mismatch() {
        assert!(Value::Unit.int().is_err());
        assert!(Value::Int(1).str().is_err());
        let e = Value::Int(1).bytes().unwrap_err();
        assert_eq!(e.to_string(), "expected a bytes value, found int");
    }

    #[test]
    fn conversions() {
        assert_eq!(Value::from(7i64), Value::Int(7));
        assert_eq!(Value::from(7u32), Value::Int(7));
        assert_eq!(Value::from("x"), Value::Str("x".into()));
        assert_eq!(Value::from(()), Value::Unit);
        assert_eq!(Value::from(vec![9u8]), Value::Bytes(vec![9]));
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::Unit.to_string(), "()");
        assert_eq!(Value::Int(-2).to_string(), "-2");
        assert_eq!(Value::Bytes(vec![0; 4]).to_string(), "<4 bytes>");
    }
}
