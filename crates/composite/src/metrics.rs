//! Recovery-observability metrics: per-component counters for the
//! SuperGlue/C³ recovery mechanisms plus simulated-time recovery
//! latency.
//!
//! The paper names eight mechanisms that together reconstruct a failed
//! service (§III): **R0** recovery-walk replay, **T0** eager thread
//! wakeup, **T1** on-demand (thread-affine, deferred) recovery, **D0**
//! descriptor/subtree teardown, **D1** parent-first recovery ordering,
//! **G0** storage creator lookup/record, **G1** redundant data storage,
//! and **U0** upcall to the creating component. The streaming-pipeline
//! workload appends two channel-recovery mechanisms: **DL0** dead-letter
//! routing of showstopper messages and **CR0** committed-cursor replay
//! after an endpoint reboot. The recovery runtimes
//! (`sg-c3` hand-written stubs and the `superglue` compiled-stub
//! interpreter) increment these counters at the moment the mechanism
//! fires; the harness binaries snapshot them per run and dump JSON-lines
//! for offline analysis.
//!
//! The registry lives in the [`Kernel`](crate::kernel::Kernel) so that
//! stubs (which only see a kernel handle) and services alike can reach
//! it. Snapshots are keyed by component *name* — stable across testbed
//! rebuilds and across the campaign shards whose merged totals must be
//! bit-identical regardless of thread count.

use std::collections::BTreeMap;

use crate::ids::ComponentId;
use crate::json::Json;
use crate::kernel::Kernel;
use crate::time::SimTime;

// The mechanism taxonomy lives in the pure core (the model checker's
// effect stream names mechanisms too); re-exported here under its
// historical path.
pub use composite_core::mechanism::{Mechanism, MECHANISMS};

/// Schema version of the `--metrics` JSON-lines emitter (the `"v"` field
/// on every row). Bump when a field changes meaning.
///
/// * **v2** — the `mechanisms` object gained the `DL0` (dead-letter
///   routing) and `CR0` (committed-cursor replay) channel-recovery
///   counters, appended after `U0`. Existing keys are unchanged, so v1
///   consumers that index by name keep working; strict-shape consumers
///   must accept the two new keys.
/// * **v1** — initial schema: the paper's eight mechanisms (R0–U0).
pub const METRICS_SCHEMA_VERSION: u64 = 2;

/// Simulated-time latency statistic: count/sum/min/max plus a log₂
/// histogram of nanosecond durations (bucket `i` holds durations in
/// `[2^i, 2^(i+1))`; bucket 0 also holds zero).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatencyStat {
    pub count: u64,
    pub total_ns: u64,
    pub min_ns: u64,
    pub max_ns: u64,
    pub log2_buckets: [u64; 64],
}

impl Default for LatencyStat {
    fn default() -> Self {
        Self {
            count: 0,
            total_ns: 0,
            min_ns: 0,
            max_ns: 0,
            log2_buckets: [0; 64],
        }
    }
}

impl LatencyStat {
    /// Record one duration.
    pub fn record(&mut self, d: SimTime) {
        let ns = d.0;
        if self.count == 0 || ns < self.min_ns {
            self.min_ns = ns;
        }
        if ns > self.max_ns {
            self.max_ns = ns;
        }
        self.count += 1;
        // Saturate rather than wrap: a campaign long enough to overflow
        // u64 nanoseconds should degrade the mean, not panic the kernel.
        self.total_ns = self.total_ns.saturating_add(ns);
        self.log2_buckets[63 - (ns | 1).leading_zeros() as usize] += 1;
    }

    /// Merge another statistic into this one.
    pub fn merge(&mut self, other: &LatencyStat) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 || other.min_ns < self.min_ns {
            self.min_ns = other.min_ns;
        }
        if other.max_ns > self.max_ns {
            self.max_ns = other.max_ns;
        }
        self.count += other.count;
        self.total_ns = self.total_ns.saturating_add(other.total_ns);
        for (a, b) in self.log2_buckets.iter_mut().zip(other.log2_buckets.iter()) {
            *a += *b;
        }
    }

    /// Mean duration in nanoseconds (0 when empty).
    #[must_use]
    pub fn mean_ns(&self) -> u64 {
        self.total_ns.checked_div(self.count).unwrap_or(0)
    }

    /// Estimate the `q`-quantile (`0.0..=1.0`) in nanoseconds from the
    /// log₂ histogram: find the bucket holding the nearest-rank order
    /// statistic, interpolate linearly inside it by rank position, and
    /// clamp to the recorded `[min_ns, max_ns]` (so single-bucket
    /// populations report exactly their extremes at q=0/q=1). Returns 0
    /// when empty. Pure integer arithmetic after the rank computation —
    /// deterministic across platforms.
    #[must_use]
    pub fn quantile_ns(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        // 1-based nearest rank; q=0 maps to the first sample.
        #[allow(clippy::cast_precision_loss, clippy::cast_sign_loss)]
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        // The extreme ranks are known exactly — report them rather than
        // an interpolated bucket estimate, so q=0/q=1 always equal the
        // recorded min/max.
        if rank == 1 {
            return self.min_ns;
        }
        if rank == self.count {
            return self.max_ns;
        }
        let mut seen = 0u64;
        for (i, &n) in self.log2_buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            if seen + n >= rank {
                let lo = if i == 0 { 0u64 } else { 1u64 << i };
                let hi = if i >= 63 {
                    u64::MAX
                } else {
                    (1u64 << (i + 1)) - 1
                };
                let pos = rank - seen - 1; // 0-based within the bucket
                let est = lo + (u128::from(hi - lo) * u128::from(pos) / u128::from(n)) as u64;
                return est.clamp(self.min_ns, self.max_ns);
            }
            seen += n;
        }
        self.max_ns
    }

    fn to_json(&self) -> Json {
        let mut j = Json::object();
        j.push("count", self.count)
            .push("total_ns", self.total_ns)
            .push("min_ns", self.min_ns)
            .push("max_ns", self.max_ns)
            .push("mean_ns", self.mean_ns());
        // Histogram as a sparse object {bit_length: count} — compact and
        // deterministic.
        let mut hist = Json::object();
        for (i, &n) in self.log2_buckets.iter().enumerate() {
            if n > 0 {
                hist.push(&i.to_string(), n);
            }
        }
        j.push("log2_hist", hist);
        j
    }
}

/// Live per-component mechanism counters, written on recovery hot paths.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub(crate) struct ComponentCounters {
    mechanisms: [u64; 10],
    recovery_latency: LatencyStat,
}

/// The registry the kernel carries. Recovery runtimes call
/// [`MetricsRegistry::record`] at mechanism chokepoints; harnesses take
/// [`MetricsSnapshot`]s. Counters are stored densely by component id so
/// the mechanism chokepoint on the recovery hot path indexes an array
/// rather than walking a tree.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsRegistry {
    per_component: Vec<ComponentCounters>,
}

impl MetricsRegistry {
    #[inline]
    fn slot(&mut self, c: ComponentId) -> &mut ComponentCounters {
        let i = c.0 as usize;
        if i >= self.per_component.len() {
            self.per_component.resize_with(i + 1, Default::default);
        }
        &mut self.per_component[i]
    }

    /// Count one firing of `m` attributed to component `c` (the failed /
    /// recovering service).
    pub fn record(&mut self, c: ComponentId, m: Mechanism) {
        self.record_many(c, m, 1);
    }

    /// Count `n` firings at once (e.g. T0 waking several threads).
    pub fn record_many(&mut self, c: ComponentId, m: Mechanism, n: u64) {
        self.slot(c).mechanisms[m.index()] += n;
    }

    /// Record the simulated time one recovery episode took on `c`.
    pub fn record_recovery_latency(&mut self, c: ComponentId, d: SimTime) {
        self.slot(c).recovery_latency.record(d);
    }

    /// Raw count for one component/mechanism (0 when never recorded).
    #[must_use]
    pub fn count(&self, c: ComponentId, m: Mechanism) -> u64 {
        self.per_component
            .get(c.0 as usize)
            .map_or(0, |p| p.mechanisms[m.index()])
    }

    pub(crate) fn component(&self, c: ComponentId) -> Option<&ComponentCounters> {
        self.per_component.get(c.0 as usize)
    }
}

/// One component's row in a snapshot: kernel event counters joined with
/// mechanism counters, keyed by component name.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsRow {
    pub invocations: u64,
    pub faulted_invocations: u64,
    pub faults: u64,
    pub reboots: u64,
    pub watchdog_fires: u64,
    pub degraded_rejections: u64,
    pub nested_faults: u64,
    pub cold_restarts: u64,
    pub mechanisms: [u64; 10],
    pub recovery_latency: LatencyStat,
}

impl MetricsRow {
    fn merge(&mut self, other: &MetricsRow) {
        self.invocations += other.invocations;
        self.faulted_invocations += other.faulted_invocations;
        self.faults += other.faults;
        self.reboots += other.reboots;
        self.watchdog_fires += other.watchdog_fires;
        self.degraded_rejections += other.degraded_rejections;
        self.nested_faults += other.nested_faults;
        self.cold_restarts += other.cold_restarts;
        for (a, b) in self.mechanisms.iter_mut().zip(other.mechanisms.iter()) {
            *a += *b;
        }
        self.recovery_latency.merge(&other.recovery_latency);
    }
}

/// A point-in-time, name-resolved copy of every counter — plain data,
/// `Send`, mergeable across campaign shards in shard order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Rows keyed by component name (BTreeMap: deterministic dump order).
    pub rows: BTreeMap<String, MetricsRow>,
}

impl MetricsSnapshot {
    /// Snapshot every counter of `kernel`, resolving component ids to
    /// names. Kernel event counters (invocations, faults, reboots) come
    /// from [`Kernel::stats`]; mechanism counters from the registry.
    #[must_use]
    pub fn from_kernel(kernel: &Kernel) -> Self {
        let mut rows: BTreeMap<String, MetricsRow> = BTreeMap::new();
        let stats = kernel.stats();
        let ids: Vec<ComponentId> = kernel.component_ids().collect();
        for c in ids {
            let Some(name) = kernel.component_name(c).map(str::to_owned) else {
                continue;
            };
            let row = rows.entry(name).or_default();
            row.invocations += stats.invocations.get(&c).copied().unwrap_or(0);
            row.faulted_invocations += stats.faulted_invocations.get(&c).copied().unwrap_or(0);
            row.faults += stats.faults.get(&c).copied().unwrap_or(0);
            row.reboots += stats.reboots.get(&c).copied().unwrap_or(0);
            row.watchdog_fires += stats.watchdog_fires.get(&c).copied().unwrap_or(0);
            row.degraded_rejections += stats.degraded_rejections.get(&c).copied().unwrap_or(0);
            row.nested_faults += stats.nested_faults.get(&c).copied().unwrap_or(0);
            row.cold_restarts += stats.cold_restarts.get(&c).copied().unwrap_or(0);
            if let Some(p) = kernel.metrics().component(c) {
                for (a, b) in row.mechanisms.iter_mut().zip(p.mechanisms.iter()) {
                    *a += *b;
                }
                row.recovery_latency.merge(&p.recovery_latency);
            }
        }
        // Drop all-zero rows (pure clients that never recovered) to keep
        // dumps focused on services.
        rows.retain(|_, r| {
            r.invocations + r.faulted_invocations + r.faults + r.reboots > 0
                || r.watchdog_fires + r.degraded_rejections + r.nested_faults + r.cold_restarts > 0
                || r.mechanisms.iter().any(|&m| m > 0)
                || r.recovery_latency.count > 0
        });
        Self { rows }
    }

    /// Merge another snapshot into this one (order-insensitive sums, so
    /// merging shard snapshots in shard order is bit-identical for any
    /// thread count).
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        for (name, row) in &other.rows {
            self.rows.entry(name.clone()).or_default().merge(row);
        }
    }

    /// Total count of one mechanism across all components.
    #[must_use]
    pub fn mechanism_total(&self, m: Mechanism) -> u64 {
        self.rows.values().map(|r| r.mechanisms[m.index()]).sum()
    }

    /// Count of one mechanism on one component (0 when absent).
    #[must_use]
    pub fn mechanism_count(&self, component: &str, m: Mechanism) -> u64 {
        self.rows
            .get(component)
            .map_or(0, |r| r.mechanisms[m.index()])
    }

    /// Render as JSON-lines: one object per component (sorted by name),
    /// each carrying a `context` label supplied by the harness (e.g.
    /// `"table2/fs/superglue"`), then one `total` line summing every row.
    #[must_use]
    pub fn to_json_lines(&self, context: &str) -> String {
        let mut out = String::new();
        let mut total = MetricsRow::default();
        for (name, row) in &self.rows {
            total.merge(row);
            out.push_str(&row_json(context, name, row).to_line());
            out.push('\n');
        }
        out.push_str(&row_json(context, "*total*", &total).to_line());
        out.push('\n');
        out
    }
}

fn row_json(context: &str, name: &str, row: &MetricsRow) -> Json {
    let mut j = Json::object();
    j.push("v", METRICS_SCHEMA_VERSION)
        .push("context", context)
        .push("component", name)
        .push("invocations", row.invocations)
        .push("faulted_invocations", row.faulted_invocations)
        .push("faults", row.faults)
        .push("reboots", row.reboots)
        .push("watchdog_fires", row.watchdog_fires)
        .push("degraded_rejections", row.degraded_rejections)
        .push("nested_faults", row.nested_faults)
        .push("cold_restarts", row.cold_restarts);
    let mut mech = Json::object();
    for m in MECHANISMS {
        mech.push(m.name(), row.mechanisms[m.index()]);
    }
    j.push("mechanisms", mech);
    j.push("recovery_latency", row.recovery_latency.to_json());
    j
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_count() {
        let mut r = MetricsRegistry::default();
        let c = ComponentId(4);
        r.record(c, Mechanism::R0);
        r.record_many(c, Mechanism::T0, 3);
        assert_eq!(r.count(c, Mechanism::R0), 1);
        assert_eq!(r.count(c, Mechanism::T0), 3);
        assert_eq!(r.count(c, Mechanism::U0), 0);
        assert_eq!(r.count(ComponentId(9), Mechanism::R0), 0);
    }

    #[test]
    fn latency_stat_tracks_extremes_and_histogram() {
        let mut s = LatencyStat::default();
        s.record(SimTime(0));
        s.record(SimTime(1));
        s.record(SimTime(1000));
        assert_eq!(s.count, 3);
        assert_eq!(s.min_ns, 0);
        assert_eq!(s.max_ns, 1000);
        assert_eq!(s.total_ns, 1001);
        assert_eq!(s.log2_buckets[0], 2); // 0 and 1 both land in bucket 0|1
        assert_eq!(s.log2_buckets.iter().sum::<u64>(), 3);
    }

    #[test]
    fn merge_is_commutative_on_totals() {
        let mut a = MetricsSnapshot::default();
        a.rows.entry("fs".into()).or_default().mechanisms[0] = 2;
        let mut b = MetricsSnapshot::default();
        b.rows.entry("fs".into()).or_default().mechanisms[0] = 3;
        b.rows.entry("mm".into()).or_default().faults = 1;

        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.mechanism_total(Mechanism::R0), 5);
    }

    #[test]
    fn json_lines_shape() {
        let mut s = MetricsSnapshot::default();
        let row = s.rows.entry("lock".into()).or_default();
        row.invocations = 7;
        row.mechanisms[Mechanism::U0.index()] = 2;
        let dump = s.to_json_lines("test/ctx");
        let lines: Vec<&str> = dump.lines().collect();
        assert_eq!(lines.len(), 2, "one component + total");
        assert!(lines[0].starts_with(r#"{"v":2,"#), "schema version leads");
        assert!(lines[0].contains(r#""component":"lock""#));
        assert!(lines[0].contains(r#""U0":2"#));
        assert!(lines[1].contains(r#""component":"*total*""#));
        assert!(lines[1].contains(r#""invocations":7"#));
    }

    #[test]
    fn latency_stat_zero_duration_record() {
        let mut s = LatencyStat::default();
        s.record(SimTime(0));
        assert_eq!((s.count, s.total_ns, s.min_ns, s.max_ns), (1, 0, 0, 0));
        assert_eq!(s.log2_buckets[0], 1, "zero lands in bucket 0");
        assert_eq!(s.quantile_ns(0.5), 0);
        assert_eq!(s.quantile_ns(1.0), 0);
    }

    #[test]
    fn latency_stat_bucket_boundaries() {
        // 2^i must land in bucket i, 2^i - 1 in bucket i-1, for every
        // representable edge including the top bucket.
        let mut s = LatencyStat::default();
        for i in 1..64u32 {
            s.record(SimTime(1u64 << i));
            s.record(SimTime((1u64 << i) - 1));
        }
        s.record(SimTime(u64::MAX));
        for i in 1..64usize {
            // 2^i itself plus 2^(i+1) - 1 (from the next edge's -1) land
            // in bucket i; the top bucket holds 2^63 and u64::MAX.
            assert_eq!(s.log2_buckets[i], 2, "bucket {i}");
        }
        assert_eq!(s.log2_buckets[0], 1, "duration 1 only");
        assert_eq!(s.max_ns, u64::MAX);
        assert_eq!(s.quantile_ns(1.0), u64::MAX, "top clamps to max");
    }

    #[test]
    fn latency_stat_merge_with_empty_both_directions() {
        let mut populated = LatencyStat::default();
        populated.record(SimTime(5));
        populated.record(SimTime(700));

        let mut a = populated.clone();
        a.merge(&LatencyStat::default());
        assert_eq!(a, populated, "merging an empty RHS is the identity");

        let mut b = LatencyStat::default();
        b.merge(&populated);
        assert_eq!(b, populated, "merging into an empty LHS copies");
        // In particular min_ns must not be poisoned by the empty side's
        // default 0.
        assert_eq!(b.min_ns, 5);
    }

    #[test]
    fn latency_stat_merge_associative_and_commutative() {
        let mut shards = Vec::new();
        for seed in 0..3u64 {
            let mut s = LatencyStat::default();
            for k in 0..10 {
                s.record(SimTime((seed + 1) * 97 + k * k * 13));
            }
            shards.push(s);
        }
        // (a+b)+c == a+(b+c) == c+b+a: shard merge order is irrelevant,
        // the property the --jobs determinism contract rests on.
        let mut ab_c = shards[0].clone();
        ab_c.merge(&shards[1]);
        ab_c.merge(&shards[2]);
        let mut bc = shards[1].clone();
        bc.merge(&shards[2]);
        let mut a_bc = shards[0].clone();
        a_bc.merge(&bc);
        let mut cba = shards[2].clone();
        cba.merge(&shards[1]);
        cba.merge(&shards[0]);
        assert_eq!(ab_c, a_bc);
        assert_eq!(ab_c, cba);
    }

    #[test]
    fn quantile_estimates_are_monotone_and_clamped() {
        let mut s = LatencyStat::default();
        for ns in [3u64, 9, 17, 33, 120, 1000, 4096, 70_000] {
            s.record(SimTime(ns));
        }
        let qs: Vec<u64> = [0.0, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0]
            .iter()
            .map(|&q| s.quantile_ns(q))
            .collect();
        assert!(qs.windows(2).all(|w| w[0] <= w[1]), "monotone: {qs:?}");
        assert!(qs[0] >= s.min_ns && *qs.last().unwrap() <= s.max_ns);
        assert_eq!(s.quantile_ns(1.0), s.max_ns);
        assert_eq!(LatencyStat::default().quantile_ns(0.99), 0, "empty");
    }
}
