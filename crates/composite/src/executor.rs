//! Priority-driven workload executor.
//!
//! Application threads in the simulation are *workloads*: explicit state
//! machines whose [`Workload::step`] performs (at most) one blocking
//! interface call plus local bookkeeping. The executor repeatedly
//! dispatches the highest-priority runnable thread, exactly like a
//! fixed-priority scheduler, and advances virtual time across sleep gaps.
//!
//! The executor is generic over the context type `Ctx` handed to
//! workloads, so the same machinery drives raw-kernel tests (with
//! `Ctx = Kernel`) and the full fault-tolerant runtimes (with `Ctx` being
//! the C³ or SuperGlue system, which embed a kernel plus stubs and
//! recovery state).

use std::collections::BTreeMap;

use crate::ids::ThreadId;
use crate::kernel::KernelAccess;
use crate::thread::ThreadState;

/// Outcome of one workload step.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StepResult {
    /// Made progress; dispatch again when scheduled.
    Yield,
    /// The step's interface call blocked the thread; re-run the *same*
    /// step when the thread is woken (condition-variable retry
    /// semantics).
    Blocked,
    /// The workload finished.
    Done,
    /// The workload observed an unrecoverable error.
    Crashed(String),
}

/// A client workload: the application logic of one thread.
pub trait Workload<Ctx> {
    /// Execute one step on the given thread. Implementations perform at
    /// most one potentially blocking interface call per step and must be
    /// safe to re-run when that call returns `WouldBlock`.
    fn step(&mut self, ctx: &mut Ctx, thread: ThreadId) -> StepResult;
}

impl<Ctx, F> Workload<Ctx> for F
where
    F: FnMut(&mut Ctx, ThreadId) -> StepResult,
{
    fn step(&mut self, ctx: &mut Ctx, thread: ThreadId) -> StepResult {
        self(ctx, thread)
    }
}

/// Why [`Executor::run`] stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunExit {
    /// Every registered workload completed (or crashed).
    AllDone,
    /// No thread is runnable or sleeping — the system would wait forever.
    Deadlock,
    /// The step budget was exhausted.
    StepLimit,
}

/// The executor: owns workloads keyed by thread id and dispatches them
/// against the kernel's thread table.
pub struct Executor<Ctx> {
    workloads: BTreeMap<ThreadId, Box<dyn Workload<Ctx>>>,
    steps_executed: u64,
}

impl<Ctx> std::fmt::Debug for Executor<Ctx> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Executor")
            .field("workloads", &self.workloads.keys().collect::<Vec<_>>())
            .field("steps_executed", &self.steps_executed)
            .finish()
    }
}

impl<Ctx: KernelAccess> Executor<Ctx> {
    /// An executor with no workloads.
    #[must_use]
    pub fn new() -> Self {
        Self {
            workloads: BTreeMap::new(),
            steps_executed: 0,
        }
    }

    /// Attach a workload to a thread. Replaces any previous workload for
    /// that thread.
    pub fn attach(&mut self, thread: ThreadId, workload: Box<dyn Workload<Ctx>>) {
        self.workloads.insert(thread, workload);
    }

    /// Attach a closure workload.
    pub fn attach_fn<F>(&mut self, thread: ThreadId, f: F)
    where
        F: FnMut(&mut Ctx, ThreadId) -> StepResult + 'static,
    {
        self.attach(thread, Box::new(f));
    }

    /// Number of steps dispatched so far.
    #[must_use]
    pub fn steps_executed(&self) -> u64 {
        self.steps_executed
    }

    /// Whether every attached workload's thread reached a terminal state.
    #[must_use]
    pub fn all_done(&self, ctx: &Ctx) -> bool {
        self.workloads.keys().all(|&t| {
            ctx.kernel()
                .thread(t)
                .map(|th| th.state.is_terminal())
                .unwrap_or(true)
        })
    }

    /// Dispatch at most `max_steps` workload steps.
    ///
    /// Threads are picked by (priority, dispatch count, id). When no
    /// thread is runnable but some sleep, virtual time advances to the
    /// earliest deadline. Returns why the run stopped.
    pub fn run(&mut self, ctx: &mut Ctx, max_steps: u64) -> RunExit {
        for _ in 0..max_steps {
            if self.all_done(ctx) {
                return RunExit::AllDone;
            }
            let Some(tid) = self.pick(ctx) else {
                // Nothing runnable: try advancing time to the next sleeper.
                let Some(deadline) = ctx.kernel().earliest_wakeup() else {
                    return RunExit::Deadlock;
                };
                ctx.kernel_mut().advance_to(deadline);
                continue;
            };
            self.dispatch(ctx, tid);
        }
        if self.all_done(ctx) {
            RunExit::AllDone
        } else {
            RunExit::StepLimit
        }
    }

    /// Pick the next thread that is runnable *and* has a workload.
    fn pick(&self, ctx: &Ctx) -> Option<ThreadId> {
        let k = ctx.kernel();
        self.workloads
            .keys()
            .filter_map(|&t| k.thread(t).ok())
            .filter(|th| th.state.is_runnable())
            .min_by_key(|th| (th.priority, th.dispatches, th.id))
            .map(|th| th.id)
    }

    /// Run one step of a specific thread (used by tests and by the
    /// recovery runtime when it must execute a thread eagerly).
    pub fn dispatch(&mut self, ctx: &mut Ctx, tid: ThreadId) {
        let Some(mut w) = self.workloads.remove(&tid) else {
            return;
        };
        if let Ok(th) = ctx.kernel_mut().thread_mut(tid) {
            th.dispatches += 1;
        }
        let result = w.step(ctx, tid);
        self.steps_executed += 1;
        match result {
            StepResult::Yield | StepResult::Blocked => {}
            StepResult::Done => {
                if let Ok(th) = ctx.kernel_mut().thread_mut(tid) {
                    th.state = ThreadState::Completed;
                }
            }
            StepResult::Crashed(_) => {
                if let Ok(th) = ctx.kernel_mut().thread_mut(tid) {
                    th.state = ThreadState::Crashed;
                }
            }
        }
        self.workloads.insert(tid, w);
    }
}

impl<Ctx: KernelAccess> Default for Executor<Ctx> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{ComponentId, Priority};
    use crate::kernel::Kernel;
    use crate::time::{CostModel, SimTime};

    fn kernel_with_app() -> (Kernel, ComponentId) {
        let mut k = Kernel::with_costs(CostModel::free());
        let app = k.add_client_component("app");
        (k, app)
    }

    #[test]
    fn runs_workloads_to_completion() {
        let (mut k, app) = kernel_with_app();
        let t = k.create_thread(app, Priority(5));
        let mut ex: Executor<Kernel> = Executor::new();
        let mut remaining = 3;
        ex.attach_fn(t, move |_, _| {
            remaining -= 1;
            if remaining == 0 {
                StepResult::Done
            } else {
                StepResult::Yield
            }
        });
        assert_eq!(ex.run(&mut k, 100), RunExit::AllDone);
        assert_eq!(ex.steps_executed(), 3);
        assert!(k.thread(t).unwrap().state.is_terminal());
    }

    #[test]
    fn priority_order_is_respected() {
        let (mut k, app) = kernel_with_app();
        let hi = k.create_thread(app, Priority(1));
        let lo = k.create_thread(app, Priority(9));
        let order = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
        let mut ex: Executor<Kernel> = Executor::new();
        for &t in &[hi, lo] {
            let order = order.clone();
            ex.attach_fn(t, move |_, tid| {
                order.borrow_mut().push(tid);
                StepResult::Done
            });
        }
        ex.run(&mut k, 10);
        assert_eq!(*order.borrow(), vec![hi, lo]);
    }

    #[test]
    fn blocked_threads_are_skipped_until_woken() {
        let (mut k, app) = kernel_with_app();
        let t = k.create_thread(app, Priority(5));
        let waker = k.create_thread(app, Priority(6));
        let mut ex: Executor<Kernel> = Executor::new();
        // t blocks itself on first dispatch, completes on second.
        let mut first = true;
        ex.attach_fn(t, move |k: &mut Kernel, tid| {
            if first {
                first = false;
                k.block_thread(tid, ComponentId(1));
                StepResult::Blocked
            } else {
                StepResult::Done
            }
        });
        ex.attach_fn(waker, move |k: &mut Kernel, _| {
            // Wake t (it blocked at higher priority, so we only run after
            // it blocked).
            let _ = k.wake_thread(ThreadId(1));
            StepResult::Done
        });
        assert_eq!(ex.run(&mut k, 100), RunExit::AllDone);
    }

    #[test]
    fn deadlock_detected() {
        let (mut k, app) = kernel_with_app();
        let t = k.create_thread(app, Priority(5));
        let mut ex: Executor<Kernel> = Executor::new();
        ex.attach_fn(t, |k: &mut Kernel, tid| {
            k.block_thread(tid, ComponentId(0));
            StepResult::Blocked
        });
        assert_eq!(ex.run(&mut k, 100), RunExit::Deadlock);
    }

    #[test]
    fn sleepers_advance_virtual_time() {
        let (mut k, app) = kernel_with_app();
        let t = k.create_thread(app, Priority(5));
        let mut ex: Executor<Kernel> = Executor::new();
        let mut slept = false;
        ex.attach_fn(t, move |k: &mut Kernel, tid| {
            if !slept {
                slept = true;
                let deadline = k.now() + SimTime(5_000);
                k.sleep_thread(tid, deadline);
                StepResult::Blocked
            } else {
                StepResult::Done
            }
        });
        assert_eq!(ex.run(&mut k, 100), RunExit::AllDone);
        assert_eq!(k.now(), SimTime(5_000));
    }

    #[test]
    fn step_limit_reported() {
        let (mut k, app) = kernel_with_app();
        let t = k.create_thread(app, Priority(5));
        let mut ex: Executor<Kernel> = Executor::new();
        ex.attach_fn(t, |_, _| StepResult::Yield);
        assert_eq!(ex.run(&mut k, 10), RunExit::StepLimit);
        assert_eq!(ex.steps_executed(), 10);
    }

    #[test]
    fn crashed_workload_marks_thread_crashed() {
        let (mut k, app) = kernel_with_app();
        let t = k.create_thread(app, Priority(5));
        let mut ex: Executor<Kernel> = Executor::new();
        ex.attach_fn(t, |_, _| StepResult::Crashed("boom".into()));
        assert_eq!(ex.run(&mut k, 10), RunExit::AllDone);
        assert_eq!(k.thread(t).unwrap().state, ThreadState::Crashed);
    }

    #[test]
    fn round_robin_between_equal_priorities() {
        let (mut k, app) = kernel_with_app();
        let a = k.create_thread(app, Priority(5));
        let b = k.create_thread(app, Priority(5));
        let order = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
        let mut ex: Executor<Kernel> = Executor::new();
        for &t in &[a, b] {
            let order = order.clone();
            let mut n = 0;
            ex.attach_fn(t, move |_, tid| {
                order.borrow_mut().push(tid);
                n += 1;
                if n == 2 {
                    StepResult::Done
                } else {
                    StepResult::Yield
                }
            });
        }
        ex.run(&mut k, 100);
        assert_eq!(*order.borrow(), vec![a, b, a, b]);
    }
}
