//! Flat, deterministic stores for the recovery runtime's hot path.
//!
//! The descriptor-tracking tables and the per-edge stub map used to be
//! `BTreeMap`s, paying a pointer-chasing tree walk on every invocation.
//! Descriptor ids and component ids are small dense integers in
//! practice, so both lookups collapse to array indexing:
//!
//! * [`IdSlab`] — a slab keyed by `i64` descriptor id: ids in
//!   `[0, 65536)` index a flat vector directly; rare outliers (negative
//!   or huge ids) spill to a `BTreeMap`. Ordered iteration (ascending by
//!   id, exactly the old `BTreeMap` order — behavior-visible in eager
//!   recovery sweeps) stitches the spill ranges around the dense region.
//! * [`EdgeMap`] — a dense `(client, server) → stub` table indexed by
//!   the two component ids, with O(1) checkout/checkin per call instead
//!   of a tree `remove` + `insert` pair.
//!
//! Both are deterministic: layout and iteration order depend only on the
//! keys, never on insertion order or addresses.

use std::collections::BTreeMap;

use crate::ids::ComponentId;

/// Ids below this bound live in the dense vector; others spill.
const DENSE_LIMIT: i64 = 1 << 16;

/// A slab keyed by `i64` id with O(1) access for small non-negative ids
/// and `BTreeMap` spill for the rest. Iteration is ascending by id.
#[derive(Debug, Clone, Default)]
pub struct IdSlab<T> {
    dense: Vec<Option<T>>,
    spill: BTreeMap<i64, T>,
    len: usize,
}

impl<T> IdSlab<T> {
    /// An empty slab.
    #[must_use]
    pub fn new() -> Self {
        Self {
            dense: Vec::new(),
            spill: BTreeMap::new(),
            len: 0,
        }
    }

    #[inline]
    fn dense_index(id: i64) -> Option<usize> {
        if (0..DENSE_LIMIT).contains(&id) {
            Some(id as usize)
        } else {
            None
        }
    }

    /// Number of stored entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no entries are stored.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Insert (or replace) the entry for `id`, returning the old value.
    pub fn insert(&mut self, id: i64, value: T) -> Option<T> {
        let old = match Self::dense_index(id) {
            Some(i) => {
                if i >= self.dense.len() {
                    self.dense.resize_with(i + 1, || None);
                }
                self.dense[i].replace(value)
            }
            None => self.spill.insert(id, value),
        };
        if old.is_none() {
            self.len += 1;
        }
        old
    }

    /// The entry for `id`, if present.
    #[must_use]
    #[inline]
    pub fn get(&self, id: i64) -> Option<&T> {
        match Self::dense_index(id) {
            Some(i) => self.dense.get(i).and_then(Option::as_ref),
            None => self.spill.get(&id),
        }
    }

    /// Mutable access to the entry for `id`.
    #[must_use]
    #[inline]
    pub fn get_mut(&mut self, id: i64) -> Option<&mut T> {
        match Self::dense_index(id) {
            Some(i) => self.dense.get_mut(i).and_then(Option::as_mut),
            None => self.spill.get_mut(&id),
        }
    }

    /// Whether an entry for `id` exists.
    #[must_use]
    #[inline]
    pub fn contains_key(&self, id: i64) -> bool {
        self.get(id).is_some()
    }

    /// Remove and return the entry for `id`.
    pub fn remove(&mut self, id: i64) -> Option<T> {
        let old = match Self::dense_index(id) {
            Some(i) => self.dense.get_mut(i).and_then(Option::take),
            None => self.spill.remove(&id),
        };
        if old.is_some() {
            self.len -= 1;
        }
        old
    }

    /// Iterate entries ascending by id (the `BTreeMap` order the eager
    /// recovery sweep relies on: negative spill, dense, large spill).
    pub fn iter(&self) -> impl Iterator<Item = (i64, &T)> {
        self.spill
            .range(..0)
            .map(|(&k, v)| (k, v))
            .chain(
                self.dense
                    .iter()
                    .enumerate()
                    .filter_map(|(i, s)| s.as_ref().map(|v| (i as i64, v))),
            )
            .chain(self.spill.range(DENSE_LIMIT..).map(|(&k, v)| (k, v)))
    }

    /// Iterate values in ascending-id order.
    pub fn values(&self) -> impl Iterator<Item = &T> {
        self.iter().map(|(_, v)| v)
    }

    /// Iterate values mutably (ascending-id order).
    pub fn values_mut(&mut self) -> impl Iterator<Item = &mut T> {
        let (neg, big): (Vec<&mut T>, Vec<&mut T>) = {
            let mut neg = Vec::new();
            let mut big = Vec::new();
            for (&k, v) in self.spill.iter_mut() {
                if k < 0 {
                    neg.push(v);
                } else {
                    big.push(v);
                }
            }
            (neg, big)
        };
        neg.into_iter()
            .chain(self.dense.iter_mut().filter_map(Option::as_mut))
            .chain(big)
    }
}

/// Dense `(client, server) → T` edge table indexed by component ids.
/// Rows grow on demand; the component universe is small (a dozen or so),
/// so the table stays tiny while every hot operation is two indexes.
#[derive(Debug, Default)]
pub struct EdgeMap<T> {
    rows: Vec<Vec<Option<T>>>,
    len: usize,
}

impl<T> EdgeMap<T> {
    /// An empty edge map.
    #[must_use]
    pub fn new() -> Self {
        Self {
            rows: Vec::new(),
            len: 0,
        }
    }

    /// Number of stored edges.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no edges are stored.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Insert (or replace) the entry on edge `(client, server)`.
    pub fn insert(&mut self, client: ComponentId, server: ComponentId, value: T) -> Option<T> {
        let (c, s) = (client.0 as usize, server.0 as usize);
        if c >= self.rows.len() {
            self.rows.resize_with(c + 1, Vec::new);
        }
        let row = &mut self.rows[c];
        if s >= row.len() {
            row.resize_with(s + 1, || None);
        }
        let old = row[s].replace(value);
        if old.is_none() {
            self.len += 1;
        }
        old
    }

    /// Check the edge's entry out (O(1)); pair with [`EdgeMap::insert`]
    /// to check it back in.
    #[inline]
    pub fn take(&mut self, client: ComponentId, server: ComponentId) -> Option<T> {
        let old = self
            .rows
            .get_mut(client.0 as usize)?
            .get_mut(server.0 as usize)?
            .take();
        if old.is_some() {
            self.len -= 1;
        }
        old
    }

    /// The entry on edge `(client, server)`, if present.
    #[must_use]
    #[inline]
    pub fn get(&self, client: ComponentId, server: ComponentId) -> Option<&T> {
        self.rows
            .get(client.0 as usize)?
            .get(server.0 as usize)?
            .as_ref()
    }

    /// Apply `f` to every stored entry whose server is `server`, in
    /// ascending client order (the old `BTreeMap` iteration order).
    pub fn for_server_mut(&mut self, server: ComponentId, mut f: impl FnMut(&mut T)) {
        let s = server.0 as usize;
        for row in &mut self.rows {
            if let Some(Some(v)) = row.get_mut(s) {
                f(v);
            }
        }
    }

    /// Clients with a stored edge to `server`, ascending (the order the
    /// eager recovery sweep visits edges in).
    #[must_use]
    pub fn clients_of(&self, server: ComponentId) -> Vec<ComponentId> {
        let s = server.0 as usize;
        self.rows
            .iter()
            .enumerate()
            .filter(|(_, row)| matches!(row.get(s), Some(Some(_))))
            .map(|(c, _)| ComponentId(c as u32))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slab_roundtrip_and_len() {
        let mut s = IdSlab::new();
        assert!(s.is_empty());
        assert_eq!(s.insert(3, "a"), None);
        assert_eq!(s.insert(3, "b"), Some("a"));
        assert_eq!(s.len(), 1);
        assert_eq!(s.get(3), Some(&"b"));
        assert!(s.contains_key(3));
        *s.get_mut(3).unwrap() = "c";
        assert_eq!(s.remove(3), Some("c"));
        assert_eq!(s.remove(3), None);
        assert!(s.is_empty());
    }

    #[test]
    fn slab_spills_outliers_and_iterates_ascending() {
        let mut s = IdSlab::new();
        s.insert(DENSE_LIMIT + 7, "big");
        s.insert(5, "five");
        s.insert(-2, "neg");
        s.insert(1, "one");
        assert_eq!(s.len(), 4);
        assert_eq!(s.get(DENSE_LIMIT + 7), Some(&"big"));
        assert_eq!(s.get(-2), Some(&"neg"));
        let keys: Vec<i64> = s.iter().map(|(k, _)| k).collect();
        assert_eq!(keys, vec![-2, 1, 5, DENSE_LIMIT + 7]);
        let vals: Vec<&str> = s.values().copied().collect();
        assert_eq!(vals, vec!["neg", "one", "five", "big"]);
        for v in s.values_mut() {
            *v = "x";
        }
        assert!(s.values().all(|&v| v == "x"));
    }

    #[test]
    fn slab_matches_btreemap_order() {
        // The slab's iteration order is the contract the recovery sweep
        // depends on: identical to a BTreeMap over the same keys.
        let ids = [9, 0, DENSE_LIMIT + 1, -5, 40, 3];
        let mut slab = IdSlab::new();
        let mut tree = BTreeMap::new();
        for id in ids {
            slab.insert(id, id * 10);
            tree.insert(id, id * 10);
        }
        let a: Vec<(i64, i64)> = slab.iter().map(|(k, v)| (k, *v)).collect();
        let b: Vec<(i64, i64)> = tree.iter().map(|(&k, &v)| (k, v)).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn edge_map_take_and_reinsert() {
        let (a, b, c) = (ComponentId(1), ComponentId(2), ComponentId(3));
        let mut m = EdgeMap::new();
        assert!(m.is_empty());
        m.insert(a, c, "ac");
        m.insert(b, c, "bc");
        assert_eq!(m.len(), 2);
        assert_eq!(m.get(a, c), Some(&"ac"));
        let taken = m.take(a, c).unwrap();
        assert_eq!(m.get(a, c), None);
        assert_eq!(m.len(), 1);
        m.insert(a, c, taken);
        assert_eq!(m.len(), 2);
        assert_eq!(m.take(c, a), None, "missing edge takes nothing");
    }

    #[test]
    fn edge_map_server_queries_ascend_by_client() {
        let mut m = EdgeMap::new();
        let srv = ComponentId(9);
        m.insert(ComponentId(4), srv, 4);
        m.insert(ComponentId(1), srv, 1);
        m.insert(ComponentId(1), ComponentId(2), 0);
        assert_eq!(m.clients_of(srv), vec![ComponentId(1), ComponentId(4)]);
        let mut seen = Vec::new();
        m.for_server_mut(srv, |v| seen.push(*v));
        assert_eq!(seen, vec![1, 4]);
    }
}
