//! Name interning and build-time dispatch tables.
//!
//! The hot invocation path must never compare or clone strings: names
//! (component names, interface names, interface-function names) are
//! interned to dense `u32` ids exactly once, when a component or stub is
//! *built*, and every later lookup is an array index or a single
//! open-addressing probe sequence over precomputed hashes.
//!
//! Two building blocks:
//!
//! * [`Interner`] — an append-only `name → NameId` table. The kernel
//!   interns component names with it (the flight recorder's shard name
//!   table resolves through the same ids), and the SuperGlue compiler
//!   interns metadata names at lowering time.
//! * [`DispatchTable`] — an immutable open-addressing hash map from
//!   `&str` to a dense `u32` id, built once from a name list. The
//!   compiled stub spec uses one to dispatch interface-function names to
//!   `FnId`s in O(1) with no per-call allocation, replacing the linear
//!   scan + `==` string walk the interpreter used to pay per invocation.
//!
//! Both are fully deterministic: layout depends only on the insertion
//! sequence, never on addresses or randomized hashing.

use std::fmt;

/// Dense id of an interned name.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NameId(pub u32);

impl NameId {
    /// The id as a table index.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Append-only string interner: `intern` is build-time work (component
/// registration, stub compilation); `resolve` is a plain array index.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Interner {
    names: Vec<String>,
}

impl Interner {
    /// An empty interner.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern a name, returning its dense id. Interning the same name
    /// twice returns the same id.
    pub fn intern(&mut self, name: &str) -> NameId {
        if let Some(i) = self.names.iter().position(|n| n == name) {
            return NameId(i as u32);
        }
        self.names.push(name.to_owned());
        NameId((self.names.len() - 1) as u32)
    }

    /// Resolve an id back to its name.
    #[must_use]
    pub fn resolve(&self, id: NameId) -> &str {
        &self.names[id.index()]
    }

    /// All interned names, in id order.
    #[must_use]
    pub fn strings(&self) -> &[String] {
        &self.names
    }

    /// Number of distinct interned names.
    #[must_use]
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True when nothing has been interned.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }
}

/// FNV-1a, the classic allocation-free string hash. Deterministic across
/// processes (unlike `std`'s randomized SipHash), which the bit-identical
/// parallel-evaluation guarantees require.
#[inline]
fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in s.as_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Immutable open-addressing map from name to a dense `u32` id, built
/// once at stub-build time. Lookup is one hash plus a short linear probe
/// — no allocation, no tree walk, no full-string scan over all entries.
#[derive(Clone, Default, PartialEq, Eq)]
pub struct DispatchTable {
    /// Probe slots holding `entry_index + 1` (0 = empty).
    slots: Box<[u32]>,
    /// `(name, id)` entries in insertion order.
    entries: Vec<(String, u32)>,
    mask: u64,
}

impl DispatchTable {
    /// Build a table mapping each name to its position in the iterator.
    /// Later duplicates are ignored (first id wins), matching the
    /// semantics of a linear first-match scan.
    pub fn build<'a>(names: impl IntoIterator<Item = &'a str>) -> Self {
        let entries: Vec<(String, u32)> = names
            .into_iter()
            .enumerate()
            .map(|(i, n)| (n.to_owned(), i as u32))
            .collect();
        let cap = (entries.len().max(1) * 2).next_power_of_two().max(8);
        let mask = (cap - 1) as u64;
        let mut slots = vec![0u32; cap].into_boxed_slice();
        for (i, (name, _)) in entries.iter().enumerate() {
            let mut pos = fnv1a(name) & mask;
            loop {
                let slot = &mut slots[pos as usize];
                if *slot == 0 {
                    *slot = (i + 1) as u32;
                    break;
                }
                if entries[(*slot - 1) as usize].0 == *name {
                    // Duplicate name: keep the first (lowest) id.
                    break;
                }
                pos = (pos + 1) & mask;
            }
        }
        Self {
            slots,
            entries,
            mask,
        }
    }

    /// The id for `name`, if present. O(1): one hash + short probe.
    #[must_use]
    #[inline]
    pub fn get(&self, name: &str) -> Option<u32> {
        let mut pos = fnv1a(name) & self.mask;
        loop {
            let slot = self.slots[pos as usize];
            if slot == 0 {
                return None;
            }
            let (key, id) = &self.entries[(slot - 1) as usize];
            if key == name {
                return Some(*id);
            }
            pos = (pos + 1) & self.mask;
        }
    }

    /// Number of distinct entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the table is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

impl fmt::Debug for DispatchTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_map()
            .entries(self.entries.iter().map(|(n, i)| (n.as_str(), i)))
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interner_dedups_and_resolves() {
        let mut i = Interner::new();
        let a = i.intern("sched");
        let b = i.intern("mm");
        assert_eq!(i.intern("sched"), a);
        assert_ne!(a, b);
        assert_eq!(i.resolve(a), "sched");
        assert_eq!(i.resolve(b), "mm");
        assert_eq!(i.len(), 2);
        assert_eq!(i.strings(), &["sched".to_owned(), "mm".to_owned()]);
    }

    #[test]
    fn dispatch_maps_names_to_positions() {
        let t = DispatchTable::build(["lock_alloc", "lock_take", "lock_release", "lock_free"]);
        assert_eq!(t.get("lock_alloc"), Some(0));
        assert_eq!(t.get("lock_take"), Some(1));
        assert_eq!(t.get("lock_free"), Some(3));
        assert_eq!(t.get("lock_steal"), None);
        assert_eq!(t.len(), 4);
        assert!(!t.is_empty());
    }

    #[test]
    fn dispatch_duplicate_keeps_first_id() {
        let t = DispatchTable::build(["a", "b", "a"]);
        assert_eq!(t.get("a"), Some(0));
        assert_eq!(t.get("b"), Some(1));
    }

    #[test]
    fn dispatch_handles_collision_heavy_sets() {
        // Many keys in a small table force probe chains; every key must
        // still resolve to its own id.
        let names: Vec<String> = (0..200).map(|i| format!("fn_{i}")).collect();
        let t = DispatchTable::build(names.iter().map(String::as_str));
        for (i, n) in names.iter().enumerate() {
            assert_eq!(t.get(n), Some(i as u32), "{n}");
        }
        assert_eq!(t.get("fn_200"), None);
    }

    #[test]
    fn empty_dispatch_rejects_everything() {
        let t = DispatchTable::build([]);
        assert!(t.is_empty());
        assert_eq!(t.get("x"), None);
    }
}
