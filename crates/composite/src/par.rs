//! Deterministic parallel execution for the evaluation harnesses.
//!
//! The sharded campaign runner needs "run these N independent tasks on
//! up to J worker threads and give me the results in task order". The
//! task bodies are already deterministic (each owns its seeded RNG
//! stream), so determinism of the whole run reduces to merging results
//! by task index rather than by completion order — which is what
//! [`parallel_map_indexed`] guarantees. Scheduling (which worker runs
//! which task) is free to vary; observable output never does.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Number of worker threads to use when the user asked for "default
/// parallelism": the machine's available parallelism, or 1 if unknown.
#[must_use]
pub fn default_jobs() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// Run `f(0..n)` on up to `jobs` worker threads and return the results
/// in index order.
///
/// Work is distributed by an atomic task counter (dynamic load
/// balancing: long tasks do not stall a fixed stripe), while the output
/// vector is written at the slot of each task's index, so the returned
/// `Vec` is identical for every `jobs >= 1` as long as `f` itself
/// depends only on the index.
///
/// Panics in `f` are propagated to the caller after all workers stop.
pub fn parallel_map_indexed<T, F>(n: usize, jobs: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let jobs = jobs.max(1).min(n.max(1));
    if jobs <= 1 {
        return (0..n).map(f).collect();
    }
    let mut slots: Vec<Option<T>> = Vec::with_capacity(n);
    slots.resize_with(n, || None);
    let next = AtomicUsize::new(0);
    let slots_ptr = SlotsPtr(slots.as_mut_ptr());
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..jobs)
            .map(|_| {
                let next = &next;
                let f = &f;
                let slots_ptr = &slots_ptr;
                scope.spawn(move || loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let value = f(i);
                    // SAFETY: each index is claimed by exactly one
                    // worker (fetch_add), so slot `i` has a single
                    // writer and no concurrent readers until join.
                    unsafe { slots_ptr.0.add(i).write(Some(value)) };
                })
            })
            .collect();
        for h in handles {
            if let Err(panic) = h.join() {
                std::panic::resume_unwind(panic);
            }
        }
    });
    slots
        .into_iter()
        .map(|s| s.expect("all task slots filled"))
        .collect()
}

/// Raw-pointer wrapper so worker threads can share the output buffer.
/// Safe by the single-writer-per-slot argument above.
struct SlotsPtr<T>(*mut Option<T>);
unsafe impl<T: Send> Sync for SlotsPtr<T> {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_in_index_order_for_any_job_count() {
        let expect: Vec<usize> = (0..97).map(|i| i * i).collect();
        for jobs in [1, 2, 3, 8, 64] {
            let got = parallel_map_indexed(97, jobs, |i| i * i);
            assert_eq!(got, expect, "jobs={jobs}");
        }
    }

    #[test]
    fn zero_tasks_is_fine() {
        let got: Vec<u32> = parallel_map_indexed(0, 8, |_| unreachable!());
        assert!(got.is_empty());
    }

    #[test]
    fn uneven_task_durations_do_not_reorder() {
        let got = parallel_map_indexed(32, 4, |i| {
            if i % 7 == 0 {
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            i
        });
        assert_eq!(got, (0..32).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "task 3 exploded")]
    fn worker_panics_propagate() {
        let _ = parallel_map_indexed(8, 4, |i| {
            if i == 3 {
                panic!("task 3 exploded");
            }
            i
        });
    }
}
