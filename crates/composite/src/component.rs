//! The [`Service`] trait simulated components implement, and the
//! [`ServiceCtx`] kernel facilities available to them during a call.

use std::fmt;

use crate::error::{CallError, KernelError, ServiceError};
use crate::ids::{ComponentId, Epoch, FrameId, Priority, ThreadId};
use crate::kernel::Kernel;
use crate::pages::VAddr;
use crate::time::SimTime;
use crate::value::Value;

/// A simulated user-level component implementing a system service.
///
/// The implementor's fields are the component's private memory image:
/// a transient fault conceptually corrupts them, and the booter's
/// micro-reboot ([`Kernel::micro_reboot`]) calls [`Service::reset`] to
/// restore the pristine image — after which the recovery runtime rebuilds
/// the lost state through the interface.
pub trait Service: fmt::Debug {
    /// The interface name this component exports (e.g. `"lock"`).
    fn interface(&self) -> &'static str;

    /// Handle one interface invocation.
    ///
    /// # Errors
    ///
    /// * [`ServiceError::WouldBlock`] after the service called
    ///   [`ServiceCtx::block_current`] (or a sleep variant) — the kernel
    ///   suspends the invoking thread and the client retries on wakeup;
    /// * [`ServiceError::NotFound`] / [`ServiceError::InvalidArg`] for
    ///   descriptor lookups that fail — after a micro-reboot this is the
    ///   signal the server-side stub turns into **G0** recovery;
    /// * [`ServiceError::NoSuchFunction`] for unknown function names.
    fn call(
        &mut self,
        ctx: &mut ServiceCtx<'_>,
        fname: &str,
        args: &[Value],
    ) -> Result<Value, ServiceError>;

    /// Restore the pristine boot image (the booter's `memcpy`). All
    /// descriptor/resource bookkeeping must be dropped; kernel-held state
    /// (page tables, thread states) survives outside the component.
    fn reset(&mut self);

    /// Post-reboot re-initialization upcall (step 4 of §III-D). The
    /// default does nothing; services that must reconcile with kernel
    /// state (e.g. the scheduler reflecting on blocked threads) override
    /// it.
    fn post_reboot(&mut self, ctx: &mut ServiceCtx<'_>) {
        let _ = ctx;
    }
}

/// Kernel facilities exposed to a service during
/// [`Service::call`] — blocking/wakeup, nested invocations, page-table
/// manipulation, and the reflection APIs recovery depends on.
#[derive(Debug)]
pub struct ServiceCtx<'k> {
    pub(crate) kernel: &'k mut Kernel,
    /// The component currently executing.
    pub this: ComponentId,
    /// The component that invoked it.
    pub client: ComponentId,
    /// The invoking thread.
    pub thread: ThreadId,
    /// Progress ticks reported during this call (watchdog accounting).
    pub(crate) ticks: u64,
}

impl ServiceCtx<'_> {
    /// Current simulated time.
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.kernel.now()
    }

    /// Block the invoking thread inside this component and return the
    /// error the service should propagate. The client's invocation
    /// returns [`CallError::WouldBlock`] and is retried after wakeup.
    #[must_use]
    pub fn block_current(&mut self) -> ServiceError {
        self.kernel.block_thread(self.thread, self.this);
        ServiceError::WouldBlock
    }

    /// Put the invoking thread to sleep until `deadline` and return the
    /// error the service should propagate.
    #[must_use]
    pub fn sleep_current_until(&mut self, deadline: SimTime) -> ServiceError {
        self.kernel.sleep_thread(self.thread, deadline);
        ServiceError::WouldBlock
    }

    /// Wake a thread previously blocked or sleeping.
    ///
    /// # Errors
    ///
    /// [`KernelError::NoSuchThread`] for unknown ids. Waking a runnable
    /// or terminal thread is a no-op recorded as a pending wakeup is NOT
    /// kept — services needing wakeup-before-block semantics keep their
    /// own pending flags.
    pub fn wake(&mut self, thread: ThreadId) -> Result<(), KernelError> {
        self.kernel.wake_thread(thread)
    }

    /// Count one firing of a recovery mechanism attributed to this
    /// component (e.g. RamFS noting a **G1** data re-fetch). Routed
    /// through the kernel's [`Kernel::record_mechanism`] choke point so
    /// the counter and the trace event stay in lockstep.
    pub fn note_mechanism(&mut self, m: crate::metrics::Mechanism) {
        self.kernel
            .record_mechanism(self.this, m, 1, self.thread, SimTime::ZERO);
    }

    /// Count one dead-letter escalation (**DL0**) attributed to this
    /// component and emit the matching
    /// [`TraceEventKind`](crate::trace::TraceEventKind::DeadLetter)
    /// flight-recorder event: message `msg` on channel descriptor `desc`
    /// faulted its consumer `deliveries` times and is routed to the
    /// dead-letter queue instead of being re-delivered.
    pub fn note_dead_letter(&mut self, desc: i64, msg: i64, deliveries: u64) {
        self.kernel.record_mechanism(
            self.this,
            crate::metrics::Mechanism::Dl0,
            1,
            self.thread,
            SimTime::ZERO,
        );
        self.kernel.trace_instant(
            self.this,
            self.thread,
            crate::trace::TraceEventKind::DeadLetter {
                desc,
                msg,
                deliveries,
            },
        );
    }

    /// Nested synchronous invocation from this component to another
    /// (e.g. RamFS → storage).
    ///
    /// # Errors
    ///
    /// As for [`Kernel::invoke`].
    pub fn invoke(
        &mut self,
        target: ComponentId,
        fname: &str,
        args: &[Value],
    ) -> Result<Value, CallError> {
        self.kernel
            .invoke(self.this, self.thread, target, fname, args)
    }

    /// Allocate a physical frame (memory-manager privilege).
    ///
    /// # Errors
    ///
    /// [`KernelError::OutOfFrames`] when exhausted.
    pub fn alloc_frame(&mut self) -> Result<FrameId, KernelError> {
        self.kernel.pages_mut().alloc_frame()
    }

    /// Install a page mapping, idempotently (recovery replay re-grants
    /// surviving mappings as a no-op).
    ///
    /// # Errors
    ///
    /// [`KernelError::AlreadyMapped`] when the vaddr maps another frame.
    pub fn map_page(
        &mut self,
        component: ComponentId,
        vaddr: VAddr,
        frame: FrameId,
    ) -> Result<(), KernelError> {
        self.kernel
            .pages_mut()
            .map_idempotent(component, vaddr, frame)
    }

    /// Remove a page mapping.
    ///
    /// # Errors
    ///
    /// [`KernelError::NotMapped`] when absent.
    pub fn unmap_page(
        &mut self,
        component: ComponentId,
        vaddr: VAddr,
    ) -> Result<FrameId, KernelError> {
        self.kernel.pages_mut().unmap(component, vaddr)
    }

    /// Translate a mapping.
    #[must_use]
    pub fn translate(&self, component: ComponentId, vaddr: VAddr) -> Option<FrameId> {
        self.kernel.pages().translate(component, vaddr)
    }

    /// Kernel reflection: all mappings of a component.
    #[must_use]
    pub fn mappings_of(&self, component: ComponentId) -> Vec<(VAddr, FrameId)> {
        self.kernel.pages().mappings_of(component).collect()
    }

    /// Kernel reflection: all (component, vaddr) pairs mapping a frame.
    #[must_use]
    pub fn mappers_of(&self, frame: FrameId) -> Vec<(ComponentId, VAddr)> {
        self.kernel.pages().mappers_of(frame).collect()
    }

    /// Kernel reflection: a thread's fixed priority.
    #[must_use]
    pub fn thread_priority(&self, thread: ThreadId) -> Option<Priority> {
        self.kernel.thread(thread).map(|t| t.priority).ok()
    }

    /// Kernel reflection: threads currently blocked inside a component —
    /// what a recovering scheduler consults to rebuild its block list
    /// (§II-F: "recovering the thread scheduler … requires reflecting on
    /// kernel data structures").
    #[must_use]
    pub fn threads_blocked_in(&self, component: ComponentId) -> Vec<ThreadId> {
        self.kernel.threads_blocked_in(component)
    }

    /// The current epoch (micro-reboot generation) of a component.
    #[must_use]
    pub fn epoch_of(&self, component: ComponentId) -> Option<Epoch> {
        self.kernel.epoch_of(component)
    }

    /// Charge virtual CPU time for work performed inside the service
    /// (application/handler work in macro-benchmarks).
    pub fn charge(&mut self, cost: SimTime) {
        self.kernel.charge(cost);
    }

    /// Raise a fail-stop fault against a component (the hardware
    /// exception path; used by fault-injection harnesses to crash the
    /// currently executing service mid-call).
    pub fn raise_fault(&mut self, component: ComponentId) {
        self.kernel.fault(component);
    }

    /// Report one unit of forward progress to the kernel watchdog.
    ///
    /// Long-running or loop-heavy services call this once per iteration;
    /// when the kernel's per-invocation step budget
    /// ([`Kernel::set_watchdog_budget`]) is exceeded, the watchdog
    /// converts the hang into a detected fault against this component.
    ///
    /// # Errors
    ///
    /// [`ServiceError::Unavailable`] once the watchdog has fired — the
    /// service must unwind immediately (the kernel has already marked it
    /// faulty, so the client observes [`CallError::Fault`]).
    pub fn progress(&mut self) -> Result<(), ServiceError> {
        self.ticks += 1;
        if self
            .kernel
            .watchdog_tick(self.this, self.thread, self.ticks)
        {
            return Err(ServiceError::Unavailable);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::ServiceError;

    /// A trivial service used by kernel-level tests: `ping` returns its
    /// argument + 1; `block` blocks the caller; `wake` wakes a thread id.
    #[derive(Debug, Default)]
    pub struct Echo {
        pub calls: u64,
    }

    impl Service for Echo {
        fn interface(&self) -> &'static str {
            "echo"
        }

        fn call(
            &mut self,
            ctx: &mut ServiceCtx<'_>,
            fname: &str,
            args: &[Value],
        ) -> Result<Value, ServiceError> {
            self.calls += 1;
            match fname {
                "ping" => Ok(Value::Int(args[0].int()? + 1)),
                "block" => Err(ctx.block_current()),
                "wake" => {
                    let tid = ThreadId(args[0].int()? as u32);
                    ctx.wake(tid).map_err(|_| ServiceError::InvalidArg)?;
                    Ok(Value::Unit)
                }
                other => Err(ServiceError::NoSuchFunction(other.to_owned())),
            }
        }

        fn reset(&mut self) {
            self.calls = 0;
        }
    }

    #[test]
    fn echo_service_counts_calls_and_resets() {
        let mut k = Kernel::new();
        let client = k.add_client_component("client");
        let echo = k.add_component("echo", Box::new(Echo::default()));
        k.grant(client, echo);
        let t = k.create_thread(client, Priority(5));
        let r = k
            .invoke(client, t, echo, "ping", &[Value::Int(41)])
            .unwrap();
        assert_eq!(r, Value::Int(42));
    }
}
