//! Deterministic simulation of the COMPOSITE component-based μ-kernel.
//!
//! COMPOSITE (§II-B of the SuperGlue paper) is a small kernel plus
//! user-level components implementing system services (scheduling, memory
//! management, files, locks, events, timers). Components expose interfaces
//! of functions; invoking one triggers a *component invocation* — a
//! synchronous, thread-migrating IPC mediated by capability-based access
//! control. Hardware page tables isolate component memory, so faults can
//! propagate only through interface data.
//!
//! This crate simulates that substrate deterministically in user space:
//!
//! * [`kernel::Kernel`] — components, threads, capabilities, simulated
//!   page tables, virtual time, and the synchronous invocation path;
//! * [`component::Service`] — the trait a simulated component implements;
//!   its private state *is* the "memory image" that a fault corrupts and
//!   a micro-reboot resets;
//! * [`thread::RegisterFile`] — each thread carries 8 simulated 32-bit
//!   registers (EAX…EDI, ESP, EBP) so the SWIFI crate can flip real bits
//!   with mechanistic consequences;
//! * [`executor::Executor`] — a priority-driven dispatcher that runs
//!   client *workloads* (explicit state machines standing in for
//!   application threads);
//! * micro-reboot and reflection — the booter's `memcpy` of a fresh image
//!   is [`kernel::Kernel::micro_reboot`] (a [`component::Service::reset`]
//!   call plus epoch bump), and kernel reflection APIs let recovering
//!   services re-discover kernel-held state, as §II-C describes for the
//!   scheduler.
//!
//! Faults never propagate *through* this crate's kernel: as in the paper
//! (§II-E), the kernel itself is assumed protected; a fault in a
//! component makes every subsequent invocation of it return
//! [`error::CallError::Fault`] until the booter micro-reboots it and the
//! recovery runtime (the `sg-c3` / `superglue` crates) rebuilds its
//! state.

// The pure state-machine core lives in the dependency-free
// `composite-core` crate (`step(KernelState, Event) -> (KernelState,
// Effects)` plus the property-based model checker); this crate is the
// runtime shell — trace ring, metrics, service objects, executor — and
// re-exports the moved modules under their historical paths.
pub use composite_core::{capability, error, ids, pages, rng, thread, time, value};

pub mod component;
pub mod executor;
pub mod intern;
pub mod json;
pub mod kernel;
pub mod metrics;
pub mod par;
pub mod stats;
pub mod store;
pub mod telemetry;
pub mod trace;

pub use component::{Service, ServiceCtx};
pub use composite_core::{
    run_check, step, step_in_place, AdmitOutcome, CheckConfig, CheckReport, Counterexample, Effect,
    Effects, Event, KernelState, KernelWalk, Model, RebootOutcome, Reply, Violation, WakeOutcome,
};
pub use error::{CallError, KernelError, ServiceError};
pub use executor::{Executor, RunExit, StepResult, Workload};
pub use ids::{ComponentId, Epoch, FrameId, Priority, ThreadId};
pub use intern::{DispatchTable, Interner, NameId};
pub use json::Json;
pub use kernel::{EscalationPolicy, InterfaceCall, Kernel, KernelAccess, BOOTER, BOOT_THREAD};
pub use metrics::{
    LatencyStat, Mechanism, MetricsRegistry, MetricsRow, MetricsSnapshot, MECHANISMS,
    METRICS_SCHEMA_VERSION,
};
pub use par::{default_jobs, parallel_map_indexed};
pub use rng::{mix, SplitMix64};
pub use store::{EdgeMap, IdSlab};
pub use telemetry::{
    series_header, SeriesCell, SeriesSnapshot, Telemetry, DEFAULT_SERIES_WINDOW,
    SERIES_SCHEMA_VERSION,
};
pub use thread::{RegisterFile, ThreadState, NUM_REGISTERS};
pub use time::{CostModel, SimTime};
pub use trace::{
    shards_to_chrome, shards_to_jsonl, FlightRecorder, TraceEvent, TraceEventKind, TraceScope,
    TraceShard, DEFAULT_TRACE_CAPACITY, MAX_EPISODE_DEPTH, TRACE_SCHEMA_VERSION,
};
pub use value::{ArgVec, Bytes, SmallStr, Value};
