//! Kernel event counters, consumed by tests and benchmark harnesses.

use std::ops::Index;

use crate::ids::ComponentId;

/// Per-component monotonic counters, stored densely by component id so
/// the kernel's per-invocation bump is an array index instead of a
/// `BTreeMap` entry walk. Component ids are small and dense (assigned
/// sequentially by the kernel), so the vector stays tiny.
#[derive(Debug, Clone, Default)]
pub struct CounterVec {
    counts: Vec<u64>,
}

impl CounterVec {
    /// The count for `c`, if it was ever bumped.
    #[must_use]
    pub fn get(&self, c: &ComponentId) -> Option<&u64> {
        self.counts.get(c.0 as usize).filter(|&&n| n > 0)
    }

    /// All nonzero counts (order follows component id).
    pub fn values(&self) -> impl Iterator<Item = &u64> {
        self.counts.iter().filter(|&&n| n > 0)
    }

    #[inline]
    pub(crate) fn bump(&mut self, c: ComponentId) {
        let i = c.0 as usize;
        if i >= self.counts.len() {
            self.counts.resize(i + 1, 0);
        }
        self.counts[i] += 1;
    }
}

impl Index<&ComponentId> for CounterVec {
    type Output = u64;

    fn index(&self, c: &ComponentId) -> &u64 {
        static ZERO: u64 = 0;
        self.counts.get(c.0 as usize).unwrap_or(&ZERO)
    }
}

impl PartialEq for CounterVec {
    fn eq(&self, other: &Self) -> bool {
        // Trailing zeros are invisible (a never-bumped component equals
        // an absent one), matching the old sparse-map semantics.
        let n = self.counts.len().max(other.counts.len());
        (0..n).all(|i| {
            self.counts.get(i).copied().unwrap_or(0) == other.counts.get(i).copied().unwrap_or(0)
        })
    }
}

impl Eq for CounterVec {}

/// Monotonic counters for kernel-visible events.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct KernelStats {
    /// Successful component invocations, per target component.
    pub invocations: CounterVec,
    /// Invocations rejected because the target was faulty, per target.
    pub faulted_invocations: CounterVec,
    /// Fault events raised, per component.
    pub faults: CounterVec,
    /// Micro-reboots performed, per component.
    pub reboots: CounterVec,
    /// Threads blocked inside servers (WouldBlock results).
    pub blocks: u64,
    /// Thread wakeups.
    pub wakeups: u64,
    /// Upcalls dispatched.
    pub upcalls: u64,
}

impl KernelStats {
    /// Fresh, all-zero counters.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Total successful invocations across all components.
    #[must_use]
    pub fn total_invocations(&self) -> u64 {
        self.invocations.values().sum()
    }

    /// Total faults across all components.
    #[must_use]
    pub fn total_faults(&self) -> u64 {
        self.faults.values().sum()
    }

    /// Total micro-reboots across all components.
    #[must_use]
    pub fn total_reboots(&self) -> u64 {
        self.reboots.values().sum()
    }

    pub(crate) fn count_invocation(&mut self, c: ComponentId) {
        self.invocations.bump(c);
    }

    pub(crate) fn count_faulted_invocation(&mut self, c: ComponentId) {
        self.faulted_invocations.bump(c);
    }

    pub(crate) fn count_fault(&mut self, c: ComponentId) {
        self.faults.bump(c);
    }

    pub(crate) fn count_reboot(&mut self, c: ComponentId) {
        self.reboots.bump(c);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut s = KernelStats::new();
        let c = ComponentId(3);
        s.count_invocation(c);
        s.count_invocation(c);
        s.count_fault(c);
        s.count_reboot(c);
        s.count_faulted_invocation(c);
        assert_eq!(s.invocations[&c], 2);
        assert_eq!(s.total_invocations(), 2);
        assert_eq!(s.total_faults(), 1);
        assert_eq!(s.total_reboots(), 1);
        assert_eq!(s.faulted_invocations[&c], 1);
    }

    #[test]
    fn totals_span_components() {
        let mut s = KernelStats::new();
        s.count_invocation(ComponentId(1));
        s.count_invocation(ComponentId(2));
        assert_eq!(s.total_invocations(), 2);
    }

    #[test]
    fn counter_vec_equality_ignores_trailing_zeros() {
        let mut a = CounterVec::default();
        let mut b = CounterVec::default();
        a.bump(ComponentId(1));
        b.bump(ComponentId(1));
        // Touch a higher id in one side only; its count stays relevant…
        b.bump(ComponentId(5));
        assert_ne!(a, b);
        // …but an id that was never counted on either side is invisible.
        a.bump(ComponentId(5));
        assert_eq!(a, b);
        assert_eq!(a.get(&ComponentId(9)), None);
        assert_eq!(a[&ComponentId(9)], 0);
        assert_eq!(a.get(&ComponentId(5)), Some(&1));
    }
}
