//! Kernel event counters, consumed by tests and benchmark harnesses.

use std::collections::BTreeMap;

use crate::ids::ComponentId;

/// Monotonic counters for kernel-visible events.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct KernelStats {
    /// Successful component invocations, per target component.
    pub invocations: BTreeMap<ComponentId, u64>,
    /// Invocations rejected because the target was faulty, per target.
    pub faulted_invocations: BTreeMap<ComponentId, u64>,
    /// Fault events raised, per component.
    pub faults: BTreeMap<ComponentId, u64>,
    /// Micro-reboots performed, per component.
    pub reboots: BTreeMap<ComponentId, u64>,
    /// Threads blocked inside servers (WouldBlock results).
    pub blocks: u64,
    /// Thread wakeups.
    pub wakeups: u64,
    /// Upcalls dispatched.
    pub upcalls: u64,
}

impl KernelStats {
    /// Fresh, all-zero counters.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Total successful invocations across all components.
    #[must_use]
    pub fn total_invocations(&self) -> u64 {
        self.invocations.values().sum()
    }

    /// Total faults across all components.
    #[must_use]
    pub fn total_faults(&self) -> u64 {
        self.faults.values().sum()
    }

    /// Total micro-reboots across all components.
    #[must_use]
    pub fn total_reboots(&self) -> u64 {
        self.reboots.values().sum()
    }

    pub(crate) fn count_invocation(&mut self, c: ComponentId) {
        *self.invocations.entry(c).or_insert(0) += 1;
    }

    pub(crate) fn count_faulted_invocation(&mut self, c: ComponentId) {
        *self.faulted_invocations.entry(c).or_insert(0) += 1;
    }

    pub(crate) fn count_fault(&mut self, c: ComponentId) {
        *self.faults.entry(c).or_insert(0) += 1;
    }

    pub(crate) fn count_reboot(&mut self, c: ComponentId) {
        *self.reboots.entry(c).or_insert(0) += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut s = KernelStats::new();
        let c = ComponentId(3);
        s.count_invocation(c);
        s.count_invocation(c);
        s.count_fault(c);
        s.count_reboot(c);
        s.count_faulted_invocation(c);
        assert_eq!(s.invocations[&c], 2);
        assert_eq!(s.total_invocations(), 2);
        assert_eq!(s.total_faults(), 1);
        assert_eq!(s.total_reboots(), 1);
        assert_eq!(s.faulted_invocations[&c], 1);
    }

    #[test]
    fn totals_span_components() {
        let mut s = KernelStats::new();
        s.count_invocation(ComponentId(1));
        s.count_invocation(ComponentId(2));
        assert_eq!(s.total_invocations(), 2);
    }
}
