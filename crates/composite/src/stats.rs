//! Kernel event counters, consumed by tests and benchmark harnesses.

use std::ops::Index;

use crate::ids::ComponentId;

/// Per-component monotonic counters, stored densely by component id so
/// the kernel's per-invocation bump is an array index instead of a
/// `BTreeMap` entry walk. Component ids are small and dense (assigned
/// sequentially by the kernel), so the vector stays tiny.
#[derive(Debug, Clone, Default)]
pub struct CounterVec {
    counts: Vec<u64>,
}

impl CounterVec {
    /// The count for `c`, if it was ever bumped.
    #[must_use]
    pub fn get(&self, c: &ComponentId) -> Option<&u64> {
        self.counts.get(c.0 as usize).filter(|&&n| n > 0)
    }

    /// All nonzero counts (order follows component id).
    pub fn values(&self) -> impl Iterator<Item = &u64> {
        self.counts.iter().filter(|&&n| n > 0)
    }

    #[inline]
    pub(crate) fn bump(&mut self, c: ComponentId) {
        let i = c.0 as usize;
        if i >= self.counts.len() {
            self.counts.resize(i + 1, 0);
        }
        self.counts[i] += 1;
    }
}

impl Index<&ComponentId> for CounterVec {
    type Output = u64;

    fn index(&self, c: &ComponentId) -> &u64 {
        static ZERO: u64 = 0;
        self.counts.get(c.0 as usize).unwrap_or(&ZERO)
    }
}

impl PartialEq for CounterVec {
    fn eq(&self, other: &Self) -> bool {
        // Trailing zeros are invisible (a never-bumped component equals
        // an absent one), matching the old sparse-map semantics.
        let n = self.counts.len().max(other.counts.len());
        (0..n).all(|i| {
            self.counts.get(i).copied().unwrap_or(0) == other.counts.get(i).copied().unwrap_or(0)
        })
    }
}

impl Eq for CounterVec {}

/// Monotonic counters for kernel-visible events.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct KernelStats {
    /// Successful component invocations, per target component.
    pub invocations: CounterVec,
    /// Invocations rejected because the target was faulty, per target.
    pub faulted_invocations: CounterVec,
    /// Fault events raised, per component.
    pub faults: CounterVec,
    /// Micro-reboots performed, per component.
    pub reboots: CounterVec,
    /// Watchdog step-budget expirations converted into faults, per
    /// component.
    pub watchdog_fires: CounterVec,
    /// Invocations rejected fast because the target was degraded, per
    /// target.
    pub degraded_rejections: CounterVec,
    /// Faults raised while another recovery episode was in flight
    /// (nested/correlated faults), per component.
    pub nested_faults: CounterVec,
    /// Cold restarts performed by the booter to clear a degraded mark,
    /// per component.
    pub cold_restarts: CounterVec,
    /// Threads blocked inside servers (WouldBlock results).
    pub blocks: u64,
    /// Thread wakeups.
    pub wakeups: u64,
    /// Upcalls dispatched.
    pub upcalls: u64,
}

impl KernelStats {
    /// Fresh, all-zero counters.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Total successful invocations across all components.
    #[must_use]
    pub fn total_invocations(&self) -> u64 {
        self.invocations.values().sum()
    }

    /// Total faults across all components.
    #[must_use]
    pub fn total_faults(&self) -> u64 {
        self.faults.values().sum()
    }

    /// Total micro-reboots across all components.
    #[must_use]
    pub fn total_reboots(&self) -> u64 {
        self.reboots.values().sum()
    }

    pub(crate) fn count_invocation(&mut self, c: ComponentId) {
        self.invocations.bump(c);
    }

    pub(crate) fn count_faulted_invocation(&mut self, c: ComponentId) {
        self.faulted_invocations.bump(c);
    }

    pub(crate) fn count_fault(&mut self, c: ComponentId) {
        self.faults.bump(c);
    }

    pub(crate) fn count_reboot(&mut self, c: ComponentId) {
        self.reboots.bump(c);
    }

    /// Total watchdog fires across all components.
    #[must_use]
    pub fn total_watchdog_fires(&self) -> u64 {
        self.watchdog_fires.values().sum()
    }

    /// Total degraded-mode fast rejections across all components.
    #[must_use]
    pub fn total_degraded_rejections(&self) -> u64 {
        self.degraded_rejections.values().sum()
    }

    /// Total nested (correlated) faults across all components.
    #[must_use]
    pub fn total_nested_faults(&self) -> u64 {
        self.nested_faults.values().sum()
    }

    /// Total cold restarts across all components.
    #[must_use]
    pub fn total_cold_restarts(&self) -> u64 {
        self.cold_restarts.values().sum()
    }

    pub(crate) fn count_watchdog_fire(&mut self, c: ComponentId) {
        self.watchdog_fires.bump(c);
    }

    pub(crate) fn count_degraded_rejection(&mut self, c: ComponentId) {
        self.degraded_rejections.bump(c);
    }

    pub(crate) fn count_nested_fault(&mut self, c: ComponentId) {
        self.nested_faults.bump(c);
    }

    pub(crate) fn count_cold_restart(&mut self, c: ComponentId) {
        self.cold_restarts.bump(c);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut s = KernelStats::new();
        let c = ComponentId(3);
        s.count_invocation(c);
        s.count_invocation(c);
        s.count_fault(c);
        s.count_reboot(c);
        s.count_faulted_invocation(c);
        assert_eq!(s.invocations[&c], 2);
        assert_eq!(s.total_invocations(), 2);
        assert_eq!(s.total_faults(), 1);
        assert_eq!(s.total_reboots(), 1);
        assert_eq!(s.faulted_invocations[&c], 1);
    }

    #[test]
    fn totals_span_components() {
        let mut s = KernelStats::new();
        s.count_invocation(ComponentId(1));
        s.count_invocation(ComponentId(2));
        assert_eq!(s.total_invocations(), 2);
    }

    #[test]
    fn counter_vec_equality_ignores_trailing_zeros() {
        let mut a = CounterVec::default();
        let mut b = CounterVec::default();
        a.bump(ComponentId(1));
        b.bump(ComponentId(1));
        // Touch a higher id in one side only; its count stays relevant…
        b.bump(ComponentId(5));
        assert_ne!(a, b);
        // …but an id that was never counted on either side is invisible.
        a.bump(ComponentId(5));
        assert_eq!(a, b);
        assert_eq!(a.get(&ComponentId(9)), None);
        assert_eq!(a[&ComponentId(9)], 0);
        assert_eq!(a.get(&ComponentId(5)), Some(&1));
    }
}
