//! A minimal JSON emitter and parser for harness output.
//!
//! The harness binaries dump tables and metric snapshots as JSON (and
//! JSON-lines), and the `sgtrace` analyzer reads flight-recorder dumps
//! back in. The repo builds in sealed environments with no registry
//! access, so rather than depending on an external serializer this module
//! provides the small value-tree writer and reader the harnesses need.
//! Emission is deterministic: object keys keep insertion order, floats
//! are written with `{:?}` (shortest round-trip representation), and
//! strings are escaped per RFC 8259.

use std::fmt::Write as _;

/// A JSON value tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Int(i64),
    UInt(u64),
    Float(f64),
    Str(String),
    Array(Vec<Json>),
    /// Insertion-ordered object; the writer emits keys in push order.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Start an empty object.
    #[must_use]
    pub fn object() -> Self {
        Json::Object(Vec::new())
    }

    /// Push a field onto an object; panics if `self` is not an object.
    pub fn push(&mut self, key: &str, value: impl Into<Json>) -> &mut Self {
        match self {
            Json::Object(fields) => fields.push((key.to_owned(), value.into())),
            other => panic!("Json::push on non-object {other:?}"),
        }
        self
    }

    /// Parse one JSON document (used by `sgtrace` to read trace dumps
    /// back in; accepts exactly what the writer side emits, i.e. RFC
    /// 8259 minus exotic escapes the writer never produces).
    ///
    /// # Errors
    ///
    /// A human-readable message with the byte offset of the problem.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(v)
    }

    /// Object field lookup (first match; `None` for non-objects).
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Unsigned integer view (covers `Int`/`UInt` holding `>= 0`).
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::UInt(v) => Some(*v),
            Json::Int(v) if *v >= 0 => Some(*v as u64),
            _ => None,
        }
    }

    /// Signed integer view.
    #[must_use]
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Int(v) => Some(*v),
            Json::UInt(v) => i64::try_from(*v).ok(),
            _ => None,
        }
    }

    /// String view.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Array view.
    #[must_use]
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Compact single-line rendering (JSON-lines friendly).
    #[must_use]
    pub fn to_line(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Pretty rendering with 2-space indentation.
    #[must_use]
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(v) => {
                let _ = write!(out, "{v}");
            }
            Json::UInt(v) => {
                let _ = write!(out, "{v}");
            }
            Json::Float(v) => {
                if v.is_finite() {
                    let _ = write!(out, "{v:?}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Array(items) => write_seq(out, indent, depth, '[', ']', items.len(), |o, i| {
                items[i].write(o, indent, depth + 1);
            }),
            Json::Object(fields) => {
                write_seq(out, indent, depth, '{', '}', fields.len(), |o, i| {
                    let (k, v) = &fields[i];
                    write_escaped(o, k);
                    o.push(':');
                    if indent.is_some() {
                        o.push(' ');
                    }
                    v.write(o, indent, depth + 1);
                });
            }
        }
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(w) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', w * (depth + 1)));
        }
        item(out, i);
    }
    if let Some(w) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', w * depth));
    }
    out.push(close);
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn eat_lit(&mut self, lit: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(format!("expected '{lit}' at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.eat_lit("null", Json::Null),
            Some(b't') => self.eat_lit("true", Json::Bool(true)),
            Some(b'f') => self.eat_lit("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                loop {
                    self.skip_ws();
                    items.push(self.value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Json::Array(items));
                        }
                        _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut fields = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Json::Object(fields));
                }
                loop {
                    self.skip_ws();
                    let k = self.string()?;
                    self.skip_ws();
                    self.eat(b':')?;
                    self.skip_ws();
                    let v = self.value()?;
                    fields.push((k, v));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Json::Object(fields));
                        }
                        _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
                    }
                }
            }
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_owned()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| format!("bad \\u escape at byte {}", self.pos))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u escape at byte {}", self.pos))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| format!("bad codepoint at byte {}", self.pos))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so byte
                    // boundaries are sound).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|e| e.to_string())?;
                    let c = s.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| e.to_string())?;
        if float {
            text.parse::<f64>()
                .map(Json::Float)
                .map_err(|_| format!("bad number at byte {start}"))
        } else if let Ok(v) = text.parse::<i64>() {
            Ok(Json::Int(v))
        } else {
            text.parse::<u64>()
                .map(Json::UInt)
                .map_err(|_| format!("bad number at byte {start}"))
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl From<bool> for Json {
    fn from(v: bool) -> Self {
        Json::Bool(v)
    }
}
impl From<i64> for Json {
    fn from(v: i64) -> Self {
        Json::Int(v)
    }
}
impl From<u64> for Json {
    fn from(v: u64) -> Self {
        Json::UInt(v)
    }
}
impl From<u32> for Json {
    fn from(v: u32) -> Self {
        Json::UInt(u64::from(v))
    }
}
impl From<usize> for Json {
    fn from(v: usize) -> Self {
        Json::UInt(v as u64)
    }
}
impl From<f64> for Json {
    fn from(v: f64) -> Self {
        Json::Float(v)
    }
}
impl From<&str> for Json {
    fn from(v: &str) -> Self {
        Json::Str(v.to_owned())
    }
}
impl From<String> for Json {
    fn from(v: String) -> Self {
        Json::Str(v)
    }
}
impl From<Vec<Json>> for Json {
    fn from(v: Vec<Json>) -> Self {
        Json::Array(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_object_round_trips_structure() {
        let mut j = Json::object();
        j.push("name", "fs\"x")
            .push("count", 3u64)
            .push("ratio", 0.25);
        assert_eq!(j.to_line(), r#"{"name":"fs\"x","count":3,"ratio":0.25}"#);
    }

    #[test]
    fn pretty_indents_nested() {
        let mut inner = Json::object();
        inner.push("a", 1u64);
        let j = Json::Array(vec![inner, Json::Null]);
        assert_eq!(j.to_pretty(), "[\n  {\n    \"a\": 1\n  },\n  null\n]");
    }

    #[test]
    fn control_chars_escaped() {
        let j = Json::Str("a\nb\u{1}".into());
        assert_eq!(j.to_line(), "\"a\\nb\\u0001\"");
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(Json::Float(f64::NAN).to_line(), "null");
        assert_eq!(Json::Float(f64::INFINITY).to_line(), "null");
    }

    #[test]
    fn parse_round_trips_writer_output() {
        let mut j = Json::object();
        j.push("name", "fs\"x\n")
            .push("count", 3u64)
            .push("neg", -7i64)
            .push("ratio", 0.25)
            .push("none", Json::Null)
            .push("flag", true)
            .push(
                "arr",
                Json::Array(vec![Json::Int(1), Json::Str("a".into())]),
            );
        let parsed = Json::parse(&j.to_line()).unwrap();
        assert_eq!(parsed.get("name").and_then(Json::as_str), Some("fs\"x\n"));
        assert_eq!(parsed.get("count").and_then(Json::as_u64), Some(3));
        assert_eq!(parsed.get("neg").and_then(Json::as_i64), Some(-7));
        assert_eq!(parsed.get("ratio"), Some(&Json::Float(0.25)));
        assert_eq!(parsed.get("none"), Some(&Json::Null));
        assert_eq!(parsed.get("flag"), Some(&Json::Bool(true)));
        assert_eq!(
            parsed
                .get("arr")
                .and_then(Json::as_array)
                .map(<[Json]>::len),
            Some(2)
        );
        // Pretty output parses too.
        assert_eq!(Json::parse(&j.to_pretty()).unwrap(), parsed);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("1 2").is_err());
        assert!(Json::parse("\"unterminated").is_err());
    }

    #[test]
    fn parse_unicode_escapes() {
        assert_eq!(
            Json::parse("\"a\\u0041\\u00e9\"").unwrap(),
            Json::Str("aAé".into())
        );
    }
}
