//! A minimal JSON emitter for harness output.
//!
//! The harness binaries dump tables and metric snapshots as JSON (and
//! JSON-lines). The repo builds in sealed environments with no registry
//! access, so rather than depending on an external serializer this module
//! provides the small value-tree writer the harnesses need. Emission is
//! deterministic: object keys keep insertion order, floats are written
//! with `{:?}` (shortest round-trip representation), and strings are
//! escaped per RFC 8259.

use std::fmt::Write as _;

/// A JSON value tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Int(i64),
    UInt(u64),
    Float(f64),
    Str(String),
    Array(Vec<Json>),
    /// Insertion-ordered object; the writer emits keys in push order.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Start an empty object.
    #[must_use]
    pub fn object() -> Self {
        Json::Object(Vec::new())
    }

    /// Push a field onto an object; panics if `self` is not an object.
    pub fn push(&mut self, key: &str, value: impl Into<Json>) -> &mut Self {
        match self {
            Json::Object(fields) => fields.push((key.to_owned(), value.into())),
            other => panic!("Json::push on non-object {other:?}"),
        }
        self
    }

    /// Compact single-line rendering (JSON-lines friendly).
    #[must_use]
    pub fn to_line(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Pretty rendering with 2-space indentation.
    #[must_use]
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(v) => {
                let _ = write!(out, "{v}");
            }
            Json::UInt(v) => {
                let _ = write!(out, "{v}");
            }
            Json::Float(v) => {
                if v.is_finite() {
                    let _ = write!(out, "{v:?}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Array(items) => write_seq(out, indent, depth, '[', ']', items.len(), |o, i| {
                items[i].write(o, indent, depth + 1);
            }),
            Json::Object(fields) => {
                write_seq(out, indent, depth, '{', '}', fields.len(), |o, i| {
                    let (k, v) = &fields[i];
                    write_escaped(o, k);
                    o.push(':');
                    if indent.is_some() {
                        o.push(' ');
                    }
                    v.write(o, indent, depth + 1);
                });
            }
        }
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(w) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', w * (depth + 1)));
        }
        item(out, i);
    }
    if let Some(w) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', w * depth));
    }
    out.push(close);
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl From<bool> for Json {
    fn from(v: bool) -> Self {
        Json::Bool(v)
    }
}
impl From<i64> for Json {
    fn from(v: i64) -> Self {
        Json::Int(v)
    }
}
impl From<u64> for Json {
    fn from(v: u64) -> Self {
        Json::UInt(v)
    }
}
impl From<u32> for Json {
    fn from(v: u32) -> Self {
        Json::UInt(u64::from(v))
    }
}
impl From<usize> for Json {
    fn from(v: usize) -> Self {
        Json::UInt(v as u64)
    }
}
impl From<f64> for Json {
    fn from(v: f64) -> Self {
        Json::Float(v)
    }
}
impl From<&str> for Json {
    fn from(v: &str) -> Self {
        Json::Str(v.to_owned())
    }
}
impl From<String> for Json {
    fn from(v: String) -> Self {
        Json::Str(v)
    }
}
impl From<Vec<Json>> for Json {
    fn from(v: Vec<Json>) -> Self {
        Json::Array(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_object_round_trips_structure() {
        let mut j = Json::object();
        j.push("name", "fs\"x")
            .push("count", 3u64)
            .push("ratio", 0.25);
        assert_eq!(j.to_line(), r#"{"name":"fs\"x","count":3,"ratio":0.25}"#);
    }

    #[test]
    fn pretty_indents_nested() {
        let mut inner = Json::object();
        inner.push("a", 1u64);
        let j = Json::Array(vec![inner, Json::Null]);
        assert_eq!(j.to_pretty(), "[\n  {\n    \"a\": 1\n  },\n  null\n]");
    }

    #[test]
    fn control_chars_escaped() {
        let j = Json::Str("a\nb\u{1}".into());
        assert_eq!(j.to_line(), "\"a\\nb\\u0001\"");
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(Json::Float(f64::NAN).to_line(), "null");
        assert_eq!(Json::Float(f64::INFINITY).to_line(), "null");
    }
}
