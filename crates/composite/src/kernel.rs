//! The simulated COMPOSITE kernel: component table, thread table,
//! capability-mediated synchronous invocations, simulated page tables,
//! virtual time, faults and micro-reboots.

use std::collections::{BTreeMap, VecDeque};

use crate::capability::CapTable;
use crate::component::{Service, ServiceCtx};
use crate::error::{CallError, KernelError, ServiceError};
use crate::ids::{ComponentId, Epoch, Priority, ThreadId};
use crate::intern::{Interner, NameId};
use crate::metrics::{Mechanism, MetricsRegistry};
use crate::pages::PageTables;
use crate::stats::KernelStats;
use crate::thread::{Thread, ThreadState};
use crate::time::{CostModel, SimTime};
use crate::trace::{
    FlightRecorder, TraceEvent, TraceEventKind, TraceScope, TraceShard, MAX_EPISODE_DEPTH,
};
use crate::value::Value;

/// Reboot-storm escalation policy: when the booter performs more than
/// `max_reboots_in_window` micro-reboots of one component within
/// `reboot_window`, the component is marked **degraded** — clients fail
/// fast with [`CallError::Degraded`] for `degraded_cooldown`, after
/// which the booter cold-restarts it (fresh image, cleared mark).
/// Repeated reboots inside the window are additionally spaced by a
/// deterministic exponential virtual-time backoff starting at
/// `reboot_backoff`.
///
/// The default policy is **disabled** (`reboot_window == 0`): the
/// established single-fault behavior — reboot immediately, as often as
/// asked — is unchanged unless a harness opts in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EscalationPolicy {
    /// Sliding window over which reboots of one component are counted
    /// (zero disables escalation entirely).
    pub reboot_window: SimTime,
    /// Reboots tolerated inside the window before degradation.
    pub max_reboots_in_window: u32,
    /// How long a degraded component rejects clients before the booter
    /// cold-restarts it.
    pub degraded_cooldown: SimTime,
    /// Base backoff charged before the second reboot in a window; doubles
    /// per additional reboot (capped at `base << 6`).
    pub reboot_backoff: SimTime,
}

impl EscalationPolicy {
    /// The disabled policy (no backoff, no degradation) — the default.
    #[must_use]
    pub const fn disabled() -> Self {
        Self {
            reboot_window: SimTime::ZERO,
            max_reboots_in_window: 0,
            degraded_cooldown: SimTime::ZERO,
            reboot_backoff: SimTime::ZERO,
        }
    }

    /// A calibrated storm policy: more than 3 reboots inside 5 ms marks
    /// the component degraded for 50 ms; reboots back off from 10 µs.
    #[must_use]
    pub const fn storm_defaults() -> Self {
        Self {
            reboot_window: SimTime(5_000_000),
            max_reboots_in_window: 3,
            degraded_cooldown: SimTime(50_000_000),
            reboot_backoff: SimTime(10_000),
        }
    }

    /// Whether the policy does anything.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.reboot_window > SimTime::ZERO && self.max_reboots_in_window > 0
    }
}

/// Lifecycle state of a component.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ComponentState {
    /// Serving invocations normally.
    Active,
    /// Crashed by a (detected, fail-stop) fault; every invocation returns
    /// [`CallError::Fault`] until micro-rebooted.
    Faulty,
}

#[derive(Debug)]
struct ComponentSlot {
    /// Interned name: resolved through [`Kernel::names`] only on cold
    /// paths (trace dumps, snapshots) — never cloned per invocation.
    name: NameId,
    state: ComponentState,
    epoch: Epoch,
    /// `None` for pure client components (application protection domains
    /// that export no interface), or while the service is checked out
    /// during one of its own calls.
    service: Option<Box<dyn Service>>,
    /// Whether a service was ever installed (distinguishes "checked out"
    /// from "client component").
    has_service: bool,
}

/// The simulated kernel. See the [crate docs](crate) for the big picture.
#[derive(Debug)]
pub struct Kernel {
    components: Vec<ComponentSlot>,
    names: Interner,
    threads: Vec<Thread>,
    caps: CapTable,
    pages: PageTables,
    time: SimTime,
    costs: CostModel,
    stats: KernelStats,
    metrics: MetricsRegistry,
    trace: FlightRecorder,
    escalation: EscalationPolicy,
    /// Per-invocation step budget enforced by [`ServiceCtx::progress`]
    /// (zero disables the watchdog).
    watchdog_budget: u64,
    /// Components whose recovery is currently in flight (innermost
    /// last); a fault raised while this is non-empty is *nested*.
    active_recoveries: Vec<ComponentId>,
    /// Degraded components and the virtual time at which the booter's
    /// cold restart clears the mark, keyed by component id.
    degraded: BTreeMap<u32, SimTime>,
    /// Recent reboot timestamps per component (escalation window).
    reboot_history: BTreeMap<u32, VecDeque<SimTime>>,
    /// One-shot fault armed to fire the moment the next recovery begins
    /// (the SWIFI during-recovery injection hook).
    armed_recovery_fault: Option<ComponentId>,
}

/// The booter component created by [`Kernel::new`]; it owns micro-reboot
/// authority, mirroring the paper's step (2)-(3) where the hardware
/// exception handler vectors to the booter.
pub const BOOTER: ComponentId = ComponentId(0);

/// The boot thread created by [`Kernel::new`], used for post-reboot
/// initialization upcalls.
pub const BOOT_THREAD: ThreadId = ThreadId(0);

impl Kernel {
    /// A fresh kernel with the paper-calibrated [`CostModel`], containing
    /// only the booter component and the boot thread.
    #[must_use]
    pub fn new() -> Self {
        Self::with_costs(CostModel::paper_defaults())
    }

    /// A fresh kernel with an explicit cost model.
    #[must_use]
    pub fn with_costs(costs: CostModel) -> Self {
        let mut k = Self {
            components: Vec::new(),
            names: Interner::new(),
            threads: Vec::new(),
            caps: CapTable::new(),
            pages: PageTables::new(),
            time: SimTime::ZERO,
            costs,
            stats: KernelStats::new(),
            metrics: MetricsRegistry::default(),
            trace: FlightRecorder::default(),
            escalation: EscalationPolicy::disabled(),
            watchdog_budget: 0,
            active_recoveries: Vec::new(),
            degraded: BTreeMap::new(),
            reboot_history: BTreeMap::new(),
            armed_recovery_fault: None,
        };
        let booter = k.add_client_component("booter");
        debug_assert_eq!(booter, BOOTER);
        let boot_thread = k.create_thread(BOOTER, Priority::HIGHEST);
        debug_assert_eq!(boot_thread, BOOT_THREAD);
        k
    }

    // ------------------------------------------------------------------
    // Component management
    // ------------------------------------------------------------------

    /// Register a service component. Returns its id.
    pub fn add_component(&mut self, name: &str, service: Box<dyn Service>) -> ComponentId {
        let id = ComponentId(self.components.len() as u32);
        self.components.push(ComponentSlot {
            name: self.names.intern(name),
            state: ComponentState::Active,
            epoch: Epoch::default(),
            service: Some(service),
            has_service: true,
        });
        id
    }

    /// Register a pure client component (an application protection domain
    /// exporting no interface).
    pub fn add_client_component(&mut self, name: &str) -> ComponentId {
        let id = ComponentId(self.components.len() as u32);
        self.components.push(ComponentSlot {
            name: self.names.intern(name),
            state: ComponentState::Active,
            epoch: Epoch::default(),
            service: None,
            has_service: false,
        });
        id
    }

    /// Grant `client` the capability to invoke `server`.
    pub fn grant(&mut self, client: ComponentId, server: ComponentId) {
        self.caps.grant(client, server);
    }

    /// The capability table (read-only).
    #[must_use]
    pub fn caps(&self) -> &CapTable {
        &self.caps
    }

    /// A component's name.
    #[must_use]
    pub fn component_name(&self, c: ComponentId) -> Option<&str> {
        self.components
            .get(c.0 as usize)
            .map(|s| self.names.resolve(s.name))
    }

    /// The interface exported by a component, if it is a service.
    #[must_use]
    pub fn interface_of(&self, c: ComponentId) -> Option<&'static str> {
        self.components
            .get(c.0 as usize)
            .and_then(|s| s.service.as_deref())
            .map(Service::interface)
    }

    /// Number of components (including the booter).
    #[must_use]
    pub fn component_count(&self) -> usize {
        self.components.len()
    }

    /// All component ids, in creation order.
    pub fn component_ids(&self) -> impl Iterator<Item = ComponentId> + '_ {
        (0..self.components.len() as u32).map(ComponentId)
    }

    /// Whether a component is currently faulty.
    #[must_use]
    pub fn is_faulty(&self, c: ComponentId) -> bool {
        self.components
            .get(c.0 as usize)
            .is_some_and(|s| s.state == ComponentState::Faulty)
    }

    /// The micro-reboot epoch of a component.
    #[must_use]
    pub fn epoch_of(&self, c: ComponentId) -> Option<Epoch> {
        self.components.get(c.0 as usize).map(|s| s.epoch)
    }

    // ------------------------------------------------------------------
    // Threads
    // ------------------------------------------------------------------

    /// Create a runnable thread homed in `home` with the given fixed
    /// priority.
    pub fn create_thread(&mut self, home: ComponentId, priority: Priority) -> ThreadId {
        let id = ThreadId(self.threads.len() as u32);
        self.threads.push(Thread::new(id, home, priority));
        id
    }

    /// Immutable thread access.
    ///
    /// # Errors
    ///
    /// [`KernelError::NoSuchThread`] for unknown ids.
    pub fn thread(&self, t: ThreadId) -> Result<&Thread, KernelError> {
        self.threads
            .get(t.0 as usize)
            .ok_or(KernelError::NoSuchThread(t))
    }

    /// Mutable thread access.
    ///
    /// # Errors
    ///
    /// [`KernelError::NoSuchThread`] for unknown ids.
    pub fn thread_mut(&mut self, t: ThreadId) -> Result<&mut Thread, KernelError> {
        self.threads
            .get_mut(t.0 as usize)
            .ok_or(KernelError::NoSuchThread(t))
    }

    /// Number of threads.
    #[must_use]
    pub fn thread_count(&self) -> usize {
        self.threads.len()
    }

    /// All thread ids.
    pub fn thread_ids(&self) -> impl Iterator<Item = ThreadId> + '_ {
        (0..self.threads.len() as u32).map(ThreadId)
    }

    /// Mark a thread blocked inside `component` (called via
    /// [`ServiceCtx::block_current`]).
    pub(crate) fn block_thread(&mut self, t: ThreadId, component: ComponentId) {
        if let Some(th) = self.threads.get_mut(t.0 as usize) {
            th.state = ThreadState::Blocked {
                in_component: component,
            };
            self.stats.blocks += 1;
            if self.trace.is_enabled() {
                self.trace_instant(component, t, TraceEventKind::Block);
            }
        }
    }

    /// Put a thread to sleep until `deadline`.
    pub(crate) fn sleep_thread(&mut self, t: ThreadId, deadline: SimTime) {
        if let Some(th) = self.threads.get_mut(t.0 as usize) {
            let home = th.home;
            th.state = ThreadState::SleepingUntil(deadline);
            self.stats.blocks += 1;
            if self.trace.is_enabled() {
                self.trace_instant(home, t, TraceEventKind::Sleep { until: deadline });
            }
        }
    }

    /// Wake a blocked or sleeping thread. Waking a runnable thread is a
    /// no-op.
    ///
    /// # Errors
    ///
    /// [`KernelError::NoSuchThread`] for unknown ids,
    /// [`KernelError::BadThreadState`] for completed/crashed threads.
    pub fn wake_thread(&mut self, t: ThreadId) -> Result<(), KernelError> {
        let th = self
            .threads
            .get_mut(t.0 as usize)
            .ok_or(KernelError::NoSuchThread(t))?;
        match th.state {
            ThreadState::Blocked { .. } | ThreadState::SleepingUntil(_) => {
                let site = match th.state {
                    ThreadState::Blocked { in_component } => in_component,
                    _ => th.home,
                };
                th.state = ThreadState::Runnable;
                self.stats.wakeups += 1;
                if self.trace.is_enabled() {
                    self.trace_instant(site, t, TraceEventKind::Wake);
                }
                Ok(())
            }
            ThreadState::Runnable => Ok(()),
            ThreadState::Completed | ThreadState::Crashed => Err(KernelError::BadThreadState(t)),
        }
    }

    /// Threads currently blocked inside `component` (kernel reflection
    /// used by T0 eager wakeup and scheduler recovery).
    #[must_use]
    pub fn threads_blocked_in(&self, component: ComponentId) -> Vec<ThreadId> {
        self.threads
            .iter()
            .filter(|t| {
                t.state
                    == ThreadState::Blocked {
                        in_component: component,
                    }
            })
            .map(|t| t.id)
            .collect()
    }

    /// The runnable thread to dispatch next: highest priority, ties
    /// broken by fewest dispatches then lowest id (round-robin-ish and
    /// fully deterministic).
    #[must_use]
    pub fn next_runnable(&self) -> Option<ThreadId> {
        self.threads
            .iter()
            .filter(|t| t.state.is_runnable())
            .min_by_key(|t| (t.priority, t.dispatches, t.id))
            .map(|t| t.id)
    }

    /// The earliest pending sleep deadline, if any thread is sleeping.
    #[must_use]
    pub fn earliest_wakeup(&self) -> Option<SimTime> {
        self.threads
            .iter()
            .filter_map(|t| match t.state {
                ThreadState::SleepingUntil(d) => Some(d),
                _ => None,
            })
            .min()
    }

    /// Advance virtual time to `t` (never backwards) and wake every
    /// sleeper whose deadline has passed.
    pub fn advance_to(&mut self, t: SimTime) {
        if t > self.time {
            self.time = t;
        }
        let now = self.time;
        let tracing = self.trace.is_enabled();
        let mut woken: Vec<(ThreadId, ComponentId)> = Vec::new();
        for th in &mut self.threads {
            if let ThreadState::SleepingUntil(d) = th.state {
                if d <= now {
                    th.state = ThreadState::Runnable;
                    self.stats.wakeups += 1;
                    if tracing {
                        woken.push((th.id, th.home));
                    }
                }
            }
        }
        for (tid, home) in woken {
            self.trace_instant(home, tid, TraceEventKind::Wake);
        }
    }

    // ------------------------------------------------------------------
    // Time, costs, stats, pages
    // ------------------------------------------------------------------

    /// Current virtual time.
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.time
    }

    /// Charge an explicit virtual-time cost (used by the recovery
    /// runtime for walks, storage round trips, upcalls).
    pub fn charge(&mut self, cost: SimTime) {
        self.time += cost;
    }

    /// The cost model.
    #[must_use]
    pub fn costs(&self) -> &CostModel {
        &self.costs
    }

    /// Replace the cost model.
    pub fn set_costs(&mut self, costs: CostModel) {
        self.costs = costs;
    }

    /// Event counters.
    #[must_use]
    pub fn stats(&self) -> &KernelStats {
        &self.stats
    }

    /// Recovery-mechanism metrics (read side; harnesses snapshot these
    /// via [`crate::metrics::MetricsSnapshot::from_kernel`]).
    #[must_use]
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// Recovery-mechanism metrics (write side; the C³/SuperGlue recovery
    /// runtimes record mechanism firings here).
    pub fn metrics_mut(&mut self) -> &mut MetricsRegistry {
        &mut self.metrics
    }

    /// Count a **U0** upcall dispatch into the creator of a descriptor
    /// of `server` (the recovery runtime calls this when it performs
    /// U0): charges the upcall cost and records the mechanism through
    /// the [`Kernel::record_mechanism`] choke point, so the counter and
    /// the trace event cannot disagree. Returns the trace span (when
    /// tracing) for scoping the nested creator-side recovery.
    pub fn count_upcall(&mut self, server: ComponentId, thread: ThreadId) -> Option<u64> {
        self.stats.upcalls += 1;
        self.time += self.costs.upcall;
        self.record_mechanism(server, Mechanism::U0, 1, thread, self.costs.upcall)
    }

    // ------------------------------------------------------------------
    // Correlated-fault hardening: escalation, watchdog, nested recovery
    // ------------------------------------------------------------------

    /// Install a reboot-storm [`EscalationPolicy`] (disabled by default).
    pub fn set_escalation(&mut self, policy: EscalationPolicy) {
        self.escalation = policy;
    }

    /// The active escalation policy.
    #[must_use]
    pub fn escalation(&self) -> &EscalationPolicy {
        &self.escalation
    }

    /// Arm the per-invocation watchdog: a service that calls
    /// [`ServiceCtx::progress`](crate::component::ServiceCtx::progress)
    /// more than `budget` times inside one invocation is declared hung
    /// and converted into a detected fault. Zero disables the watchdog.
    pub fn set_watchdog_budget(&mut self, budget: u64) {
        self.watchdog_budget = budget;
    }

    /// The per-invocation watchdog step budget (0 = disabled).
    #[must_use]
    pub fn watchdog_budget(&self) -> u64 {
        self.watchdog_budget
    }

    /// Whether `c` is currently degraded (clients fail fast until the
    /// booter's cold restart).
    #[must_use]
    pub fn is_degraded(&self, c: ComponentId) -> bool {
        self.degraded
            .get(&c.0)
            .is_some_and(|&until| self.time < until)
    }

    /// The virtual time at which `c`'s degraded mark clears, if marked.
    #[must_use]
    pub fn degraded_until(&self, c: ComponentId) -> Option<SimTime> {
        self.degraded.get(&c.0).copied()
    }

    /// Mark the start of a recovery action (micro-reboot, walk replay,
    /// creator upcall) on `c`. While at least one recovery is in flight,
    /// any fault raised is *nested*: it opens a child recovery episode
    /// instead of tearing down the in-flight one. Also the point where an
    /// armed during-recovery fault fires (see
    /// [`Kernel::arm_fault_during_recovery`]). Must be paired with
    /// [`Kernel::end_recovery`].
    pub fn begin_recovery(&mut self, c: ComponentId) {
        self.active_recoveries.push(c);
        if let Some(victim) = self.armed_recovery_fault {
            // Fire only once the victim is healthy enough to fault again
            // (an already-faulty victim keeps the fault armed for a later
            // recovery action, e.g. the post-reboot replay walk).
            if !self.is_faulty(victim) {
                self.armed_recovery_fault = None;
                self.fault(victim);
            }
        }
    }

    /// Close the innermost recovery action on `c` opened by
    /// [`Kernel::begin_recovery`].
    pub fn end_recovery(&mut self, c: ComponentId) {
        if let Some(pos) = self.active_recoveries.iter().rposition(|&x| x == c) {
            self.active_recoveries.remove(pos);
        }
    }

    /// How many recovery actions are currently in flight.
    #[must_use]
    pub fn recovery_depth(&self) -> usize {
        self.active_recoveries.len()
    }

    /// Whether any recovery action is in flight.
    #[must_use]
    pub fn recovery_active(&self) -> bool {
        !self.active_recoveries.is_empty()
    }

    /// Arm a one-shot fault on `victim` that fires the moment the next
    /// recovery action begins — the SWIFI `during-recovery` injection
    /// hook (deterministic: the trigger is a simulation event, not a
    /// timer).
    pub fn arm_fault_during_recovery(&mut self, victim: ComponentId) {
        self.armed_recovery_fault = Some(victim);
    }

    /// Drop an armed during-recovery fault that never fired (no recovery
    /// action began while it was armed).
    pub fn disarm_recovery_fault(&mut self) {
        self.armed_recovery_fault = None;
    }

    /// Declare the in-flight invocation on `c` hung: counts a watchdog
    /// fire, emits the [`TraceEventKind::WatchdogFired`] marker, and
    /// converts the hang into a detected fail-stop fault so it enters
    /// the ordinary recovery machinery.
    pub fn watchdog_expire(&mut self, c: ComponentId, thread: ThreadId) {
        self.stats.count_watchdog_fire(c);
        self.trace_instant(c, thread, TraceEventKind::WatchdogFired);
        self.fault(c);
    }

    /// One watchdog tick from [`ServiceCtx::progress`]: returns `true`
    /// (and fires the watchdog) when `ticks` exceeds the armed budget.
    pub(crate) fn watchdog_tick(&mut self, c: ComponentId, thread: ThreadId, ticks: u64) -> bool {
        if self.watchdog_budget == 0 || ticks <= self.watchdog_budget {
            return false;
        }
        self.watchdog_expire(c, thread);
        true
    }

    // ------------------------------------------------------------------
    // Flight recorder
    // ------------------------------------------------------------------

    /// Turn the flight recorder on with the given ring capacity.
    pub fn enable_tracing(&mut self, capacity: usize) {
        self.trace.enable(capacity);
    }

    /// Whether the flight recorder is recording.
    #[must_use]
    pub fn tracing_enabled(&self) -> bool {
        self.trace.is_enabled()
    }

    /// Drain the flight recorder into a self-contained [`TraceShard`]:
    /// closes every open recovery episode (emitting its `episode_end`),
    /// snapshots the component-name table, and resets the recorder for
    /// continued use.
    pub fn take_trace(&mut self, label: &str) -> TraceShard {
        for c in self.trace.open_episode_components() {
            let epoch = self.epoch_of(c).unwrap_or_default();
            self.trace.end_episode(c, epoch, self.time, BOOT_THREAD);
        }
        let (events, dropped, dropped_recovery, span_count) = self.trace.drain();
        TraceShard {
            label: label.to_owned(),
            names: self
                .components
                .iter()
                .map(|s| self.names.resolve(s.name).to_owned())
                .collect(),
            events,
            dropped,
            dropped_recovery,
            span_count,
        }
    }

    /// The single choke point through which every mechanism firing is
    /// counted: increments the [`MetricsRegistry`] *and* (when tracing)
    /// emits the matching [`TraceEventKind::MechanismFired`] event, so
    /// the two views are equal by construction. `dur` is the simulated
    /// time the firing itself consumed (already charged by the caller);
    /// the returned span can parent nested recovery work.
    pub fn record_mechanism(
        &mut self,
        c: ComponentId,
        m: Mechanism,
        n: u64,
        thread: ThreadId,
        dur: SimTime,
    ) -> Option<u64> {
        if n == 0 {
            return None;
        }
        self.metrics.record_many(c, m, n);
        if !self.trace.is_enabled() {
            return None;
        }
        let parent = self.trace.causal_parent(c);
        let span = self.trace.alloc_span();
        let epoch = self.epoch_of(c).unwrap_or_default();
        self.trace.record(TraceEvent {
            span,
            parent,
            time: self.time.saturating_sub(dur),
            dur,
            thread,
            component: c,
            epoch,
            kind: TraceEventKind::MechanismFired { mech: m, n },
        });
        Some(span)
    }

    /// Emit one instant (zero-duration) trace event; no-op while
    /// disabled. Stubs use this for descriptor create/teardown markers.
    pub fn trace_instant(&mut self, c: ComponentId, thread: ThreadId, kind: TraceEventKind) {
        if !self.trace.is_enabled() {
            return;
        }
        let parent = self.trace.causal_parent(c);
        let span = self.trace.alloc_span();
        let epoch = self.epoch_of(c).unwrap_or_default();
        self.trace.record(TraceEvent {
            span,
            parent,
            time: self.time,
            dur: SimTime::ZERO,
            thread,
            component: c,
            epoch,
            kind,
        });
    }

    /// Open a timed recovery scope on `c`: pre-assigns the span (so
    /// nested events parent to it) and remembers the start time. Pair
    /// with [`Kernel::trace_close`]. Returns `None` while disabled.
    pub fn trace_open(&mut self, c: ComponentId) -> Option<TraceScope> {
        if !self.trace.is_enabled() {
            return None;
        }
        let parent = self.trace.causal_parent(c);
        let span = self.trace.alloc_span();
        self.trace.push_scope(span);
        Some(TraceScope {
            span,
            parent,
            start: self.time,
        })
    }

    /// Close a scope opened by [`Kernel::trace_open`], emitting `kind`
    /// with the measured simulated duration.
    pub fn trace_close(
        &mut self,
        scope: Option<TraceScope>,
        c: ComponentId,
        thread: ThreadId,
        kind: TraceEventKind,
    ) {
        let Some(s) = scope else { return };
        self.trace.pop_scope();
        let epoch = self.epoch_of(c).unwrap_or_default();
        self.trace.record(TraceEvent {
            span: s.span,
            parent: s.parent,
            time: s.start,
            dur: self.time.saturating_sub(s.start),
            thread,
            component: c,
            epoch,
            kind,
        });
    }

    /// Push an already-emitted span as the current recovery scope (used
    /// to hang creator-side U0 recovery under the upcall event). No-op
    /// on `None`.
    pub fn trace_push_scope(&mut self, span: Option<u64>) {
        if let Some(s) = span {
            self.trace.push_scope(s);
        }
    }

    /// Pop the scope pushed by [`Kernel::trace_push_scope`]. No-op on
    /// `None`.
    pub fn trace_pop_scope(&mut self, span: Option<u64>) {
        if span.is_some() {
            self.trace.pop_scope();
        }
    }

    /// Simulated page tables (read-only reflection).
    #[must_use]
    pub fn pages(&self) -> &PageTables {
        &self.pages
    }

    /// Simulated page tables (mutation — memory-manager privilege).
    pub fn pages_mut(&mut self) -> &mut PageTables {
        &mut self.pages
    }

    // ------------------------------------------------------------------
    // Invocation path
    // ------------------------------------------------------------------

    /// Synchronous, thread-migrating component invocation.
    ///
    /// Checks the capability, rejects faulty targets, migrates the thread
    /// into the server, runs [`Service::call`], and migrates back.
    ///
    /// # Errors
    ///
    /// * [`CallError::NoSuchComponent`] / [`CallError::NoCapability`] for
    ///   bad targets;
    /// * [`CallError::Fault`] when the target is faulty — the
    ///   inter-component exception that triggers stub recovery;
    /// * [`CallError::WouldBlock`] when the service blocked the thread;
    /// * [`CallError::Reentrant`] when the thread already executes in the
    ///   target;
    /// * [`CallError::Service`] for server-level errors.
    pub fn invoke(
        &mut self,
        client: ComponentId,
        thread: ThreadId,
        target: ComponentId,
        fname: &str,
        args: &[Value],
    ) -> Result<Value, CallError> {
        if target.0 as usize >= self.components.len() {
            return Err(CallError::NoSuchComponent(target));
        }
        if !self.caps.allows(client, target) {
            return Err(CallError::NoCapability { client, target });
        }
        if let Some(&until) = self.degraded.get(&target.0) {
            if self.time < until {
                // Fail fast while the degraded cooldown holds: no thread
                // migration, no recovery work, just a cheap rejection.
                self.stats.count_degraded_rejection(target);
                return Err(CallError::Degraded { component: target });
            }
            // Cooldown elapsed: the booter performs the cold restart
            // that clears the mark, then the call proceeds normally.
            self.cold_restart(target)
                .map_err(|_| CallError::NoSuchComponent(target))?;
        }
        if self.components[target.0 as usize].state == ComponentState::Faulty {
            self.stats.count_faulted_invocation(target);
            if self.trace.is_enabled() {
                let parent = self.trace.causal_parent(target);
                let span = self.trace.alloc_span();
                let epoch = self.epoch_of(target).unwrap_or_default();
                self.trace.record(TraceEvent {
                    span,
                    parent,
                    time: self.time,
                    dur: SimTime::ZERO,
                    thread,
                    component: target,
                    epoch,
                    kind: TraceEventKind::InvokeEnter {
                        function: fname.to_owned(),
                        client,
                    },
                });
                self.trace_instant_with_parent(
                    target,
                    thread,
                    Some(span),
                    TraceEventKind::InvokeExit { outcome: "fault" },
                );
            }
            return Err(CallError::Fault { component: target });
        }
        // Thread migration: push the server onto the invocation stack.
        {
            let th = self
                .threads
                .get_mut(thread.0 as usize)
                .ok_or(CallError::NoSuchComponent(target))?;
            if th.invocation_stack.contains(&target) {
                return Err(CallError::Reentrant(target));
            }
            th.invocation_stack.push(target);
        }
        self.time += self.costs.invocation;
        let enter_span = if self.trace.is_enabled() {
            let parent = self.trace.causal_parent(target);
            let span = self.trace.alloc_span();
            let epoch = self.epoch_of(target).unwrap_or_default();
            self.trace.record(TraceEvent {
                span,
                parent,
                time: self.time,
                dur: SimTime::ZERO,
                thread,
                component: target,
                epoch,
                kind: TraceEventKind::InvokeEnter {
                    function: fname.to_owned(),
                    client,
                },
            });
            self.trace.push_invoke(span);
            Some(span)
        } else {
            None
        };

        // Check the service out so it can re-enter the kernel.
        let mut service = match self.components[target.0 as usize].service.take() {
            Some(s) => s,
            None => {
                self.pop_stack(thread, target);
                if let Some(enter) = enter_span {
                    self.trace.pop_invoke();
                    self.trace_instant_with_parent(
                        target,
                        thread,
                        Some(enter),
                        TraceEventKind::InvokeExit { outcome: "err" },
                    );
                }
                return Err(CallError::NoSuchComponent(target));
            }
        };
        let mut ctx = ServiceCtx {
            kernel: self,
            this: target,
            client,
            thread,
            ticks: 0,
        };
        let result = service.call(&mut ctx, fname, args);
        self.components[target.0 as usize].service = Some(service);
        self.pop_stack(thread, target);

        let ret = match result {
            Ok(v) => {
                self.stats.count_invocation(target);
                // The server may itself have faulted mid-call (injected
                // while executing): surface that instead of the value.
                if self.components[target.0 as usize].state == ComponentState::Faulty {
                    Err(CallError::Fault { component: target })
                } else {
                    Ok(v)
                }
            }
            Err(ServiceError::WouldBlock) => Err(CallError::WouldBlock),
            // A service error from a now-faulty server means the fault
            // interrupted the call (e.g. the watchdog fired mid-call):
            // surface the inter-component exception so stubs recover.
            Err(_) if self.components[target.0 as usize].state == ComponentState::Faulty => {
                Err(CallError::Fault { component: target })
            }
            Err(e) => Err(CallError::Service(e)),
        };
        if let Some(enter) = enter_span {
            self.trace.pop_invoke();
            let outcome = match &ret {
                Ok(_) => "ok",
                Err(CallError::Fault { .. }) => "fault",
                Err(CallError::WouldBlock) => "would-block",
                Err(_) => "err",
            };
            self.trace_instant_with_parent(
                target,
                thread,
                Some(enter),
                TraceEventKind::InvokeExit { outcome },
            );
        }
        ret
    }

    /// Emit an instant event with an explicit causal parent (invoke
    /// exits pair with their enter span).
    fn trace_instant_with_parent(
        &mut self,
        c: ComponentId,
        thread: ThreadId,
        parent: Option<u64>,
        kind: TraceEventKind,
    ) {
        let span = self.trace.alloc_span();
        let epoch = self.epoch_of(c).unwrap_or_default();
        self.trace.record(TraceEvent {
            span,
            parent,
            time: self.time,
            dur: SimTime::ZERO,
            thread,
            component: c,
            epoch,
            kind,
        });
    }

    fn pop_stack(&mut self, thread: ThreadId, target: ComponentId) {
        if let Some(th) = self.threads.get_mut(thread.0 as usize) {
            if th.invocation_stack.last() == Some(&target) {
                th.invocation_stack.pop();
            }
        }
    }

    /// Upcall into a component (bypasses the capability check — upcalls
    /// are kernel/booter-initiated, step (4)/(8) of §III-D).
    ///
    /// # Errors
    ///
    /// As for [`Kernel::invoke`], minus the capability check.
    pub fn upcall(
        &mut self,
        target: ComponentId,
        thread: ThreadId,
        fname: &str,
        args: &[Value],
    ) -> Result<Value, CallError> {
        self.caps.grant(BOOTER, target);
        let scope = if self.trace.is_enabled() {
            let parent = self.trace.causal_parent(target);
            let span = self.trace.alloc_span();
            let epoch = self.epoch_of(target).unwrap_or_default();
            self.trace.record(TraceEvent {
                span,
                parent,
                time: self.time,
                dur: SimTime::ZERO,
                thread,
                component: target,
                epoch,
                kind: TraceEventKind::Upcall {
                    function: fname.to_owned(),
                },
            });
            self.trace.push_scope(span);
            true
        } else {
            false
        };
        let r = self.invoke(BOOTER, thread, target, fname, args);
        if scope {
            self.trace.pop_scope();
        }
        self.stats.upcalls += 1;
        r
    }

    // ------------------------------------------------------------------
    // Faults and micro-reboot
    // ------------------------------------------------------------------

    /// Crash a component (fail-stop). Every thread blocked inside it is
    /// made runnable so its retried invocation observes the fault and
    /// enters recovery; the number of threads so woken is returned.
    ///
    /// A fault raised while a recovery action is in flight (see
    /// [`Kernel::begin_recovery`]) is **nested**: instead of closing the
    /// in-flight episode it opens a *child* episode — parented into the
    /// recovery tree, carrying its nesting depth, bounded by
    /// [`MAX_EPISODE_DEPTH`] — and bumps the nested-fault counter.
    pub fn fault(&mut self, c: ComponentId) -> u64 {
        let Some(slot) = self.components.get_mut(c.0 as usize) else {
            return 0;
        };
        slot.state = ComponentState::Faulty;
        let epoch = slot.epoch;
        self.stats.count_fault(c);
        let nested = !self.active_recoveries.is_empty();
        if nested {
            self.stats.count_nested_fault(c);
        }
        let fault_span = if self.trace.is_enabled() {
            let (parent, depth) = if nested {
                // Keep the in-flight episode open; the new fault becomes
                // a child in the episode tree. Clamp the stack depth by
                // force-closing the innermost episode first.
                if self.trace.episode_depth(c) >= MAX_EPISODE_DEPTH {
                    self.trace.end_episode(c, epoch, self.time, BOOT_THREAD);
                }
                (self.trace.causal_parent(c), self.trace.episode_depth(c))
            } else {
                // The fault roots a new top-level episode: close any
                // episode still open from the previous fault of this
                // component first.
                self.trace.end_episode(c, epoch, self.time, BOOT_THREAD);
                (None, 0)
            };
            let span = self.trace.alloc_span();
            self.trace.record(TraceEvent {
                span,
                parent,
                time: self.time,
                dur: SimTime::ZERO,
                thread: BOOT_THREAD,
                component: c,
                epoch,
                kind: TraceEventKind::FaultInjected { depth },
            });
            self.trace.begin_episode(c, span);
            Some(span)
        } else {
            None
        };
        let mut woken_ids = Vec::new();
        for th in &mut self.threads {
            if th.state == (ThreadState::Blocked { in_component: c }) {
                th.state = ThreadState::Runnable;
                self.stats.wakeups += 1;
                woken_ids.push(th.id);
            }
        }
        if fault_span.is_some() {
            for &t in &woken_ids {
                self.trace_instant_with_parent(c, t, fault_span, TraceEventKind::Wake);
            }
        }
        // T0: these wakeups are the eager release of threads blocked in
        // the failed component (§III-C).
        let woken = woken_ids.len() as u64;
        self.record_mechanism(c, Mechanism::T0, woken, BOOT_THREAD, SimTime::ZERO);
        woken
    }

    /// Booter micro-reboot (steps (3)–(4) of §III-D): `memcpy` a pristine
    /// image ([`Service::reset`]), bump the epoch, reactivate, and make
    /// the post-reboot initialization upcall.
    ///
    /// # Errors
    ///
    /// [`KernelError::NoSuchComponent`] when `c` does not name a service
    /// component.
    pub fn micro_reboot(&mut self, c: ComponentId) -> Result<(), KernelError> {
        let slot = self
            .components
            .get_mut(c.0 as usize)
            .ok_or(KernelError::NoSuchComponent(c))?;
        if !slot.has_service {
            return Err(KernelError::NoSuchComponent(c));
        }
        let mut service = slot.service.take().ok_or(KernelError::NoSuchComponent(c))?;
        service.reset();
        slot.epoch = slot.epoch.next();
        slot.state = ComponentState::Active;
        let scope = self.trace_open(c);
        self.time += self.costs.micro_reboot;
        let mut mark_degraded = None;
        if self.escalation.is_enabled() {
            // Lazily drop an expired degraded mark (the booter's cold
            // restart supersedes it) so history restarts clean.
            if self
                .degraded
                .get(&c.0)
                .is_some_and(|&until| self.time >= until)
            {
                self.degraded.remove(&c.0);
                self.reboot_history.remove(&c.0);
            }
            let window = self.escalation.reboot_window;
            let hist = self.reboot_history.entry(c.0).or_default();
            let window_start = self.time.saturating_sub(window);
            while hist.front().is_some_and(|&t0| t0 < window_start) {
                hist.pop_front();
            }
            let prior = hist.len() as u32;
            if prior > 0 {
                // Deterministic exponential backoff from the second
                // reboot in the window, capped at base << 6.
                let backoff = SimTime(self.escalation.reboot_backoff.0 << (prior - 1).min(6));
                self.time += backoff;
            }
            let now = self.time;
            let hist = self.reboot_history.entry(c.0).or_default();
            hist.push_back(now);
            if hist.len() as u32 > self.escalation.max_reboots_in_window {
                hist.clear();
                mark_degraded = Some(now + self.escalation.degraded_cooldown);
            }
        }
        self.stats.count_reboot(c);
        let mut ctx = ServiceCtx {
            kernel: self,
            this: c,
            client: BOOTER,
            thread: BOOT_THREAD,
            ticks: 0,
        };
        service.post_reboot(&mut ctx);
        self.components[c.0 as usize].service = Some(service);
        self.trace_close(scope, c, BOOT_THREAD, TraceEventKind::Reboot);
        if let Some(until) = mark_degraded {
            self.degraded.insert(c.0, until);
            self.trace_instant(c, BOOT_THREAD, TraceEventKind::DegradedMarked { until });
        }
        Ok(())
    }

    /// Booter cold restart: the escalation endpoint that clears a
    /// degraded mark. Identical to [`Kernel::micro_reboot`] mechanically
    /// (pristine image, epoch bump, post-reboot upcall) but counted and
    /// traced separately, resets the storm history, and never re-enters
    /// escalation accounting.
    ///
    /// # Errors
    ///
    /// [`KernelError::NoSuchComponent`] when `c` does not name a service
    /// component.
    pub fn cold_restart(&mut self, c: ComponentId) -> Result<(), KernelError> {
        let slot = self
            .components
            .get_mut(c.0 as usize)
            .ok_or(KernelError::NoSuchComponent(c))?;
        if !slot.has_service {
            return Err(KernelError::NoSuchComponent(c));
        }
        let mut service = slot.service.take().ok_or(KernelError::NoSuchComponent(c))?;
        service.reset();
        slot.epoch = slot.epoch.next();
        slot.state = ComponentState::Active;
        self.degraded.remove(&c.0);
        self.reboot_history.remove(&c.0);
        let scope = self.trace_open(c);
        self.time += self.costs.micro_reboot;
        self.stats.count_cold_restart(c);
        let mut ctx = ServiceCtx {
            kernel: self,
            this: c,
            client: BOOTER,
            thread: BOOT_THREAD,
            ticks: 0,
        };
        service.post_reboot(&mut ctx);
        self.components[c.0 as usize].service = Some(service);
        self.trace_close(scope, c, BOOT_THREAD, TraceEventKind::ColdRestart);
        Ok(())
    }
}

impl Default for Kernel {
    fn default() -> Self {
        Self::new()
    }
}

/// Access to the kernel embedded in a larger runtime context — what the
/// [`Executor`](crate::executor::Executor) requires of its context type.
pub trait KernelAccess {
    /// Shared access.
    fn kernel(&self) -> &Kernel;
    /// Exclusive access.
    fn kernel_mut(&mut self) -> &mut Kernel;
}

impl KernelAccess for Kernel {
    fn kernel(&self) -> &Kernel {
        self
    }
    fn kernel_mut(&mut self) -> &mut Kernel {
        self
    }
}

/// How client code reaches a server interface. Implemented by the bare
/// [`Kernel`] (no fault tolerance: a fault surfaces as
/// [`CallError::Fault`]) and by the C³/SuperGlue runtimes (which
/// interpose stubs that track descriptors and drive recovery). Workloads
/// written against this trait run unchanged under all three systems —
/// exactly the comparison the paper's evaluation needs.
pub trait InterfaceCall {
    /// Perform one interface invocation on behalf of `client`/`thread`.
    ///
    /// # Errors
    ///
    /// As for [`Kernel::invoke`]; fault-tolerant implementations swallow
    /// recoverable [`CallError::Fault`]s.
    fn interface_call(
        &mut self,
        client: ComponentId,
        thread: ThreadId,
        server: ComponentId,
        fname: &str,
        args: &[Value],
    ) -> Result<Value, CallError>;
}

impl InterfaceCall for Kernel {
    fn interface_call(
        &mut self,
        client: ComponentId,
        thread: ThreadId,
        server: ComponentId,
        fname: &str,
        args: &[Value],
    ) -> Result<Value, CallError> {
        self.invoke(client, thread, server, fname, args)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimal service for kernel tests.
    #[derive(Debug, Default)]
    struct Counter {
        count: i64,
        post_reboots: u32,
    }

    impl Service for Counter {
        fn interface(&self) -> &'static str {
            "counter"
        }
        fn call(
            &mut self,
            ctx: &mut ServiceCtx<'_>,
            fname: &str,
            args: &[Value],
        ) -> Result<Value, ServiceError> {
            match fname {
                "add" => {
                    self.count += args[0].int()?;
                    Ok(Value::Int(self.count))
                }
                "get" => Ok(Value::Int(self.count)),
                "block" => Err(ctx.block_current()),
                "sleep" => {
                    let d = ctx.now() + SimTime(args[0].int()? as u64);
                    Err(ctx.sleep_current_until(d))
                }
                "wake" => {
                    ctx.wake(ThreadId(args[0].int()? as u32))
                        .map_err(|_| ServiceError::InvalidArg)?;
                    Ok(Value::Unit)
                }
                other => Err(ServiceError::NoSuchFunction(other.to_owned())),
            }
        }
        fn reset(&mut self) {
            self.count = 0;
        }
        fn post_reboot(&mut self, _ctx: &mut ServiceCtx<'_>) {
            self.post_reboots += 1;
        }
    }

    fn setup() -> (Kernel, ComponentId, ComponentId, ThreadId) {
        let mut k = Kernel::with_costs(CostModel::free());
        let client = k.add_client_component("app");
        let svc = k.add_component("counter", Box::new(Counter::default()));
        k.grant(client, svc);
        let t = k.create_thread(client, Priority(10));
        (k, client, svc, t)
    }

    #[test]
    fn invoke_happy_path() {
        let (mut k, client, svc, t) = setup();
        assert_eq!(
            k.invoke(client, t, svc, "add", &[Value::Int(5)]).unwrap(),
            Value::Int(5)
        );
        assert_eq!(k.invoke(client, t, svc, "get", &[]).unwrap(), Value::Int(5));
        assert_eq!(k.stats().total_invocations(), 2);
    }

    #[test]
    fn invoke_without_capability_rejected() {
        let (mut k, _client, svc, t) = setup();
        let stranger = k.add_client_component("stranger");
        let err = k.invoke(stranger, t, svc, "get", &[]).unwrap_err();
        assert!(matches!(err, CallError::NoCapability { .. }));
    }

    #[test]
    fn invoke_unknown_component_rejected() {
        let (mut k, client, _svc, t) = setup();
        let err = k
            .invoke(client, t, ComponentId(99), "get", &[])
            .unwrap_err();
        assert!(matches!(err, CallError::NoSuchComponent(_)));
    }

    #[test]
    fn invoke_client_component_rejected() {
        let (mut k, client, _svc, t) = setup();
        let other = k.add_client_component("other");
        k.grant(client, other);
        let err = k.invoke(client, t, other, "get", &[]).unwrap_err();
        assert!(matches!(err, CallError::NoSuchComponent(_)));
    }

    #[test]
    fn faulty_component_raises_fault_on_invoke() {
        let (mut k, client, svc, t) = setup();
        k.fault(svc);
        assert!(k.is_faulty(svc));
        let err = k.invoke(client, t, svc, "get", &[]).unwrap_err();
        assert_eq!(err, CallError::Fault { component: svc });
        assert_eq!(k.stats().faulted_invocations[&svc], 1);
    }

    #[test]
    fn micro_reboot_resets_state_and_bumps_epoch() {
        let (mut k, client, svc, t) = setup();
        k.invoke(client, t, svc, "add", &[Value::Int(7)]).unwrap();
        k.fault(svc);
        let e0 = k.epoch_of(svc).unwrap();
        k.micro_reboot(svc).unwrap();
        assert!(!k.is_faulty(svc));
        assert_eq!(k.epoch_of(svc).unwrap(), e0.next());
        // State was wiped by reset().
        assert_eq!(k.invoke(client, t, svc, "get", &[]).unwrap(), Value::Int(0));
        assert_eq!(k.stats().total_reboots(), 1);
    }

    #[test]
    fn micro_reboot_of_client_component_rejected() {
        let (mut k, client, _svc, _t) = setup();
        assert!(k.micro_reboot(client).is_err());
    }

    #[test]
    fn blocking_and_waking() {
        let (mut k, client, svc, t) = setup();
        let err = k.invoke(client, t, svc, "block", &[]).unwrap_err();
        assert_eq!(err, CallError::WouldBlock);
        assert_eq!(
            k.thread(t).unwrap().state,
            ThreadState::Blocked { in_component: svc }
        );
        assert_eq!(k.threads_blocked_in(svc), vec![t]);

        let t2 = k.create_thread(client, Priority(10));
        k.invoke(client, t2, svc, "wake", &[Value::Int(i64::from(t.0))])
            .unwrap();
        assert!(k.thread(t).unwrap().state.is_runnable());
    }

    #[test]
    fn fault_wakes_blocked_threads() {
        let (mut k, client, svc, t) = setup();
        let _ = k.invoke(client, t, svc, "block", &[]);
        k.fault(svc);
        assert!(k.thread(t).unwrap().state.is_runnable());
        // Retried invocation observes the fault.
        assert!(matches!(
            k.invoke(client, t, svc, "block", &[]),
            Err(CallError::Fault { .. })
        ));
    }

    #[test]
    fn sleeping_and_time_advance() {
        let (mut k, client, svc, t) = setup();
        let err = k
            .invoke(client, t, svc, "sleep", &[Value::Int(1000)])
            .unwrap_err();
        assert_eq!(err, CallError::WouldBlock);
        assert_eq!(k.earliest_wakeup(), Some(SimTime(1000)));
        k.advance_to(SimTime(999));
        assert!(!k.thread(t).unwrap().state.is_runnable());
        k.advance_to(SimTime(1000));
        assert!(k.thread(t).unwrap().state.is_runnable());
        assert_eq!(k.earliest_wakeup(), None);
    }

    #[test]
    fn advance_never_goes_backwards() {
        let mut k = Kernel::with_costs(CostModel::free());
        k.advance_to(SimTime(500));
        k.advance_to(SimTime(100));
        assert_eq!(k.now(), SimTime(500));
    }

    #[test]
    fn next_runnable_respects_priority_and_round_robin() {
        let mut k = Kernel::with_costs(CostModel::free());
        let c = k.add_client_component("app");
        let hi = k.create_thread(c, Priority(1));
        let lo = k.create_thread(c, Priority(5));
        // Boot thread is priority 0 — park it.
        k.thread_mut(BOOT_THREAD).unwrap().state = ThreadState::Completed;
        assert_eq!(k.next_runnable(), Some(hi));
        k.thread_mut(hi).unwrap().dispatches += 1;
        // Same priority class unchanged: hi still beats lo on priority.
        assert_eq!(k.next_runnable(), Some(hi));
        k.thread_mut(hi).unwrap().state = ThreadState::Completed;
        assert_eq!(k.next_runnable(), Some(lo));
    }

    #[test]
    fn invocation_cost_advances_time() {
        let mut k = Kernel::with_costs(CostModel::paper_defaults());
        let client = k.add_client_component("app");
        let svc = k.add_component("counter", Box::new(Counter::default()));
        k.grant(client, svc);
        let t = k.create_thread(client, Priority(3));
        let before = k.now();
        k.invoke(client, t, svc, "get", &[]).unwrap();
        assert_eq!(k.now(), before + CostModel::paper_defaults().invocation);
    }

    #[test]
    fn upcall_bypasses_capabilities_and_counts() {
        let (mut k, _client, svc, _t) = setup();
        let r = k.upcall(svc, BOOT_THREAD, "get", &[]).unwrap();
        assert_eq!(r, Value::Int(0));
        assert_eq!(k.stats().upcalls, 1);
    }

    #[test]
    fn post_reboot_hook_runs() {
        let (mut k, client, svc, t) = setup();
        k.fault(svc);
        k.micro_reboot(svc).unwrap();
        // post_reboots survives reset() because reset only clears count.
        // Verify indirectly: counter still works.
        assert_eq!(k.invoke(client, t, svc, "get", &[]).unwrap(), Value::Int(0));
    }

    #[test]
    fn reentrant_invocation_rejected() {
        // A service that calls back into itself.
        #[derive(Debug)]
        struct Reenter {
            me: ComponentId,
        }
        impl Service for Reenter {
            fn interface(&self) -> &'static str {
                "reenter"
            }
            fn call(
                &mut self,
                ctx: &mut ServiceCtx<'_>,
                _fname: &str,
                _args: &[Value],
            ) -> Result<Value, ServiceError> {
                match ctx.invoke(self.me, "again", &[]) {
                    Err(CallError::Reentrant(_)) => Ok(Value::Int(1)),
                    _ => Ok(Value::Int(0)),
                }
            }
            fn reset(&mut self) {}
        }
        let mut k = Kernel::with_costs(CostModel::free());
        let client = k.add_client_component("app");
        let svc = k.add_component("reenter", Box::new(Reenter { me: ComponentId(2) }));
        k.grant(client, svc);
        let t = k.create_thread(client, Priority(3));
        assert_eq!(k.invoke(client, t, svc, "go", &[]).unwrap(), Value::Int(1));
    }

    #[test]
    fn mid_call_fault_surfaces_as_fault() {
        // A service that faults itself during the call (the SWIFI case).
        #[derive(Debug)]
        struct SelfFault {
            me: ComponentId,
        }
        impl Service for SelfFault {
            fn interface(&self) -> &'static str {
                "selffault"
            }
            fn call(
                &mut self,
                ctx: &mut ServiceCtx<'_>,
                _fname: &str,
                _args: &[Value],
            ) -> Result<Value, ServiceError> {
                ctx.kernel.fault(self.me);
                Ok(Value::Int(7))
            }
            fn reset(&mut self) {}
        }
        let mut k = Kernel::with_costs(CostModel::free());
        let client = k.add_client_component("app");
        let svc = k.add_component("selffault", Box::new(SelfFault { me: ComponentId(2) }));
        k.grant(client, svc);
        let t = k.create_thread(client, Priority(3));
        let err = k.invoke(client, t, svc, "go", &[]).unwrap_err();
        assert_eq!(err, CallError::Fault { component: svc });
    }
}
