//! The runtime shell around the pure kernel core.
//!
//! All kernel *decisions* live in `composite-core`:
//! [`step`](composite_core::step) consumes a [`KernelState`] and an
//! [`Event`] and returns the successor state plus an ordered
//! [`Effects`] list. This module owns everything the pure core cannot:
//! the flight-recorder ring, the metrics registry, the event counters,
//! the component-name interner, and the `Box<dyn Service>` images —
//! and merely drives `step` and folds the returned effects into those
//! facilities. Effect order mirrors the order the imperative kernel
//! used to perform its trace/stats writes, so traces stay
//! byte-identical across the split.
//!
//! The public API is unchanged: callers still see `Kernel::invoke`,
//! `fault`, `micro_reboot`, and friends. New here: [`Kernel::state`]
//! exposes the core state snapshot (O(1) clone, `Arc`-shared tables)
//! for the model checker's equivalence harness and `sgtrace replay`
//! time travel.

use composite_core::effect::{Effect, Effects};
use composite_core::event::{AdmitOutcome, Event, RebootOutcome, Reply, WakeOutcome};
use composite_core::state::KernelState;
pub use composite_core::state::{ComponentState, EscalationPolicy, BOOTER, BOOT_THREAD};
use composite_core::step::step_in_place;

use crate::capability::CapTable;
use crate::component::{Service, ServiceCtx};
use crate::error::{CallError, KernelError, ServiceError};
use crate::ids::{ComponentId, Epoch, Priority, ThreadId};
use crate::intern::{Interner, NameId};
use crate::metrics::{Mechanism, MetricsRegistry};
use crate::pages::PageTables;
use crate::stats::KernelStats;
use crate::telemetry::Telemetry;
use crate::thread::{Thread, ThreadState};
use crate::time::{CostModel, SimTime};
use crate::trace::{
    FlightRecorder, TraceEvent, TraceEventKind, TraceScope, TraceShard, MAX_EPISODE_DEPTH,
};
use crate::value::Value;

/// The simulated kernel: the pure core state plus the runtime
/// facilities the core describes through effects. See the
/// [module docs](self) and the [crate docs](crate) for the big
/// picture.
#[derive(Debug)]
pub struct Kernel {
    /// The pure core state — the single source of truth for every
    /// kernel decision.
    state: KernelState,
    names: Interner,
    /// Interned component names, indexed by [`ComponentId`]; resolved
    /// only on cold paths (trace dumps, snapshots).
    comp_names: Vec<NameId>,
    /// Service images, indexed by [`ComponentId`]. `None` for pure
    /// client components, or while a service is checked out during one
    /// of its own calls (the core's `has_service` flag distinguishes
    /// the two).
    services: Vec<Option<Box<dyn Service>>>,
    stats: KernelStats,
    metrics: MetricsRegistry,
    trace: FlightRecorder,
    telemetry: Telemetry,
}

impl Kernel {
    /// A fresh kernel with the paper-calibrated [`CostModel`], containing
    /// only the booter component and the boot thread.
    #[must_use]
    pub fn new() -> Self {
        Self::with_costs(CostModel::paper_defaults())
    }

    /// A fresh kernel with an explicit cost model.
    #[must_use]
    pub fn with_costs(costs: CostModel) -> Self {
        let mut k = Self {
            state: KernelState::with_costs(costs),
            names: Interner::new(),
            comp_names: Vec::new(),
            services: Vec::new(),
            stats: KernelStats::new(),
            metrics: MetricsRegistry::default(),
            trace: FlightRecorder::default(),
            telemetry: Telemetry::default(),
        };
        let booter = k.add_client_component("booter");
        debug_assert_eq!(booter, BOOTER);
        let boot_thread = k.create_thread(BOOTER, Priority::HIGHEST);
        debug_assert_eq!(boot_thread, BOOT_THREAD);
        k
    }

    // ------------------------------------------------------------------
    // The step/effect pump
    // ------------------------------------------------------------------

    /// Drive one event through the pure core and fold its effects into
    /// the runtime facilities. Returns the core's typed reply.
    fn apply(&mut self, ev: Event) -> Reply {
        let fx = step_in_place(&mut self.state, &ev);
        self.absorb(&fx);
        fx.reply
    }

    /// Like [`Kernel::apply`], but returns the trace span of the last
    /// mechanism firing the effects produced (for scoping nested
    /// recovery work under a U0 upcall).
    fn apply_span(&mut self, ev: Event) -> Option<u64> {
        let fx = step_in_place(&mut self.state, &ev);
        self.absorb(&fx)
    }

    /// Fold one effect list, in order, into stats, metrics, and the
    /// flight recorder. The order is the replay contract: it matches
    /// the sequence of writes the imperative kernel performed, so the
    /// resulting trace is byte-identical.
    fn absorb(&mut self, fx: &Effects) -> Option<u64> {
        let mut fault_span: Option<u64> = None;
        let mut last_mech: Option<u64> = None;
        for e in fx.iter() {
            match *e {
                Effect::CountInvocation(c) => {
                    self.stats.count_invocation(c);
                    self.telemetry.record_invocation(c, self.state.time);
                }
                Effect::CountFaultedInvocation(c) => self.stats.count_faulted_invocation(c),
                Effect::CountFault(c) => {
                    self.stats.count_fault(c);
                    self.telemetry.record_fault(c, self.state.time);
                }
                Effect::CountNestedFault(c) => self.stats.count_nested_fault(c),
                Effect::CountReboot(c) => self.stats.count_reboot(c),
                Effect::CountColdRestart(c) => self.stats.count_cold_restart(c),
                Effect::CountWatchdogFire(c) => self.stats.count_watchdog_fire(c),
                Effect::CountDegradedRejection(c) => self.stats.count_degraded_rejection(c),
                Effect::CountUpcall => self.stats.upcalls += 1,
                Effect::ThreadBlocked {
                    thread,
                    in_component,
                } => {
                    self.stats.blocks += 1;
                    self.trace_instant(in_component, thread, TraceEventKind::Block);
                }
                Effect::ThreadSlept {
                    thread,
                    home,
                    until,
                } => {
                    self.stats.blocks += 1;
                    self.trace_instant(home, thread, TraceEventKind::Sleep { until });
                }
                Effect::ThreadWoken { thread, site } => {
                    self.stats.wakeups += 1;
                    self.trace_instant(site, thread, TraceEventKind::Wake);
                }
                Effect::FaultRaised {
                    component,
                    epoch,
                    nested,
                } => {
                    fault_span = self.on_fault_raised(component, epoch, nested);
                }
                Effect::FaultWoke { component, thread } => {
                    self.stats.wakeups += 1;
                    if self.trace.is_enabled() {
                        self.trace_instant_with_parent(
                            component,
                            thread,
                            fault_span,
                            TraceEventKind::Wake,
                        );
                    }
                }
                Effect::WatchdogFired { component, thread } => {
                    self.trace_instant(component, thread, TraceEventKind::WatchdogFired);
                }
                Effect::DegradedMarked { component, until } => {
                    self.trace_instant(
                        component,
                        BOOT_THREAD,
                        TraceEventKind::DegradedMarked { until },
                    );
                }
                Effect::MechanismFired {
                    component,
                    mech,
                    n,
                    thread,
                    dur,
                } => {
                    last_mech = self.record_mechanism(component, mech, n, thread, dur);
                }
            }
        }
        last_mech
    }

    /// The episode bookkeeping a raised fault triggers: clamp or close
    /// episodes, emit `fault_injected`, and open the new episode rooted
    /// at its span. Returns the fault span (when tracing) so the
    /// subsequent eager wakeups parent to it.
    fn on_fault_raised(&mut self, c: ComponentId, epoch: Epoch, nested: bool) -> Option<u64> {
        if !self.trace.is_enabled() {
            return None;
        }
        let (parent, depth) = if nested {
            // Keep the in-flight episode open; the new fault becomes
            // a child in the episode tree. Clamp the stack depth by
            // force-closing the innermost episode first.
            if self.trace.episode_depth(c) >= MAX_EPISODE_DEPTH {
                self.trace
                    .end_episode(c, epoch, self.state.time, BOOT_THREAD);
            }
            (self.trace.causal_parent(c), self.trace.episode_depth(c))
        } else {
            // The fault roots a new top-level episode: close any
            // episode still open from the previous fault of this
            // component first.
            self.trace
                .end_episode(c, epoch, self.state.time, BOOT_THREAD);
            (None, 0)
        };
        let span = self.trace.alloc_span();
        self.trace.record(TraceEvent {
            span,
            parent,
            time: self.state.time,
            dur: SimTime::ZERO,
            thread: BOOT_THREAD,
            component: c,
            epoch,
            kind: TraceEventKind::FaultInjected { depth },
        });
        self.trace.begin_episode(c, span);
        Some(span)
    }

    // ------------------------------------------------------------------
    // Component management
    // ------------------------------------------------------------------

    /// Register a service component. Returns its id.
    pub fn add_component(&mut self, name: &str, service: Box<dyn Service>) -> ComponentId {
        let reply = self.apply(Event::AddComponent { has_service: true });
        let Reply::Component(id) = reply else {
            unreachable!("AddComponent always assigns an id")
        };
        self.comp_names.push(self.names.intern(name));
        self.services.push(Some(service));
        debug_assert_eq!(self.comp_names.len(), self.state.components.len());
        id
    }

    /// Register a pure client component (an application protection domain
    /// exporting no interface).
    pub fn add_client_component(&mut self, name: &str) -> ComponentId {
        let reply = self.apply(Event::AddComponent { has_service: false });
        let Reply::Component(id) = reply else {
            unreachable!("AddComponent always assigns an id")
        };
        self.comp_names.push(self.names.intern(name));
        self.services.push(None);
        id
    }

    /// Grant `client` the capability to invoke `server`.
    pub fn grant(&mut self, client: ComponentId, server: ComponentId) {
        let _ = self.apply(Event::Grant { client, server });
    }

    /// The capability table (read-only).
    #[must_use]
    pub fn caps(&self) -> &CapTable {
        &self.state.caps
    }

    /// The pure core state (read-only). O(1) to clone: every table is
    /// `Arc`-shared, so a snapshot costs a handful of refcount bumps —
    /// the model checker's equivalence harness and `sgtrace replay`
    /// time travel build on this.
    #[must_use]
    pub fn state(&self) -> &KernelState {
        &self.state
    }

    /// An O(1) snapshot of the core state (copy-on-write tables).
    #[must_use]
    pub fn snapshot(&self) -> KernelState {
        self.state.clone()
    }

    /// A component's name.
    #[must_use]
    pub fn component_name(&self, c: ComponentId) -> Option<&str> {
        self.comp_names
            .get(c.0 as usize)
            .map(|&n| self.names.resolve(n))
    }

    /// The interface exported by a component, if it is a service.
    #[must_use]
    pub fn interface_of(&self, c: ComponentId) -> Option<&'static str> {
        self.services
            .get(c.0 as usize)
            .and_then(|s| s.as_deref())
            .map(Service::interface)
    }

    /// Number of components (including the booter).
    #[must_use]
    pub fn component_count(&self) -> usize {
        self.state.components.len()
    }

    /// All component ids, in creation order.
    pub fn component_ids(&self) -> impl Iterator<Item = ComponentId> + '_ {
        (0..self.state.components.len() as u32).map(ComponentId)
    }

    /// Whether a component is currently faulty.
    #[must_use]
    pub fn is_faulty(&self, c: ComponentId) -> bool {
        self.state.is_faulty(c)
    }

    /// The micro-reboot epoch of a component.
    #[must_use]
    pub fn epoch_of(&self, c: ComponentId) -> Option<Epoch> {
        self.state.epoch_of(c)
    }

    // ------------------------------------------------------------------
    // Threads
    // ------------------------------------------------------------------

    /// Create a runnable thread homed in `home` with the given fixed
    /// priority.
    pub fn create_thread(&mut self, home: ComponentId, priority: Priority) -> ThreadId {
        let reply = self.apply(Event::AddThread { home, priority });
        let Reply::Thread(id) = reply else {
            unreachable!("AddThread always assigns an id")
        };
        id
    }

    /// Immutable thread access.
    ///
    /// # Errors
    ///
    /// [`KernelError::NoSuchThread`] for unknown ids.
    pub fn thread(&self, t: ThreadId) -> Result<&Thread, KernelError> {
        self.state.thread(t).ok_or(KernelError::NoSuchThread(t))
    }

    /// Mutable thread access (executor privilege: dispatch accounting
    /// and workload-driven state transitions happen outside the event
    /// alphabet).
    ///
    /// # Errors
    ///
    /// [`KernelError::NoSuchThread`] for unknown ids.
    pub fn thread_mut(&mut self, t: ThreadId) -> Result<&mut Thread, KernelError> {
        let idx = t.0 as usize;
        if idx >= self.state.threads.len() {
            return Err(KernelError::NoSuchThread(t));
        }
        Ok(&mut self.state.threads_mut()[idx])
    }

    /// Number of threads.
    #[must_use]
    pub fn thread_count(&self) -> usize {
        self.state.threads.len()
    }

    /// All thread ids.
    pub fn thread_ids(&self) -> impl Iterator<Item = ThreadId> + '_ {
        (0..self.state.threads.len() as u32).map(ThreadId)
    }

    /// Mark a thread blocked inside `component` (called via
    /// [`ServiceCtx::block_current`]).
    pub(crate) fn block_thread(&mut self, t: ThreadId, component: ComponentId) {
        let _ = self.apply(Event::BlockThread {
            thread: t,
            in_component: component,
        });
    }

    /// Put a thread to sleep until `deadline`.
    pub(crate) fn sleep_thread(&mut self, t: ThreadId, deadline: SimTime) {
        let _ = self.apply(Event::SleepThread {
            thread: t,
            until: deadline,
        });
    }

    /// Wake a blocked or sleeping thread. Waking a runnable thread is a
    /// no-op.
    ///
    /// # Errors
    ///
    /// [`KernelError::NoSuchThread`] for unknown ids,
    /// [`KernelError::BadThreadState`] for completed/crashed threads.
    pub fn wake_thread(&mut self, t: ThreadId) -> Result<(), KernelError> {
        match self.apply(Event::WakeThread { thread: t }) {
            Reply::Wake(WakeOutcome::Woken | WakeOutcome::AlreadyRunnable) => Ok(()),
            Reply::Wake(WakeOutcome::NoSuchThread) => Err(KernelError::NoSuchThread(t)),
            Reply::Wake(WakeOutcome::BadState) => Err(KernelError::BadThreadState(t)),
            _ => unreachable!("WakeThread replies Wake"),
        }
    }

    /// Threads currently blocked inside `component` (kernel reflection
    /// used by T0 eager wakeup and scheduler recovery).
    #[must_use]
    pub fn threads_blocked_in(&self, component: ComponentId) -> Vec<ThreadId> {
        self.state
            .threads
            .iter()
            .filter(|t| {
                t.state
                    == ThreadState::Blocked {
                        in_component: component,
                    }
            })
            .map(|t| t.id)
            .collect()
    }

    /// The runnable thread to dispatch next: highest priority, ties
    /// broken by fewest dispatches then lowest id (round-robin-ish and
    /// fully deterministic).
    #[must_use]
    pub fn next_runnable(&self) -> Option<ThreadId> {
        self.state
            .threads
            .iter()
            .filter(|t| t.state.is_runnable())
            .min_by_key(|t| (t.priority, t.dispatches, t.id))
            .map(|t| t.id)
    }

    /// The earliest pending sleep deadline, if any thread is sleeping.
    #[must_use]
    pub fn earliest_wakeup(&self) -> Option<SimTime> {
        self.state
            .threads
            .iter()
            .filter_map(|t| match t.state {
                ThreadState::SleepingUntil(d) => Some(d),
                _ => None,
            })
            .min()
    }

    /// Advance virtual time to `t` (never backwards) and wake every
    /// sleeper whose deadline has passed.
    pub fn advance_to(&mut self, t: SimTime) {
        let _ = self.apply(Event::AdvanceTo(t));
    }

    // ------------------------------------------------------------------
    // Time, costs, stats, pages
    // ------------------------------------------------------------------

    /// Current virtual time.
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.state.time
    }

    /// Charge an explicit virtual-time cost (used by the recovery
    /// runtime for walks, storage round trips, upcalls).
    pub fn charge(&mut self, cost: SimTime) {
        let _ = self.apply(Event::Charge(cost));
    }

    /// The cost model.
    #[must_use]
    pub fn costs(&self) -> &CostModel {
        &self.state.costs
    }

    /// Replace the cost model.
    pub fn set_costs(&mut self, costs: CostModel) {
        let _ = self.apply(Event::SetCosts(costs));
    }

    /// Event counters.
    #[must_use]
    pub fn stats(&self) -> &KernelStats {
        &self.stats
    }

    /// Recovery-observability metrics (read side; harnesses snapshot
    /// these via [`crate::metrics::MetricsSnapshot::from_kernel`]).
    #[must_use]
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// Recovery-mechanism metrics (write side; the C³/SuperGlue recovery
    /// runtimes record mechanism firings here).
    pub fn metrics_mut(&mut self) -> &mut MetricsRegistry {
        &mut self.metrics
    }

    /// Record the simulated time one recovery episode on `c` took: feeds
    /// both the aggregate [`MetricsRegistry`] latency histogram and —
    /// when `--series` telemetry is on — the window the episode started
    /// in. The recovery runtimes call this instead of writing to the
    /// registry directly so the two views can never disagree.
    pub fn record_recovery_latency(&mut self, c: ComponentId, d: SimTime) {
        self.metrics.record_recovery_latency(c, d);
        self.telemetry
            .record_recovery_latency(c, d, self.state.time.saturating_sub(d));
    }

    /// Turn windowed `--series` telemetry on with the given window width
    /// (see [`crate::telemetry::Telemetry`]).
    pub fn enable_telemetry(&mut self, window: SimTime) {
        self.telemetry.enable(window);
    }

    /// The windowed telemetry accumulator (read side; harnesses snapshot
    /// it via [`crate::telemetry::SeriesSnapshot::from_kernel`]).
    #[must_use]
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// Count a **U0** upcall dispatch into the creator of a descriptor
    /// of `server` (the recovery runtime calls this when it performs
    /// U0): charges the upcall cost and records the mechanism through
    /// the [`Kernel::record_mechanism`] choke point, so the counter and
    /// the trace event cannot disagree. Returns the trace span (when
    /// tracing) for scoping the nested creator-side recovery.
    pub fn count_upcall(&mut self, server: ComponentId, thread: ThreadId) -> Option<u64> {
        self.apply_span(Event::ChargeUpcall { server, thread })
    }

    // ------------------------------------------------------------------
    // Correlated-fault hardening: escalation, watchdog, nested recovery
    // ------------------------------------------------------------------

    /// Install a reboot-storm [`EscalationPolicy`] (disabled by default).
    pub fn set_escalation(&mut self, policy: EscalationPolicy) {
        let _ = self.apply(Event::SetEscalation(policy));
    }

    /// The active escalation policy.
    #[must_use]
    pub fn escalation(&self) -> &EscalationPolicy {
        &self.state.escalation
    }

    /// Arm the per-invocation watchdog: a service that calls
    /// [`ServiceCtx::progress`](crate::component::ServiceCtx::progress)
    /// more than `budget` times inside one invocation is declared hung
    /// and converted into a detected fault. Zero disables the watchdog.
    pub fn set_watchdog_budget(&mut self, budget: u64) {
        let _ = self.apply(Event::SetWatchdogBudget(budget));
    }

    /// The per-invocation watchdog step budget (0 = disabled).
    #[must_use]
    pub fn watchdog_budget(&self) -> u64 {
        self.state.watchdog_budget
    }

    /// Whether `c` is currently degraded (clients fail fast until the
    /// booter's cold restart).
    #[must_use]
    pub fn is_degraded(&self, c: ComponentId) -> bool {
        self.state.is_degraded(c)
    }

    /// The virtual time at which `c`'s degraded mark clears, if marked.
    #[must_use]
    pub fn degraded_until(&self, c: ComponentId) -> Option<SimTime> {
        self.state.degraded_until(c)
    }

    /// Mark the start of a recovery action (micro-reboot, walk replay,
    /// creator upcall) on `c`. While at least one recovery is in flight,
    /// any fault raised is *nested*: it opens a child recovery episode
    /// instead of tearing down the in-flight one. Also the point where an
    /// armed during-recovery fault fires (see
    /// [`Kernel::arm_fault_during_recovery`]). Must be paired with
    /// [`Kernel::end_recovery`].
    pub fn begin_recovery(&mut self, c: ComponentId) {
        let _ = self.apply(Event::BeginRecovery { component: c });
    }

    /// Close the innermost recovery action on `c` opened by
    /// [`Kernel::begin_recovery`].
    pub fn end_recovery(&mut self, c: ComponentId) {
        let _ = self.apply(Event::EndRecovery { component: c });
    }

    /// How many recovery actions are currently in flight.
    #[must_use]
    pub fn recovery_depth(&self) -> usize {
        self.state.recovery_depth()
    }

    /// Whether any recovery action is in flight.
    #[must_use]
    pub fn recovery_active(&self) -> bool {
        !self.state.active_recoveries.is_empty()
    }

    /// Arm a one-shot fault on `victim` that fires the moment the next
    /// recovery action begins — the SWIFI `during-recovery` injection
    /// hook (deterministic: the trigger is a simulation event, not a
    /// timer).
    pub fn arm_fault_during_recovery(&mut self, victim: ComponentId) {
        let _ = self.apply(Event::ArmRecoveryFault { victim });
    }

    /// Drop an armed during-recovery fault that never fired (no recovery
    /// action began while it was armed).
    pub fn disarm_recovery_fault(&mut self) {
        let _ = self.apply(Event::DisarmRecoveryFault);
    }

    /// Declare the in-flight invocation on `c` hung: counts a watchdog
    /// fire, emits the [`TraceEventKind::WatchdogFired`] marker, and
    /// converts the hang into a detected fail-stop fault so it enters
    /// the ordinary recovery machinery.
    pub fn watchdog_expire(&mut self, c: ComponentId, thread: ThreadId) {
        let _ = self.apply(Event::WatchdogExpire {
            component: c,
            thread,
        });
    }

    /// One watchdog tick from [`ServiceCtx::progress`]: returns `true`
    /// once `ticks` exceeds the armed budget. The expiry itself fires
    /// exactly once, on the first tick past the budget — a hung service
    /// that keeps reporting progress after the watchdog has fired must
    /// not re-fault the component (which would re-count the fault and
    /// re-open recovery episodes on every subsequent tick).
    pub(crate) fn watchdog_tick(&mut self, c: ComponentId, thread: ThreadId, ticks: u64) -> bool {
        let budget = self.state.watchdog_budget;
        if budget == 0 || ticks <= budget {
            return false;
        }
        if ticks == budget + 1 {
            self.watchdog_expire(c, thread);
        }
        true
    }

    // ------------------------------------------------------------------
    // Flight recorder
    // ------------------------------------------------------------------

    /// Turn the flight recorder on with the given ring capacity.
    pub fn enable_tracing(&mut self, capacity: usize) {
        self.trace.enable(capacity);
    }

    /// Whether the flight recorder is recording.
    #[must_use]
    pub fn tracing_enabled(&self) -> bool {
        self.trace.is_enabled()
    }

    /// Drain the flight recorder into a self-contained [`TraceShard`]:
    /// closes every open recovery episode (emitting its `episode_end`),
    /// snapshots the component-name table, and resets the recorder for
    /// continued use.
    pub fn take_trace(&mut self, label: &str) -> TraceShard {
        for c in self.trace.open_episode_components() {
            let epoch = self.epoch_of(c).unwrap_or_default();
            self.trace
                .end_episode(c, epoch, self.state.time, BOOT_THREAD);
        }
        let (events, dropped, dropped_recovery, span_count) = self.trace.drain();
        TraceShard {
            label: label.to_owned(),
            names: self
                .comp_names
                .iter()
                .map(|&n| self.names.resolve(n).to_owned())
                .collect(),
            events,
            dropped,
            dropped_recovery,
            span_count,
        }
    }

    /// The single choke point through which every mechanism firing is
    /// counted: increments the [`MetricsRegistry`] *and* (when tracing)
    /// emits the matching [`TraceEventKind::MechanismFired`] event, so
    /// the two views are equal by construction. `dur` is the simulated
    /// time the firing itself consumed (already charged by the caller);
    /// the returned span can parent nested recovery work.
    pub fn record_mechanism(
        &mut self,
        c: ComponentId,
        m: Mechanism,
        n: u64,
        thread: ThreadId,
        dur: SimTime,
    ) -> Option<u64> {
        if n == 0 {
            return None;
        }
        self.metrics.record_many(c, m, n);
        self.telemetry
            .record_mechanism(c, m, n, self.state.time.saturating_sub(dur));
        if !self.trace.is_enabled() {
            return None;
        }
        let parent = self.trace.causal_parent(c);
        let span = self.trace.alloc_span();
        let epoch = self.epoch_of(c).unwrap_or_default();
        self.trace.record(TraceEvent {
            span,
            parent,
            time: self.state.time.saturating_sub(dur),
            dur,
            thread,
            component: c,
            epoch,
            kind: TraceEventKind::MechanismFired { mech: m, n },
        });
        Some(span)
    }

    /// Emit one instant (zero-duration) trace event; no-op while
    /// disabled. Stubs use this for descriptor create/teardown markers.
    pub fn trace_instant(&mut self, c: ComponentId, thread: ThreadId, kind: TraceEventKind) {
        if !self.trace.is_enabled() {
            return;
        }
        let parent = self.trace.causal_parent(c);
        let span = self.trace.alloc_span();
        let epoch = self.epoch_of(c).unwrap_or_default();
        self.trace.record(TraceEvent {
            span,
            parent,
            time: self.state.time,
            dur: SimTime::ZERO,
            thread,
            component: c,
            epoch,
            kind,
        });
    }

    /// Open a timed recovery scope on `c`: pre-assigns the span (so
    /// nested events parent to it) and remembers the start time. Pair
    /// with [`Kernel::trace_close`]. Returns `None` while disabled.
    pub fn trace_open(&mut self, c: ComponentId) -> Option<TraceScope> {
        self.trace_open_at(c, self.state.time)
    }

    /// [`Kernel::trace_open`] with an explicit start time: the reboot
    /// path charges the core *before* opening the scope, but the scope
    /// must span the charge.
    fn trace_open_at(&mut self, c: ComponentId, start: SimTime) -> Option<TraceScope> {
        if !self.trace.is_enabled() {
            return None;
        }
        let parent = self.trace.causal_parent(c);
        let span = self.trace.alloc_span();
        self.trace.push_scope(span);
        Some(TraceScope {
            span,
            parent,
            start,
        })
    }

    /// Close a scope opened by [`Kernel::trace_open`], emitting `kind`
    /// with the measured simulated duration.
    pub fn trace_close(
        &mut self,
        scope: Option<TraceScope>,
        c: ComponentId,
        thread: ThreadId,
        kind: TraceEventKind,
    ) {
        let Some(s) = scope else { return };
        self.trace.pop_scope();
        let epoch = self.epoch_of(c).unwrap_or_default();
        self.trace.record(TraceEvent {
            span: s.span,
            parent: s.parent,
            time: s.start,
            dur: self.state.time.saturating_sub(s.start),
            thread,
            component: c,
            epoch,
            kind,
        });
    }

    /// Push an already-emitted span as the current recovery scope (used
    /// to hang creator-side U0 recovery under the upcall event). No-op
    /// on `None`.
    pub fn trace_push_scope(&mut self, span: Option<u64>) {
        if let Some(s) = span {
            self.trace.push_scope(s);
        }
    }

    /// Pop the scope pushed by [`Kernel::trace_push_scope`]. No-op on
    /// `None`.
    pub fn trace_pop_scope(&mut self, span: Option<u64>) {
        if span.is_some() {
            self.trace.pop_scope();
        }
    }

    /// Simulated page tables (read-only reflection).
    #[must_use]
    pub fn pages(&self) -> &PageTables {
        &self.state.pages
    }

    /// Simulated page tables (mutation — memory-manager privilege).
    pub fn pages_mut(&mut self) -> &mut PageTables {
        self.state.pages_mut()
    }

    // ------------------------------------------------------------------
    // Invocation path
    // ------------------------------------------------------------------

    /// Synchronous, thread-migrating component invocation.
    ///
    /// Checks the capability, rejects faulty targets, migrates the thread
    /// into the server, runs [`Service::call`], and migrates back.
    ///
    /// # Errors
    ///
    /// * [`CallError::NoSuchComponent`] / [`CallError::NoCapability`] for
    ///   bad targets;
    /// * [`CallError::Fault`] when the target is faulty — the
    ///   inter-component exception that triggers stub recovery;
    /// * [`CallError::WouldBlock`] when the service blocked the thread;
    /// * [`CallError::Reentrant`] when the thread already executes in the
    ///   target;
    /// * [`CallError::Service`] for server-level errors.
    pub fn invoke(
        &mut self,
        client: ComponentId,
        thread: ThreadId,
        target: ComponentId,
        fname: &str,
        args: &[Value],
    ) -> Result<Value, CallError> {
        self.invoke_inner(client, thread, target, fname, args, false)
    }

    fn invoke_inner(
        &mut self,
        client: ComponentId,
        thread: ThreadId,
        target: ComponentId,
        fname: &str,
        args: &[Value],
        bypass_caps: bool,
    ) -> Result<Value, CallError> {
        // Admission loop: the core decides whether the call may proceed;
        // a degraded target whose cooldown elapsed needs one cold
        // restart (which clears the mark, so the loop runs at most
        // twice).
        loop {
            let reply = self.apply(Event::InvokeAdmit {
                client,
                thread,
                target,
                bypass_caps,
            });
            let Reply::Admit(outcome) = reply else {
                unreachable!("InvokeAdmit replies Admit")
            };
            match outcome {
                AdmitOutcome::Admitted => break,
                AdmitOutcome::NoSuchComponent | AdmitOutcome::NoSuchThread => {
                    return Err(CallError::NoSuchComponent(target));
                }
                AdmitOutcome::NoCapability => {
                    return Err(CallError::NoCapability { client, target });
                }
                AdmitOutcome::Degraded => {
                    // Fail fast while the degraded cooldown holds: no
                    // thread migration, no recovery work, just a cheap
                    // rejection (already counted by the core).
                    return Err(CallError::Degraded { component: target });
                }
                AdmitOutcome::NeedColdRestart => {
                    // Cooldown elapsed: the booter performs the cold
                    // restart that clears the mark, then the call
                    // proceeds normally.
                    self.cold_restart(target)
                        .map_err(|_| CallError::NoSuchComponent(target))?;
                }
                AdmitOutcome::Faulty => {
                    if self.trace.is_enabled() {
                        let parent = self.trace.causal_parent(target);
                        let span = self.trace.alloc_span();
                        let epoch = self.epoch_of(target).unwrap_or_default();
                        self.trace.record(TraceEvent {
                            span,
                            parent,
                            time: self.state.time,
                            dur: SimTime::ZERO,
                            thread,
                            component: target,
                            epoch,
                            kind: TraceEventKind::InvokeEnter {
                                function: fname.to_owned(),
                                client,
                            },
                        });
                        self.trace_instant_with_parent(
                            target,
                            thread,
                            Some(span),
                            TraceEventKind::InvokeExit { outcome: "fault" },
                        );
                    }
                    return Err(CallError::Fault { component: target });
                }
                AdmitOutcome::Reentrant => return Err(CallError::Reentrant(target)),
            }
        }
        // The thread has migrated and the invocation cost is charged.
        let enter_span = if self.trace.is_enabled() {
            let parent = self.trace.causal_parent(target);
            let span = self.trace.alloc_span();
            let epoch = self.epoch_of(target).unwrap_or_default();
            self.trace.record(TraceEvent {
                span,
                parent,
                time: self.state.time,
                dur: SimTime::ZERO,
                thread,
                component: target,
                epoch,
                kind: TraceEventKind::InvokeEnter {
                    function: fname.to_owned(),
                    client,
                },
            });
            self.trace.push_invoke(span);
            Some(span)
        } else {
            None
        };

        // Check the service out so it can re-enter the kernel.
        let mut service = match self.services[target.0 as usize].take() {
            Some(s) => s,
            None => {
                let _ = self.apply(Event::InvokeAbort { thread, target });
                if let Some(enter) = enter_span {
                    self.trace.pop_invoke();
                    self.trace_instant_with_parent(
                        target,
                        thread,
                        Some(enter),
                        TraceEventKind::InvokeExit { outcome: "err" },
                    );
                }
                return Err(CallError::NoSuchComponent(target));
            }
        };
        let mut ctx = ServiceCtx {
            kernel: self,
            this: target,
            client,
            thread,
            ticks: 0,
        };
        let result = service.call(&mut ctx, fname, args);
        self.services[target.0 as usize] = Some(service);
        let _ = self.apply(Event::InvokeFinish {
            thread,
            target,
            ok: result.is_ok(),
        });

        let ret = match result {
            Ok(v) => {
                // The server may itself have faulted mid-call (injected
                // while executing): surface that instead of the value.
                if self.state.is_faulty(target) {
                    Err(CallError::Fault { component: target })
                } else {
                    Ok(v)
                }
            }
            Err(ServiceError::WouldBlock) => Err(CallError::WouldBlock),
            // A service error from a now-faulty server means the fault
            // interrupted the call (e.g. the watchdog fired mid-call):
            // surface the inter-component exception so stubs recover.
            Err(_) if self.state.is_faulty(target) => Err(CallError::Fault { component: target }),
            Err(e) => Err(CallError::Service(e)),
        };
        if let Some(enter) = enter_span {
            self.trace.pop_invoke();
            let outcome = match &ret {
                Ok(_) => "ok",
                Err(CallError::Fault { .. }) => "fault",
                Err(CallError::WouldBlock) => "would-block",
                Err(_) => "err",
            };
            self.trace_instant_with_parent(
                target,
                thread,
                Some(enter),
                TraceEventKind::InvokeExit { outcome },
            );
        }
        ret
    }

    /// Emit an instant event with an explicit causal parent (invoke
    /// exits pair with their enter span).
    fn trace_instant_with_parent(
        &mut self,
        c: ComponentId,
        thread: ThreadId,
        parent: Option<u64>,
        kind: TraceEventKind,
    ) {
        let span = self.trace.alloc_span();
        let epoch = self.epoch_of(c).unwrap_or_default();
        self.trace.record(TraceEvent {
            span,
            parent,
            time: self.state.time,
            dur: SimTime::ZERO,
            thread,
            component: c,
            epoch,
            kind,
        });
    }

    /// Upcall into a component (bypasses the capability check — upcalls
    /// are kernel/booter-initiated, step (4)/(8) of §III-D). The bypass
    /// is admission-level: the capability table is *not* modified (an
    /// earlier version leaked a permanent booter→target grant here).
    ///
    /// # Errors
    ///
    /// As for [`Kernel::invoke`], minus the capability check.
    pub fn upcall(
        &mut self,
        target: ComponentId,
        thread: ThreadId,
        fname: &str,
        args: &[Value],
    ) -> Result<Value, CallError> {
        let scope = if self.trace.is_enabled() {
            let parent = self.trace.causal_parent(target);
            let span = self.trace.alloc_span();
            let epoch = self.epoch_of(target).unwrap_or_default();
            self.trace.record(TraceEvent {
                span,
                parent,
                time: self.state.time,
                dur: SimTime::ZERO,
                thread,
                component: target,
                epoch,
                kind: TraceEventKind::Upcall {
                    function: fname.to_owned(),
                },
            });
            self.trace.push_scope(span);
            true
        } else {
            false
        };
        let r = self.invoke_inner(BOOTER, thread, target, fname, args, true);
        if scope {
            self.trace.pop_scope();
        }
        let _ = self.apply(Event::NoteUpcall);
        r
    }

    // ------------------------------------------------------------------
    // Faults and micro-reboot
    // ------------------------------------------------------------------

    /// Crash a component (fail-stop). Every thread blocked inside it is
    /// made runnable so its retried invocation observes the fault and
    /// enters recovery; the number of threads so woken is returned.
    ///
    /// A fault raised while a recovery action is in flight (see
    /// [`Kernel::begin_recovery`]) is **nested**: instead of closing the
    /// in-flight episode it opens a *child* episode — parented into the
    /// recovery tree, carrying its nesting depth, bounded by
    /// [`MAX_EPISODE_DEPTH`] — and bumps the nested-fault counter.
    pub fn fault(&mut self, c: ComponentId) -> u64 {
        match self.apply(Event::Fault { component: c }) {
            Reply::Woken(n) => n,
            _ => unreachable!("Fault replies Woken"),
        }
    }

    /// Booter micro-reboot (steps (3)–(4) of §III-D): `memcpy` a pristine
    /// image ([`Service::reset`]), bump the epoch, reactivate, and make
    /// the post-reboot initialization upcall.
    ///
    /// # Errors
    ///
    /// [`KernelError::NoSuchComponent`] when `c` does not name a service
    /// component.
    pub fn micro_reboot(&mut self, c: ComponentId) -> Result<(), KernelError> {
        if !self.state.component(c).is_some_and(|m| m.has_service) {
            return Err(KernelError::NoSuchComponent(c));
        }
        let mut service = self.services[c.0 as usize]
            .take()
            .ok_or(KernelError::NoSuchComponent(c))?;
        service.reset();
        // The reboot's trace scope spans the reboot charge (and any
        // escalation backoff), so capture the start time before the
        // core transition advances the clock.
        let start = self.state.time;
        let reply = self.apply(Event::MicroReboot { component: c });
        let Reply::Reboot(RebootOutcome::Done { mark_degraded }) = reply else {
            unreachable!("validated service component reboots")
        };
        let scope = self.trace_open_at(c, start);
        let mut ctx = ServiceCtx {
            kernel: self,
            this: c,
            client: BOOTER,
            thread: BOOT_THREAD,
            ticks: 0,
        };
        service.post_reboot(&mut ctx);
        self.services[c.0 as usize] = Some(service);
        self.trace_close(scope, c, BOOT_THREAD, TraceEventKind::Reboot);
        if let Some(until) = mark_degraded {
            // Applied after the reboot scope closes so the trace keeps
            // the established event order.
            let _ = self.apply(Event::MarkDegraded {
                component: c,
                until,
            });
        }
        Ok(())
    }

    /// Booter cold restart: the escalation endpoint that clears a
    /// degraded mark. Identical to [`Kernel::micro_reboot`] mechanically
    /// (pristine image, epoch bump, post-reboot upcall) but counted and
    /// traced separately, resets the storm history, and never re-enters
    /// escalation accounting.
    ///
    /// # Errors
    ///
    /// [`KernelError::NoSuchComponent`] when `c` does not name a service
    /// component.
    pub fn cold_restart(&mut self, c: ComponentId) -> Result<(), KernelError> {
        if !self.state.component(c).is_some_and(|m| m.has_service) {
            return Err(KernelError::NoSuchComponent(c));
        }
        let mut service = self.services[c.0 as usize]
            .take()
            .ok_or(KernelError::NoSuchComponent(c))?;
        service.reset();
        let start = self.state.time;
        let reply = self.apply(Event::ColdRestart { component: c });
        debug_assert!(matches!(reply, Reply::Reboot(RebootOutcome::Done { .. })));
        let scope = self.trace_open_at(c, start);
        let mut ctx = ServiceCtx {
            kernel: self,
            this: c,
            client: BOOTER,
            thread: BOOT_THREAD,
            ticks: 0,
        };
        service.post_reboot(&mut ctx);
        self.services[c.0 as usize] = Some(service);
        self.trace_close(scope, c, BOOT_THREAD, TraceEventKind::ColdRestart);
        Ok(())
    }
}

impl Default for Kernel {
    fn default() -> Self {
        Self::new()
    }
}

/// Access to the kernel embedded in a larger runtime context — what the
/// [`Executor`](crate::executor::Executor) requires of its context type.
pub trait KernelAccess {
    /// Shared access.
    fn kernel(&self) -> &Kernel;
    /// Exclusive access.
    fn kernel_mut(&mut self) -> &mut Kernel;
}

impl KernelAccess for Kernel {
    fn kernel(&self) -> &Kernel {
        self
    }
    fn kernel_mut(&mut self) -> &mut Kernel {
        self
    }
}

/// How client code reaches a server interface. Implemented by the bare
/// [`Kernel`] (no fault tolerance: a fault surfaces as
/// [`CallError::Fault`]) and by the C³/SuperGlue runtimes (which
/// interpose stubs that track descriptors and drive recovery). Workloads
/// written against this trait run unchanged under all three systems —
/// exactly the comparison the paper's evaluation needs.
pub trait InterfaceCall {
    /// Perform one interface invocation on behalf of `client`/`thread`.
    ///
    /// # Errors
    ///
    /// As for [`Kernel::invoke`]; fault-tolerant implementations swallow
    /// recoverable [`CallError::Fault`]s.
    fn interface_call(
        &mut self,
        client: ComponentId,
        thread: ThreadId,
        server: ComponentId,
        fname: &str,
        args: &[Value],
    ) -> Result<Value, CallError>;
}

impl InterfaceCall for Kernel {
    fn interface_call(
        &mut self,
        client: ComponentId,
        thread: ThreadId,
        server: ComponentId,
        fname: &str,
        args: &[Value],
    ) -> Result<Value, CallError> {
        self.invoke(client, thread, server, fname, args)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimal service for kernel tests.
    #[derive(Debug, Default)]
    struct Counter {
        count: i64,
        post_reboots: u32,
    }

    impl Service for Counter {
        fn interface(&self) -> &'static str {
            "counter"
        }
        fn call(
            &mut self,
            ctx: &mut ServiceCtx<'_>,
            fname: &str,
            args: &[Value],
        ) -> Result<Value, ServiceError> {
            match fname {
                "add" => {
                    self.count += args[0].int()?;
                    Ok(Value::Int(self.count))
                }
                "get" => Ok(Value::Int(self.count)),
                "block" => Err(ctx.block_current()),
                "sleep" => {
                    let d = ctx.now() + SimTime(args[0].int()? as u64);
                    Err(ctx.sleep_current_until(d))
                }
                "wake" => {
                    ctx.wake(ThreadId(args[0].int()? as u32))
                        .map_err(|_| ServiceError::InvalidArg)?;
                    Ok(Value::Unit)
                }
                other => Err(ServiceError::NoSuchFunction(other.to_owned())),
            }
        }
        fn reset(&mut self) {
            self.count = 0;
        }
        fn post_reboot(&mut self, _ctx: &mut ServiceCtx<'_>) {
            self.post_reboots += 1;
        }
    }

    fn setup() -> (Kernel, ComponentId, ComponentId, ThreadId) {
        let mut k = Kernel::with_costs(CostModel::free());
        let client = k.add_client_component("app");
        let svc = k.add_component("counter", Box::new(Counter::default()));
        k.grant(client, svc);
        let t = k.create_thread(client, Priority(10));
        (k, client, svc, t)
    }

    #[test]
    fn invoke_happy_path() {
        let (mut k, client, svc, t) = setup();
        assert_eq!(
            k.invoke(client, t, svc, "add", &[Value::Int(5)]).unwrap(),
            Value::Int(5)
        );
        assert_eq!(k.invoke(client, t, svc, "get", &[]).unwrap(), Value::Int(5));
        assert_eq!(k.stats().total_invocations(), 2);
    }

    #[test]
    fn invoke_without_capability_rejected() {
        let (mut k, _client, svc, t) = setup();
        let stranger = k.add_client_component("stranger");
        let err = k.invoke(stranger, t, svc, "get", &[]).unwrap_err();
        assert!(matches!(err, CallError::NoCapability { .. }));
    }

    #[test]
    fn invoke_unknown_component_rejected() {
        let (mut k, client, _svc, t) = setup();
        let err = k
            .invoke(client, t, ComponentId(99), "get", &[])
            .unwrap_err();
        assert!(matches!(err, CallError::NoSuchComponent(_)));
    }

    #[test]
    fn invoke_client_component_rejected() {
        let (mut k, client, _svc, t) = setup();
        let other = k.add_client_component("other");
        k.grant(client, other);
        let err = k.invoke(client, t, other, "get", &[]).unwrap_err();
        assert!(matches!(err, CallError::NoSuchComponent(_)));
    }

    #[test]
    fn faulty_component_raises_fault_on_invoke() {
        let (mut k, client, svc, t) = setup();
        k.fault(svc);
        assert!(k.is_faulty(svc));
        let err = k.invoke(client, t, svc, "get", &[]).unwrap_err();
        assert_eq!(err, CallError::Fault { component: svc });
        assert_eq!(k.stats().faulted_invocations[&svc], 1);
    }

    #[test]
    fn micro_reboot_resets_state_and_bumps_epoch() {
        let (mut k, client, svc, t) = setup();
        k.invoke(client, t, svc, "add", &[Value::Int(7)]).unwrap();
        k.fault(svc);
        let e0 = k.epoch_of(svc).unwrap();
        k.micro_reboot(svc).unwrap();
        assert!(!k.is_faulty(svc));
        assert_eq!(k.epoch_of(svc).unwrap(), e0.next());
        // State was wiped by reset().
        assert_eq!(k.invoke(client, t, svc, "get", &[]).unwrap(), Value::Int(0));
        assert_eq!(k.stats().total_reboots(), 1);
    }

    #[test]
    fn micro_reboot_of_client_component_rejected() {
        let (mut k, client, _svc, _t) = setup();
        assert!(k.micro_reboot(client).is_err());
    }

    #[test]
    fn blocking_and_waking() {
        let (mut k, client, svc, t) = setup();
        let err = k.invoke(client, t, svc, "block", &[]).unwrap_err();
        assert_eq!(err, CallError::WouldBlock);
        assert_eq!(
            k.thread(t).unwrap().state,
            ThreadState::Blocked { in_component: svc }
        );
        assert_eq!(k.threads_blocked_in(svc), vec![t]);

        let t2 = k.create_thread(client, Priority(10));
        k.invoke(client, t2, svc, "wake", &[Value::Int(i64::from(t.0))])
            .unwrap();
        assert!(k.thread(t).unwrap().state.is_runnable());
    }

    #[test]
    fn fault_wakes_blocked_threads() {
        let (mut k, client, svc, t) = setup();
        let _ = k.invoke(client, t, svc, "block", &[]);
        k.fault(svc);
        assert!(k.thread(t).unwrap().state.is_runnable());
        // Retried invocation observes the fault.
        assert!(matches!(
            k.invoke(client, t, svc, "block", &[]),
            Err(CallError::Fault { .. })
        ));
    }

    #[test]
    fn sleeping_and_time_advance() {
        let (mut k, client, svc, t) = setup();
        let err = k
            .invoke(client, t, svc, "sleep", &[Value::Int(1000)])
            .unwrap_err();
        assert_eq!(err, CallError::WouldBlock);
        assert_eq!(k.earliest_wakeup(), Some(SimTime(1000)));
        k.advance_to(SimTime(999));
        assert!(!k.thread(t).unwrap().state.is_runnable());
        k.advance_to(SimTime(1000));
        assert!(k.thread(t).unwrap().state.is_runnable());
        assert_eq!(k.earliest_wakeup(), None);
    }

    #[test]
    fn advance_never_goes_backwards() {
        let mut k = Kernel::with_costs(CostModel::free());
        k.advance_to(SimTime(500));
        k.advance_to(SimTime(100));
        assert_eq!(k.now(), SimTime(500));
    }

    #[test]
    fn next_runnable_respects_priority_and_round_robin() {
        let mut k = Kernel::with_costs(CostModel::free());
        let c = k.add_client_component("app");
        let hi = k.create_thread(c, Priority(1));
        let lo = k.create_thread(c, Priority(5));
        // Boot thread is priority 0 — park it.
        k.thread_mut(BOOT_THREAD).unwrap().state = ThreadState::Completed;
        assert_eq!(k.next_runnable(), Some(hi));
        k.thread_mut(hi).unwrap().dispatches += 1;
        // Same priority class unchanged: hi still beats lo on priority.
        assert_eq!(k.next_runnable(), Some(hi));
        k.thread_mut(hi).unwrap().state = ThreadState::Completed;
        assert_eq!(k.next_runnable(), Some(lo));
    }

    #[test]
    fn invocation_cost_advances_time() {
        let mut k = Kernel::with_costs(CostModel::paper_defaults());
        let client = k.add_client_component("app");
        let svc = k.add_component("counter", Box::new(Counter::default()));
        k.grant(client, svc);
        let t = k.create_thread(client, Priority(3));
        let before = k.now();
        k.invoke(client, t, svc, "get", &[]).unwrap();
        assert_eq!(k.now(), before + CostModel::paper_defaults().invocation);
    }

    #[test]
    fn upcall_bypasses_capabilities_and_counts() {
        let (mut k, _client, svc, _t) = setup();
        let r = k.upcall(svc, BOOT_THREAD, "get", &[]).unwrap();
        assert_eq!(r, Value::Int(0));
        assert_eq!(k.stats().upcalls, 1);
    }

    #[test]
    fn upcall_does_not_mutate_the_capability_table() {
        // Regression: the upcall path used to leak a permanent
        // booter→target grant into the capability table, so a later
        // *ordinary* invoke from the booter would silently pass the
        // capability check it should fail.
        let (mut k, _client, svc, _t) = setup();
        let grants_before = k.caps().len();
        assert!(!k.caps().allows(BOOTER, svc));
        k.upcall(svc, BOOT_THREAD, "get", &[]).unwrap();
        assert_eq!(k.caps().len(), grants_before, "upcall must not grant");
        assert!(!k.caps().allows(BOOTER, svc));
        let err = k.invoke(BOOTER, BOOT_THREAD, svc, "get", &[]).unwrap_err();
        assert!(matches!(err, CallError::NoCapability { .. }));
    }

    #[test]
    fn watchdog_fires_once_per_hung_call() {
        // Regression: a hung service that keeps reporting progress
        // after the watchdog has fired used to re-fault the component
        // on every subsequent tick, inflating the fault counter and
        // re-opening recovery episodes.
        #[derive(Debug)]
        struct Stubborn;
        impl Service for Stubborn {
            fn interface(&self) -> &'static str {
                "stubborn"
            }
            fn call(
                &mut self,
                ctx: &mut ServiceCtx<'_>,
                _fname: &str,
                _args: &[Value],
            ) -> Result<Value, ServiceError> {
                // Ignores the watchdog's verdict and spins on.
                for _ in 0..32 {
                    let _ = ctx.progress();
                }
                Err(ServiceError::Unavailable)
            }
            fn reset(&mut self) {}
        }
        let mut k = Kernel::with_costs(CostModel::free());
        let client = k.add_client_component("app");
        let svc = k.add_component("stubborn", Box::new(Stubborn));
        k.grant(client, svc);
        let t = k.create_thread(client, Priority(3));
        k.set_watchdog_budget(4);
        let err = k.invoke(client, t, svc, "go", &[]).unwrap_err();
        assert_eq!(err, CallError::Fault { component: svc });
        assert_eq!(k.stats().total_watchdog_fires(), 1, "fired once, not 28×");
        assert_eq!(k.stats().faults.get(&svc).copied().unwrap_or(0), 1);
    }

    #[test]
    fn post_reboot_hook_runs() {
        let (mut k, client, svc, t) = setup();
        k.fault(svc);
        k.micro_reboot(svc).unwrap();
        // post_reboots survives reset() because reset only clears count.
        // Verify indirectly: counter still works.
        assert_eq!(k.invoke(client, t, svc, "get", &[]).unwrap(), Value::Int(0));
    }

    #[test]
    fn snapshot_is_o1_and_shares_tables() {
        let (k, _client, _svc, _t) = setup();
        let snap = k.snapshot();
        assert!(std::sync::Arc::ptr_eq(&snap.threads, &k.state().threads));
        assert_eq!(&snap, k.state());
    }

    #[test]
    fn reentrant_invocation_rejected() {
        // A service that calls back into itself.
        #[derive(Debug)]
        struct Reenter {
            me: ComponentId,
        }
        impl Service for Reenter {
            fn interface(&self) -> &'static str {
                "reenter"
            }
            fn call(
                &mut self,
                ctx: &mut ServiceCtx<'_>,
                _fname: &str,
                _args: &[Value],
            ) -> Result<Value, ServiceError> {
                match ctx.invoke(self.me, "again", &[]) {
                    Err(CallError::Reentrant(_)) => Ok(Value::Int(1)),
                    _ => Ok(Value::Int(0)),
                }
            }
            fn reset(&mut self) {}
        }
        let mut k = Kernel::with_costs(CostModel::free());
        let client = k.add_client_component("app");
        let svc = k.add_component("reenter", Box::new(Reenter { me: ComponentId(2) }));
        k.grant(client, svc);
        let t = k.create_thread(client, Priority(3));
        assert_eq!(k.invoke(client, t, svc, "go", &[]).unwrap(), Value::Int(1));
    }

    #[test]
    fn mid_call_fault_surfaces_as_fault() {
        // A service that faults itself during the call (the SWIFI case).
        #[derive(Debug)]
        struct SelfFault {
            me: ComponentId,
        }
        impl Service for SelfFault {
            fn interface(&self) -> &'static str {
                "selffault"
            }
            fn call(
                &mut self,
                ctx: &mut ServiceCtx<'_>,
                _fname: &str,
                _args: &[Value],
            ) -> Result<Value, ServiceError> {
                ctx.kernel.fault(self.me);
                Ok(Value::Int(7))
            }
            fn reset(&mut self) {}
        }
        let mut k = Kernel::with_costs(CostModel::free());
        let client = k.add_client_component("app");
        let svc = k.add_component("selffault", Box::new(SelfFault { me: ComponentId(2) }));
        k.grant(client, svc);
        let t = k.create_thread(client, Priority(3));
        let err = k.invoke(client, t, svc, "go", &[]).unwrap_err();
        assert_eq!(err, CallError::Fault { component: svc });
    }
}
