//! Edge-case coverage for the simulated kernel beyond the module unit
//! tests: metadata queries, time accounting, reboot corner cases, and
//! executor/thread interplay.

use composite::{
    CallError, ComponentId, CostModel, Executor, Kernel, KernelError, Priority, RunExit, Service,
    ServiceCtx, ServiceError, SimTime, StepResult, ThreadState, Value, BOOTER, BOOT_THREAD,
};

#[derive(Debug, Default)]
struct Echo;

impl Service for Echo {
    fn interface(&self) -> &'static str {
        "echo"
    }
    fn call(
        &mut self,
        ctx: &mut ServiceCtx<'_>,
        fname: &str,
        args: &[Value],
    ) -> Result<Value, ServiceError> {
        match fname {
            "id" => Ok(args.first().cloned().unwrap_or(Value::Unit)),
            "work" => {
                ctx.charge(SimTime::from_micros(5));
                Ok(Value::Unit)
            }
            other => Err(ServiceError::NoSuchFunction(other.to_owned())),
        }
    }
    fn reset(&mut self) {}
}

#[test]
fn booter_and_boot_thread_exist_from_birth() {
    let k = Kernel::new();
    assert_eq!(k.component_name(BOOTER), Some("booter"));
    assert!(k.thread(BOOT_THREAD).is_ok());
    assert_eq!(k.thread(BOOT_THREAD).unwrap().priority, Priority::HIGHEST);
    assert_eq!(k.component_count(), 1);
    assert_eq!(k.thread_count(), 1);
}

#[test]
fn component_metadata_queries() {
    let mut k = Kernel::with_costs(CostModel::free());
    let app = k.add_client_component("app");
    let svc = k.add_component("echo", Box::new(Echo));
    assert_eq!(k.component_name(svc), Some("echo"));
    assert_eq!(k.interface_of(svc), Some("echo"));
    assert_eq!(
        k.interface_of(app),
        None,
        "client components export no interface"
    );
    assert_eq!(k.component_name(ComponentId(99)), None);
    assert_eq!(k.component_ids().count(), 3);
}

#[test]
fn service_charge_advances_virtual_time() {
    let mut k = Kernel::with_costs(CostModel::free());
    let app = k.add_client_component("app");
    let svc = k.add_component("echo", Box::new(Echo));
    k.grant(app, svc);
    let t = k.create_thread(app, Priority(5));
    k.invoke(app, t, svc, "work", &[]).unwrap();
    assert_eq!(k.now(), SimTime::from_micros(5));
}

#[test]
fn micro_reboot_of_active_component_is_allowed_and_epoch_bumps() {
    // A proactive (rejuvenation-style) reboot is legal.
    let mut k = Kernel::with_costs(CostModel::free());
    let svc = k.add_component("echo", Box::new(Echo));
    let e0 = k.epoch_of(svc).unwrap();
    k.micro_reboot(svc).unwrap();
    assert_eq!(k.epoch_of(svc).unwrap(), e0.next());
    assert!(!k.is_faulty(svc));
}

#[test]
fn micro_reboot_of_unknown_component_fails() {
    let mut k = Kernel::new();
    assert_eq!(
        k.micro_reboot(ComponentId(42)),
        Err(KernelError::NoSuchComponent(ComponentId(42)))
    );
}

#[test]
fn waking_terminal_threads_is_rejected() {
    let mut k = Kernel::with_costs(CostModel::free());
    let app = k.add_client_component("app");
    let t = k.create_thread(app, Priority(5));
    k.thread_mut(t).unwrap().state = ThreadState::Completed;
    assert_eq!(k.wake_thread(t), Err(KernelError::BadThreadState(t)));
    assert_eq!(
        k.wake_thread(composite::ThreadId(99)),
        Err(KernelError::NoSuchThread(composite::ThreadId(99)))
    );
}

#[test]
fn waking_a_runnable_thread_is_a_noop() {
    let mut k = Kernel::with_costs(CostModel::free());
    let app = k.add_client_component("app");
    let t = k.create_thread(app, Priority(5));
    let wakeups_before = k.stats().wakeups;
    k.wake_thread(t).unwrap();
    assert_eq!(k.stats().wakeups, wakeups_before);
}

#[test]
fn fault_on_unknown_component_is_ignored() {
    let mut k = Kernel::new();
    k.fault(ComponentId(77)); // must not panic
    assert_eq!(k.stats().total_faults(), 0);
}

#[test]
fn invocations_into_booter_are_rejected_as_clients() {
    let mut k = Kernel::with_costs(CostModel::free());
    let app = k.add_client_component("app");
    k.grant(app, BOOTER);
    let t = k.create_thread(app, Priority(5));
    // The booter exports no service.
    let err = k.invoke(app, t, BOOTER, "x", &[]).unwrap_err();
    assert!(matches!(err, CallError::NoSuchComponent(_)));
}

#[test]
fn executor_dispatch_targets_a_specific_thread() {
    let mut k = Kernel::with_costs(CostModel::free());
    let app = k.add_client_component("app");
    let a = k.create_thread(app, Priority(5));
    let b = k.create_thread(app, Priority(5));
    let mut ex: Executor<Kernel> = Executor::new();
    ex.attach_fn(a, |_, _| StepResult::Done);
    ex.attach_fn(b, |_, _| StepResult::Done);
    // Dispatch b explicitly even though a would be picked first.
    ex.dispatch(&mut k, b);
    assert!(k.thread(b).unwrap().state.is_terminal());
    assert!(k.thread(a).unwrap().state.is_runnable());
}

#[test]
fn executor_with_no_workloads_reports_all_done() {
    let mut k = Kernel::with_costs(CostModel::free());
    let mut ex: Executor<Kernel> = Executor::new();
    assert_eq!(ex.run(&mut k, 10), RunExit::AllDone);
}

#[test]
fn time_advance_wakes_multiple_sleepers_in_order() {
    let mut k = Kernel::with_costs(CostModel::free());
    let app = k.add_client_component("app");
    let a = k.create_thread(app, Priority(5));
    let b = k.create_thread(app, Priority(5));
    k.sleep_thread_public(a, SimTime(100));
    k.sleep_thread_public(b, SimTime(200));
    assert_eq!(k.earliest_wakeup(), Some(SimTime(100)));
    k.advance_to(SimTime(150));
    assert!(k.thread(a).unwrap().state.is_runnable());
    assert!(!k.thread(b).unwrap().state.is_runnable());
    k.advance_to(SimTime(200));
    assert!(k.thread(b).unwrap().state.is_runnable());
}

/// Helper trait: tests need the crate-private sleep entry point; the
/// public path goes through a service's `sleep_current_until`.
trait SleepExt {
    fn sleep_thread_public(&mut self, t: composite::ThreadId, d: SimTime);
}

#[derive(Debug)]
struct Sleeper;
impl Service for Sleeper {
    fn interface(&self) -> &'static str {
        "sleeper"
    }
    fn call(
        &mut self,
        ctx: &mut ServiceCtx<'_>,
        _fname: &str,
        args: &[Value],
    ) -> Result<Value, ServiceError> {
        let d = SimTime(args[0].int()? as u64);
        Err(ctx.sleep_current_until(d))
    }
    fn reset(&mut self) {}
}

impl SleepExt for Kernel {
    fn sleep_thread_public(&mut self, t: composite::ThreadId, d: SimTime) {
        // Install a one-off sleeper service lazily (idempotent enough for
        // tests: a new component per call is fine).
        let app = self.thread(t).expect("thread exists").home;
        let sleeper = self.add_component("sleeper", Box::new(Sleeper));
        self.grant(app, sleeper);
        let err = self
            .invoke(app, t, sleeper, "sleep", &[Value::Int(d.as_nanos() as i64)])
            .unwrap_err();
        assert_eq!(err, CallError::WouldBlock);
    }
}
