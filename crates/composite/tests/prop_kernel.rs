//! Model-based property tests for the kernel substrates: page tables,
//! capability tables, and register files. Randomized op sequences are
//! driven by the repo's deterministic [`SplitMix64`] generator (seeded
//! per case), so failures are reproducible from the case index alone.

use std::collections::{HashMap, HashSet};

use composite::capability::CapTable;
use composite::pages::PageTables;
use composite::rng::{mix, SplitMix64};
use composite::{ComponentId, RegisterFile, NUM_REGISTERS};

const CASES: u64 = 64;

#[derive(Debug, Clone, Copy)]
enum PageOp {
    Map { comp: u32, vaddr: u64 },
    Unmap { comp: u32, vaddr: u64 },
}

fn page_op(rng: &mut SplitMix64) -> PageOp {
    let comp = rng.gen_range(4) as u32;
    let vaddr = rng.gen_range(8) * 0x1000;
    if rng.gen_bool(1, 2) {
        PageOp::Map { comp, vaddr }
    } else {
        PageOp::Unmap { comp, vaddr }
    }
}

/// The page tables agree with a naive HashMap model under arbitrary
/// map/unmap sequences, and the reflection views stay consistent.
#[test]
fn page_tables_match_model() {
    for case in 0..CASES {
        let mut rng = SplitMix64::new(mix(0x9a9e_0001, case));
        let n_ops = rng.gen_index(120);
        let mut pt = PageTables::new();
        let mut model: HashMap<(u32, u64), u32> = HashMap::new();
        for _ in 0..n_ops {
            match page_op(&mut rng) {
                PageOp::Map { comp, vaddr } => {
                    let frame = pt.alloc_frame().expect("unlimited frames");
                    let r = pt.map(ComponentId(comp), vaddr, frame);
                    if let std::collections::hash_map::Entry::Vacant(e) = model.entry((comp, vaddr))
                    {
                        assert!(r.is_ok(), "case {case}");
                        e.insert(frame.0);
                    } else {
                        assert!(r.is_err(), "case {case}");
                    }
                }
                PageOp::Unmap { comp, vaddr } => {
                    let r = pt.unmap(ComponentId(comp), vaddr);
                    match model.remove(&(comp, vaddr)) {
                        Some(f) => assert_eq!(r.expect("was mapped").0, f, "case {case}"),
                        None => assert!(r.is_err(), "case {case}"),
                    }
                }
            }
            // Translation agrees everywhere the model has entries.
            for (&(c, v), &f) in &model {
                assert_eq!(pt.translate(ComponentId(c), v).map(|x| x.0), Some(f));
            }
            assert_eq!(pt.mapping_count(), model.len());
        }
        // Reflection views are exact partitions of the model.
        for c in 0..4u32 {
            let view: Vec<(u64, u32)> = pt
                .mappings_of(ComponentId(c))
                .map(|(v, f)| (v, f.0))
                .collect();
            let mut expect: Vec<(u64, u32)> = model
                .iter()
                .filter(|((mc, _), _)| *mc == c)
                .map(|((_, v), f)| (*v, *f))
                .collect();
            expect.sort_unstable();
            assert_eq!(view, expect, "case {case}");
        }
    }
}

/// The capability table is a faithful set.
#[test]
fn cap_table_matches_model() {
    for case in 0..CASES {
        let mut rng = SplitMix64::new(mix(0xCA9_0002, case));
        let n_grants = rng.gen_index(40);
        let n_revokes = rng.gen_index(40);
        let mut caps = CapTable::new();
        let mut model: HashSet<(u32, u32)> = HashSet::new();
        for _ in 0..n_grants {
            let (c, s) = (rng.gen_range(5) as u32, rng.gen_range(5) as u32);
            caps.grant(ComponentId(c), ComponentId(s));
            model.insert((c, s));
        }
        for _ in 0..n_revokes {
            let (c, s) = (rng.gen_range(5) as u32, rng.gen_range(5) as u32);
            let removed = caps.revoke(ComponentId(c), ComponentId(s));
            assert_eq!(removed, model.remove(&(c, s)), "case {case}");
        }
        for c in 0..5u32 {
            for s in 0..5u32 {
                let expect = c == s || model.contains(&(c, s));
                assert_eq!(
                    caps.allows(ComponentId(c), ComponentId(s)),
                    expect,
                    "case {case}"
                );
            }
        }
        assert_eq!(caps.len(), model.len(), "case {case}");
    }
}

/// Register files: flips are involutive, writes clear taint, taint
/// tracking is exact per register.
#[test]
fn register_file_taint_tracking() {
    for case in 0..CASES {
        let mut rng = SplitMix64::new(mix(0x4e9_0003, case));
        let mut regs = RegisterFile::new();
        let mut tainted = [false; NUM_REGISTERS];
        let mut values = [0u32; NUM_REGISTERS];
        for _ in 0..rng.gen_index(16) {
            let (r, b) = (rng.gen_index(NUM_REGISTERS), rng.gen_range(32) as u32);
            regs.flip_bit(r, b);
            values[r] ^= 1 << b;
            tainted[r] = true;
        }
        for _ in 0..rng.gen_index(16) {
            let (r, v) = (rng.gen_index(NUM_REGISTERS), rng.next_u32());
            regs.write(r, v);
            values[r] = v;
            tainted[r] = false;
        }
        for r in 0..NUM_REGISTERS {
            assert_eq!(
                regs.read(r),
                (values[r], tainted[r]),
                "case {case} register {r}"
            );
        }
        assert_eq!(
            regs.any_tainted(),
            tainted.iter().any(|&t| t),
            "case {case}"
        );
    }
}
