//! Model-based property tests for the kernel substrates: page tables,
//! capability tables, and register files.

use proptest::prelude::*;
use std::collections::{HashMap, HashSet};

use composite::capability::CapTable;
use composite::pages::PageTables;
use composite::{ComponentId, RegisterFile, NUM_REGISTERS};

#[derive(Debug, Clone, Copy)]
enum PageOp {
    Map { comp: u32, vaddr: u64 },
    Unmap { comp: u32, vaddr: u64 },
}

fn page_op() -> impl Strategy<Value = PageOp> {
    prop_oneof![
        (0u32..4, 0u64..8).prop_map(|(c, v)| PageOp::Map { comp: c, vaddr: v * 0x1000 }),
        (0u32..4, 0u64..8).prop_map(|(c, v)| PageOp::Unmap { comp: c, vaddr: v * 0x1000 }),
    ]
}

proptest! {
    /// The page tables agree with a naive HashMap model under arbitrary
    /// map/unmap sequences, and the reflection views stay consistent.
    #[test]
    fn page_tables_match_model(ops in proptest::collection::vec(page_op(), 0..120)) {
        let mut pt = PageTables::new();
        let mut model: HashMap<(u32, u64), u32> = HashMap::new();
        for op in ops {
            match op {
                PageOp::Map { comp, vaddr } => {
                    let frame = pt.alloc_frame().expect("unlimited frames");
                    let r = pt.map(ComponentId(comp), vaddr, frame);
                    if model.contains_key(&(comp, vaddr)) {
                        prop_assert!(r.is_err());
                    } else {
                        prop_assert!(r.is_ok());
                        model.insert((comp, vaddr), frame.0);
                    }
                }
                PageOp::Unmap { comp, vaddr } => {
                    let r = pt.unmap(ComponentId(comp), vaddr);
                    match model.remove(&(comp, vaddr)) {
                        Some(f) => prop_assert_eq!(r.expect("was mapped").0, f),
                        None => prop_assert!(r.is_err()),
                    }
                }
            }
            // Translation agrees everywhere the model has entries.
            for (&(c, v), &f) in &model {
                prop_assert_eq!(pt.translate(ComponentId(c), v).map(|x| x.0), Some(f));
            }
            prop_assert_eq!(pt.mapping_count(), model.len());
        }
        // Reflection views are exact partitions of the model.
        for c in 0..4u32 {
            let view: Vec<(u64, u32)> =
                pt.mappings_of(ComponentId(c)).map(|(v, f)| (v, f.0)).collect();
            let mut expect: Vec<(u64, u32)> = model
                .iter()
                .filter(|((mc, _), _)| *mc == c)
                .map(|((_, v), f)| (*v, *f))
                .collect();
            expect.sort_unstable();
            prop_assert_eq!(view, expect);
        }
    }

    /// The capability table is a faithful set.
    #[test]
    fn cap_table_matches_model(
        grants in proptest::collection::vec((0u32..5, 0u32..5), 0..40),
        revokes in proptest::collection::vec((0u32..5, 0u32..5), 0..40),
    ) {
        let mut caps = CapTable::new();
        let mut model: HashSet<(u32, u32)> = HashSet::new();
        for (c, s) in &grants {
            caps.grant(ComponentId(*c), ComponentId(*s));
            model.insert((*c, *s));
        }
        for (c, s) in &revokes {
            let removed = caps.revoke(ComponentId(*c), ComponentId(*s));
            prop_assert_eq!(removed, model.remove(&(*c, *s)));
        }
        for c in 0..5u32 {
            for s in 0..5u32 {
                let expect = c == s || model.contains(&(c, s));
                prop_assert_eq!(caps.allows(ComponentId(c), ComponentId(s)), expect);
            }
        }
        prop_assert_eq!(caps.len(), model.len());
    }

    /// Register files: flips are involutive, writes clear taint, taint
    /// tracking is exact per register.
    #[test]
    fn register_file_taint_tracking(
        flips in proptest::collection::vec((0usize..NUM_REGISTERS, 0u32..32), 0..16),
        writes in proptest::collection::vec((0usize..NUM_REGISTERS, any::<u32>()), 0..16),
    ) {
        let mut regs = RegisterFile::new();
        let mut tainted = [false; NUM_REGISTERS];
        let mut values = [0u32; NUM_REGISTERS];
        for &(r, b) in &flips {
            regs.flip_bit(r, b);
            values[r] ^= 1 << b;
            tainted[r] = true;
        }
        for &(r, v) in &writes {
            regs.write(r, v);
            values[r] = v;
            tainted[r] = false;
        }
        for r in 0..NUM_REGISTERS {
            prop_assert_eq!(regs.read(r), (values[r], tainted[r]), "register {}", r);
        }
        prop_assert_eq!(regs.any_tainted(), tainted.iter().any(|&t| t));
    }
}
