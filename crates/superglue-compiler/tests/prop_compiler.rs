//! Property tests for the compiler: the dense σ table must agree with
//! the state machine everywhere, template emission must be monotone in
//! the predicates, and the shipped interfaces must satisfy the
//! compiled-spec invariants.

use superglue_compiler::{compile, ArgSource, RetvalSpec};
use superglue_idl::compile_interface;
use superglue_sm::{FnId, State};

/// The six shipped interface sources, embedded for compiler-level tests.
const SHIPPED: [(&str, &str); 6] = [
    ("sched", include_str!("../../../idl/sched.sg")),
    ("mm", include_str!("../../../idl/mm.sg")),
    ("fs", include_str!("../../../idl/fs.sg")),
    ("lock", include_str!("../../../idl/lock.sg")),
    ("evt", include_str!("../../../idl/evt.sg")),
    ("tmr", include_str!("../../../idl/tmr.sg")),
];

#[test]
fn dense_sigma_agrees_with_machine_for_all_shipped_interfaces() {
    for (name, src) in SHIPPED {
        let spec = compile_interface(name, src).expect("shipped IDL compiles");
        let out = compile(&spec);
        let n = spec.machine.function_count();
        let mut states = vec![State::Init];
        states.extend((0..n).map(|i| State::After(FnId(i as u32))));
        states.push(State::Terminated);
        states.push(State::Faulty);
        for s in states {
            for i in 0..n {
                let f = FnId(i as u32);
                let machine = spec.machine.step(s, f).ok();
                let dense = out.stub_spec.step(s, f);
                assert_eq!(machine, dense, "{name}: σ({s:?}, {f:?})");
            }
        }
    }
}

#[test]
fn compiled_fn_invariants_hold_for_all_shipped_interfaces() {
    for (name, src) in SHIPPED {
        let spec = compile_interface(name, src).expect("shipped IDL compiles");
        let out = compile(&spec);
        let stub = &out.stub_spec;
        assert_eq!(stub.fns.len(), spec.machine.function_count(), "{name}");
        for (i, f) in stub.fns.iter().enumerate() {
            let fid = FnId(i as u32);
            // Creation functions have a NewDesc retval; non-creations
            // with a desc arg have a valid position; replay plans match
            // parameter counts.
            if f.roles.creates {
                assert!(
                    matches!(f.retval, RetvalSpec::NewDesc(_)),
                    "{name}/{}",
                    f.name
                );
                assert!(
                    f.track_args,
                    "{name}/{}: creations must remember args",
                    f.name
                );
            } else {
                assert!(f.desc_arg.is_some(), "{name}/{}", f.name);
            }
            assert_eq!(
                f.replay_args.len(),
                spec.fns[fid.index()].params.len(),
                "{name}/{}",
                f.name
            );
            // Every slot index referenced is within the interned table.
            for arg in &f.replay_args {
                if let ArgSource::Meta(slot) = arg {
                    assert!(*slot < stub.meta_names.len(), "{name}/{}", f.name);
                }
            }
            for (_, slot) in &f.data_args {
                assert!(*slot < stub.meta_names.len(), "{name}/{}", f.name);
            }
            match f.retval {
                RetvalSpec::NewDesc(s) | RetvalSpec::SetData(s) | RetvalSpec::AccumData(s) => {
                    assert!(s < stub.meta_names.len(), "{name}/{}", f.name);
                }
                RetvalSpec::None => {}
            }
        }
        // Every function on a recovery walk is marked track_args.
        for i in 0..stub.fns.len() {
            let fid = FnId(i as u32);
            let effective = stub.recover_via.get(&fid).copied().unwrap_or(fid);
            if let Ok(walk) = spec.machine.recovery_walk(State::After(effective)) {
                for w in walk {
                    assert!(
                        stub.fns[w.index()].track_args,
                        "{name}: walk fn {} must track args",
                        stub.fns[w.index()].name
                    );
                }
            }
        }
    }
}

/// Random subsets of model bits: emission is monotone — enabling a model
/// feature can only keep or grow the fired template set.
fn idl_with(global: bool, data: bool, blocking: bool) -> String {
    let mut out = String::from("service_global_info = {\n    desc_has_parent = parent");
    if global {
        out.push_str(",\n    desc_is_global = true");
    }
    if data {
        out.push_str(",\n    desc_has_data = true");
    }
    if blocking {
        out.push_str(",\n    desc_block = true");
    }
    out.push_str("\n};\n");
    out.push_str(
        "sm_creation(g_open);\nsm_terminal(g_close);\n\
         sm_transition(g_open, g_use);\nsm_transition(g_use, g_use);\n\
         sm_transition(g_use, g_close);\nsm_transition(g_open, g_close);\n",
    );
    if blocking {
        out.push_str("sm_block(g_use);\n");
    }
    out.push_str(
        "desc_data_retval(long, gid)\n\
         g_open(componentid_t compid, desc_data(parent_desc(long parent_gid)));\n\
         int g_use(componentid_t compid, desc(long gid));\n\
         int g_close(componentid_t compid, desc(long gid));\n",
    );
    out
}

/// Template emission is monotone in the model bits: enabling a model
/// feature can only keep or grow the fired template set. The space is
/// 2³, enumerated exhaustively.
#[test]
fn template_emission_is_monotone_in_model_bits() {
    let base = compile(&compile_interface("g", &idl_with(false, false, false)).unwrap());
    let base_set: std::collections::BTreeSet<_> = base.templates_used.iter().cloned().collect();
    for global in [false, true] {
        for data in [false, true] {
            for blocking in [false, true] {
                let richer =
                    compile(&compile_interface("g", &idl_with(global, data, blocking)).unwrap());
                let richer_set: std::collections::BTreeSet<_> =
                    richer.templates_used.iter().cloned().collect();
                assert!(
                    base_set.is_subset(&richer_set),
                    "templates must grow monotonically: missing {:?}",
                    base_set.difference(&richer_set).collect::<Vec<_>>()
                );
                assert!(richer.generated_loc() >= base.generated_loc());
            }
        }
    }
}

/// The generated source is deterministic.
#[test]
fn emission_is_deterministic() {
    for global in [false, true] {
        for blocking in [false, true] {
            let spec = compile_interface("g", &idl_with(global, false, blocking)).unwrap();
            let a = compile(&spec);
            let b = compile(&spec);
            assert_eq!(a.client_source, b.client_source);
            assert_eq!(a.server_source, b.server_source);
            assert_eq!(a.templates_used, b.templates_used);
        }
    }
}
