//! Golden-file snapshot tests for the generated stub sources.
//!
//! For each of the six shipped `idl/*.sg` interfaces the compiler's
//! client and server stub output is compared **byte-for-byte** against a
//! checked-in snapshot under `tests/golden/`. Any change to the
//! template–predicate network, the IR lowering, or the IDL files shows
//! up as a readable diff in review instead of a silent behavior drift.
//!
//! To regenerate after an intentional compiler change:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test -p superglue-compiler --test golden_emit
//! ```

use std::fs;
use std::path::PathBuf;

use superglue_compiler::compile;
use superglue_idl::compile_interface;

/// The six shipped IDL files, same set `superglue::sources` embeds.
const IDL: [(&str, &str); 6] = [
    ("sched", include_str!("../../../idl/sched.sg")),
    ("mm", include_str!("../../../idl/mm.sg")),
    ("fs", include_str!("../../../idl/fs.sg")),
    ("lock", include_str!("../../../idl/lock.sg")),
    ("evt", include_str!("../../../idl/evt.sg")),
    ("tmr", include_str!("../../../idl/tmr.sg")),
];

fn golden_path(file: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(file)
}

/// Compare `actual` against the checked-in snapshot, or rewrite the
/// snapshot when `UPDATE_GOLDEN` is set.
fn assert_matches_golden(file: &str, actual: &str) {
    let path = golden_path(file);
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        fs::create_dir_all(path.parent().unwrap()).unwrap();
        fs::write(&path, actual).unwrap();
        return;
    }
    let expected = fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); run with UPDATE_GOLDEN=1 to create it",
            path.display()
        )
    });
    assert_eq!(
        actual, expected,
        "generated {file} differs from golden snapshot; \
         if the change is intentional, regenerate with UPDATE_GOLDEN=1"
    );
}

fn check_interface(name: &str) {
    let src = IDL
        .iter()
        .find(|(n, _)| *n == name)
        .expect("known interface")
        .1;
    let spec = compile_interface(name, src).expect("shipped IDL compiles");
    let out = compile(&spec);
    assert_matches_golden(&format!("{name}_cstub.rs.gen"), &out.client_source);
    assert_matches_golden(&format!("{name}_sstub.rs.gen"), &out.server_source);
}

#[test]
fn golden_sched() {
    check_interface("sched");
}

#[test]
fn golden_mm() {
    check_interface("mm");
}

#[test]
fn golden_fs() {
    check_interface("fs");
}

#[test]
fn golden_lock() {
    check_interface("lock");
}

#[test]
fn golden_evt() {
    check_interface("evt");
}

#[test]
fn golden_tmr() {
    check_interface("tmr");
}

/// The snapshot directory contains exactly the twelve expected files —
/// no stale snapshots from renamed interfaces survive unnoticed.
#[test]
fn golden_dir_has_no_strays() {
    let dir = golden_path("");
    let Ok(entries) = fs::read_dir(&dir) else {
        // First run before generation; the per-interface tests report it.
        return;
    };
    let mut names: Vec<String> = entries
        .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
        .collect();
    names.sort_unstable();
    let mut expected: Vec<String> = IDL
        .iter()
        .flat_map(|(n, _)| [format!("{n}_cstub.rs.gen"), format!("{n}_sstub.rs.gen")])
        .collect();
    expected.sort_unstable();
    assert_eq!(names, expected);
}
