//! Compiled stub specifications are plain data: they serialize, which
//! lets a build system cache compilation outputs (the paper's compiler
//! writes generated C files; ours can persist the executable spec too).

use superglue_compiler::{compile, CompiledStubSpec};
use superglue_idl::compile_interface;

const SHIPPED: [(&str, &str); 6] = [
    ("sched", include_str!("../../../idl/sched.sg")),
    ("mm", include_str!("../../../idl/mm.sg")),
    ("fs", include_str!("../../../idl/fs.sg")),
    ("lock", include_str!("../../../idl/lock.sg")),
    ("evt", include_str!("../../../idl/evt.sg")),
    ("tmr", include_str!("../../../idl/tmr.sg")),
];

#[test]
fn compiled_specs_round_trip_through_json() {
    for (name, src) in SHIPPED {
        let spec = compile_interface(name, src).expect("shipped IDL compiles");
        let out = compile(&spec);
        let json = serde_json::to_string(&out.stub_spec).expect("serializes");
        let back: CompiledStubSpec = serde_json::from_str(&json).expect("deserializes");
        assert_eq!(back, out.stub_spec, "{name}: lossless round trip");
    }
}

#[test]
fn interface_specs_round_trip_through_json() {
    for (name, src) in SHIPPED {
        let spec = compile_interface(name, src).expect("shipped IDL compiles");
        let json = serde_json::to_string(&spec).expect("serializes");
        let back: superglue_idl::InterfaceSpec =
            serde_json::from_str(&json).expect("deserializes");
        assert_eq!(back, spec, "{name}");
        // Compiling the round-tripped spec yields the identical output.
        assert_eq!(compile(&back).stub_spec, compile(&spec).stub_spec, "{name}");
    }
}
