//! Source emission: run the template network twice — once with the
//! client-side template inputs, once with the server-side inputs —
//! exactly as §IV-B describes ("The back-end is executed twice with two
//! different sets of template inputs, once to generate the client stub,
//! and one to generate the server").

use crate::ir::CompiledStubSpec;
use crate::predicates::ModelPredicates;
use crate::templates::{templates, Ctx, Side};
use superglue_idl::InterfaceSpec;

/// Emit one side's stub source; returns the text and the names of the
/// templates whose predicates fired.
#[must_use]
pub fn emit_side(
    spec: &InterfaceSpec,
    stub: &CompiledStubSpec,
    preds: &ModelPredicates,
    side: Side,
) -> (String, Vec<&'static str>) {
    let ctx = Ctx { spec, stub, preds };
    let mut out = String::new();
    let mut used = Vec::new();
    for t in templates() {
        if t.side == side && (t.applies)(preds) {
            out.push_str(&(t.render)(&ctx));
            out.push('\n');
            used.push(t.name);
        }
    }
    (out, used)
}

/// Emit both passes; returns (client source, server source, all templates
/// used in order).
#[must_use]
pub fn emit_both(
    spec: &InterfaceSpec,
    stub: &CompiledStubSpec,
    preds: &ModelPredicates,
) -> (String, String, Vec<&'static str>) {
    let (client, mut used_c) = emit_side(spec, stub, preds, Side::Client);
    let (server, used_s) = emit_side(spec, stub, preds, Side::Server);
    used_c.extend(used_s);
    (client, server, used_c)
}

/// Write both generated stubs to `dir` as
/// `<iface>_cstub.rs.gen` / `<iface>_sstub.rs.gen` (the artifacts a user
/// inspects, mirroring the paper's generated C files).
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_to_dir(
    dir: &std::path::Path,
    iface: &str,
    client_source: &str,
    server_source: &str,
) -> std::io::Result<(std::path::PathBuf, std::path::PathBuf)> {
    std::fs::create_dir_all(dir)?;
    let cpath = dir.join(format!("{iface}_cstub.rs.gen"));
    let spath = dir.join(format!("{iface}_sstub.rs.gen"));
    std::fs::write(&cpath, client_source)?;
    std::fs::write(&spath, server_source)?;
    Ok((cpath, spath))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir;

    fn lock() -> (InterfaceSpec, CompiledStubSpec, ModelPredicates) {
        let spec = superglue_idl::compile_interface(
            "lock",
            r#"
service_global_info = { desc_block = true };
sm_creation(lock_alloc);
sm_terminal(lock_free);
sm_block(lock_take);
sm_wakeup(lock_release);
sm_transition(lock_alloc, lock_take);
sm_transition(lock_take, lock_release);
sm_transition(lock_release, lock_take);
sm_transition(lock_release, lock_free);
sm_transition(lock_alloc, lock_free);
desc_data_retval(long, lockid)
lock_alloc(componentid_t compid);
int lock_take(componentid_t compid, desc(long lockid));
int lock_release(componentid_t compid, desc(long lockid));
int lock_free(componentid_t compid, desc(long lockid));
"#,
        )
        .unwrap();
        let stub = ir::lower(&spec);
        let preds = ModelPredicates::of(&spec);
        (spec, stub, preds)
    }

    fn evt() -> (InterfaceSpec, CompiledStubSpec, ModelPredicates) {
        let spec = superglue_idl::compile_interface(
            "evt",
            r#"
service_global_info = {
        desc_has_parent = parent, desc_close_remove = true,
        desc_is_global = true, desc_block = true, desc_has_data = true
};
sm_transition(evt_split, evt_wait);
sm_transition(evt_split, evt_trigger);
sm_transition(evt_wait, evt_trigger);
sm_transition(evt_trigger, evt_wait);
sm_transition(evt_trigger, evt_free);
sm_transition(evt_split, evt_free);
sm_creation(evt_split);
sm_terminal(evt_free);
sm_block(evt_wait);
sm_wakeup(evt_trigger);
desc_data_retval(long, evtid)
evt_split(desc_data(componentid_t compid),
          desc_data(parent_desc(long parent_evtid)),
          desc_data(int grp));
long evt_wait(componentid_t compid, desc(long evtid));
int evt_trigger(componentid_t compid, desc(long evtid));
int evt_free(componentid_t compid, desc(long evtid));
"#,
        )
        .unwrap();
        let stub = ir::lower(&spec);
        let preds = ModelPredicates::of(&spec);
        (spec, stub, preds)
    }

    #[test]
    fn lock_emits_fewer_templates_than_evt() {
        // The lock interface needs only R0/T0/T1, the event interface
        // additionally D1/G0/U0 — so strictly more templates fire.
        let (s1, st1, p1) = lock();
        let (_, _, used_lock) = emit_both(&s1, &st1, &p1);
        let (s2, st2, p2) = evt();
        let (_, _, used_evt) = emit_both(&s2, &st2, &p2);
        assert!(used_evt.len() > used_lock.len());
    }

    #[test]
    fn g0_templates_fire_only_for_global_interfaces() {
        let (s1, st1, p1) = lock();
        let (_, _, used) = emit_both(&s1, &st1, &p1);
        assert!(!used.contains(&"cli_g0_lookup_creator"));
        let (s2, st2, p2) = evt();
        let (_, _, used) = emit_both(&s2, &st2, &p2);
        assert!(used.contains(&"cli_g0_lookup_creator"));
        assert!(used.contains(&"srv_restore_entry"));
    }

    #[test]
    fn generated_source_mentions_every_function() {
        let (s, st, p) = evt();
        let (client, server, _) = emit_both(&s, &st, &p);
        for f in &s.fns {
            assert!(
                client.contains(&f.name),
                "client source must mention {}",
                f.name
            );
            assert!(
                server.contains(&f.name),
                "server source must mention {}",
                f.name
            );
        }
    }

    #[test]
    fn write_to_dir_round_trips() {
        let (s, st, p) = lock();
        let (client, server, _) = emit_both(&s, &st, &p);
        let dir = std::env::temp_dir().join("sg-emit-test");
        let (cpath, spath) = write_to_dir(&dir, "lock", &client, &server).unwrap();
        assert_eq!(std::fs::read_to_string(cpath).unwrap(), client);
        assert_eq!(std::fs::read_to_string(spath).unwrap(), server);
    }

    #[test]
    fn walk_table_embeds_shortest_paths() {
        let (s, st, p) = lock();
        let (client, _, _) = emit_both(&s, &st, &p);
        assert!(client.contains("WALK_AFTER_LOCK_TAKE"));
        assert!(client.contains("\"lock_alloc\", \"lock_take\""));
    }
}
