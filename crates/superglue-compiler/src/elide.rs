//! The tracking-elision certifier.
//!
//! `sm_elide(f)` in a spec asks the compiler to drop `f`'s per-call
//! descriptor bookkeeping. This module is the proof side of that
//! request: [`ElisionFacts::certify`] derives, from the lowered IR
//! alone, which bookkeeping writes can never be observed — not by the
//! recovery replay, not by the fault-detection counters, not by the
//! trace — and [`ElisionFacts::apply`] rewrites the stub spec to skip
//! exactly the proven subset. Anything observable (record/unrecord
//! calls, descriptor-lifecycle trace events, `invalid_transitions`
//! accounting made *reachable* by a non-constant σ) is never elided.
//!
//! The facts fall into two groups:
//!
//! * **Per-function.** A constant σ-successor over the whole resync
//!   domain ([`superglue_sm::MachineFacts`]) lets the stub install the
//!   successor state directly — the σ read *and* the invalid-transition
//!   branch are both statically decided. Dead-store-on-replay facts
//!   (last-argument stores, metadata harvests, and tracked return
//!   values that no replay plan ever reads) let the stub skip the
//!   corresponding writes on *every* call, including creations.
//! * **Per-spec.** Whether any effective recovery walk can block
//!   (pending-call markers, thread-affinity stamps), whether descriptor
//!   ids survive a micro-reboot (post-recovery translation), and
//!   whether storage-component creation records have any reader.
//!
//! Proven facts are serialized as a versioned, deterministic JSON
//! **elision certificate** ([`ElisionFacts::to_json`]). `sglint`
//! recomputes the same facts independently from the validated spec —
//! without this module or the IR — and flags any drift (SG064), so a
//! stale or tampered certificate can never silently ship an unsound
//! fast path.

use std::collections::BTreeSet;

use composite::json::Json;
use superglue_sm::{FnId, MachineFacts, State};

use crate::ir::{ArgSource, CompiledStubSpec, RestoreArg, RetvalSpec};

/// Certificate schema identifier (the JSON `schema` field).
pub const CERT_SCHEMA: &str = "superglue-elision-cert";
/// Certificate format version (the JSON `version` field).
pub const CERT_VERSION: u64 = 1;

/// Per-function elision facts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FnElision {
    /// Function name (certificates are name-keyed, not `FnId`-keyed, so
    /// they survive re-lowering).
    pub name: String,
    /// Constant σ-successor over the whole resync domain, or `None`
    /// when the successor is state-dependent, partial, or the function
    /// is a creation (creations never consult σ). Only valid when
    /// terminal calls provably untrack their descriptor — otherwise
    /// `Terminated` can persist on a live entry and the domain grows.
    pub sigma_const: Option<State>,
    /// The function's last-argument store is dead: every argument its
    /// replay plan synthesizes comes from identity sources or from
    /// metadata guaranteed harvested at creation, so the
    /// fall-back-to-last-observed path is unreachable.
    pub store_dead: bool,
    /// Tracked-data harvests whose metadata slot some replay or restore
    /// plan actually reads; the complement of
    /// [`crate::ir::CompiledFn::data_args`] is dead weight.
    pub live_data_args: Vec<(usize, usize)>,
    /// The tracked return value (`SetData`/`AccumData`) lands in a slot
    /// nothing reads. `NewDesc` is never dead — it materializes the
    /// descriptor.
    pub retval_dead: bool,
    /// The whole tracked prologue/epilogue of a non-creation call
    /// collapses to one unconditional state install: constant
    /// non-terminal σ-successor, no store, no live harvest, no live
    /// return value, and (for blocking calls) no affinity stamp.
    pub full_fast_path: bool,
}

/// The complete certified fact set for one interface.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ElisionFacts {
    /// Interface name.
    pub interface: String,
    /// Metadata slots some replay or restore plan reads (sorted). The
    /// harvest of every other slot is dead.
    pub live_meta: Vec<usize>,
    /// No effective recovery walk needs pending-call bookkeeping: every
    /// blocking function reachable on a walk has a non-blocking
    /// `sm_recover_block` substitute (or no walk blocks at all).
    pub pending_dead: bool,
    /// No effective recovery walk contains a blocking function, so the
    /// per-call thread-affinity stamp has no reader. (A
    /// `sm_recover_block` substitute *reads* the stamp to find the
    /// owner, so lock-style interfaces keep affinity live even though
    /// their pending markers die.)
    pub affinity_dead: bool,
    /// Descriptor ids are stable across micro-reboots — globally
    /// addressable ids are pinned by the G0 restore protocol, or every
    /// creation echoes the original id back as a replay argument — so
    /// the post-recovery id-translation check is vacuous.
    pub id_stable: bool,
    /// Storage-component creation records have no reader. Never true
    /// for a valid spec today (records are written exactly when G0
    /// restore or cross-component creator discovery reads them);
    /// computed honestly so a tampered certificate is detectable.
    pub records_dead: bool,
    /// Per-function facts, `FnId`-aligned with the spec.
    pub fns: Vec<FnElision>,
}

/// The set of metadata slots a creation function is guaranteed to have
/// written by the time any replay runs: its own harvested arguments
/// plus the `NewDesc` return slot.
fn creation_written(f: &crate::ir::CompiledFn) -> BTreeSet<usize> {
    let mut set: BTreeSet<usize> = f.data_args.iter().map(|&(_, slot)| slot).collect();
    if let RetvalSpec::NewDesc(slot) = f.retval {
        set.insert(slot);
    }
    set
}

impl ElisionFacts {
    /// Derive every elision fact from a lowered stub specification.
    ///
    /// Pure analysis: the spec is not modified and `sm_elide` requests
    /// are ignored — facts are computed for *all* functions so the
    /// certificate doubles as an audit of what else could be asked for.
    #[must_use]
    pub fn certify(spec: &CompiledStubSpec) -> Self {
        let machine_facts = MachineFacts::compute(&spec.machine);

        // σ-constancy is only usable when closing a descriptor removes
        // its tracking entry (mirrors the stub's close path): otherwise
        // `Terminated` persists on live entries and the resync domain
        // in `MachineFacts` — all non-terminal `After` states — is an
        // under-approximation.
        let terminals_untrack = spec.model.close_removes_tracking
            || spec.model.close_children
            || !spec.model.parent.has_parent();

        // Effective recovery walks: the runtime replays toward the
        // `sm_recover_via`-substituted state, so the machine-level walk
        // set must be recomputed under the substitution (raw machine
        // walks would report e.g. a blocked wait as replayable when the
        // via edge reroutes recovery through the creation).
        let mut walk_fns: BTreeSet<FnId> = BTreeSet::new();
        for (i, cf) in spec.fns.iter().enumerate() {
            if cf.roles.terminates {
                continue;
            }
            let f = FnId(i as u32);
            let target = spec.recover_via.get(&f).copied().unwrap_or(f);
            if let Ok(walk) = spec.machine.recovery_walk(State::After(target)) {
                walk_fns.extend(walk);
            }
        }
        if let Ok(walk) = spec.machine.recovery_walk(State::Terminated) {
            walk_fns.extend(walk);
        }

        let blocking_on_walks: Vec<FnId> = walk_fns
            .iter()
            .copied()
            .filter(|&f| spec.fn_of(f).roles.blocks)
            .collect();
        let affinity_dead = blocking_on_walks.is_empty();
        let pending_dead = blocking_on_walks.iter().all(|b| {
            spec.recover_block
                .get(b)
                .is_some_and(|&g| !spec.fn_of(g).roles.blocks)
        });

        // The replay read-set: every metadata slot some replayable
        // function's argument plan or the G0 restore plan consults.
        // Harvests into any other slot are dead stores.
        let mut live_meta: BTreeSet<usize> = BTreeSet::new();
        for cf in &spec.fns {
            if !cf.track_args {
                continue;
            }
            for arg in &cf.replay_args {
                if let ArgSource::Meta(slot) = arg {
                    live_meta.insert(*slot);
                }
            }
        }
        if let Some((_, restore_args)) = &spec.restore {
            for arg in restore_args {
                if let RestoreArg::Meta(slot) = arg {
                    live_meta.insert(*slot);
                }
            }
        }

        // Slots guaranteed present on *any* descriptor of this
        // interface: written by every creation. (A function replayed on
        // a descriptor cannot know which creation built it, so only the
        // intersection is guaranteed.) These slots are all in the
        // read-set by construction — a slot proves a store dead only by
        // appearing in a replay plan, which is what makes it live — so
        // eliding dead harvests never undermines a store-dead proof.
        let creations: Vec<&crate::ir::CompiledFn> =
            spec.fns.iter().filter(|f| f.roles.creates).collect();
        let any_creation_written: Option<BTreeSet<usize>> = creations
            .iter()
            .map(|f| creation_written(f))
            .reduce(|a, b| a.intersection(&b).copied().collect());

        let fns: Vec<FnElision> = spec
            .fns
            .iter()
            .map(|cf| {
                let sigma_const = if terminals_untrack {
                    spec.dispatch
                        .get(&cf.name)
                        .and_then(|i| machine_facts.sigma_const(FnId(i)))
                } else {
                    None
                };

                // Dead store: the replay plan never falls back to the
                // last observed arguments. Identity sources (client id,
                // descriptor id, parent id) never do; `Meta` falls back
                // only when the slot is unwritten, so
                // guaranteed-at-creation slots are safe; `LastObserved`
                // *is* the fallback.
                let guaranteed = if cf.roles.creates {
                    Some(creation_written(cf))
                } else {
                    any_creation_written.clone()
                };
                let store_dead = !cf.track_args
                    || cf.replay_args.iter().all(|arg| match arg {
                        ArgSource::ClientId | ArgSource::DescId | ArgSource::ParentId => true,
                        ArgSource::Meta(slot) => {
                            guaranteed.as_ref().is_some_and(|g| g.contains(slot))
                        }
                        ArgSource::LastObserved => false,
                    });

                let live_data_args: Vec<(usize, usize)> = cf
                    .data_args
                    .iter()
                    .copied()
                    .filter(|(_, slot)| live_meta.contains(slot))
                    .collect();

                let retval_dead = match cf.retval {
                    RetvalSpec::SetData(slot) | RetvalSpec::AccumData(slot) => {
                        !live_meta.contains(&slot)
                    }
                    RetvalSpec::None | RetvalSpec::NewDesc(_) => false,
                };
                let retval_live = !matches!(cf.retval, RetvalSpec::None) && !retval_dead;

                let full_fast_path = matches!(sigma_const, Some(State::After(_)))
                    && store_dead
                    && live_data_args.is_empty()
                    && !retval_live
                    && !cf.roles.creates
                    && (!cf.roles.blocks || affinity_dead);

                FnElision {
                    name: cf.name.clone(),
                    sigma_const,
                    store_dead,
                    live_data_args,
                    retval_dead,
                    full_fast_path,
                }
            })
            .collect();

        // Id stability: global descriptors keep their id by the G0
        // restore contract; local ones only when every creation's
        // replay passes the original id back in (the service-echo
        // contract, e.g. a scheduler keyed by kernel thread id).
        let id_stable = spec.model.global
            || (!creations.is_empty()
                && creations.iter().all(|f| match f.retval {
                    RetvalSpec::NewDesc(slot) => f
                        .replay_args
                        .iter()
                        .any(|a| matches!(a, ArgSource::Meta(s) if *s == slot)),
                    _ => false,
                }));

        // Creation records are read by G0 restore (global) and by
        // cross-component creator discovery (XCParent) — exactly the
        // conditions under which they are written, so this is always
        // false for a spec the validator accepted.
        let records_dead =
            spec.records_creations && !spec.model.global && !spec.model.parent.crosses_components();

        Self {
            interface: spec.interface.clone(),
            live_meta: live_meta.into_iter().collect(),
            pending_dead,
            affinity_dead,
            id_stable,
            records_dead,
            fns,
        }
    }

    /// The fact record for a function, by name.
    #[must_use]
    pub fn fn_by_name(&self, name: &str) -> Option<&FnElision> {
        self.fns.iter().find(|f| f.name == name)
    }

    /// Render the deterministic elision certificate.
    ///
    /// Key order is fixed by construction (insertion-ordered objects),
    /// slot indices are rendered as interned metadata names, and states
    /// as function names — so two independent derivations of the same
    /// facts produce byte-identical certificates, and a byte comparison
    /// *is* a semantic comparison.
    #[must_use]
    pub fn to_json(&self, meta_names: &[String]) -> String {
        let slot_name = |slot: usize| -> Json {
            Json::Str(
                meta_names
                    .get(slot)
                    .cloned()
                    .unwrap_or_else(|| format!("slot#{slot}")),
            )
        };
        let state_name = |s: State| -> Json {
            match s {
                State::After(g) => Json::Str(
                    self.fns
                        .get(g.index())
                        .map_or_else(|| format!("fn#{}", g.index()), |f| f.name.clone()),
                ),
                State::Terminated => Json::Str("terminated".into()),
                State::Init => Json::Str("init".into()),
                State::Faulty => Json::Str("faulty".into()),
            }
        };

        let mut root = Json::object();
        root.push("schema", Json::Str(CERT_SCHEMA.into()));
        root.push("version", Json::UInt(CERT_VERSION));
        root.push("interface", Json::Str(self.interface.clone()));
        root.push("pending_dead", Json::Bool(self.pending_dead));
        root.push("affinity_dead", Json::Bool(self.affinity_dead));
        root.push("id_stable", Json::Bool(self.id_stable));
        root.push("records_dead", Json::Bool(self.records_dead));
        root.push(
            "live_meta",
            Json::Array(self.live_meta.iter().map(|&s| slot_name(s)).collect()),
        );
        root.push(
            "fns",
            Json::Array(
                self.fns
                    .iter()
                    .map(|f| {
                        let mut o = Json::object();
                        o.push("name", Json::Str(f.name.clone()));
                        o.push("sigma_const", f.sigma_const.map_or(Json::Null, state_name));
                        o.push("store_dead", Json::Bool(f.store_dead));
                        o.push(
                            "live_data",
                            Json::Array(
                                f.live_data_args
                                    .iter()
                                    .map(|&(_, slot)| slot_name(slot))
                                    .collect(),
                            ),
                        );
                        o.push("retval_dead", Json::Bool(f.retval_dead));
                        o.push("full_fast_path", Json::Bool(f.full_fast_path));
                        o
                    })
                    .collect(),
            ),
        );
        let mut s = root.to_pretty();
        s.push('\n');
        s
    }

    /// Rewrite `spec` to elide exactly the proven facts.
    ///
    /// Dead stores, dead harvests, and dead return values are applied
    /// to **every** function where proven — they are invisible by
    /// construction, so they need no per-function opt-in. The σ fast
    /// path ([`crate::ir::CompiledFn::sigma_const`]) is applied only to
    /// functions the spec requested via `sm_elide`, and an unprovable
    /// request is a hard error, never a silent downgrade. Spec-level
    /// toggles (pending/affinity/translation/records) activate only
    /// when at least one elision was requested, keeping unannotated
    /// interfaces bit-for-bit on the fully tracked path.
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending `sm_elide` request when
    /// the function is a creation (creations install descriptor state
    /// directly and have no σ step to elide — SG062) or when its
    /// σ-successor is not constant over the resync domain (SG060).
    pub fn apply(&self, spec: &mut CompiledStubSpec) -> Result<(), String> {
        if self.fns.len() != spec.fns.len() || self.interface != spec.interface {
            return Err(format!(
                "elision facts for `{}` ({} fns) do not match spec `{}` ({} fns)",
                self.interface,
                self.fns.len(),
                spec.interface,
                spec.fns.len()
            ));
        }

        for request in &spec.elide_requests {
            let cf = &spec.fns[request.index()];
            let fact = &self.fns[request.index()];
            if cf.roles.creates {
                return Err(format!(
                    "sm_elide({}): creation calls install descriptor state directly \
                     and have no σ step to elide (SG062)",
                    cf.name
                ));
            }
            if fact.sigma_const.is_none() {
                return Err(format!(
                    "sm_elide({}): σ-successor is not constant over the resync \
                     domain, so the transition check stays live (SG060)",
                    cf.name
                ));
            }
            if !fact.store_dead {
                return Err(format!(
                    "sm_elide({}): the replay plan reads this call's stored \
                     last-arguments (SG061)",
                    cf.name
                ));
            }
            if !fact.live_data_args.is_empty()
                || (!fact.retval_dead && !matches!(cf.retval, RetvalSpec::None))
            {
                return Err(format!(
                    "sm_elide({}): a tracked argument or return value is in the \
                     replay read-set — the harvest feeds recovery (SG065)",
                    cf.name
                ));
            }
            if cf.roles.blocks && !self.affinity_dead {
                return Err(format!(
                    "sm_elide({}): some effective recovery walk blocks, so the \
                     thread-affinity stamp is read by restore (SG063)",
                    cf.name
                ));
            }
        }

        for (cf, fact) in spec.fns.iter_mut().zip(&self.fns) {
            if fact.store_dead {
                cf.store_slot = None;
            }
            cf.live_data_args = fact.live_data_args.clone();
            if fact.retval_dead {
                cf.retval_eff = RetvalSpec::None;
            }
        }
        for request in &spec.elide_requests.clone() {
            spec.fns[request.index()].sigma_const = self.fns[request.index()].sigma_const;
        }
        if !spec.elide_requests.is_empty() {
            spec.elide_pending = self.pending_dead;
            spec.elide_affinity = self.affinity_dead;
            spec.elide_translation = self.id_stable;
            spec.elide_records = self.records_dead;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::lower;

    fn shipped(name: &str, src: &str) -> CompiledStubSpec {
        lower(&superglue_idl::compile_interface(name, src).unwrap())
    }

    fn facts_of(name: &str, src: &str) -> (CompiledStubSpec, ElisionFacts) {
        let spec = shipped(name, src);
        let facts = ElisionFacts::certify(&spec);
        (spec, facts)
    }

    fn sigma_const_name(spec: &CompiledStubSpec, facts: &ElisionFacts, f: &str) -> Option<String> {
        facts.fn_by_name(f).unwrap().sigma_const.map(|s| match s {
            State::After(g) => spec.fn_of(g).name.clone(),
            State::Terminated => "terminated".into(),
            other => panic!("unexpected σ-successor {other:?}"),
        })
    }

    fn live_meta_names(spec: &CompiledStubSpec, facts: &ElisionFacts) -> Vec<String> {
        facts
            .live_meta
            .iter()
            .map(|&s| spec.meta_names[s].clone())
            .collect()
    }

    #[test]
    fn sched_certifies_total_sigma_and_echoed_ids() {
        let (spec, facts) = facts_of("sched", include_str!("../../../idl/sched.sg"));
        assert_eq!(
            sigma_const_name(&spec, &facts, "sched_blk").as_deref(),
            Some("sched_blk")
        );
        assert_eq!(
            sigma_const_name(&spec, &facts, "sched_wakeup").as_deref(),
            Some("sched_wakeup")
        );
        assert_eq!(
            sigma_const_name(&spec, &facts, "sched_exit").as_deref(),
            Some("terminated")
        );
        // Creations never consult σ.
        assert_eq!(facts.fn_by_name("sched_setup").unwrap().sigma_const, None);
        // sched_blk recovers via sched_setup, so no effective walk
        // blocks: affinity and pending bookkeeping are both dead.
        assert!(facts.affinity_dead);
        assert!(facts.pending_dead);
        // The thread id is echoed back by the service, so ids survive
        // micro-reboots without translation.
        assert!(facts.id_stable);
        assert!(!facts.records_dead);
        assert_eq!(live_meta_names(&spec, &facts), ["thdid"]);
        assert!(facts.fn_by_name("sched_setup").unwrap().store_dead);
        assert!(facts.fn_by_name("sched_wakeup").unwrap().store_dead);
        assert!(facts.fn_by_name("sched_blk").unwrap().full_fast_path);
        assert!(facts.fn_by_name("sched_wakeup").unwrap().full_fast_path);
        // Terminal: σ-elidable, but close() still runs — no full path.
        assert!(!facts.fn_by_name("sched_exit").unwrap().full_fast_path);
    }

    #[test]
    fn mm_certifies_dead_creation_stores() {
        let (spec, facts) = facts_of("mm", include_str!("../../../idl/mm.sg"));
        assert_eq!(
            sigma_const_name(&spec, &facts, "mman_release_page").as_deref(),
            Some("terminated")
        );
        // Both creations replay purely from harvested metadata, so
        // their last-argument stores are dead — the creation-path win.
        assert!(facts.fn_by_name("mman_get_page").unwrap().store_dead);
        assert!(facts.fn_by_name("mman_alias_page").unwrap().store_dead);
        assert!(facts.affinity_dead);
        assert!(facts.pending_dead);
        // Map keys are reassigned on replay; translation stays live.
        assert!(!facts.id_stable);
        // XCParent: creator discovery reads the creation records.
        assert!(!facts.records_dead);
        assert_eq!(
            live_meta_names(&spec, &facts),
            ["vaddr", "dstcomp", "dstvaddr"]
        );
        // The NewDesc slot (mapkey) is not live metadata, but NewDesc
        // is never elided.
        assert!(!facts.fn_by_name("mman_get_page").unwrap().retval_dead);
    }

    #[test]
    fn evt_certifies_dead_compid_harvest() {
        let (spec, facts) = facts_of("evt", include_str!("../../../idl/evt.sg"));
        assert_eq!(
            sigma_const_name(&spec, &facts, "evt_wait").as_deref(),
            Some("evt_wait")
        );
        assert_eq!(
            sigma_const_name(&spec, &facts, "evt_trigger").as_deref(),
            Some("evt_trigger")
        );
        // Global: the G0 restore protocol pins the id.
        assert!(facts.id_stable);
        assert!(!facts.records_dead);
        // evt_wait recovers via evt_split, so no walk blocks.
        assert!(facts.affinity_dead && facts.pending_dead);
        // The compid harvest is dead — replay synthesizes the client id
        // directly — while parent/grp feed the restore upcall.
        assert_eq!(live_meta_names(&spec, &facts), ["parent_evtid", "grp"]);
        let split = facts.fn_by_name("evt_split").unwrap();
        assert_eq!(split.live_data_args.len(), 2);
        let (_, split_cf) = spec.fn_by_name("evt_split").unwrap();
        assert_eq!(split_cf.data_args.len(), 3);
        assert!(facts.fn_by_name("evt_wait").unwrap().full_fast_path);
        assert!(facts.fn_by_name("evt_trigger").unwrap().full_fast_path);
    }

    #[test]
    fn tmr_wait_is_full_fast_path_but_period_harvests() {
        let (spec, facts) = facts_of("tmr", include_str!("../../../idl/tmr.sg"));
        assert_eq!(
            sigma_const_name(&spec, &facts, "tmr_wait").as_deref(),
            Some("tmr_wait")
        );
        assert!(facts.fn_by_name("tmr_wait").unwrap().full_fast_path);
        // tmr_period has a constant σ-successor too, but its period
        // harvest is live (replay re-arms from it) — no full path.
        let period = facts.fn_by_name("tmr_period").unwrap();
        assert!(period.sigma_const.is_some());
        assert!(!period.full_fast_path);
        assert_eq!(period.live_data_args.len(), 1);
        assert_eq!(live_meta_names(&spec, &facts), ["period"]);
        assert!(!facts.id_stable);
    }

    #[test]
    fn lock_keeps_sigma_and_affinity_live() {
        let (spec, facts) = facts_of("lock", include_str!("../../../idl/lock.sg"));
        // σ is partial everywhere (double-take is the detected fault)
        // and lock_restore pollutes the resync domain: nothing is
        // σ-constant.
        for f in &facts.fns {
            assert_eq!(f.sigma_const, None, "{} must not be σ-constant", f.name);
            assert!(!f.full_fast_path);
        }
        // lock_take sits on the recovery walk; its restore substitute
        // reads the affinity stamp to find the owner.
        assert!(!facts.affinity_dead);
        // ...but the substitute itself never blocks, so pending-call
        // markers are dead.
        assert!(facts.pending_dead);
        // lock_restore replays its `owner` argument from the last
        // observed call — the store stays live.
        assert!(!facts.fn_by_name("lock_restore").unwrap().store_dead);
        assert!(live_meta_names(&spec, &facts).is_empty());
    }

    #[test]
    fn fs_is_certifiable_but_offset_stays_hot() {
        let (spec, facts) = facts_of("fs", include_str!("../../../idl/fs.sg"));
        // Every non-creation has a constant successor...
        assert_eq!(
            sigma_const_name(&spec, &facts, "tread").as_deref(),
            Some("tread")
        );
        assert_eq!(
            sigma_const_name(&spec, &facts, "trelease").as_deref(),
            Some("terminated")
        );
        // ...but tseek replays the offset from metadata no creation
        // writes, so its store is live, and tread/twrite accumulate
        // into a live slot, so their return values are live: fs has no
        // full fast path and the spec requests none.
        assert!(!facts.fn_by_name("tseek").unwrap().store_dead);
        assert!(!facts.fn_by_name("tread").unwrap().retval_dead);
        for f in &facts.fns {
            assert!(!f.full_fast_path, "{} unexpectedly fast-pathed", f.name);
        }
        assert_eq!(live_meta_names(&spec, &facts), ["path", "offset"]);
        assert!(facts.affinity_dead && facts.pending_dead);
    }

    #[test]
    fn apply_installs_requested_facts_only() {
        let mut spec = shipped("sched", include_str!("../../../idl/sched.sg"));
        let facts = ElisionFacts::certify(&spec);
        facts.apply(&mut spec).unwrap();
        let (_, blk) = spec.fn_by_name("sched_blk").unwrap();
        let (_, setup) = spec.fn_by_name("sched_setup").unwrap();
        // Requested σ fast paths are installed...
        assert!(spec.elide_requests.is_empty() || blk.sigma_const.is_some());
        // ...dead stores are cleared everywhere proven, even on the
        // creation, while the replay-side read index survives.
        assert_eq!(setup.store_slot, None);
        assert_eq!(setup.track_slot, Some(0));
    }

    #[test]
    fn apply_rejects_unprovable_requests() {
        let idl = "\
service_global_info = { desc_block = true };
sm_transition(l_alloc, l_take);
sm_transition(l_take, l_release);
sm_transition(l_release, l_take);
sm_transition(l_release, l_free);
sm_creation(l_alloc);
sm_terminal(l_free);
sm_block(l_take);
sm_wakeup(l_release);
sm_elide(l_take);
desc_data_retval(long, id)
l_alloc(componentid_t compid);
int l_take(componentid_t compid, desc(long id));
int l_release(componentid_t compid, desc(long id));
int l_free(componentid_t compid, desc(long id));
";
        let mut spec = shipped("l", idl);
        let facts = ElisionFacts::certify(&spec);
        let err = facts.apply(&mut spec).unwrap_err();
        assert!(err.contains("l_take"), "{err}");
        assert!(err.contains("SG060"), "{err}");
    }

    #[test]
    fn apply_rejects_creation_requests() {
        let idl = "\
sm_transition(mk, use_it);
sm_transition(use_it, use_it);
sm_elide(mk);
sm_creation(mk);
desc_data_retval(long, id)
mk(componentid_t compid);
int use_it(componentid_t compid, desc(long id));
";
        let mut spec = shipped("x", idl);
        let facts = ElisionFacts::certify(&spec);
        let err = facts.apply(&mut spec).unwrap_err();
        assert!(err.contains("SG062"), "{err}");
    }

    #[test]
    fn certificate_is_deterministic_and_versioned() {
        let (spec, facts) = facts_of("sched", include_str!("../../../idl/sched.sg"));
        let cert = facts.to_json(&spec.meta_names);
        assert_eq!(cert, facts.to_json(&spec.meta_names));
        let parsed = composite::json::Json::parse(&cert).unwrap();
        assert_eq!(
            parsed.get("schema").and_then(Json::as_str),
            Some(CERT_SCHEMA)
        );
        assert_eq!(parsed.get("version").and_then(Json::as_u64), Some(1));
        assert_eq!(
            parsed.get("interface").and_then(Json::as_str),
            Some("sched")
        );
        let fns = parsed.get("fns").and_then(Json::as_array).unwrap();
        assert_eq!(fns.len(), spec.fns.len());
        // schema/version lead the object so certificate readers can
        // dispatch before touching facts.
        let head = cert.lines().take(3).collect::<Vec<_>>().join("\n");
        assert!(head.contains("\"schema\""), "{head}");
    }

    #[test]
    fn unannotated_spec_is_untouched_by_apply() {
        // No sm_elide: dead facts still apply (they are invisible), but
        // the spec-level toggles stay off and no σ fast path appears.
        let mut spec = shipped("mm", include_str!("../../../idl/mm.sg"));
        let no_requests = spec.elide_requests.is_empty();
        let facts = ElisionFacts::certify(&spec);
        facts.apply(&mut spec).unwrap();
        if no_requests {
            assert!(!spec.elide_pending && !spec.elide_affinity);
            assert!(spec.fns.iter().all(|f| f.sigma_const.is_none()));
        }
    }
}
