//! Predicates over the descriptor-resource model — the §III-C mapping
//! from model to recovery mechanism, used to gate code templates.

use superglue_idl::InterfaceSpec;
use superglue_sm::model::Mechanism;

/// The evaluated predicate set for one interface.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ModelPredicates {
    /// `B_r`: threads can block in the server → **T0** eager wakeup.
    pub blocks: bool,
    /// `D_r`: the resource carries bulk data → **G1** storage redundancy.
    pub resource_data: bool,
    /// `G_dr`: descriptors are global → **G0** + **U0**.
    pub global: bool,
    /// `P_dr ≠ Solo`: parent ordering → **D1**.
    pub has_parent: bool,
    /// `P_dr = XCParent`: parents cross components → upcall-based D1.
    pub xc_parent: bool,
    /// `C_dr`: recursive close → **D0**.
    pub close_children: bool,
    /// `Y_dr`: close removes tracking.
    pub close_removes: bool,
    /// `D_dr`: descriptors carry metadata.
    pub desc_data: bool,
    /// The interface declares `sm_recover_via` substitutions.
    pub has_recover_via: bool,
    /// Some function accumulates its return value into metadata.
    pub has_accum: bool,
    /// Some function has a terminal role.
    pub has_terminal: bool,
    /// The interface requests `sm_elide` fast paths — gates the
    /// certified untracked-stub template.
    pub has_elisions: bool,
}

impl ModelPredicates {
    /// Evaluate the predicates for an interface.
    #[must_use]
    pub fn of(spec: &InterfaceSpec) -> Self {
        let m = &spec.model;
        Self {
            blocks: m.blocks,
            resource_data: m.resource_has_data,
            global: m.global,
            has_parent: m.parent.has_parent(),
            xc_parent: m.parent.crosses_components(),
            close_children: m.close_children,
            close_removes: m.close_removes_tracking,
            desc_data: m.descriptor_has_data,
            has_recover_via: !spec.recover_via.is_empty(),
            has_accum: spec.fns.iter().any(|f| {
                matches!(
                    f.retval_tracked,
                    Some((_, _, superglue_idl::ast::RetvalMode::Accum))
                )
            }),
            has_terminal: spec.machine.terminal_fns().next().is_some(),
            has_elisions: !spec.elide.is_empty(),
        }
    }

    /// Whether the storage component participates in recovery.
    #[must_use]
    pub fn needs_storage(&self) -> bool {
        self.global || self.resource_data || self.xc_parent
    }

    /// The §III-C mechanism set implied by the predicates, matching
    /// [`superglue_sm::DescriptorResourceModel::mechanisms`].
    #[must_use]
    pub fn mechanisms(&self) -> Vec<Mechanism> {
        let mut m = vec![Mechanism::R0];
        if self.blocks {
            m.push(Mechanism::T0);
        }
        m.push(Mechanism::T1);
        if self.close_children {
            m.push(Mechanism::D0);
        }
        if self.has_parent {
            m.push(Mechanism::D1);
        }
        if self.global {
            m.push(Mechanism::G0);
            m.push(Mechanism::U0);
        }
        if self.resource_data {
            m.push(Mechanism::G1);
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lock_spec() -> InterfaceSpec {
        superglue_idl::compile_interface(
            "lock",
            r#"
service_global_info = { desc_block = true };
sm_creation(lock_alloc);
sm_terminal(lock_free);
sm_block(lock_take);
sm_wakeup(lock_release);
sm_transition(lock_alloc, lock_take);
sm_transition(lock_take, lock_release);
sm_transition(lock_release, lock_take);
sm_transition(lock_release, lock_free);
sm_transition(lock_alloc, lock_free);
desc_data_retval(long, lockid)
lock_alloc(componentid_t compid);
int lock_take(componentid_t compid, desc(long lockid));
int lock_release(componentid_t compid, desc(long lockid));
int lock_free(componentid_t compid, desc(long lockid));
"#,
        )
        .unwrap()
    }

    #[test]
    fn lock_predicates_match_paper() {
        // §V-C: "a lock descriptor only needs eager recovery (T0), base
        // recovery (R0), and on-demand recovery (T1)".
        let p = ModelPredicates::of(&lock_spec());
        assert!(p.blocks);
        assert!(!p.global && !p.has_parent && !p.resource_data);
        assert_eq!(
            p.mechanisms(),
            vec![Mechanism::R0, Mechanism::T0, Mechanism::T1]
        );
        assert!(!p.needs_storage());
    }

    #[test]
    fn mechanisms_agree_with_model() {
        let spec = lock_spec();
        let p = ModelPredicates::of(&spec);
        assert_eq!(p.mechanisms(), spec.model.mechanisms());
    }
}
