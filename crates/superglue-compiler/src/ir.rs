//! Intermediate representation: the executable stub specification.
//!
//! [`CompiledStubSpec`] is what the generated stub code *means*: which
//! argument positions carry descriptors, parents, and tracked metadata;
//! how return values feed the tracking tables; which recovery mechanisms
//! the interface's model demands; and how to synthesize arguments when a
//! recovery walk replays interface functions. The `superglue` runtime
//! interprets one of these per (client, server) edge.

use std::collections::BTreeMap;

use composite::intern::DispatchTable;
use superglue_idl::ast::RetvalMode;
use superglue_idl::{FnSig, InterfaceSpec, TrackKind};
use superglue_sm::machine::FnRoles;
use superglue_sm::{DescriptorResourceModel, FnId, StateMachine};

/// How the runtime treats a function's return value. Metadata is named
/// by compiler-interned slot indices into
/// [`CompiledStubSpec::meta_names`], so the runtime's hot path never
/// touches strings.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RetvalSpec {
    /// Ignored.
    None,
    /// The id of the freshly created descriptor (creation functions),
    /// also stored as metadata in the given slot.
    NewDesc(usize),
    /// Stored into descriptor metadata in the given slot.
    SetData(usize),
    /// Added to the integer metadata in the given slot (buffer returns
    /// contribute their byte length) — offset accumulation.
    AccumData(usize),
}

/// Where a replayed walk step's argument value comes from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArgSource {
    /// The client component id.
    ClientId,
    /// The descriptor's current server-side id.
    DescId,
    /// The parent descriptor's current server-side id.
    ParentId,
    /// Tracked metadata in this slot (falls back to the last observed
    /// argument at this position, then to zero).
    Meta(usize),
    /// The last observed argument at this position (falls back to zero).
    LastObserved,
}

/// One argument of the `*_restore` upcall used by **G0** recovery of
/// global descriptors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RestoreArg {
    /// The creator component id.
    Creator,
    /// The descriptor's original (stable, global) id.
    DescId,
    /// Tracked metadata in this slot.
    Meta(usize),
}

/// The compiled description of one interface function.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompiledFn {
    /// Function name.
    pub name: String,
    /// Role memberships (create/terminate/block/wakeup).
    pub roles: FnRoles,
    /// Position of the `desc(...)` argument, if any.
    pub desc_arg: Option<usize>,
    /// Position of the `parent_desc(...)` argument, if any.
    pub parent_arg: Option<usize>,
    /// Tracked-data arguments: (position, metadata slot).
    pub data_args: Vec<(usize, usize)>,
    /// Return-value treatment.
    pub retval: RetvalSpec,
    /// Per-position argument synthesis plan for recovery replay.
    pub replay_args: Vec<ArgSource>,
    /// Whether the stub must remember this function's last arguments
    /// (only functions that can appear on a recovery walk need them —
    /// skipping the rest keeps the hot path allocation-free).
    pub track_args: bool,
    /// Dense last-arguments slot: functions with `track_args` get
    /// consecutive slots `0..track_slots`, so the runtime stores observed
    /// arguments in a flat per-descriptor array instead of a map keyed by
    /// `FnId`.
    pub track_slot: Option<usize>,
    /// Certified constant σ-successor: when `Some(s)`, every state a live
    /// descriptor can hold steps through this function to exactly `s`,
    /// so the runtime may skip the σ-table read (and the unreachable
    /// invalid-transition branch) and install `s` directly. `None` until
    /// the elision certifier proves the fact (`lower` is conservative).
    pub sigma_const: Option<superglue_sm::State>,
    /// Dense last-arguments slot actually *written* on the hot path.
    /// Starts equal to [`CompiledFn::track_slot`]; the certifier clears
    /// it when the function's replay plan provably never reads the
    /// stored arguments (dead-store-on-replay). `track_slot` itself is
    /// kept for the replay-side read index.
    pub store_slot: Option<usize>,
    /// Tracked-data arguments actually harvested on the hot path.
    /// Starts equal to [`CompiledFn::data_args`]; the certifier drops
    /// entries whose metadata slot is outside the replay read-set.
    pub live_data_args: Vec<(usize, usize)>,
    /// Return-value treatment actually applied on the hot path. Starts
    /// equal to [`CompiledFn::retval`]; the certifier downgrades
    /// `SetData`/`AccumData` to `None` when the slot is outside the
    /// replay read-set (`NewDesc` is never elided — it materializes the
    /// descriptor).
    pub retval_eff: RetvalSpec,
}

/// The full compiled stub specification for one interface.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledStubSpec {
    /// Interface name.
    pub interface: String,
    /// The descriptor-resource model.
    pub model: DescriptorResourceModel,
    /// The descriptor state machine.
    pub machine: StateMachine,
    /// Interned metadata names; slot indices in [`CompiledFn`] index
    /// into this table.
    pub meta_names: Vec<String>,
    /// Compiled functions, `FnId`-aligned.
    pub fns: Vec<CompiledFn>,
    /// Recovery-state substitutions (`sm_recover_via`).
    pub recover_via: BTreeMap<FnId, FnId>,
    /// Blocking-function restore substitutions (`sm_recover_block`).
    pub recover_block: BTreeMap<FnId, FnId>,
    /// The G0 restore upcall for global interfaces:
    /// `(function name, argument plan)`.
    pub restore: Option<(String, Vec<RestoreArg>)>,
    /// Whether creations are recorded in the storage component — true
    /// for global descriptors (**G0**) and for cross-component parents
    /// (creator discovery for **D1**/**U0**).
    pub records_creations: bool,
    /// Dense σ: `sigma[state_index * fns.len() + fn_index]`, where
    /// `state_index` is 0 for `Init` and `1 + f` for `After(f)`. Lets the
    /// runtime step descriptor state without map lookups.
    pub sigma: Vec<Option<superglue_sm::State>>,
    /// Build-time dispatch table: function name → `FnId`, O(1) per call
    /// with no allocation (replaces the per-invocation linear name scan).
    pub dispatch: DispatchTable,
    /// Number of dense last-arguments slots (see
    /// [`CompiledFn::track_slot`]).
    pub track_slots: usize,
    /// The spec's `sm_elide` requests, in declaration order. Lowered
    /// verbatim; proving and *acting* on them is the certifier's job
    /// ([`crate::elide`]).
    pub elide_requests: Vec<FnId>,
    /// Certified: pending-call bookkeeping (the blocked-walk completion
    /// check) can never observe anything, so the stub skips it.
    pub elide_pending: bool,
    /// Certified: per-descriptor blocked-thread affinity stamps are never
    /// read by recovery, so the stub skips writing them.
    pub elide_affinity: bool,
    /// Certified: descriptor ids are stable across micro-reboots, so the
    /// post-recovery id-translation check can be skipped.
    pub elide_translation: bool,
    /// Certified: storage-component creation records are never read by
    /// recovery. Never provable for a valid spec today (G0 restore and
    /// cross-component parent discovery both read them) — carried so
    /// tampered certificates are detectable, and so the fact is computed
    /// honestly rather than hard-coded.
    pub elide_records: bool,
    /// `sm_channel`: descriptors are channel endpoints with
    /// peek-before-commit semantics. `Some(f)` names the opening
    /// (creation) function. Recovery of such a descriptor re-seats it at
    /// its last *committed* cursor (**CR0**) instead of replaying
    /// observations.
    pub channel: Option<FnId>,
    /// `sm_cursor`: the cursor-commit function whose tracked return
    /// value is the committed cursor position.
    pub cursor_commit: Option<FnId>,
    /// Metadata slot holding the committed cursor (the commit function's
    /// `desc_data_retval` name), appended to the G0 restore plan so the
    /// restore upcall receives the cursor as its last argument.
    pub cursor_slot: Option<usize>,
}

impl CompiledStubSpec {
    /// Dense σ step (hot path). Falls back to `None` (invalid branch)
    /// for states with no outgoing edges.
    #[must_use]
    pub fn step(&self, state: superglue_sm::State, f: FnId) -> Option<superglue_sm::State> {
        use superglue_sm::State;
        let idx = match state {
            State::Init => 0usize,
            State::After(g) => 1 + g.index(),
            State::Terminated | State::Faulty => return None,
        };
        self.sigma
            .get(idx * self.fns.len() + f.index())
            .copied()
            .flatten()
    }

    /// Look up a compiled function by name (hot path: one hash probe
    /// into the build-time dispatch table).
    #[must_use]
    #[inline]
    pub fn fn_by_name(&self, name: &str) -> Option<(FnId, &CompiledFn)> {
        self.dispatch
            .get(name)
            .map(|i| (FnId(i), &self.fns[i as usize]))
    }

    /// The compiled function for an id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[must_use]
    pub fn fn_of(&self, id: FnId) -> &CompiledFn {
        &self.fns[id.index()]
    }
}

fn intern(names: &mut Vec<String>, name: &str) -> usize {
    if let Some(i) = names.iter().position(|n| n == name) {
        return i;
    }
    names.push(name.to_owned());
    names.len() - 1
}

fn replay_plan(sig: &FnSig, names: &mut Vec<String>) -> Vec<ArgSource> {
    sig.params
        .iter()
        .map(|p| match p.track {
            TrackKind::Desc => ArgSource::DescId,
            TrackKind::Parent | TrackKind::DataParent => ArgSource::ParentId,
            TrackKind::Data => {
                if p.ty.contains("componentid") || p.name == "compid" {
                    ArgSource::ClientId
                } else {
                    ArgSource::Meta(intern(names, &p.name))
                }
            }
            TrackKind::None => {
                if p.ty.contains("componentid") || p.name == "compid" {
                    ArgSource::ClientId
                } else {
                    ArgSource::LastObserved
                }
            }
        })
        .collect()
}

fn lower_fn(spec: &InterfaceSpec, sig: &FnSig, names: &mut Vec<String>) -> CompiledFn {
    let roles = spec.machine.roles(sig.id);
    let desc_arg = sig.params.iter().position(|p| p.track == TrackKind::Desc);
    let parent_arg = sig
        .params
        .iter()
        .position(|p| matches!(p.track, TrackKind::Parent | TrackKind::DataParent));
    let data_args = sig
        .params
        .iter()
        .enumerate()
        .filter(|(_, p)| matches!(p.track, TrackKind::Data | TrackKind::DataParent))
        .map(|(i, p)| (i, intern(names, &p.name)))
        .collect();
    let retval = match &sig.retval_tracked {
        None => RetvalSpec::None,
        Some((_, name, mode)) => {
            let slot = intern(names, name);
            if roles.creates {
                RetvalSpec::NewDesc(slot)
            } else {
                match mode {
                    RetvalMode::Set => RetvalSpec::SetData(slot),
                    RetvalMode::Accum => RetvalSpec::AccumData(slot),
                }
            }
        }
    };
    let data_args: Vec<(usize, usize)> = data_args;
    CompiledFn {
        name: sig.name.clone(),
        roles,
        desc_arg,
        parent_arg,
        live_data_args: data_args.clone(),
        data_args,
        retval_eff: retval,
        retval,
        replay_args: replay_plan(sig, names),
        track_args: false, // filled in by `lower`
        track_slot: None,  // filled in by `lower`
        sigma_const: None, // filled in by the elision certifier
        store_slot: None,  // filled in by `lower`
    }
}

/// Functions that may be replayed during recovery: every function on any
/// shortest walk to any reachable state (after `sm_recover_via`
/// substitution), plus creations and `sm_recover_block` targets.
fn walk_functions(spec: &InterfaceSpec) -> std::collections::BTreeSet<FnId> {
    use superglue_sm::State;
    let mut set = std::collections::BTreeSet::new();
    let via: BTreeMap<FnId, FnId> = spec.recover_via.iter().copied().collect();
    for (i, _) in spec.fns.iter().enumerate() {
        let f = FnId(i as u32);
        let target = via.get(&f).copied().unwrap_or(f);
        if let Ok(walk) = spec.machine.recovery_walk(State::After(target)) {
            set.extend(walk);
        }
        if spec.machine.roles(f).creates {
            set.insert(f);
        }
    }
    for (_, g) in &spec.recover_block {
        set.insert(*g);
    }
    set
}

/// Lower a validated interface into its compiled stub specification.
#[must_use]
pub fn lower(spec: &InterfaceSpec) -> CompiledStubSpec {
    let replayable = walk_functions(spec);
    let mut meta_names = Vec::new();
    let mut fns: Vec<CompiledFn> = spec
        .fns
        .iter()
        .map(|sig| lower_fn(spec, sig, &mut meta_names))
        .collect();
    let mut track_slots = 0;
    for (i, f) in fns.iter_mut().enumerate() {
        f.track_args = replayable.contains(&FnId(i as u32));
        if f.track_args {
            f.track_slot = Some(track_slots);
            track_slots += 1;
        }
        // Until the certifier proves otherwise, every tracked function
        // also stores (identity default).
        f.store_slot = f.track_slot;
    }
    let recover_via: BTreeMap<FnId, FnId> = spec.recover_via.iter().copied().collect();
    let recover_block: BTreeMap<FnId, FnId> = spec.recover_block.iter().copied().collect();

    // Channel interfaces: the commit function's tracked return value is
    // the committed cursor. Intern its metadata slot so restore can read
    // the cursor the hot path harvested on every commit (CR0).
    let cursor_slot = spec.cursor.and_then(|cid| {
        spec.fns[cid.index()]
            .retval_tracked
            .as_ref()
            .map(|(_, name, _)| intern(&mut meta_names, name))
    });

    // G0: a global interface gets a `<iface>_restore` upcall whose
    // arguments are the creator, the original id, and the creation
    // function's tracked metadata (in declaration order). Channel
    // interfaces additionally receive the committed cursor as the final
    // argument, so a rebooted endpoint is re-seated at its last commit.
    let restore = if spec.model.global {
        let create_sig = spec
            .fns
            .iter()
            .find(|s| spec.machine.roles(s.id).creates)
            .expect("validation guarantees a creation function");
        let mut args = vec![RestoreArg::Creator, RestoreArg::DescId];
        for p in create_sig.data_params() {
            // compid-like parameters are covered by Creator.
            if p.ty.contains("componentid") || p.name == "compid" {
                continue;
            }
            args.push(RestoreArg::Meta(intern(&mut meta_names, &p.name)));
        }
        if let Some(slot) = cursor_slot {
            args.push(RestoreArg::Meta(slot));
        }
        Some((format!("{}_restore", spec.name), args))
    } else {
        None
    };

    let records_creations = spec.model.global || spec.model.parent.crosses_components();

    let nfns = fns.len();
    let mut sigma: Vec<Option<superglue_sm::State>> = vec![None; (nfns + 1) * nfns];
    {
        use superglue_sm::State;
        for (src, f, dst) in spec.machine.edges() {
            let idx = match src {
                State::Init => 0usize,
                State::After(g) => 1 + g.index(),
                State::Terminated | State::Faulty => continue,
            };
            sigma[idx * nfns + f.index()] = Some(dst);
        }
    }

    let dispatch = DispatchTable::build(fns.iter().map(|f| f.name.as_str()));

    CompiledStubSpec {
        interface: spec.name.clone(),
        model: spec.model,
        machine: spec.machine.clone(),
        meta_names,
        fns,
        recover_via,
        recover_block,
        restore,
        records_creations,
        sigma,
        dispatch,
        track_slots,
        elide_requests: spec.elide.clone(),
        elide_pending: false,
        elide_affinity: false,
        elide_translation: false,
        elide_records: false,
        channel: spec.channel,
        cursor_commit: spec.cursor,
        cursor_slot,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const EVT_IDL: &str = r#"
service_global_info = {
        desc_has_parent    = parent,
        desc_close_remove  = true,
        desc_is_global     = true,
        desc_block         = true,
        desc_has_data      = true
};
sm_transition(evt_split,   evt_wait);
sm_transition(evt_split,   evt_trigger);
sm_transition(evt_wait,    evt_trigger);
sm_transition(evt_trigger, evt_wait);
sm_transition(evt_trigger, evt_free);
sm_transition(evt_split,   evt_free);
sm_creation(evt_split);
sm_terminal(evt_free);
sm_block(evt_wait);
sm_wakeup(evt_trigger);
sm_recover_via(evt_wait, evt_split);

desc_data_retval(long, evtid)
evt_split(desc_data(componentid_t compid),
          desc_data(parent_desc(long parent_evtid)),
          desc_data(int grp));
long evt_wait(componentid_t compid, desc(long evtid));
int evt_trigger(componentid_t compid, desc(long evtid));
int evt_free(componentid_t compid, desc(long evtid));
"#;

    fn evt_spec() -> CompiledStubSpec {
        let spec = superglue_idl::compile_interface("evt", EVT_IDL).unwrap();
        lower(&spec)
    }

    #[test]
    fn lowers_fn_positions() {
        let s = evt_spec();
        let (_, wait) = s.fn_by_name("evt_wait").unwrap();
        assert_eq!(wait.desc_arg, Some(1));
        assert_eq!(wait.parent_arg, None);
        assert!(wait.roles.blocks);
        let (_, split) = s.fn_by_name("evt_split").unwrap();
        assert_eq!(split.parent_arg, Some(1));
        let RetvalSpec::NewDesc(slot) = split.retval else {
            panic!("expected NewDesc")
        };
        assert_eq!(s.meta_names[slot], "evtid");
        assert_eq!(split.data_args.len(), 3);
    }

    #[test]
    fn global_interface_gets_restore_plan() {
        let s = evt_spec();
        let (name, args) = s.restore.as_ref().unwrap();
        assert_eq!(name, "evt_restore");
        // Creator, original id, parent metadata, grp metadata — compid is
        // folded into Creator.
        assert_eq!(args.len(), 4);
        assert_eq!(args[0], RestoreArg::Creator);
        assert_eq!(args[1], RestoreArg::DescId);
        let RestoreArg::Meta(p) = args[2] else {
            panic!("meta")
        };
        let RestoreArg::Meta(g) = args[3] else {
            panic!("meta")
        };
        assert_eq!(s.meta_names[p], "parent_evtid");
        assert_eq!(s.meta_names[g], "grp");
        assert!(s.records_creations);
    }

    #[test]
    fn recover_via_is_lowered() {
        let s = evt_spec();
        let (wait_id, _) = s.fn_by_name("evt_wait").unwrap();
        let (split_id, _) = s.fn_by_name("evt_split").unwrap();
        assert_eq!(s.recover_via.get(&wait_id), Some(&split_id));
    }

    #[test]
    fn replay_plan_synthesizes_compid_and_desc() {
        let s = evt_spec();
        let (_, wait) = s.fn_by_name("evt_wait").unwrap();
        assert_eq!(
            wait.replay_args,
            vec![ArgSource::ClientId, ArgSource::DescId]
        );
        let (_, split) = s.fn_by_name("evt_split").unwrap();
        assert!(matches!(split.replay_args[0], ArgSource::ClientId));
        assert!(matches!(split.replay_args[1], ArgSource::ParentId));
        let ArgSource::Meta(slot) = split.replay_args[2] else {
            panic!("meta")
        };
        assert_eq!(s.meta_names[slot], "grp");
    }

    const CHAN_IDL: &str = r#"
service_global_info = {
        desc_is_global = true,
        desc_has_data  = true
};
sm_transition(chan_open, chan_commit);
sm_transition(chan_commit, chan_commit);
sm_creation(chan_open);
sm_channel(chan_open);
sm_cursor(chan_commit);

desc_data_retval(long, cid)
chan_open(desc_data(componentid_t compid), desc_data(long chan_no));
desc_data_retval(long, cursor)
long chan_commit(componentid_t compid, desc(long cid));
"#;

    #[test]
    fn channel_cursor_joins_restore_plan() {
        let spec = superglue_idl::compile_interface("chan", CHAN_IDL).unwrap();
        let s = lower(&spec);
        let (open_id, _) = s.fn_by_name("chan_open").unwrap();
        let (commit_id, _) = s.fn_by_name("chan_commit").unwrap();
        assert_eq!(s.channel, Some(open_id));
        assert_eq!(s.cursor_commit, Some(commit_id));
        let slot = s.cursor_slot.unwrap();
        assert_eq!(s.meta_names[slot], "cursor");
        // The commit function harvests the cursor on every call…
        assert_eq!(s.fn_of(commit_id).retval, RetvalSpec::SetData(slot));
        // …and the restore plan passes it back as the final argument.
        let (name, args) = s.restore.as_ref().unwrap();
        assert_eq!(name, "chan_restore");
        assert_eq!(args.last(), Some(&RestoreArg::Meta(slot)));
    }

    #[test]
    fn local_interface_has_no_restore() {
        let idl = "sm_creation(f);\ndesc_data_retval(long, id)\nf(componentid_t compid);\n";
        let spec = superglue_idl::compile_interface("x", idl).unwrap();
        let s = lower(&spec);
        assert!(s.restore.is_none());
        assert!(!s.records_creations);
    }
}
