//! The SuperGlue compiler (§IV-B of the paper).
//!
//! The paper's compiler is a pipeline: C preprocessor → `pycparser` front
//! end → intermediate representation encoding the descriptor-resource and
//! state-machine models → a back end of **72 template–predicate pairs**
//! that emits client and server stub code, where a template is included
//! only when its predicate holds for the interface's model.
//!
//! This crate is the Rust equivalent. The front end lives in
//! [`superglue_idl`]; from a validated
//! [`InterfaceSpec`] this crate produces:
//!
//! * an executable **stub specification** ([`ir::CompiledStubSpec`]) that
//!   the `superglue` runtime interprets — the semantic payload of the
//!   generated code (descriptor tracking tables, recovery walks, id
//!   translation, G0/G1/U0 interactions);
//! * **generated stub source text** ([`emit`]) for the client and server
//!   sides, rendered from the same template–predicate network — this is
//!   what Fig 6(c) counts as "generated LOC" against the IDL's
//!   hand-written-replacement LOC.
//!
//! # Example
//!
//! ```
//! let idl = r#"
//! sm_creation(lock_alloc);
//! sm_terminal(lock_free);
//! sm_transition(lock_alloc, lock_take);
//! sm_transition(lock_take, lock_release);
//! sm_transition(lock_release, lock_take);
//! sm_transition(lock_release, lock_free);
//! sm_transition(lock_alloc, lock_free);
//! desc_data_retval(long, lockid)
//! lock_alloc(componentid_t compid);
//! int lock_take(componentid_t compid, desc(long lockid));
//! int lock_release(componentid_t compid, desc(long lockid));
//! int lock_free(componentid_t compid, desc(long lockid));
//! "#;
//! let spec = superglue_idl::compile_interface("lock", idl)?;
//! let out = superglue_compiler::compile(&spec);
//! assert_eq!(out.stub_spec.interface, "lock");
//! assert!(out.client_source.contains("lock_take"));
//! assert!(out.generated_loc() > superglue_idl::idl_loc(idl));
//! # Ok::<(), superglue_idl::IdlError>(())
//! ```

pub mod elide;
pub mod emit;
pub mod ir;
pub mod predicates;
pub mod templates;

pub use elide::{ElisionFacts, FnElision};
pub use ir::{ArgSource, CompiledFn, CompiledStubSpec, RestoreArg, RetvalSpec};
pub use predicates::ModelPredicates;

use superglue_idl::InterfaceSpec;

/// Everything the compiler produces for one interface.
#[derive(Debug, Clone)]
pub struct Compilation {
    /// The runtime-interpretable stub specification.
    pub stub_spec: CompiledStubSpec,
    /// Generated client-stub source text.
    pub client_source: String,
    /// Generated server-stub source text.
    pub server_source: String,
    /// Which template–predicate pairs fired, by template name (for
    /// inspection and for the template-count invariant tests).
    pub templates_used: Vec<&'static str>,
    /// The elision certificate (deterministic JSON) when the spec
    /// requested any `sm_elide` fast path; `None` for unannotated
    /// interfaces, which stay bit-for-bit on the fully tracked path.
    pub elision_cert: Option<String>,
}

impl Compilation {
    /// Lines of generated stub code, client + server — the "generated
    /// LOC" series of Fig 6(c).
    #[must_use]
    pub fn generated_loc(&self) -> usize {
        count_loc(&self.client_source) + count_loc(&self.server_source)
    }
}

/// Count non-blank, non-comment lines of generated source.
#[must_use]
pub fn count_loc(source: &str) -> usize {
    source
        .lines()
        .map(str::trim)
        .filter(|l| {
            !l.is_empty() && !l.starts_with("//") && !l.starts_with("/*") && !l.starts_with('*')
        })
        .count()
}

/// Compile a validated interface into a stub spec plus generated source.
///
/// The fully tracked build: `sm_elide` requests are carried through to
/// the IR (and rendered as fast-path stubs in the generated source)
/// but **not** applied to the runtime spec. Use [`compile_elided`] to
/// also certify and install the requested fast paths.
#[must_use]
pub fn compile(spec: &InterfaceSpec) -> Compilation {
    let stub_spec = ir::lower(spec);
    let preds = ModelPredicates::of(spec);
    let (client_source, server_source, templates_used) = emit::emit_both(spec, &stub_spec, &preds);
    let elision_cert = (!stub_spec.elide_requests.is_empty())
        .then(|| ElisionFacts::certify(&stub_spec).to_json(&stub_spec.meta_names));
    Compilation {
        stub_spec,
        client_source,
        server_source,
        templates_used,
        elision_cert,
    }
}

/// Compile with the certified tracking elisions applied to the runtime
/// stub specification.
///
/// The generated source and certificate are identical to [`compile`]'s
/// (both are rendered from the certifier's facts, so there is a single
/// golden set); only the interpreted [`CompiledStubSpec`] differs, in
/// exactly the proven-invisible writes.
///
/// # Errors
///
/// Returns the certifier's message when the spec requests an elision
/// that cannot be proven (see [`ElisionFacts::apply`]).
pub fn compile_elided(spec: &InterfaceSpec) -> Result<Compilation, String> {
    let mut out = compile(spec);
    let facts = ElisionFacts::certify(&out.stub_spec);
    facts.apply(&mut out.stub_spec)?;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn count_loc_skips_blank_and_comment_lines() {
        assert_eq!(count_loc("a\n\n// c\nb\n"), 2);
    }
}
