//! Machine-level elision facts.
//!
//! The tracking-elision certifier (sglint SG060–SG06x and the compiler's
//! certificate pass) needs a handful of *pure state-machine* queries that
//! are independent of argument tracking or the lowered IR:
//!
//! * which states a live tracked descriptor can actually be in at the
//!   moment an interface function is applied (the *resync domain*);
//! * whether σ maps every such state through a function `f` to one
//!   constant successor (so the per-call σ read *and* the invalid-
//!   transition fault-detection branch are both statically decided);
//! * which functions can ever execute as part of a recovery walk (the
//!   machine half of the replay read-set), and which of those block.
//!
//! These facts are deliberately computed from σ alone. The compiler
//! layers argument/metadata liveness on top (in its own `elide` module)
//! and sglint recomputes everything from the validated spec without
//! touching either, so the two sides can cross-check each other.

use std::collections::BTreeSet;

use crate::machine::{FnId, State, StateMachine};

/// Elision-relevant facts derived purely from a [`StateMachine`]'s σ.
///
/// Compute once per machine with [`MachineFacts::compute`]; all queries
/// are then O(1)/O(log n) lookups. The struct is plain data so callers
/// (compiler certifier, tests) can also construct expected values.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MachineFacts {
    /// Per-function constant successor, indexed by [`FnId::index`].
    ///
    /// `Some(s)` means: for *every* state in the resync domain, applying
    /// this function yields exactly `s` (and σ has the edge, so the
    /// invalid-transition branch is unreachable). `None` for creation
    /// functions (they never consult σ: creation installs `After(f)` /
    /// `Terminated` directly) and for any function whose successor is
    /// missing or differs somewhere in the domain.
    sigma_const: Vec<Option<State>>,
    /// The resync domain: every state a live tracked descriptor can hold
    /// when a non-creation function is applied to it.
    live_states: Vec<State>,
    /// All functions appearing in any recovery walk to a reachable
    /// state — the machine half of the replay read-set.
    replay_fns: BTreeSet<FnId>,
    /// The subset of [`MachineFacts::replay_fns`] with `sm_block`.
    blocking_replay_fns: BTreeSet<FnId>,
}

impl MachineFacts {
    /// Derive all facts from a built machine.
    #[must_use]
    pub fn compute(sm: &StateMachine) -> Self {
        // The resync domain. A live descriptor's state is always
        // `After(f)` for some *non-terminal* f:
        //
        // * creations install `After(f)` (terminal creations close the
        //   descriptor immediately, so `Terminated` never persists on a
        //   live tracked entry);
        // * a successful σ step lands on `After(g)` for non-terminal g
        //   (terminal g closes the descriptor);
        // * the runtime's invalid-transition *resync* sets `After(f)`
        //   for whatever non-terminal f was just called — including
        //   functions with no outgoing σ edges at all (e.g. restore
        //   helpers), which is why the domain is "all non-terminal
        //   functions", not "σ-reachable states".
        //
        // `Init` is not in the domain: the only function applied to a
        // descriptor in `Init` is its creation, which bypasses σ.
        let live_states: Vec<State> = sm
            .functions()
            .iter()
            .enumerate()
            .filter(|(_, f)| !f.roles.terminates)
            .map(|(i, _)| State::After(FnId(i as u32)))
            .collect();

        let mut sigma_const = Vec::with_capacity(sm.function_count());
        for i in 0..sm.function_count() {
            let f = FnId(i as u32);
            if sm.roles(f).creates {
                // Creations never run the σ step; the fact is
                // meaningless for them and must read as "not constant".
                sigma_const.push(None);
                continue;
            }
            let mut succ: Option<State> = None;
            let mut total = true;
            for &s in &live_states {
                match sm.step(s, f) {
                    Ok(t) => match succ {
                        None => succ = Some(t),
                        Some(prev) if prev == t => {}
                        Some(_) => {
                            total = false;
                            break;
                        }
                    },
                    Err(_) => {
                        total = false;
                        break;
                    }
                }
            }
            sigma_const.push(if total { succ } else { None });
        }

        // Replay read-set: every function some recovery walk can
        // execute. Walks exist exactly for the σ-reachable states; the
        // union over them is the set of calls a micro-reboot may replay,
        // so anything they read (arguments, metadata) must stay live.
        let mut replay_fns = BTreeSet::new();
        for i in 0..sm.function_count() {
            let f = FnId(i as u32);
            for target in [State::After(f), State::Terminated] {
                if let Ok(walk) = sm.recovery_walk(target) {
                    replay_fns.extend(walk);
                }
            }
        }
        let blocking_replay_fns = replay_fns
            .iter()
            .copied()
            .filter(|&f| sm.roles(f).blocks)
            .collect();

        Self {
            sigma_const,
            live_states,
            replay_fns,
            blocking_replay_fns,
        }
    }

    /// The resync domain (see [`MachineFacts`] field docs).
    #[must_use]
    pub fn live_states(&self) -> &[State] {
        &self.live_states
    }

    /// The constant σ-successor of `f` over the whole resync domain, or
    /// `None` when the successor is state-dependent, missing somewhere,
    /// or `f` is a creation.
    #[must_use]
    pub fn sigma_const(&self, f: FnId) -> Option<State> {
        self.sigma_const.get(f.index()).copied().flatten()
    }

    /// Functions that can execute as part of some recovery walk.
    #[must_use]
    pub fn replay_fns(&self) -> &BTreeSet<FnId> {
        &self.replay_fns
    }

    /// True when `f` can execute during some recovery walk.
    #[must_use]
    pub fn replays(&self, f: FnId) -> bool {
        self.replay_fns.contains(&f)
    }

    /// Blocking functions that can execute during some recovery walk.
    ///
    /// If this is non-empty, replay may block mid-walk, so per-call
    /// blocking bookkeeping (pending-call markers, thread affinity)
    /// feeds recovery and is harder to elide.
    #[must_use]
    pub fn blocking_replay_fns(&self) -> &BTreeSet<FnId> {
        &self.blocking_replay_fns
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::StateMachineBuilder;

    /// The lock machine from §III-B, plus the restore helper that the
    /// shipped `lock.sg` declares (registered, no σ edges of its own).
    fn lock_machine_with_restore() -> (StateMachine, [FnId; 5]) {
        let mut b = StateMachineBuilder::new("lock");
        let alloc = b.function("lock_alloc");
        let take = b.function("lock_take");
        let release = b.function("lock_release");
        let free = b.function("lock_free");
        let restore = b.function("lock_restore");
        b.creation(alloc);
        b.terminal(free);
        b.block(take);
        b.wakeup(release);
        b.transition(alloc, take);
        b.transition(take, release);
        b.transition(release, take);
        b.transition(release, free);
        b.transition(alloc, free);
        (b.build().unwrap(), [alloc, take, release, free, restore])
    }

    /// A sched-like machine where every non-creation fn is callable from
    /// every live state, so σ-successors are constant.
    fn total_machine() -> (StateMachine, [FnId; 4]) {
        let mut b = StateMachineBuilder::new("sched");
        let setup = b.function("setup");
        let blk = b.function("blk");
        let wakeup = b.function("wakeup");
        let exit = b.function("exit");
        b.creation(setup);
        b.terminal(exit);
        b.block(blk);
        b.wakeup(wakeup);
        for f in [setup, blk, wakeup] {
            b.transition(f, blk);
            b.transition(f, wakeup);
            b.transition(f, exit);
        }
        (b.build().unwrap(), [setup, blk, wakeup, exit])
    }

    #[test]
    fn live_states_are_non_terminal_afters() {
        let (sm, [alloc, take, release, _free, restore]) = lock_machine_with_restore();
        let facts = MachineFacts::compute(&sm);
        assert_eq!(
            facts.live_states(),
            &[
                State::After(alloc),
                State::After(take),
                State::After(release),
                State::After(restore),
            ]
        );
    }

    #[test]
    fn total_constant_successors_are_certified() {
        let (sm, [setup, blk, wakeup, exit]) = total_machine();
        let facts = MachineFacts::compute(&sm);
        assert_eq!(facts.sigma_const(blk), Some(State::After(blk)));
        assert_eq!(facts.sigma_const(wakeup), Some(State::After(wakeup)));
        assert_eq!(facts.sigma_const(exit), Some(State::Terminated));
        // Creations are never σ-constant: they bypass σ entirely.
        assert_eq!(facts.sigma_const(setup), None);
    }

    #[test]
    fn partial_sigma_defeats_constancy() {
        let (sm, [_alloc, take, release, free, _restore]) = lock_machine_with_restore();
        let facts = MachineFacts::compute(&sm);
        // σ(After(take), take) is undefined (double-take is the fault
        // the machine detects), so take has no constant successor.
        assert_eq!(facts.sigma_const(take), None);
        // Same for release: σ(After(alloc), release) is undefined.
        assert_eq!(facts.sigma_const(release), None);
        assert_eq!(facts.sigma_const(free), None);
    }

    #[test]
    fn restore_helper_pollutes_the_domain() {
        // Even a machine whose "real" states are total gets defeated by
        // an extra non-terminal fn with no outgoing σ edges: the resync
        // path can park a descriptor in After(helper).
        let mut b = StateMachineBuilder::new("x");
        let mk = b.function("mk");
        let use_ = b.function("use");
        let helper = b.function("helper");
        b.creation(mk);
        b.transition(mk, use_);
        b.transition(use_, use_);
        // helper: registered, never a σ source or target.
        let _ = helper;
        let sm = b.build().unwrap();
        let facts = MachineFacts::compute(&sm);
        // Without helper, use would be constant: σ(After(mk), use) =
        // σ(After(use), use) = After(use). helper breaks totality.
        assert_eq!(facts.sigma_const(use_), None);
    }

    #[test]
    fn replay_fns_union_all_walks() {
        let (sm, [alloc, take, release, free, restore]) = lock_machine_with_restore();
        let facts = MachineFacts::compute(&sm);
        let expect: BTreeSet<FnId> = [alloc, take, release, free].into_iter().collect();
        assert_eq!(facts.replay_fns(), &expect);
        assert!(facts.replays(take));
        assert!(!facts.replays(restore));
        let blocking: BTreeSet<FnId> = [take].into_iter().collect();
        assert_eq!(facts.blocking_replay_fns(), &blocking);
    }

    #[test]
    fn nonblocking_machine_has_empty_blocking_replay() {
        let mut b = StateMachineBuilder::new("mm");
        let get = b.function("get");
        let alias = b.function("alias");
        let rel = b.function("rel");
        b.creation(get);
        b.terminal(rel);
        b.transition(get, alias);
        b.transition(alias, alias);
        b.transition(get, rel);
        b.transition(alias, rel);
        let sm = b.build().unwrap();
        let facts = MachineFacts::compute(&sm);
        assert!(facts.blocking_replay_fns().is_empty());
        assert!(facts.replays(get));
    }
}
