use std::fmt;

use crate::machine::{FnId, State};

/// Errors produced while building or exercising descriptor state machines
/// and trackers.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Error {
    /// A function id referenced a function not registered with the builder.
    UnknownFunction(FnId),
    /// The state machine has no creation function, so no descriptor can
    /// ever enter the machine.
    NoCreationFunction,
    /// A transition was declared twice with conflicting targets.
    DuplicateTransition { from: State, via: FnId },
    /// The requested state is unreachable from the initial state, so no
    /// recovery walk exists.
    Unreachable(State),
    /// An interface function was invoked on a descriptor whose current
    /// state has no transition for it. SuperGlue treats this as fault
    /// detection (§III-B: "formalizing valid transitions enables fault
    /// detection if invalid branches are attempted").
    InvalidTransition { state: State, via: FnId },
    /// The descriptor id is not present in the tracker.
    UnknownDescriptor(u64),
    /// A descriptor id was created twice without an intervening terminate.
    DuplicateDescriptor(u64),
    /// The descriptor-resource model is internally inconsistent.
    InconsistentModel(String),
    /// A parent descriptor was required (P_dr != Solo) but missing.
    MissingParent(u64),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::UnknownFunction(id) => write!(f, "unknown interface function {id:?}"),
            Error::NoCreationFunction => {
                write!(f, "state machine has no creation function")
            }
            Error::DuplicateTransition { from, via } => {
                write!(f, "conflicting transition from {from:?} via {via:?}")
            }
            Error::Unreachable(s) => write!(f, "state {s:?} unreachable from the initial state"),
            Error::InvalidTransition { state, via } => {
                write!(f, "invalid transition from {state:?} via {via:?}")
            }
            Error::UnknownDescriptor(id) => write!(f, "unknown descriptor {id}"),
            Error::DuplicateDescriptor(id) => write!(f, "descriptor {id} already tracked"),
            Error::InconsistentModel(why) => {
                write!(f, "inconsistent descriptor-resource model: {why}")
            }
            Error::MissingParent(id) => {
                write!(f, "descriptor {id} requires a parent but none was given")
            }
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase() {
        let errs = [
            Error::UnknownFunction(FnId(3)),
            Error::NoCreationFunction,
            Error::Unreachable(State::Init),
            Error::UnknownDescriptor(7),
            Error::DuplicateDescriptor(7),
            Error::InconsistentModel("x".into()),
            Error::MissingParent(1),
        ];
        for e in errs {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(s.chars().next().unwrap().is_lowercase());
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Error>();
    }
}
