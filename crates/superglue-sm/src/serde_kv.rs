//! Serde adapter serializing ordered maps with non-string keys as
//! sequences of pairs, so model types survive JSON (whose object keys
//! must be strings).

use serde::de::{Deserialize, Deserializer};
use serde::ser::{Serialize, Serializer};
use std::collections::BTreeMap;

/// Serialize a map as `[[k, v], …]`.
///
/// # Errors
///
/// Propagates serializer errors.
pub fn serialize<K, V, S>(map: &BTreeMap<K, V>, serializer: S) -> Result<S::Ok, S::Error>
where
    K: Serialize + Ord,
    V: Serialize,
    S: Serializer,
{
    serializer.collect_seq(map.iter())
}

/// Deserialize a map from `[[k, v], …]`.
///
/// # Errors
///
/// Propagates deserializer errors.
pub fn deserialize<'de, K, V, D>(deserializer: D) -> Result<BTreeMap<K, V>, D::Error>
where
    K: Deserialize<'de> + Ord,
    V: Deserialize<'de>,
    D: Deserializer<'de>,
{
    let pairs: Vec<(K, V)> = Vec::deserialize(deserializer)?;
    Ok(pairs.into_iter().collect())
}

#[cfg(test)]
mod tests {
    use serde::{Deserialize, Serialize};
    use std::collections::BTreeMap;

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    struct Holder {
        #[serde(with = "super")]
        map: BTreeMap<(u32, u32), u32>,
    }

    #[test]
    fn tuple_keyed_map_round_trips_json() {
        let mut map = BTreeMap::new();
        map.insert((1, 2), 3);
        map.insert((4, 5), 6);
        let h = Holder { map };
        let json = serde_json::to_string(&h).unwrap();
        let back: Holder = serde_json::from_str(&json).unwrap();
        assert_eq!(back, h);
    }
}
