//! Shortest recovery walks through a descriptor state machine.
//!
//! After a micro-reboot puts a failed server into its safe (initial)
//! state, the client stub must replay interface functions so the server
//! rebuilds each descriptor into the state the client observed before the
//! fault. §III-B requires the *precomputed shortest path* `f0, …, fn` such
//! that `σ(σ(…σ(s0, f0)…), fn) = s_expected`. This module computes those
//! walks once at compile (build) time by breadth-first search.

use std::collections::{BTreeMap, VecDeque};

use crate::machine::{FnId, State};
use crate::{Error, Result};

/// Precomputed shortest walks from [`State::Init`] to every reachable
/// state of one machine.
///
/// Stored as a breadth-first-search predecessor map so that memory stays
/// proportional to the number of states, not the sum of walk lengths —
/// the paper's embedded-systems constraint of bounded tracking memory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryWalks {
    /// state → (predecessor state, function taken to get here).
    pred: BTreeMap<State, (State, FnId)>,
}

impl RecoveryWalks {
    /// Run BFS over σ (given as an explicit edge map) from [`State::Init`].
    #[must_use]
    pub fn compute(transitions: &BTreeMap<(State, FnId), State>) -> Self {
        // Adjacency: state → [(fn, target)] in deterministic order.
        let mut adj: BTreeMap<State, Vec<(FnId, State)>> = BTreeMap::new();
        for (&(src, f), &dst) in transitions {
            adj.entry(src).or_default().push((f, dst));
        }

        let mut pred = BTreeMap::new();
        let mut queue = VecDeque::new();
        queue.push_back(State::Init);
        let mut visited = std::collections::BTreeSet::new();
        visited.insert(State::Init);
        while let Some(s) = queue.pop_front() {
            if let Some(edges) = adj.get(&s) {
                for &(f, t) in edges {
                    if visited.insert(t) {
                        pred.insert(t, (s, f));
                        queue.push_back(t);
                    }
                }
            }
        }
        Self { pred }
    }

    /// The shortest function sequence from `s0` to `target`.
    ///
    /// # Errors
    ///
    /// [`Error::Unreachable`] if BFS never reached `target`. The faulty
    /// state and terminated state are never recovery targets; asking for
    /// them also yields `Unreachable`.
    pub fn walk_to(&self, target: State) -> Result<Vec<FnId>> {
        if target == State::Init {
            return Ok(Vec::new());
        }
        let mut walk = Vec::new();
        let mut cur = target;
        while cur != State::Init {
            let &(prev, f) = self.pred.get(&cur).ok_or(Error::Unreachable(target))?;
            walk.push(f);
            cur = prev;
        }
        walk.reverse();
        Ok(walk)
    }

    /// Whether `target` is reachable from the initial state.
    #[must_use]
    pub fn reachable(&self, target: State) -> bool {
        target == State::Init || self.pred.contains_key(&target)
    }

    /// All reachable states (excluding `Init`), in deterministic order.
    pub fn reachable_states(&self) -> impl Iterator<Item = State> + '_ {
        self.pred.keys().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn edges(list: &[(State, u32, State)]) -> BTreeMap<(State, FnId), State> {
        list.iter().map(|&(s, f, t)| ((s, FnId(f)), t)).collect()
    }

    #[test]
    fn empty_machine_reaches_nothing() {
        let w = RecoveryWalks::compute(&BTreeMap::new());
        assert!(w.walk_to(State::Init).unwrap().is_empty());
        assert!(w.walk_to(State::After(FnId(0))).is_err());
        assert_eq!(w.reachable_states().count(), 0);
    }

    #[test]
    fn linear_chain_walks() {
        let a = State::After(FnId(0));
        let b = State::After(FnId(1));
        let c = State::After(FnId(2));
        let t = edges(&[(State::Init, 0, a), (a, 1, b), (b, 2, c)]);
        let w = RecoveryWalks::compute(&t);
        assert_eq!(w.walk_to(c).unwrap(), vec![FnId(0), FnId(1), FnId(2)]);
        assert!(w.reachable(b));
    }

    #[test]
    fn bfs_prefers_shorter_route() {
        // Two ways to reach After(2): Init-0->A-1->B-2->C or Init-3->C.
        let a = State::After(FnId(0));
        let b = State::After(FnId(1));
        let c = State::After(FnId(2));
        let t = edges(&[
            (State::Init, 0, a),
            (a, 1, b),
            (b, 2, c),
            (State::Init, 3, c),
        ]);
        let w = RecoveryWalks::compute(&t);
        assert_eq!(w.walk_to(c).unwrap(), vec![FnId(3)]);
    }

    #[test]
    fn cycles_terminate() {
        let a = State::After(FnId(0));
        let b = State::After(FnId(1));
        let t = edges(&[(State::Init, 0, a), (a, 1, b), (b, 0, a)]);
        let w = RecoveryWalks::compute(&t);
        assert_eq!(w.walk_to(a).unwrap(), vec![FnId(0)]);
        assert_eq!(w.walk_to(b).unwrap(), vec![FnId(0), FnId(1)]);
    }

    #[test]
    fn faulty_state_never_reachable() {
        let a = State::After(FnId(0));
        let t = edges(&[(State::Init, 0, a)]);
        let w = RecoveryWalks::compute(&t);
        assert!(!w.reachable(State::Faulty));
        assert!(w.walk_to(State::Faulty).is_err());
    }
}
