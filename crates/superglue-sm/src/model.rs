//! The descriptor-resource model `DR = (B_r, D_r, G_dr, P_dr, C_dr, Y_dr,
//! D_dr)` (§III-A of the paper).
//!
//! Operating systems name abstract resources (threads, mappings, locks,
//! event channels, files) with opaque *descriptors*. SuperGlue decouples
//! the resource from the descriptor and parameterizes each interface with
//! seven properties that fully determine which recovery mechanisms
//! (R0/T0/T1/D0/D1/G0/G1/U0) the compiler must emit.

use std::fmt;

use crate::{Error, Result};

/// `P_dr`: whether descriptors of a class depend on one another, and
/// whether that dependency can span components.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ParentPolicy {
    /// No inter-descriptor dependencies exist.
    #[default]
    Solo,
    /// Descriptor creation takes another descriptor as an argument (like
    /// POSIX `accept`); on recovery the same parent must be re-supplied.
    Parent,
    /// The parent/child relationship can span components (like memory
    /// aliases rooted in another component's mapping).
    XcParent,
}

impl ParentPolicy {
    /// True when descriptors of this class have a parent at all.
    #[must_use]
    pub fn has_parent(self) -> bool {
        !matches!(self, ParentPolicy::Solo)
    }

    /// True when the dependency may cross component boundaries.
    #[must_use]
    pub fn crosses_components(self) -> bool {
        matches!(self, ParentPolicy::XcParent)
    }
}

impl fmt::Display for ParentPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ParentPolicy::Solo => "Solo",
            ParentPolicy::Parent => "Parent",
            ParentPolicy::XcParent => "XCParent",
        };
        f.write_str(s)
    }
}

/// The seven-tuple descriptor-resource model of §III-A.
///
/// Field names follow the paper's notation; the IDL surface syntax for each
/// field is listed in Table I of the paper and in the doc comment of the
/// corresponding accessor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct DescriptorResourceModel {
    /// `B_r` — a thread can block while accessing the resource inside the
    /// server (`desc_block = true`). Blocking servers need eager wakeup
    /// recovery (**T0**).
    pub blocks: bool,
    /// `D_r` — the *resource* carries bulk data (`resc_has_data = true`,
    /// e.g. file contents) that must be redundantly stored in a storage
    /// component (**G1**).
    pub resource_has_data: bool,
    /// `G_dr` — descriptors are globally addressable across client
    /// components (`desc_is_global = true`), requiring storage-component
    /// mediation (**G0**) and upcalls (**U0**).
    pub global: bool,
    /// `P_dr` — the parent policy (`desc_has_parent = Solo|Parent|XCParent`).
    pub parent: ParentPolicy,
    /// `C_dr` — closing a descriptor recursively closes its children
    /// (`desc_close_children = true`), as in capability systems with
    /// recursive revocation (**D0**).
    pub close_children: bool,
    /// `Y_dr` — closing a descriptor removes the stub's tracking data
    /// (`desc_close_remove = true`); otherwise the metadata outlives the
    /// close so children may still consult it.
    pub close_removes_tracking: bool,
    /// `D_dr` — the *descriptor* carries recovery metadata
    /// (`desc_has_data = true`, e.g. a file path and offset).
    pub descriptor_has_data: bool,
}

impl DescriptorResourceModel {
    /// Create the all-false model (a stateless, solo, non-blocking
    /// interface needing only base recovery **R0**).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Validate the internal consistency constraints from §III-A.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InconsistentModel`] when
    /// * `Y_dr` is set although `P_dr = Solo` (the paper defines
    ///   `Y_dr ⇔ P_dr ≠ Solo ∧ ¬C_dr` — keeping tracking data past a close
    ///   only matters when children may consult it), or
    /// * `Y_dr` and `C_dr` are both set (children are destroyed on close,
    ///   so there is nobody left to consult retained tracking data... the
    ///   combination indicates a specification bug).
    pub fn validate(&self) -> Result<()> {
        if self.close_removes_tracking && !self.parent.has_parent() {
            return Err(Error::InconsistentModel(
                "desc_close_remove requires desc_has_parent != Solo".into(),
            ));
        }
        if self.close_removes_tracking && self.close_children {
            return Err(Error::InconsistentModel(
                "desc_close_remove conflicts with desc_close_children".into(),
            ));
        }
        if self.close_children && !self.parent.has_parent() {
            return Err(Error::InconsistentModel(
                "desc_close_children requires desc_has_parent != Solo".into(),
            ));
        }
        Ok(())
    }

    /// The set of recovery mechanisms (§III-C) this model requires, in the
    /// order the server-recovery procedure of §III-D applies them.
    #[must_use]
    pub fn mechanisms(&self) -> Vec<Mechanism> {
        let mut m = vec![Mechanism::R0];
        if self.blocks {
            m.push(Mechanism::T0);
        }
        m.push(Mechanism::T1);
        if self.close_children {
            m.push(Mechanism::D0);
        }
        if self.parent.has_parent() {
            m.push(Mechanism::D1);
        }
        if self.global {
            m.push(Mechanism::G0);
            m.push(Mechanism::U0);
        }
        if self.resource_has_data {
            m.push(Mechanism::G1);
        }
        m
    }

    /// Whether recovery of this interface involves the storage component
    /// (either **G0** global-descriptor records or **G1** resource data).
    #[must_use]
    pub fn needs_storage(&self) -> bool {
        self.global || self.resource_has_data
    }
}

/// The interface-driven recovery mechanisms taxonomy of §III-C.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Mechanism {
    /// Base state-machine-directed recovery shared by every configuration.
    R0,
    /// Eager wakeup of threads blocked in the faulted server at fault time.
    T0,
    /// On-demand, priority-inheriting recovery of descriptors as they are
    /// touched.
    T1,
    /// Child-dependency recovery on terminate (recursive revocation).
    D0,
    /// Parent-dependency recovery, root-first.
    D1,
    /// Global-descriptor recovery through the storage component.
    G0,
    /// Resource-data recovery through the storage component.
    G1,
    /// Upcall-driven rebuilding of descriptors in their creator component.
    U0,
}

impl fmt::Display for Mechanism {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Mechanism::R0 => "R0",
            Mechanism::T0 => "T0",
            Mechanism::T1 => "T1",
            Mechanism::D0 => "D0",
            Mechanism::D1 => "D1",
            Mechanism::G0 => "G0",
            Mechanism::G1 => "G1",
            Mechanism::U0 => "U0",
        };
        f.write_str(s)
    }
}

/// Builder for [`DescriptorResourceModel`] mirroring the IDL's
/// `service_global_info` block.
///
/// ```
/// use superglue_sm::model::{DescriptorResourceModelBuilder, ParentPolicy};
///
/// let event_model = DescriptorResourceModelBuilder::new()
///     .blocks(true)
///     .global(true)
///     .parent(ParentPolicy::Parent)
///     .close_removes_tracking(true)
///     .descriptor_has_data(true)
///     .build()?;
/// assert!(event_model.needs_storage());
/// # Ok::<(), superglue_sm::Error>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct DescriptorResourceModelBuilder {
    model: DescriptorResourceModel,
}

impl DescriptorResourceModelBuilder {
    /// Start from the all-false model.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Set `B_r` (`desc_block`).
    #[must_use]
    pub fn blocks(mut self, v: bool) -> Self {
        self.model.blocks = v;
        self
    }

    /// Set `D_r` (`resc_has_data`).
    #[must_use]
    pub fn resource_has_data(mut self, v: bool) -> Self {
        self.model.resource_has_data = v;
        self
    }

    /// Set `G_dr` (`desc_is_global`).
    #[must_use]
    pub fn global(mut self, v: bool) -> Self {
        self.model.global = v;
        self
    }

    /// Set `P_dr` (`desc_has_parent`).
    #[must_use]
    pub fn parent(mut self, v: ParentPolicy) -> Self {
        self.model.parent = v;
        self
    }

    /// Set `C_dr` (`desc_close_children`).
    #[must_use]
    pub fn close_children(mut self, v: bool) -> Self {
        self.model.close_children = v;
        self
    }

    /// Set `Y_dr` (`desc_close_remove`).
    #[must_use]
    pub fn close_removes_tracking(mut self, v: bool) -> Self {
        self.model.close_removes_tracking = v;
        self
    }

    /// Set `D_dr` (`desc_has_data`).
    #[must_use]
    pub fn descriptor_has_data(mut self, v: bool) -> Self {
        self.model.descriptor_has_data = v;
        self
    }

    /// Validate and return the model.
    ///
    /// # Errors
    ///
    /// See [`DescriptorResourceModel::validate`].
    pub fn build(self) -> Result<DescriptorResourceModel> {
        self.model.validate()?;
        Ok(self.model)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_model_needs_only_base_recovery() {
        let m = DescriptorResourceModel::new();
        assert_eq!(m.mechanisms(), vec![Mechanism::R0, Mechanism::T1]);
        assert!(!m.needs_storage());
        m.validate().expect("default model is consistent");
    }

    #[test]
    fn lock_model_mechanisms() {
        // Lock: blocking, local, solo descriptors — T0 + R0 + T1 only,
        // exactly as §V-C states.
        let m = DescriptorResourceModelBuilder::new()
            .blocks(true)
            .build()
            .unwrap();
        assert_eq!(
            m.mechanisms(),
            vec![Mechanism::R0, Mechanism::T0, Mechanism::T1]
        );
    }

    #[test]
    fn event_model_uses_all_but_d0() {
        // Event (Fig 3): parent, close_remove, global, block, desc data.
        let m = DescriptorResourceModelBuilder::new()
            .blocks(true)
            .global(true)
            .parent(ParentPolicy::Parent)
            .close_removes_tracking(true)
            .descriptor_has_data(true)
            .build()
            .unwrap();
        let mech = m.mechanisms();
        assert!(mech.contains(&Mechanism::G0));
        assert!(mech.contains(&Mechanism::U0));
        assert!(mech.contains(&Mechanism::D1));
        assert!(!mech.contains(&Mechanism::D0));
    }

    #[test]
    fn mm_model_has_children_dependency() {
        let m = DescriptorResourceModelBuilder::new()
            .parent(ParentPolicy::XcParent)
            .close_children(true)
            .build()
            .unwrap();
        let mech = m.mechanisms();
        assert!(mech.contains(&Mechanism::D0));
        assert!(mech.contains(&Mechanism::D1));
    }

    #[test]
    fn close_remove_without_parent_is_inconsistent() {
        let err = DescriptorResourceModelBuilder::new()
            .close_removes_tracking(true)
            .build()
            .unwrap_err();
        assert!(matches!(err, Error::InconsistentModel(_)));
    }

    #[test]
    fn close_remove_with_close_children_is_inconsistent() {
        let err = DescriptorResourceModelBuilder::new()
            .parent(ParentPolicy::Parent)
            .close_children(true)
            .close_removes_tracking(true)
            .build()
            .unwrap_err();
        assert!(matches!(err, Error::InconsistentModel(_)));
    }

    #[test]
    fn close_children_without_parent_is_inconsistent() {
        let err = DescriptorResourceModelBuilder::new()
            .close_children(true)
            .build()
            .unwrap_err();
        assert!(matches!(err, Error::InconsistentModel(_)));
    }

    #[test]
    fn parent_policy_display_matches_idl_surface() {
        assert_eq!(ParentPolicy::Solo.to_string(), "Solo");
        assert_eq!(ParentPolicy::Parent.to_string(), "Parent");
        assert_eq!(ParentPolicy::XcParent.to_string(), "XCParent");
    }

    #[test]
    fn parent_policy_predicates() {
        assert!(!ParentPolicy::Solo.has_parent());
        assert!(ParentPolicy::Parent.has_parent());
        assert!(ParentPolicy::XcParent.has_parent());
        assert!(!ParentPolicy::Parent.crosses_components());
        assert!(ParentPolicy::XcParent.crosses_components());
    }

    #[test]
    fn storage_needed_for_global_or_resource_data() {
        let g = DescriptorResourceModelBuilder::new()
            .global(true)
            .build()
            .unwrap();
        assert!(g.needs_storage());
        let d = DescriptorResourceModelBuilder::new()
            .resource_has_data(true)
            .build()
            .unwrap();
        assert!(d.needs_storage());
    }

    #[test]
    fn mechanisms_are_ordered_like_server_recovery_procedure() {
        let m = DescriptorResourceModelBuilder::new()
            .blocks(true)
            .global(true)
            .resource_has_data(true)
            .parent(ParentPolicy::Parent)
            .build()
            .unwrap();
        let mech = m.mechanisms();
        // R0 first, then T0 before T1, storage mechanisms last.
        assert_eq!(mech[0], Mechanism::R0);
        let t0 = mech.iter().position(|&x| x == Mechanism::T0).unwrap();
        let t1 = mech.iter().position(|&x| x == Mechanism::T1).unwrap();
        assert!(t0 < t1);
    }
}
