//! Descriptor-resource model and descriptor state machines.
//!
//! This crate implements the formal core of SuperGlue (§III of the paper):
//!
//! * the **descriptor-resource model** `DR = (B_r, D_r, G_dr, P_dr, C_dr,
//!   Y_dr, D_dr)` describing how a system service's resources and the
//!   descriptors naming them behave ([`model`]);
//! * the **descriptor state machine** `SM = (I, S, σ, s0, s_f)` that tracks
//!   the state of each descriptor as interface functions are invoked
//!   ([`machine`]);
//! * the **shortest recovery walk** through a state machine, which is the
//!   sequence of interface functions a client stub replays to bring a
//!   descriptor from the faulty state back to its expected state ([`walk`]);
//! * the runtime **descriptor tracker** that client stubs use to record the
//!   live state, metadata, and parent/child relationships of every
//!   descriptor crossing an interface ([`tracking`]);
//! * the **machine-level elision facts** (resync-state domain, constant
//!   σ-successors, replay read-set) that the tracking-elision certifier
//!   builds on ([`facts`]).
//!
//! The crate is substrate-independent: it knows nothing about the simulated
//! μ-kernel, the IDL surface syntax, or the recovery runtime. Those layers
//! (`superglue-idl`, `superglue-compiler`, `superglue`, `c3`) all consume
//! the types defined here.
//!
//! # Example
//!
//! Model the lock service from §III-B of the paper and compute the walk
//! that re-creates a *taken* lock after its server is micro-rebooted:
//!
//! ```
//! use superglue_sm::machine::{StateMachineBuilder, State};
//!
//! let mut b = StateMachineBuilder::new("lock");
//! let alloc = b.function("lock_alloc");
//! let take = b.function("lock_take");
//! let release = b.function("lock_release");
//! let free = b.function("lock_free");
//! b.creation(alloc);
//! b.terminal(free);
//! b.block(take);
//! b.wakeup(release);
//! b.transition(alloc, take);
//! b.transition(take, release);
//! b.transition(release, take);
//! b.transition(release, free);
//! b.transition(alloc, free);
//! let sm = b.build()?;
//!
//! // A lock last touched by `lock_take` is in state After(take); the
//! // shortest recovery walk re-creates and re-takes it.
//! let walk = sm.recovery_walk(State::After(take))?;
//! assert_eq!(walk, vec![alloc, take]);
//! # Ok::<(), superglue_sm::Error>(())
//! ```

pub mod facts;
pub mod machine;
pub mod model;
pub mod tracking;
pub mod walk;

mod error;

pub use error::Error;
pub use facts::MachineFacts;
pub use machine::{FnId, State, StateMachine, StateMachineBuilder};
pub use model::{DescriptorResourceModel, ParentPolicy};
pub use tracking::{DescId, DescriptorTracker, TrackedDescriptor, TrackedValue};
pub use walk::RecoveryWalks;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, Error>;
