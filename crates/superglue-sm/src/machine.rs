//! Descriptor state machines `SM = (I, S, σ, s0, s_f)` (§III-B).
//!
//! SuperGlue keeps the states of a descriptor *implicit*: the IDL declares
//! pairs of functions (`sm_transition(f, g)` means "`g` may follow `f`"),
//! so a descriptor's state is simply "the last interface function applied
//! to it". This module makes those states explicit as [`State`] values and
//! builds a checked transition function σ.

use std::collections::BTreeMap;
use std::fmt;

use crate::walk::RecoveryWalks;
use crate::{Error, Result};

/// Index of an interface function inside one [`StateMachine`].
///
/// `FnId`s are dense (0..function_count) and order follows declaration
/// order, so they double as indices into per-function side tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FnId(pub u32);

impl FnId {
    /// The dense index of this function.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for FnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fn#{}", self.0)
    }
}

/// A descriptor state.
///
/// * [`State::Init`] — `s0`: the descriptor does not yet exist (or was
///   just created and no function has run on it).
/// * [`State::After`] — the descriptor's last successful interface call
///   was the given function (the paper's implicit states).
/// * [`State::Terminated`] — a terminal function destroyed the descriptor.
/// * [`State::Faulty`] — `s_f`: the server failed; there are implicit
///   transitions here from every other state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum State {
    /// `s0`, before/at creation.
    Init,
    /// After the given interface function last ran on the descriptor.
    After(FnId),
    /// Destroyed by a terminal function.
    Terminated,
    /// `s_f`, the special faulty state.
    Faulty,
}

impl fmt::Display for State {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            State::Init => f.write_str("s0"),
            State::After(id) => write!(f, "after({id})"),
            State::Terminated => f.write_str("terminated"),
            State::Faulty => f.write_str("s_f"),
        }
    }
}

/// Role sets `I^create`, `I^terminate`, `I^block`, `I^wakeup` (§III-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct FnRoles {
    /// Returns a new descriptor in state `s0` (`sm_creation`).
    pub creates: bool,
    /// Takes a descriptor and destroys it (`sm_terminal`).
    pub terminates: bool,
    /// May block the invoking thread (`sm_block`).
    pub blocks: bool,
    /// Wakes a blocked thread (`sm_wakeup`).
    pub wakes: bool,
}

/// One interface function of the state machine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FnSpec {
    /// Function name as written in the IDL / C header.
    pub name: String,
    /// Role memberships.
    pub roles: FnRoles,
}

/// A fully-built, validated descriptor state machine.
///
/// Construct with [`StateMachineBuilder`]. Transition checking uses σ; the
/// precomputed shortest recovery walks are exposed via
/// [`StateMachine::recovery_walk`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StateMachine {
    interface: String,
    functions: Vec<FnSpec>,
    /// σ as an explicit edge map: (source state, function) → target state.
    transitions: BTreeMap<(State, FnId), State>,
    walks: RecoveryWalks,
}

impl StateMachine {
    /// The interface name this machine describes (e.g. `"lock"`).
    #[must_use]
    pub fn interface(&self) -> &str {
        &self.interface
    }

    /// All interface functions `I`, indexable by [`FnId`].
    #[must_use]
    pub fn functions(&self) -> &[FnSpec] {
        &self.functions
    }

    /// Number of interface functions.
    #[must_use]
    pub fn function_count(&self) -> usize {
        self.functions.len()
    }

    /// Look up a function by name.
    #[must_use]
    pub fn function_by_name(&self, name: &str) -> Option<FnId> {
        self.functions
            .iter()
            .position(|f| f.name == name)
            .map(|i| FnId(i as u32))
    }

    /// The name of a function.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a function of this machine.
    #[must_use]
    pub fn function_name(&self, id: FnId) -> &str {
        &self.functions[id.index()].name
    }

    /// The role set of a function.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a function of this machine.
    #[must_use]
    pub fn roles(&self, id: FnId) -> FnRoles {
        self.functions[id.index()].roles
    }

    /// All creation functions (`I^create`).
    pub fn creation_fns(&self) -> impl Iterator<Item = FnId> + '_ {
        self.functions
            .iter()
            .enumerate()
            .filter(|(_, f)| f.roles.creates)
            .map(|(i, _)| FnId(i as u32))
    }

    /// All terminal functions (`I^terminate`).
    pub fn terminal_fns(&self) -> impl Iterator<Item = FnId> + '_ {
        self.functions
            .iter()
            .enumerate()
            .filter(|(_, f)| f.roles.terminates)
            .map(|(i, _)| FnId(i as u32))
    }

    /// All blocking functions (`I^block`).
    pub fn blocking_fns(&self) -> impl Iterator<Item = FnId> + '_ {
        self.functions
            .iter()
            .enumerate()
            .filter(|(_, f)| f.roles.blocks)
            .map(|(i, _)| FnId(i as u32))
    }

    /// All wakeup functions (`I^wakeup`).
    pub fn wakeup_fns(&self) -> impl Iterator<Item = FnId> + '_ {
        self.functions
            .iter()
            .enumerate()
            .filter(|(_, f)| f.roles.wakes)
            .map(|(i, _)| FnId(i as u32))
    }

    /// σ: apply interface function `via` to a descriptor in `state`.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidTransition`] when the machine has no such edge —
    /// which SuperGlue treats as runtime fault *detection*, and
    /// [`Error::UnknownFunction`] when `via` is not a function of this
    /// machine.
    pub fn step(&self, state: State, via: FnId) -> Result<State> {
        if via.index() >= self.functions.len() {
            return Err(Error::UnknownFunction(via));
        }
        self.transitions
            .get(&(state, via))
            .copied()
            .ok_or(Error::InvalidTransition { state, via })
    }

    /// True when σ has an edge from `state` via `via`.
    #[must_use]
    pub fn can_step(&self, state: State, via: FnId) -> bool {
        self.transitions.contains_key(&(state, via))
    }

    /// All `(source, fn, target)` edges of σ, in deterministic order.
    pub fn edges(&self) -> impl Iterator<Item = (State, FnId, State)> + '_ {
        self.transitions.iter().map(|(&(s, f), &t)| (s, f, t))
    }

    /// The precomputed shortest recovery walk from `s0` to `expected`:
    /// the sequence of interface functions a stub replays (after the
    /// micro-reboot put the server into a safe state) so that the
    /// descriptor re-enters the state it held before the fault (**R0**).
    ///
    /// # Errors
    ///
    /// [`Error::Unreachable`] when the expected state cannot be reached
    /// from the initial state (a specification bug caught at build time
    /// for all `After` states; only queryable states can fail here).
    pub fn recovery_walk(&self, expected: State) -> Result<Vec<FnId>> {
        self.walks.walk_to(expected)
    }

    /// Number of functions replayed to recover a descriptor in `expected`
    /// state; a proxy for the per-descriptor recovery cost of Fig 6(b).
    ///
    /// # Errors
    ///
    /// Same as [`StateMachine::recovery_walk`].
    pub fn recovery_walk_len(&self, expected: State) -> Result<usize> {
        Ok(self.walks.walk_to(expected)?.len())
    }
}

/// Builder for [`StateMachine`].
///
/// Mirrors the IDL's `sm_*` declarations: register functions, declare
/// roles, declare `sm_transition(f, g)` pairs, then [`build`].
///
/// [`build`]: StateMachineBuilder::build
#[derive(Debug, Clone)]
pub struct StateMachineBuilder {
    interface: String,
    functions: Vec<FnSpec>,
    /// `(f, g)` pairs: g may follow f.
    follows: Vec<(FnId, FnId)>,
}

impl StateMachineBuilder {
    /// Start building the machine for the named interface.
    #[must_use]
    pub fn new(interface: impl Into<String>) -> Self {
        Self {
            interface: interface.into(),
            functions: Vec::new(),
            follows: Vec::new(),
        }
    }

    /// Register an interface function and return its id. Re-registering a
    /// name returns the existing id.
    pub fn function(&mut self, name: impl Into<String>) -> FnId {
        let name = name.into();
        if let Some(i) = self.functions.iter().position(|f| f.name == name) {
            return FnId(i as u32);
        }
        self.functions.push(FnSpec {
            name,
            roles: FnRoles::default(),
        });
        FnId((self.functions.len() - 1) as u32)
    }

    /// Declare `f ∈ I^create` (`sm_creation(f)`).
    pub fn creation(&mut self, f: FnId) -> &mut Self {
        self.functions[f.index()].roles.creates = true;
        self
    }

    /// Declare `f ∈ I^terminate` (`sm_terminal(f)`).
    pub fn terminal(&mut self, f: FnId) -> &mut Self {
        self.functions[f.index()].roles.terminates = true;
        self
    }

    /// Declare `f ∈ I^block` (`sm_block(f)`).
    pub fn block(&mut self, f: FnId) -> &mut Self {
        self.functions[f.index()].roles.blocks = true;
        self
    }

    /// Declare `f ∈ I^wakeup` (`sm_wakeup(f)`).
    pub fn wakeup(&mut self, f: FnId) -> &mut Self {
        self.functions[f.index()].roles.wakes = true;
        self
    }

    /// Declare that `g` may follow `f` (`sm_transition(f, g)`).
    pub fn transition(&mut self, f: FnId, g: FnId) -> &mut Self {
        if !self.follows.contains(&(f, g)) {
            self.follows.push((f, g));
        }
        self
    }

    /// Validate the declarations and build the machine.
    ///
    /// States are made explicit: every creation function gives an edge
    /// `Init --f--> After(f)` (or `Terminated` if `f` also terminates);
    /// every `sm_transition(f, g)` gives `After(f) --g--> After(g)`, with
    /// the target collapsing to [`State::Terminated`] when `g` is
    /// terminal. Recovery walks to every reachable state are precomputed
    /// by breadth-first search.
    ///
    /// # Errors
    ///
    /// * [`Error::NoCreationFunction`] if `I^create` is empty.
    /// * [`Error::UnknownFunction`] if a transition references an
    ///   unregistered function id.
    /// * [`Error::Unreachable`] if some non-terminal `After` state cannot
    ///   be reached from `Init` — descriptors could get into states the
    ///   recovery walk could never rebuild.
    pub fn build(&self) -> Result<StateMachine> {
        if !self.functions.iter().any(|f| f.roles.creates) {
            return Err(Error::NoCreationFunction);
        }
        let n = self.functions.len() as u32;
        for &(f, g) in &self.follows {
            if f.0 >= n {
                return Err(Error::UnknownFunction(f));
            }
            if g.0 >= n {
                return Err(Error::UnknownFunction(g));
            }
        }

        let mut transitions: BTreeMap<(State, FnId), State> = BTreeMap::new();
        let target_of = |g: FnId, roles: &FnRoles| {
            if roles.terminates {
                State::Terminated
            } else {
                State::After(g)
            }
        };
        for (i, f) in self.functions.iter().enumerate() {
            if f.roles.creates {
                let id = FnId(i as u32);
                transitions.insert((State::Init, id), target_of(id, &f.roles));
            }
        }
        for &(f, g) in &self.follows {
            let roles = self.functions[g.index()].roles;
            transitions.insert((State::After(f), g), target_of(g, &roles));
        }

        let walks = RecoveryWalks::compute(&transitions);

        // Every state that σ can produce (other than Terminated) must be
        // reachable so that a recovery walk exists for it.
        for (&(_, _), &target) in &transitions {
            if let State::After(_) = target {
                if walks.walk_to(target).is_err() {
                    return Err(Error::Unreachable(target));
                }
            }
        }

        Ok(StateMachine {
            interface: self.interface.clone(),
            functions: self.functions.clone(),
            transitions,
            walks,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The lock machine from §III-B of the paper.
    fn lock_machine() -> (StateMachine, [FnId; 4]) {
        let mut b = StateMachineBuilder::new("lock");
        let alloc = b.function("lock_alloc");
        let take = b.function("lock_take");
        let release = b.function("lock_release");
        let free = b.function("lock_free");
        b.creation(alloc);
        b.terminal(free);
        b.block(take);
        b.wakeup(release);
        b.transition(alloc, take);
        b.transition(take, release);
        b.transition(release, take);
        b.transition(release, free);
        b.transition(alloc, free);
        (b.build().unwrap(), [alloc, take, release, free])
    }

    #[test]
    fn lock_machine_builds() {
        let (sm, _) = lock_machine();
        assert_eq!(sm.interface(), "lock");
        assert_eq!(sm.function_count(), 4);
    }

    #[test]
    fn step_follows_sigma() {
        let (sm, [alloc, take, release, free]) = lock_machine();
        let s = sm.step(State::Init, alloc).unwrap();
        assert_eq!(s, State::After(alloc));
        let s = sm.step(s, take).unwrap();
        assert_eq!(s, State::After(take));
        let s = sm.step(s, release).unwrap();
        let s = sm.step(s, free).unwrap();
        assert_eq!(s, State::Terminated);
    }

    #[test]
    fn invalid_transition_is_fault_detection() {
        let (sm, [alloc, _take, release, _free]) = lock_machine();
        // Releasing a lock that was never taken is an invalid branch.
        let err = sm.step(State::After(alloc), release).unwrap_err();
        assert!(matches!(err, Error::InvalidTransition { .. }));
    }

    #[test]
    fn unknown_function_rejected_by_step() {
        let (sm, _) = lock_machine();
        assert!(matches!(
            sm.step(State::Init, FnId(99)),
            Err(Error::UnknownFunction(_))
        ));
    }

    #[test]
    fn recovery_walk_is_shortest() {
        let (sm, [alloc, take, release, _free]) = lock_machine();
        assert_eq!(sm.recovery_walk(State::After(alloc)).unwrap(), vec![alloc]);
        assert_eq!(
            sm.recovery_walk(State::After(take)).unwrap(),
            vec![alloc, take]
        );
        // "Released" is reachable only through take.
        assert_eq!(
            sm.recovery_walk(State::After(release)).unwrap(),
            vec![alloc, take, release]
        );
        // Init needs no replay.
        assert!(sm.recovery_walk(State::Init).unwrap().is_empty());
    }

    #[test]
    fn no_creation_function_is_an_error() {
        let mut b = StateMachineBuilder::new("bad");
        let f = b.function("f");
        b.transition(f, f);
        assert_eq!(b.build().unwrap_err(), Error::NoCreationFunction);
    }

    #[test]
    fn unreachable_state_is_an_error() {
        let mut b = StateMachineBuilder::new("bad");
        let a = b.function("a");
        let orphan = b.function("orphan");
        let next = b.function("next");
        b.creation(a);
        // orphan is never reachable from Init, yet has an outgoing edge
        // that makes After(next) reachable only through it.
        b.transition(orphan, next);
        let err = b.build().unwrap_err();
        assert!(matches!(err, Error::Unreachable(State::After(f)) if f == next));
    }

    #[test]
    fn function_registration_is_idempotent() {
        let mut b = StateMachineBuilder::new("x");
        let f1 = b.function("f");
        let f2 = b.function("f");
        assert_eq!(f1, f2);
    }

    #[test]
    fn role_sets_are_queryable() {
        let (sm, [alloc, take, release, free]) = lock_machine();
        assert_eq!(sm.creation_fns().collect::<Vec<_>>(), vec![alloc]);
        assert_eq!(sm.terminal_fns().collect::<Vec<_>>(), vec![free]);
        assert_eq!(sm.blocking_fns().collect::<Vec<_>>(), vec![take]);
        assert_eq!(sm.wakeup_fns().collect::<Vec<_>>(), vec![release]);
    }

    #[test]
    fn function_lookup_by_name() {
        let (sm, [alloc, ..]) = lock_machine();
        assert_eq!(sm.function_by_name("lock_alloc"), Some(alloc));
        assert_eq!(sm.function_by_name("nope"), None);
        assert_eq!(sm.function_name(alloc), "lock_alloc");
    }

    #[test]
    fn edges_iterates_sigma_deterministically() {
        let (sm, _) = lock_machine();
        let e1: Vec<_> = sm.edges().collect();
        let e2: Vec<_> = sm.edges().collect();
        assert_eq!(e1, e2);
        assert_eq!(e1.len(), 6); // 1 creation + 5 declared transitions
    }

    #[test]
    fn event_machine_from_fig3() {
        // Fig 3 of the paper: evt_split/evt_wait/evt_trigger/evt_free.
        let mut b = StateMachineBuilder::new("evt");
        let split = b.function("evt_split");
        let wait = b.function("evt_wait");
        let trigger = b.function("evt_trigger");
        let free = b.function("evt_free");
        b.creation(split);
        b.terminal(free);
        b.block(wait);
        b.wakeup(trigger);
        b.transition(split, wait);
        b.transition(wait, trigger);
        b.transition(trigger, wait);
        b.transition(trigger, free);
        b.transition(split, free);
        let sm = b.build().unwrap();
        assert_eq!(
            sm.recovery_walk(State::After(wait)).unwrap(),
            vec![split, wait]
        );
        assert_eq!(
            sm.recovery_walk(State::After(trigger)).unwrap(),
            vec![split, wait, trigger]
        );
    }

    #[test]
    fn display_of_states_and_fnids() {
        assert_eq!(State::Init.to_string(), "s0");
        assert_eq!(State::Faulty.to_string(), "s_f");
        assert_eq!(State::Terminated.to_string(), "terminated");
        assert_eq!(State::After(FnId(2)).to_string(), "after(fn#2)");
    }
}
