//! Runtime descriptor tracking for client-side stubs.
//!
//! A client stub records, for every descriptor that crosses an interface,
//! a bounded summary (§II-C): the descriptor's current state-machine state
//! plus the metadata `D_dr` harvested from interface function arguments
//! and return values. This is the data that [`crate::walk`] replays after
//! a server micro-reboot.
//!
//! Two trackers are provided:
//!
//! * [`DescriptorTracker`] — the state-machine tracker SuperGlue uses
//!   (O(descriptors) memory, the embedded-systems requirement);
//! * [`OperationLog`] — the unbounded operation log that §II-C rejects,
//!   kept as an ablation baseline for the memory/replay benchmarks.

use std::collections::BTreeMap;
use std::fmt;

use crate::machine::{FnId, State, StateMachine};
use crate::model::DescriptorResourceModel;
use crate::{Error, Result};

/// Identifier of a descriptor as seen on an interface (the opaque value a
/// server returns from an `I^create` function).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DescId(pub u64);

impl fmt::Display for DescId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "desc#{}", self.0)
    }
}

/// A metadata value harvested from an interface call (`desc_data` /
/// `desc_data_retval` annotations).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum TrackedValue {
    /// An integer argument or return value (ids, offsets, flags).
    Int(i64),
    /// A string argument (file paths).
    Str(String),
    /// A component id (`componentid_t` arguments).
    Component(u32),
}

impl TrackedValue {
    /// The integer payload, if this is an [`TrackedValue::Int`].
    #[must_use]
    pub fn as_int(&self) -> Option<i64> {
        match self {
            TrackedValue::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// The string payload, if this is a [`TrackedValue::Str`].
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            TrackedValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Approximate heap footprint in bytes, for the tracking-memory
    /// ablation.
    #[must_use]
    pub fn footprint(&self) -> usize {
        match self {
            TrackedValue::Int(_) => 8,
            TrackedValue::Str(s) => s.len(),
            TrackedValue::Component(_) => 4,
        }
    }
}

impl fmt::Display for TrackedValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrackedValue::Int(v) => write!(f, "{v}"),
            TrackedValue::Str(s) => write!(f, "{s:?}"),
            TrackedValue::Component(c) => write!(f, "comp#{c}"),
        }
    }
}

/// Per-descriptor tracking record: state-machine state + `D_dr` metadata +
/// dependency links.
#[derive(Debug, Clone, PartialEq)]
pub struct TrackedDescriptor {
    /// Current (expected) state-machine state.
    pub state: State,
    /// Whether the backing server faulted since the descriptor last
    /// reached `state`; set by [`DescriptorTracker::mark_all_faulty`] and
    /// cleared when recovery completes.
    pub faulty: bool,
    /// Named metadata values (`desc_data` annotations), keyed by the
    /// parameter name from the IDL.
    pub data: BTreeMap<String, TrackedValue>,
    /// Parent descriptor when `P_dr != Solo`.
    pub parent: Option<DescId>,
    /// Component that created the descriptor (needed for **U0** upcalls).
    pub creator: u32,
}

impl TrackedDescriptor {
    /// Approximate heap footprint in bytes.
    #[must_use]
    pub fn footprint(&self) -> usize {
        let base = std::mem::size_of::<Self>();
        let data: usize = self.data.iter().map(|(k, v)| k.len() + v.footprint()).sum();
        base + data
    }
}

/// Bounded, state-machine-based descriptor tracker (client-stub side).
///
/// One tracker exists per (client component, server interface) edge; it
/// holds exactly one record per live descriptor — the paper's bounded
/// alternative to logging every operation.
#[derive(Debug, Clone, PartialEq)]
pub struct DescriptorTracker {
    model: DescriptorResourceModel,
    records: BTreeMap<DescId, TrackedDescriptor>,
    /// parent → children index for D0 (recursive close) and D1 (root-first
    /// recovery ordering).
    children: BTreeMap<DescId, Vec<DescId>>,
}

impl DescriptorTracker {
    /// Create an empty tracker for an interface with the given model.
    #[must_use]
    pub fn new(model: DescriptorResourceModel) -> Self {
        Self {
            model,
            records: BTreeMap::new(),
            children: BTreeMap::new(),
        }
    }

    /// The descriptor-resource model this tracker enforces.
    #[must_use]
    pub fn model(&self) -> &DescriptorResourceModel {
        &self.model
    }

    /// Number of live tracked descriptors.
    #[must_use]
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when no descriptors are tracked.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Begin tracking a freshly created descriptor.
    ///
    /// `via` must be an `I^create` function; the descriptor starts in
    /// `After(via)`.
    ///
    /// # Errors
    ///
    /// * [`Error::DuplicateDescriptor`] if `id` is already live.
    /// * [`Error::MissingParent`] if the model demands a parent
    ///   (`P_dr != Solo`) and `parent` is `None`.
    /// * [`Error::UnknownDescriptor`] if `parent` is given but not
    ///   tracked (cross-component parents are exempt: with
    ///   `P_dr = XCParent` the parent may live in another component's
    ///   tracker).
    pub fn create(
        &mut self,
        id: DescId,
        via: FnId,
        creator: u32,
        parent: Option<DescId>,
    ) -> Result<&mut TrackedDescriptor> {
        if self.records.contains_key(&id) {
            return Err(Error::DuplicateDescriptor(id.0));
        }
        if self.model.parent.has_parent() && parent.is_none() {
            return Err(Error::MissingParent(id.0));
        }
        if let Some(p) = parent {
            let known = self.records.contains_key(&p);
            if !known && !self.model.parent.crosses_components() {
                return Err(Error::UnknownDescriptor(p.0));
            }
            if known {
                self.children.entry(p).or_default().push(id);
            }
        }
        self.records.insert(
            id,
            TrackedDescriptor {
                state: State::After(via),
                faulty: false,
                data: BTreeMap::new(),
                parent,
                creator,
            },
        );
        Ok(self.records.get_mut(&id).expect("just inserted"))
    }

    /// Record a successful non-create interface call on a descriptor,
    /// stepping its state machine.
    ///
    /// Returns the descriptor's new state. If `via` is terminal, the
    /// close semantics of the model apply: with `C_dr` the entire child
    /// subtree is dropped (**D0** bookkeeping); with `Y_dr` the record is
    /// removed; otherwise the record is retained in
    /// [`State::Terminated`] so children can still consult it.
    ///
    /// # Errors
    ///
    /// * [`Error::UnknownDescriptor`] if `id` is not tracked.
    /// * [`Error::InvalidTransition`] if σ has no edge — fault detection.
    pub fn on_call(&mut self, sm: &StateMachine, id: DescId, via: FnId) -> Result<State> {
        let rec = self
            .records
            .get_mut(&id)
            .ok_or(Error::UnknownDescriptor(id.0))?;
        let next = sm.step(rec.state, via)?;
        rec.state = next;
        if next == State::Terminated {
            self.close(id);
        }
        Ok(next)
    }

    fn close(&mut self, id: DescId) {
        if self.model.close_children {
            // D0: recursively drop the subtree.
            let mut stack = vec![id];
            while let Some(d) = stack.pop() {
                if let Some(kids) = self.children.remove(&d) {
                    stack.extend(kids);
                }
                if d != id {
                    self.records.remove(&d);
                }
            }
        }
        if self.model.close_removes_tracking
            || self.model.close_children
            || !self.model.parent.has_parent()
        {
            if let Some(rec) = self.records.remove(&id) {
                if let Some(p) = rec.parent {
                    if let Some(kids) = self.children.get_mut(&p) {
                        kids.retain(|&k| k != id);
                    }
                }
            }
        }
        // Otherwise (parented, ¬C_dr, ¬Y_dr): keep the terminated record —
        // children may still consult its metadata.
    }

    /// Attach or overwrite a metadata value on a descriptor.
    ///
    /// # Errors
    ///
    /// [`Error::UnknownDescriptor`] if `id` is not tracked.
    pub fn set_data(&mut self, id: DescId, key: &str, value: TrackedValue) -> Result<()> {
        let rec = self
            .records
            .get_mut(&id)
            .ok_or(Error::UnknownDescriptor(id.0))?;
        rec.data.insert(key.to_owned(), value);
        Ok(())
    }

    /// Read back a metadata value.
    #[must_use]
    pub fn data(&self, id: DescId, key: &str) -> Option<&TrackedValue> {
        self.records.get(&id).and_then(|r| r.data.get(key))
    }

    /// Immutable access to one record.
    #[must_use]
    pub fn get(&self, id: DescId) -> Option<&TrackedDescriptor> {
        self.records.get(&id)
    }

    /// Iterate over all live records in deterministic id order.
    pub fn iter(&self) -> impl Iterator<Item = (DescId, &TrackedDescriptor)> {
        self.records.iter().map(|(&id, r)| (id, r))
    }

    /// Direct children of a descriptor (for D0/D1 ordering).
    #[must_use]
    pub fn children_of(&self, id: DescId) -> &[DescId] {
        self.children.get(&id).map_or(&[], |v| v.as_slice())
    }

    /// The chain of ancestors of `id`, root first — the **D1** recovery
    /// order ("descriptors are processed from the root of the dependency
    /// tree to the descriptor being recovered").
    #[must_use]
    pub fn recovery_order(&self, id: DescId) -> Vec<DescId> {
        let mut chain = vec![id];
        let mut cur = id;
        while let Some(rec) = self.records.get(&cur) {
            match rec.parent {
                Some(p) if self.records.contains_key(&p) => {
                    chain.push(p);
                    cur = p;
                }
                _ => break,
            }
        }
        chain.reverse();
        chain
    }

    /// Mark every live descriptor faulty — the implicit transition of all
    /// states to `s_f` when the server fails. The previous state is
    /// retained as the *expected* state the recovery walk must rebuild.
    pub fn mark_all_faulty(&mut self) {
        for rec in self.records.values_mut() {
            rec.faulty = true;
        }
    }

    /// Clear the faulty flag of one descriptor after its recovery walk
    /// completed.
    ///
    /// # Errors
    ///
    /// [`Error::UnknownDescriptor`] if `id` is not tracked.
    pub fn mark_recovered(&mut self, id: DescId) -> Result<()> {
        let rec = self
            .records
            .get_mut(&id)
            .ok_or(Error::UnknownDescriptor(id.0))?;
        rec.faulty = false;
        Ok(())
    }

    /// Descriptors currently marked faulty, in id order (the worklist for
    /// eager recovery).
    pub fn faulty(&self) -> impl Iterator<Item = DescId> + '_ {
        self.records
            .iter()
            .filter(|(_, r)| r.faulty)
            .map(|(&id, _)| id)
    }

    /// Approximate heap footprint in bytes of all tracking state — the
    /// quantity the paper bounds by rejecting operation logs.
    #[must_use]
    pub fn footprint(&self) -> usize {
        self.records
            .values()
            .map(TrackedDescriptor::footprint)
            .sum::<usize>()
            + self
                .children
                .values()
                .map(|v| v.len() * std::mem::size_of::<DescId>())
                .sum::<usize>()
    }
}

/// One logged interface operation (ablation baseline).
#[derive(Debug, Clone, PartialEq)]
pub struct LoggedOp {
    /// Descriptor acted on.
    pub desc: DescId,
    /// Interface function invoked.
    pub via: FnId,
    /// Metadata captured with the call.
    pub data: Vec<(String, TrackedValue)>,
}

/// The unbounded operation log §II-C rejects for embedded systems.
///
/// Recovery by log replay re-executes *every* operation ever performed on
/// a descriptor rather than the shortest walk; memory grows with the
/// operation count. Kept as a comparison point for the ablation
/// benchmarks — not used by the SuperGlue runtime.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct OperationLog {
    ops: Vec<LoggedOp>,
}

impl OperationLog {
    /// Create an empty log.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Append an operation.
    pub fn record(&mut self, desc: DescId, via: FnId, data: Vec<(String, TrackedValue)>) {
        self.ops.push(LoggedOp { desc, via, data });
    }

    /// Number of logged operations.
    #[must_use]
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True when nothing has been logged.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// The full replay sequence for one descriptor: every operation ever
    /// applied to it, in order.
    #[must_use]
    pub fn replay_for(&self, desc: DescId) -> Vec<&LoggedOp> {
        self.ops.iter().filter(|o| o.desc == desc).collect()
    }

    /// Approximate heap footprint in bytes (grows without bound).
    #[must_use]
    pub fn footprint(&self) -> usize {
        self.ops
            .iter()
            .map(|o| {
                std::mem::size_of::<LoggedOp>()
                    + o.data
                        .iter()
                        .map(|(k, v)| k.len() + v.footprint())
                        .sum::<usize>()
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::StateMachineBuilder;
    use crate::model::{DescriptorResourceModelBuilder, ParentPolicy};

    fn lock_sm() -> (StateMachine, [FnId; 4]) {
        let mut b = StateMachineBuilder::new("lock");
        let alloc = b.function("lock_alloc");
        let take = b.function("lock_take");
        let release = b.function("lock_release");
        let free = b.function("lock_free");
        b.creation(alloc);
        b.terminal(free);
        b.transition(alloc, take);
        b.transition(take, release);
        b.transition(release, take);
        b.transition(release, free);
        b.transition(alloc, free);
        (b.build().unwrap(), [alloc, take, release, free])
    }

    #[test]
    fn create_track_and_free_solo_descriptor() {
        let (sm, [alloc, take, release, free]) = lock_sm();
        let mut t = DescriptorTracker::new(DescriptorResourceModel::new());
        t.create(DescId(1), alloc, 5, None).unwrap();
        assert_eq!(t.len(), 1);
        assert_eq!(t.on_call(&sm, DescId(1), take).unwrap(), State::After(take));
        assert_eq!(
            t.on_call(&sm, DescId(1), release).unwrap(),
            State::After(release)
        );
        assert_eq!(t.on_call(&sm, DescId(1), free).unwrap(), State::Terminated);
        // Solo descriptors are dropped on close.
        assert!(t.is_empty());
    }

    #[test]
    fn duplicate_create_rejected() {
        let (_, [alloc, ..]) = lock_sm();
        let mut t = DescriptorTracker::new(DescriptorResourceModel::new());
        t.create(DescId(1), alloc, 0, None).unwrap();
        assert!(matches!(
            t.create(DescId(1), alloc, 0, None),
            Err(Error::DuplicateDescriptor(1))
        ));
    }

    #[test]
    fn invalid_call_detected() {
        let (sm, [alloc, _take, release, _free]) = lock_sm();
        let mut t = DescriptorTracker::new(DescriptorResourceModel::new());
        t.create(DescId(1), alloc, 0, None).unwrap();
        assert!(matches!(
            t.on_call(&sm, DescId(1), release),
            Err(Error::InvalidTransition { .. })
        ));
    }

    #[test]
    fn unknown_descriptor_rejected() {
        let (sm, [_, take, ..]) = lock_sm();
        let mut t = DescriptorTracker::new(DescriptorResourceModel::new());
        assert!(matches!(
            t.on_call(&sm, DescId(9), take),
            Err(Error::UnknownDescriptor(9))
        ));
        assert!(matches!(
            t.set_data(DescId(9), "k", TrackedValue::Int(1)),
            Err(Error::UnknownDescriptor(9))
        ));
    }

    fn parented_model() -> DescriptorResourceModel {
        DescriptorResourceModelBuilder::new()
            .parent(ParentPolicy::Parent)
            .close_children(true)
            .build()
            .unwrap()
    }

    #[test]
    fn parent_required_when_model_demands() {
        let (_, [alloc, ..]) = lock_sm();
        let mut t = DescriptorTracker::new(parented_model());
        assert!(matches!(
            t.create(DescId(2), alloc, 0, None),
            Err(Error::MissingParent(2))
        ));
        // An unknown local parent is also rejected...
        assert!(matches!(
            t.create(DescId(2), alloc, 0, Some(DescId(99))),
            Err(Error::UnknownDescriptor(99))
        ));
    }

    #[test]
    fn cross_component_parent_allowed_for_xcparent() {
        let (_, [alloc, ..]) = lock_sm();
        let model = DescriptorResourceModelBuilder::new()
            .parent(ParentPolicy::XcParent)
            .build()
            .unwrap();
        let mut t = DescriptorTracker::new(model);
        // Parent desc#99 lives in another component's tracker — accepted.
        t.create(DescId(2), alloc, 0, Some(DescId(99))).unwrap();
        assert_eq!(t.get(DescId(2)).unwrap().parent, Some(DescId(99)));
    }

    #[test]
    fn close_children_drops_subtree() {
        let (sm, [alloc, _take, _release, free]) = lock_sm();
        let t = DescriptorTracker::new(parented_model());
        // Build root -> mid -> leaf. A parented model needs a parent for
        // every create; bootstrap the root with a self-parent exemption by
        // using XcParent-style unknown root? No — use root with parent of
        // itself not allowed; instead allow root via cross-component id.
        let model_xc = DescriptorResourceModelBuilder::new()
            .parent(ParentPolicy::XcParent)
            .close_children(true)
            .build()
            .unwrap();
        let mut t2 = DescriptorTracker::new(model_xc);
        t2.create(DescId(1), alloc, 0, Some(DescId(1000))).unwrap();
        t2.create(DescId(2), alloc, 0, Some(DescId(1))).unwrap();
        t2.create(DescId(3), alloc, 0, Some(DescId(2))).unwrap();
        assert_eq!(t2.children_of(DescId(1)), &[DescId(2)]);
        assert_eq!(t2.on_call(&sm, DescId(1), free).unwrap(), State::Terminated);
        // D0: entire subtree removed.
        assert!(t2.is_empty());
        drop(t);
        let _ = &sm;
    }

    #[test]
    fn recovery_order_is_root_first() {
        let (_, [alloc, ..]) = lock_sm();
        let model = DescriptorResourceModelBuilder::new()
            .parent(ParentPolicy::XcParent)
            .build()
            .unwrap();
        let mut t = DescriptorTracker::new(model);
        t.create(DescId(1), alloc, 0, Some(DescId(777))).unwrap(); // root (parent external)
        t.create(DescId(2), alloc, 0, Some(DescId(1))).unwrap();
        t.create(DescId(3), alloc, 0, Some(DescId(2))).unwrap();
        assert_eq!(
            t.recovery_order(DescId(3)),
            vec![DescId(1), DescId(2), DescId(3)]
        );
    }

    #[test]
    fn fault_marking_and_recovery() {
        let (sm, [alloc, take, ..]) = lock_sm();
        let mut t = DescriptorTracker::new(DescriptorResourceModel::new());
        t.create(DescId(1), alloc, 0, None).unwrap();
        t.on_call(&sm, DescId(1), take).unwrap();
        t.mark_all_faulty();
        assert_eq!(t.faulty().collect::<Vec<_>>(), vec![DescId(1)]);
        // The expected state survives the fault marking.
        assert_eq!(t.get(DescId(1)).unwrap().state, State::After(take));
        t.mark_recovered(DescId(1)).unwrap();
        assert_eq!(t.faulty().count(), 0);
    }

    #[test]
    fn metadata_round_trips() {
        let (_, [alloc, ..]) = lock_sm();
        let mut t = DescriptorTracker::new(DescriptorResourceModel::new());
        t.create(DescId(1), alloc, 0, None).unwrap();
        t.set_data(DescId(1), "path", TrackedValue::Str("/a/b".into()))
            .unwrap();
        t.set_data(DescId(1), "offset", TrackedValue::Int(42))
            .unwrap();
        assert_eq!(t.data(DescId(1), "path").unwrap().as_str(), Some("/a/b"));
        assert_eq!(t.data(DescId(1), "offset").unwrap().as_int(), Some(42));
        assert!(t.data(DescId(1), "nope").is_none());
    }

    #[test]
    fn footprint_is_bounded_by_descriptor_count() {
        let (sm, [alloc, take, release, _]) = lock_sm();
        let mut t = DescriptorTracker::new(DescriptorResourceModel::new());
        t.create(DescId(1), alloc, 0, None).unwrap();
        let f0 = t.footprint();
        // Many operations on the same descriptor do not grow the tracker.
        for _ in 0..100 {
            t.on_call(&sm, DescId(1), take).unwrap();
            t.on_call(&sm, DescId(1), release).unwrap();
        }
        assert_eq!(t.footprint(), f0);
    }

    #[test]
    fn operation_log_grows_without_bound() {
        let (_, [_, take, release, _]) = lock_sm();
        let mut log = OperationLog::new();
        for i in 0..100 {
            let f = if i % 2 == 0 { take } else { release };
            log.record(DescId(1), f, vec![]);
        }
        assert_eq!(log.len(), 100);
        assert_eq!(log.replay_for(DescId(1)).len(), 100);
        assert!(log.footprint() >= 100 * std::mem::size_of::<LoggedOp>());
    }

    #[test]
    fn tracked_value_accessors_and_display() {
        assert_eq!(TrackedValue::Int(7).as_int(), Some(7));
        assert_eq!(TrackedValue::Str("x".into()).as_int(), None);
        assert_eq!(TrackedValue::Component(3).to_string(), "comp#3");
        assert_eq!(TrackedValue::Int(7).to_string(), "7");
    }
}
