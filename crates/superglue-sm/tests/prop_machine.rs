//! Property-based tests for the descriptor state machines and trackers.
//! Random machine shapes and op sequences come from the repo's seeded
//! [`SplitMix64`] generator, so every case is reproducible from its
//! index.

use composite::rng::{mix, SplitMix64};
use superglue_sm::machine::{State, StateMachineBuilder};
use superglue_sm::model::DescriptorResourceModelBuilder;
use superglue_sm::tracking::{DescId, DescriptorTracker, OperationLog};
use superglue_sm::{DescriptorResourceModel, FnId};

const CASES: u64 = 96;

/// A random machine description: `n` functions, some creation/terminal
/// roles, and a set of follows edges.
#[derive(Debug, Clone)]
struct MachineDesc {
    n: usize,
    creations: Vec<usize>,
    terminals: Vec<usize>,
    follows: Vec<(usize, usize)>,
}

fn machine_desc(rng: &mut SplitMix64) -> MachineDesc {
    let n = 2 + rng.gen_index(5);
    let creations = (0..1 + rng.gen_index(2))
        .map(|_| rng.gen_index(n))
        .collect();
    let terminals = (0..rng.gen_index(2)).map(|_| rng.gen_index(n)).collect();
    let follows = (0..rng.gen_index(20))
        .map(|_| (rng.gen_index(n), rng.gen_index(n)))
        .collect();
    MachineDesc {
        n,
        creations,
        terminals,
        follows,
    }
}

fn build(desc: &MachineDesc) -> Option<superglue_sm::StateMachine> {
    let mut b = StateMachineBuilder::new("prop");
    let fns: Vec<FnId> = (0..desc.n).map(|i| b.function(format!("f{i}"))).collect();
    for &c in &desc.creations {
        b.creation(fns[c]);
    }
    for &t in &desc.terminals {
        b.terminal(fns[t]);
    }
    for &(f, g) in &desc.follows {
        b.transition(fns[f], fns[g]);
    }
    b.build().ok()
}

/// Building never panics, and when it succeeds, replaying the recovery
/// walk through σ from Init always lands exactly on the walk's target
/// state.
#[test]
fn walks_replay_to_their_target() {
    for case in 0..CASES {
        let mut rng = SplitMix64::new(mix(0x3a17_0001, case));
        let desc = machine_desc(&mut rng);
        let Some(sm) = build(&desc) else { continue };
        for i in 0..sm.function_count() {
            let target = State::After(FnId(i as u32));
            let Ok(walk) = sm.recovery_walk(target) else {
                continue;
            };
            let mut s = State::Init;
            for f in &walk {
                s = sm
                    .step(s, *f)
                    .expect("walk edges must be valid transitions");
            }
            assert_eq!(s, target, "case {case}");
        }
    }
}

/// Walks are shortest: no other path found by exhaustive BFS is shorter.
#[test]
fn walks_are_minimal() {
    for case in 0..CASES {
        let mut rng = SplitMix64::new(mix(0x3a17_0002, case));
        let desc = machine_desc(&mut rng);
        let Some(sm) = build(&desc) else { continue };
        // Exhaustive BFS over σ.
        use std::collections::{BTreeMap, VecDeque};
        let mut dist: BTreeMap<State, usize> = BTreeMap::new();
        dist.insert(State::Init, 0);
        let mut q = VecDeque::from([State::Init]);
        while let Some(s) = q.pop_front() {
            let d = dist[&s];
            for i in 0..sm.function_count() {
                let f = FnId(i as u32);
                if let Ok(t) = sm.step(s, f) {
                    if let std::collections::btree_map::Entry::Vacant(e) = dist.entry(t) {
                        e.insert(d + 1);
                        q.push_back(t);
                    }
                }
            }
        }
        for (&s, &d) in &dist {
            if let Ok(walk) = sm.recovery_walk(s) {
                assert_eq!(walk.len(), d, "case {case}: walk to {s:?}");
            }
        }
    }
}

/// σ is deterministic and total on declared edges only.
#[test]
fn step_is_deterministic() {
    for case in 0..CASES {
        let mut rng = SplitMix64::new(mix(0x3a17_0003, case));
        let desc = machine_desc(&mut rng);
        let Some(sm) = build(&desc) else { continue };
        for (s, f, t) in sm.edges() {
            assert_eq!(sm.step(s, f).expect("edge exists"), t, "case {case}");
            assert_eq!(sm.step(s, f).expect("edge exists"), t, "case {case}");
        }
    }
}

fn lock_like() -> (superglue_sm::StateMachine, [FnId; 4]) {
    let mut b = StateMachineBuilder::new("lock");
    let alloc = b.function("alloc");
    let take = b.function("take");
    let release = b.function("release");
    let free = b.function("free");
    b.creation(alloc);
    b.terminal(free);
    b.transition(alloc, take);
    b.transition(take, release);
    b.transition(release, take);
    b.transition(release, free);
    b.transition(alloc, free);
    (b.build().unwrap(), [alloc, take, release, free])
}

/// Ops applied to a tracker in fuzzing.
#[derive(Debug, Clone, Copy)]
enum Op {
    Create(u64),
    Take(u64),
    Release(u64),
    Free(u64),
    FaultAll,
    Recover(u64),
}

fn op(rng: &mut SplitMix64) -> Op {
    let id = rng.gen_range(8);
    match rng.gen_range(6) {
        0 => Op::Create(id),
        1 => Op::Take(id),
        2 => Op::Release(id),
        3 => Op::Free(id),
        4 => Op::FaultAll,
        _ => Op::Recover(id),
    }
}

/// The tracker never panics under arbitrary op sequences, its footprint
/// stays bounded by live descriptors, and faulty counts never exceed
/// tracked counts.
#[test]
fn tracker_is_robust_and_bounded() {
    for case in 0..CASES {
        let mut rng = SplitMix64::new(mix(0x3a17_0004, case));
        let (sm, [alloc, take, release, free]) = lock_like();
        let mut t = DescriptorTracker::new(DescriptorResourceModel::new());
        let mut log = OperationLog::new();
        for _ in 0..rng.gen_index(120) {
            match op(&mut rng) {
                Op::Create(id) => {
                    let _ = t.create(DescId(id), alloc, 1, None);
                    log.record(DescId(id), alloc, vec![]);
                }
                Op::Take(id) => {
                    let _ = t.on_call(&sm, DescId(id), take);
                    log.record(DescId(id), take, vec![]);
                }
                Op::Release(id) => {
                    let _ = t.on_call(&sm, DescId(id), release);
                    log.record(DescId(id), release, vec![]);
                }
                Op::Free(id) => {
                    let _ = t.on_call(&sm, DescId(id), free);
                    log.record(DescId(id), free, vec![]);
                }
                Op::FaultAll => t.mark_all_faulty(),
                Op::Recover(id) => {
                    let _ = t.mark_recovered(DescId(id));
                }
            }
            assert!(t.faulty().count() <= t.len(), "case {case}");
            // Bounded memory: at most 8 descriptors are ever live, so the
            // footprint cannot scale with the number of operations.
            assert!(t.footprint() <= 8 * 512, "case {case}");
        }
        // The rejected alternative grows with every operation.
        assert!(log.len() <= 120, "case {case}");
    }
}

/// Recovery order is always root-first: every descriptor appears after
/// its parent.
#[test]
fn recovery_order_parents_first() {
    for chain_len in 1usize..6 {
        let (_, [alloc, ..]) = lock_like();
        let model = DescriptorResourceModelBuilder::new()
            .parent(superglue_sm::ParentPolicy::XcParent)
            .build()
            .unwrap();
        let mut t = DescriptorTracker::new(model);
        t.create(DescId(0), alloc, 1, Some(DescId(999))).unwrap();
        for i in 1..chain_len as u64 {
            t.create(DescId(i), alloc, 1, Some(DescId(i - 1))).unwrap();
        }
        let order = t.recovery_order(DescId(chain_len as u64 - 1));
        for (i, d) in order.iter().enumerate() {
            if i > 0 {
                assert_eq!(order[i - 1].0 + 1, d.0, "chain order broken");
            }
        }
        assert_eq!(order.len(), chain_len);
    }
}
