//! Assembly and driver for the actor-pipeline macro-benchmark.
//!
//! The system under test is a three-stage streaming pipeline
//!
//! ```text
//! Generator ──chan A──▶ Worker ──chan B──▶ Logger
//! ```
//!
//! where the two bounded channels are *protected* SuperGlue components
//! (one [`ChannelService`] each, both persisting through one shared,
//! unprotected storage component) and the three stages are client
//! components driven by the discrete-event executor. Faulted runs
//! micro-reboot a rotating channel every `fault_period` (the paper's
//! SWIFI schedule); showstopper runs additionally poison every
//! `poison_every`-th job, exercising the dead-letter escalation ladder.
//!
//! The run's observable effect is the Logger's committed-output log.
//! [`expected_output`] computes the fault-free ground truth in closed
//! form, so any duplicate, loss, or reorder under fault injection is a
//! byte-level diff — the exactly-once acceptance criterion.

use std::cell::RefCell;
use std::rc::Rc;

use composite::{
    mix, ComponentId, CostModel, Executor, InterfaceCall, KernelAccess, Mechanism, MetricsSnapshot,
    Priority, RunExit, SeriesSnapshot, SimTime, ThreadId, TraceShard, DEFAULT_TRACE_CAPACITY,
};
use sg_c3::{FtRuntime, RecoveryPolicy, RuntimeConfig};
use sg_services::api::ClientEnd;
use sg_services::storage::StorageService;
use superglue::CompiledStub;

use crate::channel::ChannelService;
use crate::stages::{Generator, SinkLogger, Worker};
use crate::{compile_chan, CHAN_A, CHAN_B};

/// Which protection layer guards the channels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PipelineVariant {
    /// No stubs: the first channel fault crashes the pipeline.
    Bare {
        /// Inject a fault into a rotating channel every period.
        faults: bool,
    },
    /// SuperGlue-generated stubs on every stage↔channel edge.
    SuperGlue {
        /// Inject a fault into a rotating channel every period.
        faults: bool,
    },
}

impl std::fmt::Display for PipelineVariant {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PipelineVariant::Bare { faults: false } => f.write_str("COMPOSITE"),
            PipelineVariant::Bare { faults: true } => f.write_str("COMPOSITE (faults)"),
            PipelineVariant::SuperGlue { faults: false } => f.write_str("COMPOSITE+SuperGlue"),
            PipelineVariant::SuperGlue { faults: true } => {
                f.write_str("COMPOSITE+SuperGlue (faults)")
            }
        }
    }
}

/// Pipeline experiment parameters.
#[derive(Debug, Clone, Copy)]
pub struct PipelineConfig {
    /// Jobs the generator emits.
    pub jobs: u64,
    /// Hard virtual-time cap on the run.
    pub duration: SimTime,
    /// Worker processing cost per message.
    pub work: SimTime,
    /// Ring capacity of each channel.
    pub capacity: i64,
    /// Every `poison_every`-th job is a showstopper (0 = none).
    pub poison_every: u64,
    /// Dead-letter threshold K: a message faults its consumer exactly
    /// this many times before it is routed to the dead-letter queue.
    /// Must stay within the runtime's per-call retry budget (3).
    pub poison_limit: u64,
    /// Fault-injection period for the faulted variant.
    pub fault_period: SimTime,
    /// Experiment seed: repetition `rep` phase-shifts the fault schedule
    /// by `mix(seed, rep) % fault_period` (repetition 0 keeps phase 0).
    pub seed: u64,
    /// Repetitions (differ only in fault-schedule phase).
    pub repetitions: u64,
    /// Record a flight-recorder trace of each run.
    pub trace: bool,
    /// Windowed-telemetry window width ([`SimTime::ZERO`] = off).
    pub series_window: SimTime,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        Self {
            jobs: 2_000,
            duration: SimTime::from_secs(60),
            work: SimTime::from_micros(40),
            capacity: 8,
            poison_every: 0,
            poison_limit: 3,
            fault_period: SimTime::from_secs(10),
            seed: 0x9E37_0001,
            repetitions: 1,
            trace: false,
            series_window: SimTime::ZERO,
        }
    }
}

impl PipelineConfig {
    /// Phase offset for repetition `rep`'s fault schedule, in
    /// `[0, fault_period)`; repetition 0 keeps phase 0 so a single run
    /// reproduces the unphased schedule exactly.
    #[must_use]
    pub fn fault_phase(&self, rep: u64) -> SimTime {
        if rep == 0 || self.fault_period.as_nanos() == 0 {
            SimTime::ZERO
        } else {
            SimTime(mix(self.seed, rep) % self.fault_period.as_nanos())
        }
    }

    /// Showstoppers among the `jobs` this config generates.
    #[must_use]
    pub fn poison_count(&self) -> u64 {
        (0..self.jobs)
            .filter(|&n| Generator::is_poison(n, self.poison_every))
            .count() as u64
    }

    /// Jobs that must reach the committed-output log (poisoned jobs are
    /// dead-lettered before the worker ever sees them).
    #[must_use]
    pub fn expected_delivered(&self) -> u64 {
        self.jobs - self.poison_count()
    }
}

/// The fault-free ground-truth committed-output log, in closed form:
/// every non-poisoned job, transformed by the worker, in order.
#[must_use]
pub fn expected_output(cfg: &PipelineConfig) -> Vec<String> {
    (0..cfg.jobs)
        .filter(|&n| !Generator::is_poison(n, cfg.poison_every))
        .map(|n| {
            String::from_utf8_lossy(&Worker::transform(&Generator::payload(n, cfg.poison_every)))
                .into_owned()
        })
        .collect()
}

/// Calibrated virtual-time costs for the pipeline experiment (the
/// web-server model's ratios with SuperGlue tracking).
#[must_use]
pub fn pipeline_cost_model(variant: PipelineVariant) -> CostModel {
    let tracking = match variant {
        PipelineVariant::Bare { .. } => SimTime::ZERO,
        PipelineVariant::SuperGlue { .. } => SimTime(1_130),
    };
    CostModel {
        invocation: SimTime(700),
        tracking,
        micro_reboot: SimTime::from_millis(250),
        recovery_step: SimTime::from_micros(30),
        storage_round_trip: SimTime::from_micros(3),
        upcall: SimTime::from_micros(10),
    }
}

/// The outcome of one pipeline run.
#[derive(Debug, Clone)]
pub struct PipelineResult {
    /// Which system ran.
    pub variant: PipelineVariant,
    /// Jobs the generator emitted.
    pub generated: u64,
    /// Records in the committed-output log.
    pub delivered: u64,
    /// The committed-output log itself — the exactly-once witness.
    pub output: Vec<String>,
    /// Messages routed to the dead-letter queue (DL0 total).
    pub dead_letters: u64,
    /// Cursor re-seatings during recovery (CR0 total).
    pub cursor_restores: u64,
    /// Faults injected by the SWIFI schedule.
    pub faults_injected: u64,
    /// Faults absorbed by stub-level recovery.
    pub faults_handled: u64,
    /// Unrecovered faults (must stay 0 for the protected variant).
    pub unrecovered: u64,
    /// Virtual time when the run ended.
    pub wall: SimTime,
    /// Per-component recovery-observability counters.
    pub metrics: MetricsSnapshot,
    /// Windowed telemetry (empty unless `series_window` is nonzero).
    pub telemetry: SeriesSnapshot,
    /// Flight-recorder trace (when `trace`).
    pub trace: Option<TraceShard>,
}

/// The assembled pipeline system, before its stage workloads are bound
/// to an executor: the runtime (kernel + stubs already installed), the
/// component and thread ids, and the shared committed-output log.
///
/// [`build_pipeline`] wires everything; [`PipelineBed::attach_stages`]
/// then binds the three stages to *any* executor context that reaches
/// the runtime — the bench driver runs `Executor<FtRuntime>` directly,
/// while the SWIFI pipeline campaign wraps the runtime in a
/// call-interposing injector to land faults mid-peek or pre-commit.
pub struct PipelineBed {
    /// The fault-tolerant runtime owning the kernel.
    pub runtime: FtRuntime,
    /// Generator / Worker / Logger client components.
    pub gen: ComponentId,
    /// Worker component.
    pub work: ComponentId,
    /// Logger component.
    pub log: ComponentId,
    /// The shared unprotected storage both channels persist through.
    pub storage: ComponentId,
    /// The Generator → Worker channel component.
    pub chan_ab: ComponentId,
    /// The Worker → Logger channel component.
    pub chan_bc: ComponentId,
    /// Generator / Worker / Logger threads, in stage order.
    pub threads: [ThreadId; 3],
    /// The Logger's committed-output log — the exactly-once witness.
    pub output: Rc<RefCell<Vec<String>>>,
    /// Whether the variant's periodic SWIFI schedule is armed.
    pub faults: bool,
}

/// Assemble the pipeline system for `variant`: kernel with calibrated
/// costs, storage + two protected channels, stage components and
/// threads, and (for the SuperGlue variant) compiled stubs on all four
/// stage↔channel edges.
#[must_use]
pub fn build_pipeline(variant: PipelineVariant, cfg: &PipelineConfig) -> PipelineBed {
    let mut k = composite::Kernel::with_costs(pipeline_cost_model(variant));
    if cfg.trace {
        k.enable_tracing(DEFAULT_TRACE_CAPACITY);
    }
    if cfg.series_window > SimTime::ZERO {
        k.enable_telemetry(cfg.series_window);
    }

    let gen = k.add_client_component("gen");
    let work = k.add_client_component("work");
    let log = k.add_client_component("log");
    let storage = k.add_component("storage", Box::new(StorageService::new()));
    let chan_ab = k.add_component(
        "chan_ab",
        Box::new(ChannelService::new(storage, cfg.capacity, cfg.poison_limit)),
    );
    let chan_bc = k.add_component(
        "chan_bc",
        Box::new(ChannelService::new(storage, cfg.capacity, cfg.poison_limit)),
    );
    // G1: both channels persist their rings through shared storage
    // (disjoint keyspaces — the channel number prefixes every key).
    k.grant(chan_ab, storage);
    k.grant(chan_bc, storage);

    let config = RuntimeConfig {
        policy: RecoveryPolicy::OnDemand,
        storage: Some(storage),
        max_retries: 3,
        ..RuntimeConfig::default()
    };
    let mut runtime = FtRuntime::new(k, config);

    let faults = match variant {
        PipelineVariant::Bare { faults } => {
            for (client, server) in [
                (gen, chan_ab),
                (work, chan_ab),
                (work, chan_bc),
                (log, chan_bc),
            ] {
                runtime.kernel_mut().grant(client, server);
            }
            faults
        }
        PipelineVariant::SuperGlue { faults } => {
            let spec = std::sync::Arc::new(compile_chan().stub_spec.clone());
            for (client, server) in [
                (gen, chan_ab),
                (work, chan_ab),
                (work, chan_bc),
                (log, chan_bc),
            ] {
                runtime.install_stub(client, server, Box::new(CompiledStub::new(spec.clone())));
            }
            faults
        }
    };

    let tg = runtime.kernel_mut().create_thread(gen, Priority(5));
    let tw = runtime.kernel_mut().create_thread(work, Priority(5));
    let tl = runtime.kernel_mut().create_thread(log, Priority(5));

    PipelineBed {
        runtime,
        gen,
        work,
        log,
        storage,
        chan_ab,
        chan_bc,
        threads: [tg, tw, tl],
        output: Rc::new(RefCell::new(Vec::new())),
        faults,
    }
}

impl PipelineBed {
    /// Bind the three stage workloads to `ex`. Generic over the executor
    /// context so interposing drivers (the SWIFI campaign) reuse the
    /// exact same stage wiring as the plain bench driver.
    pub fn attach_stages<Ctx: InterfaceCall + KernelAccess>(
        &self,
        ex: &mut Executor<Ctx>,
        cfg: &PipelineConfig,
    ) {
        let [tg, tw, tl] = self.threads;
        ex.attach(
            tg,
            Box::new(Generator::new(
                ClientEnd::new(self.gen, tg, self.chan_ab),
                CHAN_A,
                cfg.jobs,
                cfg.poison_every,
            )),
        );
        ex.attach(
            tw,
            Box::new(Worker::new(
                ClientEnd::new(self.work, tw, self.chan_ab),
                ClientEnd::new(self.work, tw, self.chan_bc),
                CHAN_A,
                CHAN_B,
                cfg.work,
            )),
        );
        ex.attach(
            tl,
            Box::new(SinkLogger::new(
                ClientEnd::new(self.log, tl, self.chan_bc),
                CHAN_B,
                Some(cfg.expected_delivered()),
                self.output.clone(),
            )),
        );
    }

    /// The SWIFI rotation: the two protected channel components.
    #[must_use]
    pub fn rotation(&self) -> [ComponentId; 2] {
        [self.chan_ab, self.chan_bc]
    }
}

/// Run one repetition of a pipeline variant. Every `(variant, rep)`
/// pair is an independent, deterministic unit of work — repetitions
/// differ only in the fault-schedule phase — so results are
/// byte-identical for any `--jobs` worker count.
#[must_use]
pub fn run_pipeline_rep(
    variant: PipelineVariant,
    cfg: &PipelineConfig,
    rep: u64,
) -> PipelineResult {
    let bed = build_pipeline(variant, cfg);
    let mut ex: Executor<FtRuntime> = Executor::new();
    bed.attach_stages(&mut ex, cfg);
    let PipelineBed {
        mut runtime,
        chan_ab,
        chan_bc,
        output,
        faults,
        ..
    } = bed;

    let rotation = [chan_ab, chan_bc];
    let mut next_fault = cfg.fault_period + cfg.fault_phase(rep);
    let mut faults_injected = 0u64;

    // Short executor slices keep the fault schedule interleaved with
    // the run: a whole small run fits in one 8k-step slice, which would
    // break out before the first scheduled fault ever fires.
    while runtime.kernel().now() < cfg.duration {
        if faults && runtime.kernel().now() >= next_fault {
            let target = rotation[(faults_injected as usize) % rotation.len()];
            runtime.inject_fault(target);
            faults_injected += 1;
            next_fault += cfg.fault_period;
        }
        if ex.run(&mut runtime, 128) != RunExit::StepLimit {
            break;
        }
    }

    let metrics = MetricsSnapshot::from_kernel(runtime.kernel());
    let telemetry = SeriesSnapshot::from_kernel(runtime.kernel());
    let trace = if runtime.kernel().tracing_enabled() {
        let mut shard = TraceShard::labeled(&format!("pipeline/{variant}/rep{rep}"));
        let label = shard.label.clone();
        shard.absorb(runtime.kernel_mut().take_trace(&label));
        Some(shard)
    } else {
        None
    };
    let wall = runtime.kernel().now();
    drop(ex);
    let output = Rc::try_unwrap(output)
        .expect("workloads dropped")
        .into_inner();

    PipelineResult {
        variant,
        generated: cfg.jobs,
        delivered: output.len() as u64,
        dead_letters: metrics.mechanism_total(Mechanism::Dl0),
        cursor_restores: metrics.mechanism_total(Mechanism::Cr0),
        faults_injected,
        faults_handled: runtime.stats().faults_handled,
        unrecovered: runtime.stats().unrecovered,
        wall,
        output,
        metrics,
        telemetry,
        trace,
    }
}

/// Run repetition 0 of a pipeline variant.
#[must_use]
pub fn run_pipeline_variant(variant: PipelineVariant, cfg: &PipelineConfig) -> PipelineResult {
    run_pipeline_rep(variant, cfg, 0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> PipelineConfig {
        PipelineConfig {
            jobs: 200,
            duration: SimTime::from_secs(30),
            ..PipelineConfig::default()
        }
    }

    #[test]
    fn fault_free_run_delivers_everything_in_order() {
        let cfg = small_cfg();
        let r = run_pipeline_variant(PipelineVariant::SuperGlue { faults: false }, &cfg);
        assert_eq!(r.delivered, cfg.jobs);
        assert_eq!(r.output, expected_output(&cfg));
        assert_eq!(r.unrecovered, 0);
        assert_eq!(r.dead_letters, 0);
    }

    #[test]
    fn faulted_run_output_is_byte_identical_to_fault_free() {
        // ~74µs of virtual time per job: a 1ms period lands a dozen
        // faults inside the run.
        let cfg = PipelineConfig {
            fault_period: SimTime::from_millis(1),
            ..small_cfg()
        };
        let r = run_pipeline_variant(PipelineVariant::SuperGlue { faults: true }, &cfg);
        assert!(r.faults_injected > 0, "schedule must fire: {r:?}");
        assert_eq!(r.unrecovered, 0);
        assert_eq!(
            r.output,
            expected_output(&cfg),
            "exactly-once: committed output must not duplicate or drop"
        );
        assert!(
            r.cursor_restores > 0,
            "recovery must re-seat cursors (CR0): {:?}",
            r.metrics
        );
    }

    #[test]
    fn poisoned_jobs_dead_letter_and_rest_delivers() {
        let cfg = PipelineConfig {
            poison_every: 50,
            ..small_cfg()
        };
        let r = run_pipeline_variant(PipelineVariant::SuperGlue { faults: false }, &cfg);
        assert_eq!(r.dead_letters, cfg.poison_count());
        assert_eq!(r.delivered, cfg.expected_delivered());
        assert_eq!(r.output, expected_output(&cfg));
        assert_eq!(r.unrecovered, 0);
        // Dead-letter escalation caps the reboots: exactly K per poison.
        assert_eq!(r.faults_handled, cfg.poison_count() * cfg.poison_limit);
    }

    #[test]
    fn bare_pipeline_dies_on_first_fault() {
        let cfg = PipelineConfig {
            fault_period: SimTime::from_millis(1),
            ..small_cfg()
        };
        let r = run_pipeline_variant(PipelineVariant::Bare { faults: true }, &cfg);
        assert!(
            r.delivered < cfg.jobs,
            "an unprotected fault must kill the pipeline: {r:?}"
        );
    }

    #[test]
    fn repetitions_differ_only_in_phase_and_rep0_is_unphased() {
        let cfg = small_cfg();
        assert_eq!(cfg.fault_phase(0), SimTime::ZERO);
        let p1 = cfg.fault_phase(1);
        let p2 = cfg.fault_phase(2);
        assert!(p1 < cfg.fault_period && p2 < cfg.fault_period);
        assert_ne!(p1, p2);
    }

    #[test]
    fn runs_are_deterministic() {
        let cfg = PipelineConfig {
            poison_every: 40,
            fault_period: SimTime::from_millis(1),
            ..small_cfg()
        };
        let a = run_pipeline_variant(PipelineVariant::SuperGlue { faults: true }, &cfg);
        let b = run_pipeline_variant(PipelineVariant::SuperGlue { faults: true }, &cfg);
        assert_eq!(a.output, b.output);
        assert_eq!(a.wall, b.wall);
        assert_eq!(a.faults_handled, b.faults_handled);
        assert_eq!(a.dead_letters, b.dead_letters);
    }
}
