//! The streaming actor-pipeline macro-benchmark: peek-before-commit
//! channel recovery with dead-letter escalation.
//!
//! A Generator → Worker → Logger pipeline of components communicates
//! over two bounded channels, each a SuperGlue-protected
//! [`channel::ChannelService`] described by `idl/chan.sg`. The spec's
//! `sm_channel`/`sm_cursor` annotations make the consumer's committed
//! cursor tracked σ-state, so a micro-rebooted channel is re-seated at
//! the last commit by the ordinary G0 restore upcall (**CR0**) and the
//! pipeline's committed output is exactly-once under fault injection.
//! Messages that fault their consumer `poison_limit` times escalate to
//! the dead-letter queue (**DL0**) instead of a reboot storm.
//!
//! * [`channel`] — the bounded-channel service (ring persisted through
//!   storage, volatile endpoint seats, per-message fault counters);
//! * [`stages`] — the three stages as executor workloads plus typed
//!   `chan` client wrappers;
//! * [`bed`] — assembly, SWIFI fault schedule, and the run driver with
//!   a closed-form expected-output oracle.

pub mod bed;
pub mod channel;
pub mod stages;

pub use bed::{
    build_pipeline, expected_output, pipeline_cost_model, run_pipeline_rep, run_pipeline_variant,
    PipelineBed, PipelineConfig, PipelineResult, PipelineVariant,
};
pub use channel::ChannelService;

/// Channel number of the Generator → Worker edge.
pub const CHAN_A: i64 = 0;
/// Channel number of the Worker → Logger edge.
pub const CHAN_B: i64 = 1;

/// The channel interface's SuperGlue IDL source (`idl/chan.sg`).
pub const CHAN_IDL: &str = include_str!("../../../idl/chan.sg");

/// Compile the channel interface to its stub spec and artifacts.
///
/// # Panics
///
/// If the shipped `chan.sg` fails to compile — a build-breaking bug, not
/// a runtime condition (the lint suite and CI gate the spec).
#[must_use]
pub fn compile_chan() -> superglue_compiler::Compilation {
    let spec =
        superglue_idl::compile_interface("chan", CHAN_IDL).expect("shipped chan.sg must be valid");
    superglue_compiler::compile(&spec)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chan_idl_compiles_with_channel_cursor_annotations() {
        let c = compile_chan();
        let s = &c.stub_spec;
        assert!(s.model.global, "endpoints live in a global namespace");
        assert!(s.channel.is_some(), "sm_channel must be lowered");
        assert!(s.cursor_commit.is_some(), "sm_cursor must be lowered");
        let slot = s.cursor_slot.expect("cursor metadata slot interned");
        assert_eq!(s.meta_names[slot], "cursor");
    }
}
