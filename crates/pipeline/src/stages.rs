//! The three pipeline stages — Generator → Worker → Logger — as
//! closed-loop [`Workload`]s over the bounded-channel service.
//!
//! Every stage follows the peek-before-commit discipline end to end:
//!
//! * the **Generator** sends `job:<n>` payloads (every `poison_every`-th
//!   one a `poison:<n>` showstopper) with *its own* monotone sequence
//!   numbers, so a stub-level redo of a faulted send deduplicates at the
//!   channel;
//! * the **Worker** peeks a job from the inbound channel, charges its
//!   processing cost, forwards the transformed payload downstream, and
//!   only then commits its inbound cursor — a fault anywhere in that
//!   window replays from the committed cursor and the idempotent
//!   forward send collapses the duplicate;
//! * the **Logger** peeks, commits, and only *after* a successful
//!   commit appends the payload to the shared committed-output log —
//!   the observable effect the exactly-once differential tests compare
//!   byte for byte.

use std::cell::RefCell;
use std::rc::Rc;

use composite::{CallError, InterfaceCall, KernelAccess, SimTime, StepResult, ThreadId, Workload};
use sg_services::api::ClientEnd;

use crate::channel::{POISON_PREFIX, ROLE_CONSUMER, ROLE_PRODUCER};

/// Typed client wrappers for the `chan` interface.
pub mod chan {
    use super::{CallError, ClientEnd, InterfaceCall};
    use composite::Value;

    /// Open an endpoint on `chan_no` with the given role.
    ///
    /// # Errors
    ///
    /// Propagates [`CallError`].
    pub fn open<C: InterfaceCall>(
        ctx: &mut C,
        end: &ClientEnd,
        chan_no: i64,
        role: i64,
    ) -> Result<i64, CallError> {
        Ok(end
            .call(
                ctx,
                "chan_open",
                &[
                    Value::from(end.client.0),
                    Value::Int(chan_no),
                    Value::Int(role),
                ],
            )?
            .int()
            .unwrap_or(-1))
    }

    /// Enqueue `payload` under the producer-assigned `seq`.
    ///
    /// # Errors
    ///
    /// [`CallError::WouldBlock`] while the ring is full; others as-is.
    pub fn send<C: InterfaceCall>(
        ctx: &mut C,
        end: &ClientEnd,
        cid: i64,
        seq: i64,
        payload: Vec<u8>,
    ) -> Result<(), CallError> {
        end.call(
            ctx,
            "chan_send",
            &[
                Value::from(end.client.0),
                Value::Int(cid),
                Value::Int(seq),
                Value::from(payload),
            ],
        )
        .map(|_| ())
    }

    /// Read the message at the cursor without consuming it.
    ///
    /// # Errors
    ///
    /// [`CallError::WouldBlock`] while the channel is empty.
    pub fn peek<C: InterfaceCall>(
        ctx: &mut C,
        end: &ClientEnd,
        cid: i64,
    ) -> Result<Vec<u8>, CallError> {
        let v = end.call(
            ctx,
            "chan_peek",
            &[Value::from(end.client.0), Value::Int(cid)],
        )?;
        Ok(v.bytes().map(<[u8]>::to_vec).unwrap_or_default())
    }

    /// Commit the peeked message; returns the new cursor.
    ///
    /// # Errors
    ///
    /// Propagates [`CallError`].
    pub fn commit<C: InterfaceCall>(
        ctx: &mut C,
        end: &ClientEnd,
        cid: i64,
    ) -> Result<i64, CallError> {
        Ok(end
            .call(
                ctx,
                "chan_commit",
                &[Value::from(end.client.0), Value::Int(cid)],
            )?
            .int()
            .unwrap_or(-1))
    }

    /// Close an endpoint.
    ///
    /// # Errors
    ///
    /// Propagates [`CallError`].
    pub fn close<C: InterfaceCall>(
        ctx: &mut C,
        end: &ClientEnd,
        cid: i64,
    ) -> Result<(), CallError> {
        end.call(
            ctx,
            "chan_close",
            &[Value::from(end.client.0), Value::Int(cid)],
        )
        .map(|_| ())
    }
}

/// The source stage: emits a fixed budget of jobs.
#[derive(Debug)]
pub struct Generator {
    end: ClientEnd,
    chan_no: i64,
    cid: Option<i64>,
    next_seq: i64,
    jobs: u64,
    /// Every `poison_every`-th job (0 = never) is a showstopper.
    poison_every: u64,
}

impl Generator {
    /// A generator emitting `jobs` messages on `chan_no`.
    #[must_use]
    pub fn new(end: ClientEnd, chan_no: i64, jobs: u64, poison_every: u64) -> Self {
        Self {
            end,
            chan_no,
            cid: None,
            next_seq: 0,
            jobs,
            poison_every,
        }
    }

    /// Jobs sent so far.
    #[must_use]
    pub fn sent(&self) -> u64 {
        self.next_seq as u64
    }

    /// Whether job `n` of a schedule poisoning every `every`-th job is a
    /// showstopper (the first poison is job `every - 1`).
    #[must_use]
    pub fn is_poison(n: u64, every: u64) -> bool {
        every != 0 && n % every == every - 1
    }

    /// The payload of job `n` under this generator's poison schedule.
    #[must_use]
    pub fn payload(n: u64, every: u64) -> Vec<u8> {
        if Self::is_poison(n, every) {
            format!("{}:{n}", String::from_utf8_lossy(POISON_PREFIX)).into_bytes()
        } else {
            format!("job:{n}").into_bytes()
        }
    }
}

impl<Ctx: InterfaceCall + KernelAccess> Workload<Ctx> for Generator {
    fn step(&mut self, ctx: &mut Ctx, _thread: ThreadId) -> StepResult {
        let cid = match self.cid {
            Some(c) => c,
            None => match chan::open(ctx, &self.end, self.chan_no, ROLE_PRODUCER) {
                Ok(c) => {
                    self.cid = Some(c);
                    return StepResult::Yield;
                }
                Err(CallError::WouldBlock) => return StepResult::Blocked,
                Err(e) => return StepResult::Crashed(e.to_string()),
            },
        };
        if self.next_seq as u64 >= self.jobs {
            return StepResult::Done;
        }
        let payload = Self::payload(self.next_seq as u64, self.poison_every);
        match chan::send(ctx, &self.end, cid, self.next_seq, payload) {
            Ok(()) => {
                self.next_seq += 1;
                StepResult::Yield
            }
            Err(CallError::WouldBlock) => StepResult::Blocked,
            Err(e) => StepResult::Crashed(e.to_string()),
        }
    }
}

#[derive(Debug)]
enum WorkerState {
    Peek,
    Forward(Vec<u8>),
    Commit,
}

/// The middle stage: peek → process → forward → commit.
#[derive(Debug)]
pub struct Worker {
    in_end: ClientEnd,
    out_end: ClientEnd,
    in_no: i64,
    out_no: i64,
    in_cid: Option<i64>,
    out_cid: Option<i64>,
    state: WorkerState,
    out_seq: i64,
    work: SimTime,
    processed: u64,
}

impl Worker {
    /// A worker consuming `in_no` and producing on `out_no`, charging
    /// `work` per message.
    #[must_use]
    pub fn new(
        in_end: ClientEnd,
        out_end: ClientEnd,
        in_no: i64,
        out_no: i64,
        work: SimTime,
    ) -> Self {
        Self {
            in_end,
            out_end,
            in_no,
            out_no,
            in_cid: None,
            out_cid: None,
            state: WorkerState::Peek,
            out_seq: 0,
            work,
            processed: 0,
        }
    }

    /// Messages fully processed (forwarded *and* committed).
    #[must_use]
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// The worker's transformation of an inbound payload.
    #[must_use]
    pub fn transform(payload: &[u8]) -> Vec<u8> {
        let mut out = b"done:".to_vec();
        out.extend_from_slice(payload);
        out
    }
}

impl<Ctx: InterfaceCall + KernelAccess> Workload<Ctx> for Worker {
    fn step(&mut self, ctx: &mut Ctx, _thread: ThreadId) -> StepResult {
        let in_cid = match self.in_cid {
            Some(c) => c,
            None => match chan::open(ctx, &self.in_end, self.in_no, ROLE_CONSUMER) {
                Ok(c) => {
                    self.in_cid = Some(c);
                    return StepResult::Yield;
                }
                Err(CallError::WouldBlock) => return StepResult::Blocked,
                Err(e) => return StepResult::Crashed(e.to_string()),
            },
        };
        let out_cid = match self.out_cid {
            Some(c) => c,
            None => match chan::open(ctx, &self.out_end, self.out_no, ROLE_PRODUCER) {
                Ok(c) => {
                    self.out_cid = Some(c);
                    return StepResult::Yield;
                }
                Err(CallError::WouldBlock) => return StepResult::Blocked,
                Err(e) => return StepResult::Crashed(e.to_string()),
            },
        };
        match &self.state {
            WorkerState::Peek => match chan::peek(ctx, &self.in_end, in_cid) {
                Ok(payload) => {
                    // The application-level processing cost.
                    ctx.kernel_mut().charge(self.work);
                    self.state = WorkerState::Forward(Self::transform(&payload));
                    StepResult::Yield
                }
                Err(CallError::WouldBlock) => StepResult::Blocked,
                Err(e) => StepResult::Crashed(e.to_string()),
            },
            WorkerState::Forward(payload) => {
                // Same seq on every retry of this message: the channel
                // deduplicates a redone forward.
                match chan::send(ctx, &self.out_end, out_cid, self.out_seq, payload.clone()) {
                    Ok(()) => {
                        self.state = WorkerState::Commit;
                        StepResult::Yield
                    }
                    Err(CallError::WouldBlock) => StepResult::Blocked,
                    Err(e) => StepResult::Crashed(e.to_string()),
                }
            }
            WorkerState::Commit => match chan::commit(ctx, &self.in_end, in_cid) {
                Ok(_) => {
                    self.out_seq += 1;
                    self.processed += 1;
                    self.state = WorkerState::Peek;
                    StepResult::Yield
                }
                Err(CallError::WouldBlock) => StepResult::Blocked,
                Err(e) => StepResult::Crashed(e.to_string()),
            },
        }
    }
}

#[derive(Debug)]
enum LoggerState {
    Peek,
    Commit(Vec<u8>),
}

/// The sink stage: commits each message, then appends it to the
/// committed-output log — the run's observable effect.
#[derive(Debug)]
pub struct SinkLogger {
    end: ClientEnd,
    chan_no: i64,
    cid: Option<i64>,
    state: LoggerState,
    /// Stop after this many committed records (`None` = unbounded).
    expected: Option<u64>,
    delivered: u64,
    output: Rc<RefCell<Vec<String>>>,
}

impl SinkLogger {
    /// A logger draining `chan_no` into `output`.
    #[must_use]
    pub fn new(
        end: ClientEnd,
        chan_no: i64,
        expected: Option<u64>,
        output: Rc<RefCell<Vec<String>>>,
    ) -> Self {
        Self {
            end,
            chan_no,
            cid: None,
            state: LoggerState::Peek,
            expected,
            delivered: 0,
            output,
        }
    }

    /// Records committed so far.
    #[must_use]
    pub fn delivered(&self) -> u64 {
        self.delivered
    }
}

impl<Ctx: InterfaceCall + KernelAccess> Workload<Ctx> for SinkLogger {
    fn step(&mut self, ctx: &mut Ctx, _thread: ThreadId) -> StepResult {
        let cid = match self.cid {
            Some(c) => c,
            None => match chan::open(ctx, &self.end, self.chan_no, ROLE_CONSUMER) {
                Ok(c) => {
                    self.cid = Some(c);
                    return StepResult::Yield;
                }
                Err(CallError::WouldBlock) => return StepResult::Blocked,
                Err(e) => return StepResult::Crashed(e.to_string()),
            },
        };
        match &self.state {
            LoggerState::Peek => {
                if self.expected.is_some_and(|n| self.delivered >= n) {
                    return StepResult::Done;
                }
                match chan::peek(ctx, &self.end, cid) {
                    Ok(payload) => {
                        self.state = LoggerState::Commit(payload);
                        StepResult::Yield
                    }
                    Err(CallError::WouldBlock) => StepResult::Blocked,
                    Err(e) => StepResult::Crashed(e.to_string()),
                }
            }
            LoggerState::Commit(payload) => {
                let line = String::from_utf8_lossy(payload).into_owned();
                match chan::commit(ctx, &self.end, cid) {
                    Ok(_) => {
                        // Only a *committed* message becomes observable
                        // output — the exactly-once witness.
                        self.output.borrow_mut().push(line);
                        self.delivered += 1;
                        self.state = LoggerState::Peek;
                        StepResult::Yield
                    }
                    Err(CallError::WouldBlock) => StepResult::Blocked,
                    Err(e) => StepResult::Crashed(e.to_string()),
                }
            }
        }
    }
}
